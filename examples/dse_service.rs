//! DSE-as-a-service: two tenants submit a multi-app × multi-platform sweep
//! to the batch service, progress streams over a channel, and the whole
//! sweep runs **twice** against the same persistent result store — once
//! cold (every candidate simulated and published) and once warm (served
//! from disk) — to show the cache economics of a shared store.
//!
//! Run with `cargo run --release --example dse_service`
//! (add `-- --smoke` for CI-sized workloads).

use std::time::Instant;

use svmsyn::dse::{DseConfig, DseMethod};
use svmsyn::platform::Platform;
use svmsyn::report::fmt_ratio;
use svmsyn::sim::SimConfig;
use svmsyn_serve::{ProgressEvent, ServeReport, SweepJob, SweepService};
use svmsyn_store::ResultStore;
use svmsyn_workloads::streaming;

fn jobs(n: u64) -> Vec<SweepJob> {
    let dse = DseConfig {
        method: DseMethod::Exhaustive,
        sim: SimConfig {
            quantum: 50_000,
            ..SimConfig::default()
        },
        threads: 1,
        ..DseConfig::default()
    };
    // Platform axis: the big and small parts, plus the big part with a
    // deeper outstanding-miss queue on the hardware-thread MEMIF. The
    // rename is display-only — fingerprints ignore the cosmetic name.
    let mut deep = Platform::default().with_miss_depth(8);
    deep.name = "zynq7020-deep-miss".into();
    let platforms = vec![Platform::default(), Platform::small(), deep];
    vec![
        SweepJob {
            app: streaming::vecadd(n, 1).app,
            platforms: platforms.clone(),
            dse: dse.clone(),
            tenant: "tenant-a".into(),
        },
        SweepJob {
            app: streaming::saxpy(n, 1).app,
            platforms: platforms.clone(),
            dse: dse.clone(),
            tenant: "tenant-a".into(),
        },
        SweepJob {
            app: streaming::fanout_vecadd(2, n / 2, 1).app,
            platforms: platforms.clone(),
            dse: dse.clone(),
            tenant: "tenant-b".into(),
        },
        // tenant-b resubmits tenant-a's first app: with one shared store
        // handle the duplicate is answered from cache even on the cold run.
        SweepJob {
            app: streaming::vecadd(n, 1).app,
            platforms,
            dse,
            tenant: "tenant-b".into(),
        },
    ]
}

fn sweep(jobs: Vec<SweepJob>, store: ResultStore, verbose: bool) -> ServeReport {
    let (mut svc, rx) = SweepService::new(2, Some(store));
    for job in jobs {
        svc.submit(job);
    }
    let printer = std::thread::spawn(move || {
        for event in rx {
            if !verbose {
                continue;
            }
            match event {
                ProgressEvent::Enqueued {
                    job,
                    tenant,
                    app,
                    platforms,
                } => println!("  [job {job}] enqueued: {tenant}/{app} x {platforms} platforms"),
                ProgressEvent::Started { job } => println!("  [job {job}] started"),
                ProgressEvent::Evaluated {
                    job,
                    platform,
                    evaluated,
                    cached,
                } => println!(
                    "  [job {job}] platform {platform}: evaluated {evaluated} ({cached} cached)"
                ),
                ProgressEvent::Done { job } => println!("  [job {job}] done"),
            }
        }
    });
    let report = svc.drain();
    printer.join().expect("printer thread");
    report
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n: u64 = if smoke { 64 } else { 1024 };
    let root = std::env::temp_dir().join(format!("svmsyn-dse-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    println!("== Cold sweep (empty store at {}) ==", root.display());
    let t0 = Instant::now();
    let cold = sweep(jobs(n), ResultStore::open(&root).expect("open store"), true);
    let cold_wall = t0.elapsed();

    println!("\n== Warm sweep (same store, fresh service) ==");
    let t1 = Instant::now();
    let warm = sweep(jobs(n), ResultStore::open(&root).expect("open store"), true);
    let warm_wall = t1.elapsed();

    println!("\n{}", warm.matrix());
    println!("{}", warm.economics());
    println!("{}", warm.tenant_table());

    let cold_stats = cold.store.expect("cold store stats");
    let warm_stats = warm.store.expect("warm store stats");
    println!(
        "cold: {cold_wall:.2?} wall, {} published, {} hits",
        cold_stats.published, cold_stats.hits
    );
    println!(
        "warm: {warm_wall:.2?} wall, {} hits / {} misses ({} store-served)",
        warm_stats.hits,
        warm_stats.misses,
        fmt_ratio(warm.store_hit_fraction())
    );
    if warm_wall.as_nanos() > 0 {
        println!(
            "warm-vs-cold wall speedup: {}",
            fmt_ratio(cold_wall.as_secs_f64() / warm_wall.as_secs_f64())
        );
    }

    // The service-level contract this example exists to demonstrate: a
    // repeat sweep is ≥95% store-served and renders the identical matrix.
    assert!(
        warm.store_hit_fraction() >= 0.95,
        "warm sweep must be served from the store"
    );
    assert_eq!(
        warm.matrix().to_string(),
        cold.matrix().to_string(),
        "warm and cold sweeps must agree on the result matrix"
    );
    println!("warm sweep bit-identical to cold: OK");

    let _ = std::fs::remove_dir_all(&root);
}
