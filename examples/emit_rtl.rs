//! Emit the Verilog FSMD for every benchmark kernel — what the toolflow
//! would hand to the vendor back end.
//!
//! Run with `cargo run --release --example emit_rtl` (prints a summary; add
//! a kernel name argument, e.g. `vecadd`, to dump its full RTL).

use svmsyn_hls::fsmd::{compile, HlsConfig};
use svmsyn_hls::verilog::emit_verilog;
use svmsyn_workloads::small_suite;

fn main() {
    let dump: Option<String> = std::env::args().nth(1);
    for w in small_suite(1) {
        let compiled = compile(&w.app.threads[0].kernel, &HlsConfig::default());
        let rtl = emit_verilog(&compiled);
        println!(
            "{:>10}: {} lines of Verilog, {} states, est. {} @ {:.0} MHz",
            w.name,
            rtl.lines().count(),
            compiled.states,
            compiled.resources,
            compiled.fmax_mhz
        );
        if dump.as_deref() == Some(w.name.as_str()) {
            println!("{rtl}");
        }
    }
}
