//! Fabric-saturation sweep (the Figure 6 axis): how far does widening the
//! per-master outstanding window get you as master count grows, and where
//! does the shared data channel saturate?
//!
//! Sweeps outstanding window × hardware-thread count over the fan-out
//! `vecadd` microbenchmark (every master streams its own slice through the
//! one fabric) and prints makespan, mean outstanding transactions, and
//! data-channel utilization per point. Utilization → 1.0 reads as "the
//! channel is the bottleneck; more window or more masters buys nothing".
//!
//! Run with `cargo run --release --example fabric_sweep`.

use svmsyn::flow::{synthesize, Placement};
use svmsyn::platform::Platform;
use svmsyn::report::{fmt_cycles, fmt_ratio, Table};
use svmsyn::sim::{simulate, SimConfig};
use svmsyn_mem::FabricConfig;
use svmsyn_workloads::streaming::fanout_vecadd;

/// One sweep point: simulate `threads` hardware vecadd masters under a
/// `window`-deep outstanding fabric and return
/// `(makespan, outstanding_mean, data_utilization)`.
fn sweep_point(window: u32, threads: usize, n: u64) -> (u64, f64, f64) {
    let w = fanout_vecadd(threads, n, 0xFAB);
    let platform = Platform::default().with_fabric(FabricConfig {
        window,
        ..FabricConfig::default()
    });
    let placements = vec![Placement::Hardware; threads];
    let design = synthesize(&w.app, &platform, &placements).expect("sweep point synthesizes");
    let outcome = simulate(&design, &SimConfig::default()).expect("sweep point simulates");
    w.verify(&outcome).expect("sweep point computes correctly");
    let stats = outcome.stats();
    (
        outcome.makespan.0,
        stats.get("fabric.outstanding_mean").unwrap_or(0.0),
        stats.get("fabric.data_utilization").unwrap_or(0.0),
    )
}

/// Builds the saturation table for the given axes.
pub fn saturation_table(windows: &[u32], thread_counts: &[usize], n: u64) -> Table {
    let mut table = Table::new(
        "fabric saturation: outstanding window x hardware threads",
        &["window", "threads", "makespan", "outstanding", "data util"],
    );
    for &window in windows {
        for &threads in thread_counts {
            let (makespan, outstanding, util) = sweep_point(window, threads, n);
            table.row_owned(vec![
                window.to_string(),
                threads.to_string(),
                fmt_cycles(makespan),
                format!("{outstanding:.2}"),
                fmt_ratio(util),
            ]);
        }
    }
    table
}

fn main() {
    let table = saturation_table(&[1, 2, 4, 8], &[1, 2, 4], 1024);
    print!("{table}");
}
