//! Design-space exploration: let the toolflow decide which threads deserve
//! fabric under a tight area budget, comparing exhaustive and greedy search.
//!
//! Run with `cargo run --release --example dse_explore`.

use svmsyn::app::{ApplicationBuilder, ArgSpec};
use svmsyn::dse::{explore, DseConfig, DseMethod};
use svmsyn::flow::Placement;
use svmsyn::platform::Platform;
use svmsyn::sim::SimConfig;
use svmsyn_workloads::matmul::matmul_kernel;
use svmsyn_workloads::streaming::vecadd_kernel;

fn main() {
    let n = 512u64;
    let init: Vec<u8> = (0..n as u32).flat_map(|i| i.to_le_bytes()).collect();
    // Three threads: two cheap streaming kernels and one compute-dense
    // matmul competing for fabric.
    let app = ApplicationBuilder::new("dse-demo")
        .buffer("in", n * 4, init, false)
        .buffer("o0", n * 4, vec![], false)
        .buffer("o1", n * 4, vec![], false)
        .buffer("mm", 16 * 16 * 4, vec![], false)
        .thread(
            "stream0",
            vecadd_kernel(),
            vec![
                ArgSpec::Buffer(0, 0),
                ArgSpec::Buffer(0, 0),
                ArgSpec::Buffer(1, 0),
                ArgSpec::Value(n as i64),
            ],
            true,
        )
        .thread(
            "stream1",
            vecadd_kernel(),
            vec![
                ArgSpec::Buffer(0, 0),
                ArgSpec::Buffer(0, 0),
                ArgSpec::Buffer(2, 0),
                ArgSpec::Value(n as i64),
            ],
            true,
        )
        .thread(
            "matmul",
            matmul_kernel(),
            vec![
                ArgSpec::Buffer(0, 0),
                ArgSpec::Buffer(0, 0),
                ArgSpec::Buffer(3, 0),
                ArgSpec::Value(16),
            ],
            true,
        )
        .build()
        .expect("valid application");

    let platform = Platform::small();
    let sim = SimConfig::default();

    for (name, method) in [
        ("exhaustive", DseMethod::Exhaustive),
        ("greedy", DseMethod::Greedy),
        ("anneal", DseMethod::Anneal { iters: 16, seed: 3 }),
    ] {
        let r = explore(
            &app,
            &platform,
            &DseConfig {
                method,
                sim,
                ..DseConfig::default()
            },
        )
        .expect("exploration");
        let placements: String = r
            .best
            .placements
            .iter()
            .map(|p| match p {
                Placement::Hardware => 'H',
                Placement::Software => 'S',
            })
            .collect();
        println!(
            "{name:>10}: best {placements} makespan {} cycles, {} LUT, {} candidates evaluated, {} Pareto points",
            r.best.makespan,
            r.best.resources.lut,
            r.evaluated,
            r.pareto.len()
        );
    }
}
