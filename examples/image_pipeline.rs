//! A two-stage heterogeneous pipeline: a hardware Sobel filter feeds a
//! software histogram thread through a semaphore — hardware and software
//! threads sharing one virtual address space and one synchronization
//! namespace, the paper's programming model.
//!
//! Run with `cargo run --release --example image_pipeline`.

use svmsyn::app::{ApplicationBuilder, ArgSpec, SyncAction, SyncSpec};
use svmsyn::flow::{synthesize, Placement};
use svmsyn::platform::Platform;
use svmsyn::sim::{simulate, SimConfig};
use svmsyn_sim::Xoshiro256ss;
use svmsyn_workloads::histogram::{histogram_kernel, histogram_ref};
use svmsyn_workloads::sobel::{sobel_kernel, sobel_ref};

fn main() {
    let (w, h) = (96u64, 64u64);
    let mut rng = Xoshiro256ss::new(1234);
    let image: Vec<u8> = (0..w * h).map(|_| rng.next_u32() as u8).collect();

    // Expected results via the software references.
    let edges = sobel_ref(&image, w as usize, h as usize);
    let expected_hist = histogram_ref(&edges);

    let app = ApplicationBuilder::new("image-pipeline")
        .buffer("image", w * h, image, false)
        .buffer("edges", w * h, vec![], false)
        .buffer("hist", 256 * 4, vec![], false)
        .sync(SyncSpec::Semaphore(0))
        .thread_full(
            "sobel",
            sobel_kernel(),
            vec![
                ArgSpec::Buffer(0, 0),
                ArgSpec::Buffer(1, 0),
                ArgSpec::Value(w as i64),
                ArgSpec::Value(h as i64),
            ],
            vec![],
            vec![SyncAction::SemPost(0)], // signal: edges ready
            true,
        )
        .thread_full(
            "histogram",
            histogram_kernel(),
            vec![
                ArgSpec::Buffer(1, 0),
                ArgSpec::Buffer(2, 0),
                ArgSpec::Value((w * h) as i64),
            ],
            vec![SyncAction::SemWait(0)], // wait for the filter
            vec![],
            false,
        )
        .build()
        .expect("valid application");

    // Sobel in hardware, histogram in software.
    let design = synthesize(
        &app,
        &Platform::default(),
        &[Placement::Hardware, Placement::Software],
    )
    .expect("synthesis");
    println!(
        "synthesized: {} HW thread(s), {} total, {:.0} MHz system clock",
        design.hw_thread_count(),
        design.total_resources,
        design.system_mhz
    );

    let outcome = simulate(&design, &SimConfig::default()).expect("simulation");

    // Verify both stages end-to-end.
    let mut got_edges = vec![0u8; (w * h) as usize];
    outcome.read_buffer(1, &mut got_edges);
    assert_eq!(got_edges, edges, "hardware sobel output");
    let mut got_hist = vec![0u8; 256 * 4];
    outcome.read_buffer(2, &mut got_hist);
    let got_hist: Vec<u32> = got_hist
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    assert_eq!(got_hist, expected_hist, "software histogram of HW edges");

    for t in &outcome.threads {
        println!("  {}({}) finished at {} cycles", t.name, t.placement, t.end);
    }
    println!(
        "pipeline makespan: {} cycles ({:.1} us); both stages verified ✓",
        outcome.makespan,
        outcome.wall_micros(&design)
    );
}
