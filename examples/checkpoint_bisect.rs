//! Checkpoint workflows end to end: interrupt a pressured simulation,
//! write the checkpoint to disk, resume it in a "new process" (a fresh
//! `Sim` built from the file bytes alone), fork a swap-latency sweep off
//! one warmed snapshot, and finally bisect the first diverging cycle
//! window between two operating points.
//!
//! Run with `cargo run --release --example checkpoint_bisect`.

use svmsyn::app::{Application, ApplicationBuilder, ArgSpec};
use svmsyn::checkpoint::{bisect_divergence, fork_swap_sweep, BisectSide};
use svmsyn::flow::{synthesize, Placement};
use svmsyn::platform::{Platform, PressurePoint};
use svmsyn::sim::{simulate, RunProgress, Sim, SimConfig};
use svmsyn::Checkpoint;
use svmsyn_hls::builder::KernelBuilder;
use svmsyn_hls::ir::{BinOp, CmpOp, Kernel, Width};
use svmsyn_sim::Cycle;

/// `dst[i] = src[i] * 3` over `n` `u32`s — two live buffers, so a tight
/// frame budget forces reclaim and swap traffic.
fn scale_kernel() -> Kernel {
    let mut b = KernelBuilder::new("scale", 3);
    let entry = b.current_block();
    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    let src = b.arg(0);
    let dst = b.arg(1);
    let n = b.arg(2);
    let zero = b.constant(0);
    b.jump(header);
    b.switch_to(header);
    let i = b.phi();
    let c = b.cmp(CmpOp::Lt, i, n);
    b.branch(c, body, exit);
    b.switch_to(body);
    let four = b.constant(4);
    let off = b.bin(BinOp::Mul, i, four);
    let sa = b.bin(BinOp::Add, src, off);
    let da = b.bin(BinOp::Add, dst, off);
    let v = b.load(sa, Width::W32);
    let three = b.constant(3);
    let v3 = b.bin(BinOp::Mul, v, three);
    b.store(da, v3, Width::W32);
    let one = b.constant(1);
    let i2 = b.bin(BinOp::Add, i, one);
    b.jump(header);
    b.switch_to(exit);
    b.ret(None);
    b.set_phi_incoming(i, &[(entry, zero), (body, i2)]);
    b.finish().expect("scale kernel is well-formed")
}

fn scale_app(n: u64) -> Application {
    let init: Vec<u8> = (0..n as u32).flat_map(|i| i.to_le_bytes()).collect();
    ApplicationBuilder::new("bisect-demo")
        .buffer("src", n * 4, init, false)
        .buffer("dst", n * 4, vec![], false)
        .thread(
            "scaler",
            scale_kernel(),
            vec![
                ArgSpec::Buffer(0, 0),
                ArgSpec::Buffer(1, 0),
                ArgSpec::Value(n as i64),
            ],
            true,
        )
        .build()
        .expect("application is well-formed")
}

fn main() {
    let n = 2048u64;
    let app = scale_app(n);
    let mut base = Platform::default();
    base.os.frame_budget = Some(4); // over-committed: reclaim + swap ahead
    let cfg = SimConfig::default();

    // ── 1. Interrupt, persist, resume across a "process boundary" ──────
    let design = synthesize(&app, &base, &[Placement::Hardware]).expect("synthesis");
    let reference = simulate(&design, &cfg).expect("reference run");
    let mut sim = Sim::new(&design, &cfg).expect("setup");
    sim.run_until(Cycle(reference.makespan.0 / 2))
        .expect("first half");
    let path = std::env::temp_dir().join("checkpoint_bisect_demo.ckpt");
    sim.snapshot().write_to(&path).expect("write checkpoint");
    println!(
        "paused at cycle {} after {} events; checkpoint: {} bytes -> {}",
        sim.now().0,
        sim.events_fired(),
        sim.snapshot().len(),
        path.display()
    );
    drop(sim); // the old "process" is gone; only the file survives

    let cp = Checkpoint::read_from(&path).expect("read checkpoint");
    let _ = std::fs::remove_file(&path);
    let mut resumed = Sim::restore(&design, &cfg, &cp).expect("restore");
    while !matches!(resumed.run().expect("resumed run"), RunProgress::Complete) {}
    let outcome = resumed.finish().expect("resumed finish");
    println!(
        "resumed to completion: makespan {} (uninterrupted: {}) -> {}",
        outcome.makespan.0,
        reference.makespan.0,
        if outcome.makespan == reference.makespan {
            "bit-identical"
        } else {
            "DIVERGED (bug!)"
        }
    );

    // ── 2. Snapshot-fork a swap-latency sweep off one warmup ───────────
    let latencies = [500u64, 5_000, 20_000, 80_000];
    let arms = fork_swap_sweep(&app, &base, &[Placement::Hardware], &latencies, &cfg, 8)
        .expect("forked sweep");
    println!(
        "\nswap-latency sweep (one warmup, {} forked arms):",
        arms.len()
    );
    for arm in &arms {
        println!(
            "  swap_latency {:>6} -> makespan {:>8}  (reclaims {})",
            arm.swap_latency,
            arm.outcome.makespan.0,
            arm.outcome.stats().get("pressure.reclaims").unwrap_or(0.0)
        );
    }

    // ── 3. Bisect where two operating points part ways ─────────────────
    let slow = base.with_pressure(PressurePoint {
        swap_latency: 50_000,
        ..base.pressure_point()
    });
    let design_slow = synthesize(&app, &slow, &[Placement::Hardware]).expect("variant");
    let horizon = Cycle(
        reference
            .makespan
            .0
            .max(simulate(&design_slow, &cfg).expect("slow run").makespan.0)
            + 1,
    );
    let birth = Sim::new(&design, &cfg).expect("setup").snapshot();
    let a = BisectSide {
        design: &design,
        cfg: &cfg,
        checkpoint: &birth,
    };
    let b = BisectSide {
        design: &design_slow,
        cfg: &cfg,
        checkpoint: &birth,
    };
    match bisect_divergence(a, b, horizon).expect("bisect") {
        Some(d) => println!(
            "\nbisected divergence: states agree at cycle {}, differ at {} \
             (digests {:#018x} vs {:#018x})",
            d.last_agree.0, d.first_diverge.0, d.digest_a, d.digest_b
        ),
        None => println!("\nno divergence up to cycle {horizon:?} (unexpected here)"),
    }
}
