//! Quickstart: synthesize one kernel as a virtual-memory-enabled hardware
//! thread, simulate it, and compare against the software baseline.
//!
//! Run with `cargo run --release --example quickstart`.

use svmsyn::app::{ApplicationBuilder, ArgSpec};
use svmsyn::flow::{synthesize, Placement};
use svmsyn::platform::Platform;
use svmsyn::sim::{simulate, SimConfig};
use svmsyn_hls::builder::KernelBuilder;
use svmsyn_hls::ir::{BinOp, CmpOp, Kernel, Width};

/// Builds `dst[i] = src[i] * src[i]` over `n` `i32`s.
fn square_kernel() -> Kernel {
    let mut b = KernelBuilder::new("square", 3);
    let entry = b.current_block();
    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    let src = b.arg(0);
    let dst = b.arg(1);
    let n = b.arg(2);
    let zero = b.constant(0);
    let one = b.constant(1);
    let four = b.constant(4);
    b.jump(header);
    b.switch_to(header);
    let i = b.phi();
    let c = b.cmp(CmpOp::Lt, i, n);
    b.branch(c, body, exit);
    b.switch_to(body);
    let off = b.bin(BinOp::Mul, i, four);
    let sa = b.bin(BinOp::Add, src, off);
    let da = b.bin(BinOp::Add, dst, off);
    let v = b.load(sa, Width::W32);
    let sq = b.bin(BinOp::Mul, v, v);
    b.store(da, sq, Width::W32);
    let i2 = b.bin(BinOp::Add, i, one);
    b.jump(header);
    b.switch_to(exit);
    b.ret(None);
    b.set_phi_incoming(i, &[(entry, zero), (body, i2)]);
    b.finish().expect("square kernel is well-formed")
}

fn main() {
    let n: u64 = 4096;
    let input: Vec<u8> = (0..n as i32).flat_map(|i| i.to_le_bytes()).collect();

    // 1. Describe the application: buffers + one hardware-eligible thread.
    let app = ApplicationBuilder::new("quickstart")
        .buffer("src", n * 4, input, false)
        .buffer("dst", n * 4, vec![], false)
        .thread(
            "square",
            square_kernel(),
            vec![
                ArgSpec::Buffer(0, 0),
                ArgSpec::Buffer(1, 0),
                ArgSpec::Value(n as i64),
            ],
            true,
        )
        .build()
        .expect("valid application");

    let platform = Platform::default();

    // 2. Synthesize both placements and simulate.
    for placement in [Placement::Software, Placement::Hardware] {
        let design = synthesize(&app, &platform, &[placement]).expect("synthesis");
        let outcome = simulate(&design, &SimConfig::default()).expect("simulation");

        // 3. Check a few output values.
        let mut out = vec![0u8; (n * 4) as usize];
        outcome.read_buffer(1, &mut out);
        for i in [0usize, 7, 4095] {
            let mut w = [0u8; 4];
            w.copy_from_slice(&out[i * 4..i * 4 + 4]);
            assert_eq!(i32::from_le_bytes(w) as i64, (i as i64) * (i as i64));
        }

        println!(
            "{placement}: makespan {} cycles ({:.1} us at {:.0} MHz), fabric {}, HW faults {}",
            outcome.makespan,
            outcome.wall_micros(&design),
            design.system_mhz,
            design.total_resources,
            outcome.stats().get("os.hw_faults").unwrap_or(0.0),
        );
    }
}
