//! Counters, histograms, and a snapshotting stat registry.
//!
//! Every timing model in the stack exposes its internal counters through a
//! [`StatSet`] snapshot so that report printers (and the experiment binaries)
//! can enumerate them uniformly without knowing each component's type.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use svmsyn_sim::Counter;
/// let mut hits = Counter::default();
/// hits.inc();
/// hits.add(4);
/// assert_eq!(hits.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A power-of-two bucketed histogram of `u64` samples.
///
/// Bucket `i` covers `[2^(i-1), 2^i)` for `i >= 1` and `[0, 1)` for `i = 0`,
/// which is the usual latency-histogram shape: cheap, fixed-size, and accurate
/// where it matters (orders of magnitude).
///
/// # Example
///
/// ```
/// use svmsyn_sim::Histogram;
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 3, 100] { h.record(v); }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), 100);
/// assert!((h.mean() - 26.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `p`-th percentile (`p` in `[0, 100]`), resolved to the
    /// upper edge of the containing power-of-two bucket.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i == 0 { 0 } else { (1u64 << i) - 1 }.min(self.max);
            }
        }
        self.max
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        *self = Histogram::new();
    }
}

/// An ordered name → value snapshot of a component's statistics.
///
/// Components implement a `stats(&self) -> StatSet` method; sets from
/// subcomponents are merged under a prefix with [`StatSet::absorb`].
///
/// # Example
///
/// ```
/// use svmsyn_sim::StatSet;
/// let mut inner = StatSet::new();
/// inner.put("hits", 10.0);
/// let mut outer = StatSet::new();
/// outer.put("cycles", 500.0);
/// outer.absorb("tlb", inner);
/// assert_eq!(outer.get("tlb.hits"), Some(10.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatSet {
    values: BTreeMap<String, f64>,
}

impl StatSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        StatSet::default()
    }

    /// Inserts (or overwrites) a value.
    pub fn put(&mut self, name: impl Into<String>, value: f64) {
        self.values.insert(name.into(), value);
    }

    /// Looks up a value by exact name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Merges `other` into `self`, prefixing each of its names with
    /// `prefix` + `"."`.
    pub fn absorb(&mut self, prefix: &str, other: StatSet) {
        for (k, v) in other.values {
            // Manual concat: this runs per key on every per-run stats
            // snapshot, where `format!`'s formatting machinery is measurable.
            let mut key = String::with_capacity(prefix.len() + 1 + k.len());
            key.push_str(prefix);
            key.push('.');
            key.push_str(&k);
            self.values.insert(key, v);
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for StatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "{k:<48} {v:>16.3}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a StatSet {
    type Item = (&'a String, &'a f64);
    type IntoIter = std::collections::btree_map::Iter<'a, String, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

impl FromIterator<(String, f64)> for StatSet {
    fn from_iter<T: IntoIterator<Item = (String, f64)>>(iter: T) -> Self {
        StatSet {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, f64)> for StatSet {
    fn extend<T: IntoIterator<Item = (String, f64)>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        // The median of 1..=100 lies in bucket [64,128) upper edge 127,
        // clamped to max 100; coarse but monotone.
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p99);
        assert!(p99 <= 100);
    }

    #[test]
    fn histogram_percentile_monotone_in_p() {
        let mut h = Histogram::new();
        for v in [1u64, 10, 100, 1000, 10000] {
            h.record(v);
        }
        let mut last = 0;
        for p in [1.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!(v >= last, "percentile must be monotone");
            last = v;
        }
    }

    #[test]
    fn statset_roundtrip() {
        let mut s = StatSet::new();
        s.put("a", 1.0);
        s.put("b", 2.0);
        assert_eq!(s.get("a"), Some(1.0));
        assert_eq!(s.get("missing"), None);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        let rendered = s.to_string();
        assert!(rendered.contains('a') && rendered.contains("2.000"));
    }

    #[test]
    fn statset_absorb_prefixes() {
        let mut inner = StatSet::new();
        inner.put("x", 5.0);
        let mut outer = StatSet::new();
        outer.absorb("sub", inner);
        assert_eq!(outer.get("sub.x"), Some(5.0));
    }

    #[test]
    fn statset_collect_and_extend() {
        let s: StatSet = vec![("k".to_string(), 3.0)].into_iter().collect();
        assert_eq!(s.get("k"), Some(3.0));
        let mut t = StatSet::new();
        t.extend(vec![("z".to_string(), 4.0)]);
        assert_eq!(t.get("z"), Some(4.0));
        let pairs: Vec<_> = (&t).into_iter().collect();
        assert_eq!(pairs.len(), 1);
    }
}
