//! FPGA-fabric resource accounting shared by the whole stack.
//!
//! Both the HLS resource estimator and the MMU cost model express area in the
//! same four-component vector so that the system-level partitioner can add
//! them up against one fabric budget. The type lives in the base crate
//! because `svmsyn-vm` and `svmsyn-hls` are otherwise independent.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// FPGA fabric resource usage (or budget): LUTs, flip-flops, DSP slices and
/// 36 Kb block RAMs.
///
/// # Example
///
/// ```
/// use svmsyn_sim::fabric::FabricResources;
/// let mmu = FabricResources { lut: 1500, ff: 1200, dsp: 0, bram36: 1 };
/// let kernel = FabricResources { lut: 4000, ff: 3000, dsp: 6, bram36: 4 };
/// let thread = mmu + kernel;
/// let budget = FabricResources { lut: 53_200, ff: 106_400, dsp: 220, bram36: 140 };
/// assert!(thread.fits_within(&budget));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct FabricResources {
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// DSP slices.
    pub dsp: u64,
    /// 36 Kb block RAMs.
    pub bram36: u64,
}

impl FabricResources {
    /// The zero vector.
    pub const ZERO: FabricResources = FabricResources {
        lut: 0,
        ff: 0,
        dsp: 0,
        bram36: 0,
    };

    /// Creates a resource vector.
    pub fn new(lut: u64, ff: u64, dsp: u64, bram36: u64) -> Self {
        FabricResources {
            lut,
            ff,
            dsp,
            bram36,
        }
    }

    /// Whether every component of `self` fits within `budget`.
    #[must_use]
    pub fn fits_within(&self, budget: &FabricResources) -> bool {
        self.lut <= budget.lut
            && self.ff <= budget.ff
            && self.dsp <= budget.dsp
            && self.bram36 <= budget.bram36
    }

    /// The worst-case component utilization of `self` against `budget`, in
    /// `[0, ∞)`; values above 1.0 mean over-budget. Zero-budget components
    /// with non-zero usage yield `f64::INFINITY`.
    #[must_use]
    pub fn utilization(&self, budget: &FabricResources) -> f64 {
        fn frac(used: u64, avail: u64) -> f64 {
            if used == 0 {
                0.0
            } else if avail == 0 {
                f64::INFINITY
            } else {
                used as f64 / avail as f64
            }
        }
        frac(self.lut, budget.lut)
            .max(frac(self.ff, budget.ff))
            .max(frac(self.dsp, budget.dsp))
            .max(frac(self.bram36, budget.bram36))
    }

    /// Component-wise saturating subtraction (remaining budget).
    #[must_use]
    pub fn saturating_sub(&self, other: &FabricResources) -> FabricResources {
        FabricResources {
            lut: self.lut.saturating_sub(other.lut),
            ff: self.ff.saturating_sub(other.ff),
            dsp: self.dsp.saturating_sub(other.dsp),
            bram36: self.bram36.saturating_sub(other.bram36),
        }
    }
}

impl Add for FabricResources {
    type Output = FabricResources;
    fn add(self, rhs: FabricResources) -> FabricResources {
        FabricResources {
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            dsp: self.dsp + rhs.dsp,
            bram36: self.bram36 + rhs.bram36,
        }
    }
}

impl AddAssign for FabricResources {
    fn add_assign(&mut self, rhs: FabricResources) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for FabricResources {
    type Output = FabricResources;
    fn mul(self, n: u64) -> FabricResources {
        FabricResources {
            lut: self.lut * n,
            ff: self.ff * n,
            dsp: self.dsp * n,
            bram36: self.bram36 * n,
        }
    }
}

impl Sum for FabricResources {
    fn sum<I: Iterator<Item = FabricResources>>(iter: I) -> FabricResources {
        iter.fold(FabricResources::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for FabricResources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUT / {} FF / {} DSP / {} BRAM",
            self.lut, self.ff, self.dsp, self.bram36
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sum() {
        let a = FabricResources::new(1, 2, 3, 4);
        let b = FabricResources::new(10, 20, 30, 40);
        assert_eq!(a + b, FabricResources::new(11, 22, 33, 44));
        let total: FabricResources = [a, b, a].into_iter().sum();
        assert_eq!(total, FabricResources::new(12, 24, 36, 48));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        assert_eq!(a * 3, FabricResources::new(3, 6, 9, 12));
    }

    #[test]
    fn fits_and_utilization() {
        let used = FabricResources::new(50, 50, 0, 0);
        let budget = FabricResources::new(100, 200, 10, 10);
        assert!(used.fits_within(&budget));
        assert!((used.utilization(&budget) - 0.5).abs() < 1e-12);
        let over = FabricResources::new(150, 0, 0, 0);
        assert!(!over.fits_within(&budget));
        assert!(over.utilization(&budget) > 1.0);
    }

    #[test]
    fn zero_budget_component() {
        let used = FabricResources::new(0, 0, 1, 0);
        let budget = FabricResources::new(100, 100, 0, 100);
        assert!(!used.fits_within(&budget));
        assert!(used.utilization(&budget).is_infinite());
        assert_eq!(FabricResources::ZERO.utilization(&budget), 0.0);
    }

    #[test]
    fn saturating_sub_floor_at_zero() {
        let a = FabricResources::new(10, 10, 10, 10);
        let b = FabricResources::new(3, 20, 5, 10);
        assert_eq!(a.saturating_sub(&b), FabricResources::new(7, 0, 5, 0));
    }

    #[test]
    fn display_nonempty() {
        assert!(FabricResources::ZERO.to_string().contains("LUT"));
    }
}
