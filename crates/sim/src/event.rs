//! The generic discrete-event scheduler.
//!
//! The scheduler is generic over a *model* type `M` that owns the complete
//! simulated system state. Events are fired in `(time, insertion order)`
//! order; two events scheduled for the same cycle fire in the order they were
//! scheduled, which makes runs deterministic without any tie-breaking
//! randomness.
//!
//! # Engine
//!
//! The queue is a **slab-backed timing wheel** (calendar queue), not a binary
//! heap:
//!
//! * Events live in a reusable `Vec`-backed slab and are linked into buckets
//!   by small integer handles — steady-state scheduling performs **no heap
//!   allocation** (closures up to [`INLINE_EVENT_BYTES`] are stored inline in
//!   the slab slot; larger ones fall back to a thin `Box`).
//! * The near-future wheel indexes buckets by `cycle & mask`: scheduling and
//!   popping are O(1). Within the wheel window every bucket corresponds to
//!   exactly one absolute cycle, so a bucket's intrusive FIFO list *is* the
//!   same-cycle insertion order — the determinism contract is structural, not
//!   enforced by comparisons.
//! * Events beyond the window land in a sorted overflow level (a `BTreeMap`
//!   keyed by cycle) and are promoted wholesale whenever the wheel drains and
//!   re-anchors, preserving per-cycle FIFO order.
//!
//! The previous `BinaryHeap`-of-boxed-closures engine is retained verbatim as
//! [`reference::HeapScheduler`] so benchmarks and property tests can prove
//! the wheel fires any schedule in the exact `(time, insertion order)`
//! sequence the heap produced.

use crate::time::Cycle;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};
use std::ptr;

/// A schedulable event acting on a model of type `M`.
///
/// Any `FnOnce(&mut M, &mut Scheduler<M>)` closure is an event, which is the
/// common way to use the scheduler; implement the trait directly only when an
/// event needs a named type (e.g. for size control). `fire` consumes the
/// event *by value* — small events are stored inline in the scheduler's slab
/// and never touch the heap.
pub trait Event<M> {
    /// Consumes the event and applies its effect to `model`, possibly
    /// scheduling follow-up events on `sched`.
    fn fire(self, model: &mut M, sched: &mut Scheduler<M>);
}

impl<M, F> Event<M> for F
where
    F: FnOnce(&mut M, &mut Scheduler<M>),
{
    fn fire(self, model: &mut M, sched: &mut Scheduler<M>) {
        self(model, sched)
    }
}

/// Events whose closure state fits in this many bytes (with alignment at
/// most that of `u64`) are stored inline in the slab; larger events cost one
/// heap allocation, exactly like the old engine.
pub const INLINE_EVENT_BYTES: usize = 24;

const INLINE_WORDS: usize = INLINE_EVENT_BYTES / 8;

type CallFn<M> = unsafe fn(*mut MaybeUninit<u64>, &mut M, &mut Scheduler<M>);
type DropFn = unsafe fn(*mut MaybeUninit<u64>);
/// Every stored closure is `Send` (the schedule methods require it), so the
/// erased storage is `Send` too — which is what lets a whole scheduler (a
/// shard's wheel) migrate to a worker thread between lookahead windows. The
/// marker states that contract where the type erasure would otherwise hide
/// it from auto-trait inference.
type SendMarker<M> = PhantomData<Box<dyn FnOnce(&mut M) + Send>>;

/// Type-erased event storage: a small inline buffer plus hand-rolled call
/// and drop function pointers. The event type `E` is known at `schedule_at`
/// time, so even the heap fallback stores a *thin* pointer — there is no
/// `dyn` dispatch anywhere on the hot path.
struct SmallEvent<M> {
    data: [MaybeUninit<u64>; INLINE_WORDS],
    call: CallFn<M>,
    drop_fn: DropFn,
    _marker: SendMarker<M>,
}

unsafe fn call_inline<M, E: Event<M>>(
    data: *mut MaybeUninit<u64>,
    model: &mut M,
    sched: &mut Scheduler<M>,
) {
    // SAFETY: constructed by `SmallEvent::new` for exactly this `E`, and the
    // caller (fire) guarantees the slot is consumed exactly once.
    let event = unsafe { ptr::read(data.cast::<E>()) };
    event.fire(model, sched);
}

unsafe fn drop_inline<E>(data: *mut MaybeUninit<u64>) {
    // SAFETY: same provenance argument as `call_inline`.
    unsafe { ptr::drop_in_place(data.cast::<E>()) }
}

unsafe fn call_boxed<M, E: Event<M>>(
    data: *mut MaybeUninit<u64>,
    model: &mut M,
    sched: &mut Scheduler<M>,
) {
    // SAFETY: the buffer holds a `*mut E` obtained from `Box::into_raw`.
    let raw = unsafe { ptr::read(data.cast::<*mut E>()) };
    let event = unsafe { Box::from_raw(raw) };
    (*event).fire(model, sched);
}

unsafe fn drop_boxed<E>(data: *mut MaybeUninit<u64>) {
    // SAFETY: the buffer holds a `*mut E` obtained from `Box::into_raw`.
    let raw = unsafe { ptr::read(data.cast::<*mut E>()) };
    drop(unsafe { Box::from_raw(raw) });
}

impl<M> SmallEvent<M> {
    fn new<E: Event<M> + Send + 'static>(event: E) -> Self {
        let mut data = [MaybeUninit::<u64>::uninit(); INLINE_WORDS];
        if size_of::<E>() <= size_of::<[u64; INLINE_WORDS]>()
            && align_of::<E>() <= align_of::<u64>()
        {
            // SAFETY: `E` fits the buffer in both size and alignment.
            unsafe { ptr::write(data.as_mut_ptr().cast::<E>(), event) };
            SmallEvent {
                data,
                call: call_inline::<M, E>,
                drop_fn: drop_inline::<E>,
                _marker: PhantomData,
            }
        } else {
            let raw = Box::into_raw(Box::new(event));
            // SAFETY: a thin pointer always fits the buffer.
            unsafe { ptr::write(data.as_mut_ptr().cast::<*mut E>(), raw) };
            SmallEvent {
                data,
                call: call_boxed::<M, E>,
                drop_fn: drop_boxed::<E>,
                _marker: PhantomData,
            }
        }
    }

    fn fire(self, model: &mut M, sched: &mut Scheduler<M>) {
        // Ownership of the payload moves into `call`; suppress our Drop so
        // the payload is not dropped twice.
        let mut this = ManuallyDrop::new(self);
        // SAFETY: `call` was built for the payload currently in `data`, and
        // `ManuallyDrop` guarantees single consumption.
        unsafe { (this.call)(this.data.as_mut_ptr(), model, sched) }
    }
}

impl<M> Drop for SmallEvent<M> {
    fn drop(&mut self) {
        // SAFETY: only reached for events that were never fired.
        unsafe { (self.drop_fn)(self.data.as_mut_ptr()) }
    }
}

const NIL: u32 = u32::MAX;

/// One slab slot: an intrusive `next` link (bucket FIFO list when queued,
/// free list when vacant) plus the event payload.
struct Slot<M> {
    next: u32,
    event: Option<SmallEvent<M>>,
}

#[derive(Clone, Copy)]
struct Bucket {
    head: u32,
    tail: u32,
}

const EMPTY_BUCKET: Bucket = Bucket {
    head: NIL,
    tail: NIL,
};

/// A deterministic discrete-event scheduler over a model `M`.
///
/// # Example
///
/// ```
/// use svmsyn_sim::{Cycle, Scheduler};
/// let mut sched: Scheduler<u64> = Scheduler::new();
/// sched.schedule_at(Cycle(5), |count: &mut u64, _: &mut Scheduler<u64>| *count += 1);
/// let mut count = 0u64;
/// sched.run(&mut count);
/// assert_eq!(count, 1);
/// assert_eq!(sched.now(), Cycle(5));
/// ```
pub struct Scheduler<M> {
    now: Cycle,
    fired: u64,
    scheduled: u64,
    halted: bool,
    pending: usize,
    /// First cycle covered by the wheel window `[base, base + wheel_size)`.
    base: u64,
    mask: u64,
    wheel_count: usize,
    buckets: Box<[Bucket]>,
    /// One bit per bucket: set iff the bucket list is non-empty.
    occupancy: Box<[u64]>,
    slab: Vec<Slot<M>>,
    free_head: u32,
    /// Far-future events, sorted by cycle; each `Vec` is in insertion order.
    overflow: BTreeMap<u64, Vec<u32>>,
}

impl<M> Default for Scheduler<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> std::fmt::Debug for Scheduler<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.pending)
            .field("wheel", &self.wheel_count)
            .field("overflow", &(self.pending - self.wheel_count))
            .field("fired", &self.fired)
            .field("halted", &self.halted)
            .finish()
    }
}

/// Default wheel size: 4096 buckets (32 KiB of bucket headers), which covers
/// the default simulation quantum with room to spare.
const DEFAULT_WHEEL_BITS: u32 = 12;

impl<M> Scheduler<M> {
    /// Creates an empty scheduler at time zero with the default wheel size.
    pub fn new() -> Self {
        Self::with_wheel_bits(DEFAULT_WHEEL_BITS)
    }

    /// Creates an empty scheduler whose wheel covers `2^bits` cycles.
    ///
    /// Larger wheels keep more of the schedule on the O(1) path at the cost
    /// of `2^bits * 8` bytes of bucket headers; events beyond the window go
    /// to the sorted overflow level and are promoted when the wheel drains.
    /// `bits` is clamped to `[6, 20]`.
    pub fn with_wheel_bits(bits: u32) -> Self {
        let bits = bits.clamp(6, 20);
        let size = 1usize << bits;
        Scheduler {
            now: Cycle::ZERO,
            fired: 0,
            scheduled: 0,
            halted: false,
            pending: 0,
            base: 0,
            mask: (size - 1) as u64,
            wheel_count: 0,
            buckets: vec![EMPTY_BUCKET; size].into_boxed_slice(),
            occupancy: vec![0u64; size / 64].into_boxed_slice(),
            slab: Vec::new(),
            free_head: NIL,
            overflow: BTreeMap::new(),
        }
    }

    /// Creates a scheduler with slab capacity for `events` pending events,
    /// avoiding reallocation during the warm-up ramp.
    pub fn with_capacity(events: usize) -> Self {
        let mut s = Self::new();
        s.slab.reserve(events);
        s
    }

    /// Rewinds a *fresh, empty* scheduler to a checkpointed position: sets
    /// the current time and the fired/scheduled counters without firing
    /// anything. The caller then re-schedules the checkpoint's pending
    /// events in their original insertion order (each re-schedule bumps the
    /// `scheduled` counter again, so pass the checkpoint value minus the
    /// number of events about to be re-added), reproducing same-cycle FIFO
    /// order exactly.
    ///
    /// # Panics
    ///
    /// Panics if events are already pending — restoring into a scheduler
    /// that has live events would interleave two timelines.
    pub fn restore_meta(&mut self, now: Cycle, fired: u64, scheduled: u64) {
        assert!(
            self.pending == 0,
            "restore_meta requires an empty scheduler"
        );
        self.now = now;
        self.base = now.0;
        self.fired = fired;
        self.scheduled = scheduled;
        self.halted = false;
    }

    /// The current simulation time (the timestamp of the event being fired,
    /// or of the last event fired).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events scheduled so far.
    pub fn events_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Number of cycles the near-future wheel spans.
    pub fn wheel_size(&self) -> u64 {
        self.mask + 1
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        if self.pending == 0 {
            return None;
        }
        if self.wheel_count == 0 {
            return self.overflow.keys().next().map(|&t| Cycle(t));
        }
        Some(Cycle(self.next_occupied_time(self.now.0.max(self.base))))
    }

    /// Schedules `event` to fire at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (`time < self.now()`): a model that
    /// schedules into the past is broken and must be fixed, not tolerated.
    pub fn schedule_at<E: Event<M> + Send + 'static>(&mut self, time: Cycle, event: E) {
        assert!(
            time >= self.now,
            "event scheduled into the past: {time} < now {}",
            self.now
        );
        self.scheduled += 1;
        let slot = self.alloc_slot(SmallEvent::new(event));
        if self.pending == 0 {
            // Queue was empty: re-anchor the window at `now` so the wheel
            // horizon is maximal no matter how far time has advanced.
            self.base = self.now.0;
        }
        self.pending += 1;
        let t = time.0;
        if t - self.base <= self.mask {
            self.enqueue_wheel(t, slot);
        } else {
            self.overflow.entry(t).or_default().push(slot);
        }
    }

    /// Schedules `event` to fire `delay` cycles from now.
    pub fn schedule_in<E: Event<M> + Send + 'static>(&mut self, delay: Cycle, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules a wake event at `time`, clamping to the current cycle if
    /// the moment has already passed.
    ///
    /// This is the completion-delivery entry point: wake times come from
    /// the calendar-analytic memory fabric (a transaction's completion
    /// cycle is known at issue), and a consumer may only notice it parked
    /// on a completion *after* simulation time has moved past it — e.g. a
    /// thread that was descheduled across the completion. A plain
    /// [`schedule_at`](Self::schedule_at) treats that as a model bug and
    /// panics; a wake legitimately fires "as soon as possible" instead.
    pub fn schedule_wake<E: Event<M> + Send + 'static>(&mut self, time: Cycle, event: E) {
        self.schedule_at(time.max(self.now), event);
    }

    /// Requests that [`run`](Self::run) return before firing further events.
    ///
    /// Intended to be called from inside an event (e.g. when the simulated
    /// application has finished); pending events stay queued.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Whether [`halt`](Self::halt) has been requested.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    fn alloc_slot(&mut self, event: SmallEvent<M>) -> u32 {
        if self.free_head != NIL {
            let i = self.free_head;
            let slot = &mut self.slab[i as usize];
            self.free_head = slot.next;
            slot.next = NIL;
            slot.event = Some(event);
            i
        } else {
            let i = self.slab.len();
            assert!(i < NIL as usize, "event slab exhausted");
            self.slab.push(Slot {
                next: NIL,
                event: Some(event),
            });
            i as u32
        }
    }

    /// Appends `slot` to the bucket for absolute cycle `t` (which must lie
    /// within the current window).
    fn enqueue_wheel(&mut self, t: u64, slot: u32) {
        let bi = (t & self.mask) as usize;
        let tail = self.buckets[bi].tail;
        if tail == NIL {
            self.buckets[bi].head = slot;
            self.occupancy[bi >> 6] |= 1u64 << (bi & 63);
        } else {
            self.slab[tail as usize].next = slot;
        }
        self.buckets[bi].tail = slot;
        self.wheel_count += 1;
    }

    /// Moves the window to start at `new_base` and promotes every overflow
    /// event that now fits. Called only when the wheel is empty, so bucket
    /// residues cannot collide with leftover entries.
    fn rebase(&mut self, new_base: u64) {
        debug_assert_eq!(self.wheel_count, 0);
        self.base = new_base;
        while let Some(entry) = self.overflow.first_entry() {
            let t = *entry.key();
            if t - new_base > self.mask {
                break;
            }
            for slot in entry.remove() {
                self.enqueue_wheel(t, slot);
            }
        }
    }

    /// Finds the next occupied bucket at or after absolute cycle `from`
    /// (callers guarantee the wheel is non-empty and every queued cycle is
    /// `>= from`), returning its absolute cycle.
    fn next_occupied_time(&self, from: u64) -> u64 {
        debug_assert!(self.wheel_count > 0);
        let size = (self.mask + 1) as usize;
        let start = (from & self.mask) as usize;
        let nwords = self.occupancy.len();
        let mut word_i = start >> 6;
        let mut word = self.occupancy[word_i] & (!0u64 << (start & 63));
        for _ in 0..=nwords {
            if word != 0 {
                let bit = (word_i << 6) + word.trailing_zeros() as usize;
                let dist = (bit + size - start) & (size - 1);
                return from + dist as u64;
            }
            word_i = (word_i + 1) % nwords;
            word = self.occupancy[word_i];
        }
        unreachable!("wheel_count > 0 but no occupied bucket");
    }

    /// Removes and returns the earliest pending event.
    fn pop_next(&mut self) -> Option<(Cycle, SmallEvent<M>)> {
        if self.pending == 0 {
            return None;
        }
        if self.wheel_count == 0 {
            // Everything lives in the overflow level: re-anchor the window
            // at the earliest overflow cycle and promote.
            let first = *self.overflow.keys().next().expect("pending > 0");
            self.rebase(first);
        }
        let t = self.next_occupied_time(self.now.0.max(self.base));
        let bi = (t & self.mask) as usize;
        let head = self.buckets[bi].head;
        debug_assert_ne!(head, NIL);
        let slot = &mut self.slab[head as usize];
        let next = slot.next;
        let event = slot.event.take().expect("queued slot holds an event");
        slot.next = self.free_head;
        self.free_head = head;
        self.buckets[bi].head = next;
        if next == NIL {
            self.buckets[bi].tail = NIL;
            self.occupancy[bi >> 6] &= !(1u64 << (bi & 63));
        }
        self.wheel_count -= 1;
        self.pending -= 1;
        Some((Cycle(t), event))
    }

    /// Fires the single earliest pending event. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self, model: &mut M) -> bool {
        match self.pop_next() {
            Some((time, event)) => {
                debug_assert!(time >= self.now);
                self.now = time;
                self.fired += 1;
                event.fire(model, self);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue drains or [`halt`](Self::halt) is called.
    /// Returns the final simulation time.
    pub fn run(&mut self, model: &mut M) -> Cycle {
        while !self.halted && self.step(model) {}
        self.now
    }

    /// Runs until the queue drains, `halt` is called, or the next event would
    /// fire strictly after `deadline`. Returns the final simulation time.
    pub fn run_until(&mut self, model: &mut M, deadline: Cycle) -> Cycle {
        while !self.halted {
            match self.peek_time() {
                Some(t) if t <= deadline => {
                    self.step(model);
                }
                _ => break,
            }
        }
        self.now
    }
}

/// The retired `BinaryHeap`-of-boxed-closures engine, kept as the golden
/// reference for ordering semantics and as the benchmark baseline.
pub mod reference {
    use crate::time::Cycle;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    type BoxedEvent<M> = Box<dyn FnOnce(&mut M, &mut HeapScheduler<M>)>;

    struct Entry<M> {
        time: Cycle,
        seq: u64,
        event: BoxedEvent<M>,
    }

    impl<M> PartialEq for Entry<M> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl<M> Eq for Entry<M> {}
    impl<M> PartialOrd for Entry<M> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<M> Ord for Entry<M> {
        /// Reversed so the `BinaryHeap` (a max-heap) pops the *earliest*
        /// entry.
        fn cmp(&self, other: &Self) -> Ordering {
            (other.time, other.seq).cmp(&(self.time, self.seq))
        }
    }

    /// The pre-timing-wheel scheduler: one heap allocation plus an
    /// O(log n) sift per event. Same `(time, insertion order)` contract as
    /// [`Scheduler`](super::Scheduler).
    pub struct HeapScheduler<M> {
        now: Cycle,
        seq: u64,
        fired: u64,
        halted: bool,
        heap: BinaryHeap<Entry<M>>,
    }

    impl<M> Default for HeapScheduler<M> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<M> std::fmt::Debug for HeapScheduler<M> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("HeapScheduler")
                .field("now", &self.now)
                .field("pending", &self.heap.len())
                .field("fired", &self.fired)
                .field("halted", &self.halted)
                .finish()
        }
    }

    impl<M> HeapScheduler<M> {
        /// Creates an empty scheduler at time zero.
        pub fn new() -> Self {
            HeapScheduler {
                now: Cycle::ZERO,
                seq: 0,
                fired: 0,
                halted: false,
                heap: BinaryHeap::new(),
            }
        }

        /// The current simulation time.
        pub fn now(&self) -> Cycle {
            self.now
        }

        /// Number of events fired so far.
        pub fn events_fired(&self) -> u64 {
            self.fired
        }

        /// Number of events still pending.
        pub fn pending(&self) -> usize {
            self.heap.len()
        }

        /// Schedules `event` to fire at absolute time `time`.
        ///
        /// # Panics
        ///
        /// Panics if `time < self.now()`.
        pub fn schedule_at<F>(&mut self, time: Cycle, event: F)
        where
            F: FnOnce(&mut M, &mut HeapScheduler<M>) + 'static,
        {
            assert!(
                time >= self.now,
                "event scheduled into the past: {time} < now {}",
                self.now
            );
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Entry {
                time,
                seq,
                event: Box::new(event),
            });
        }

        /// Schedules `event` to fire `delay` cycles from now.
        pub fn schedule_in<F>(&mut self, delay: Cycle, event: F)
        where
            F: FnOnce(&mut M, &mut HeapScheduler<M>) + 'static,
        {
            self.schedule_at(self.now + delay, event);
        }

        /// Requests that [`run`](Self::run) return before firing further
        /// events.
        pub fn halt(&mut self) {
            self.halted = true;
        }

        /// Fires the single earliest pending event. Returns `false` when the
        /// queue is empty.
        pub fn step(&mut self, model: &mut M) -> bool {
            match self.heap.pop() {
                Some(entry) => {
                    debug_assert!(entry.time >= self.now);
                    self.now = entry.time;
                    self.fired += 1;
                    (entry.event)(model, self);
                    true
                }
                None => false,
            }
        }

        /// Runs until the event queue drains or `halt` is called.
        pub fn run(&mut self, model: &mut M) -> Cycle {
            while !self.halted && self.step(model) {}
            self.now
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Log(Vec<(u64, &'static str)>);

    #[test]
    fn fires_in_time_order() {
        let mut s: Scheduler<Log> = Scheduler::new();
        s.schedule_at(Cycle(30), |m: &mut Log, _: &mut Scheduler<Log>| {
            m.0.push((30, "c"))
        });
        s.schedule_at(Cycle(10), |m: &mut Log, _: &mut Scheduler<Log>| {
            m.0.push((10, "a"))
        });
        s.schedule_at(Cycle(20), |m: &mut Log, _: &mut Scheduler<Log>| {
            m.0.push((20, "b"))
        });
        let mut log = Log::default();
        let end = s.run(&mut log);
        assert_eq!(end, Cycle(30));
        assert_eq!(log.0, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn same_time_fires_in_insertion_order() {
        let mut s: Scheduler<Log> = Scheduler::new();
        for name in ["first", "second", "third"] {
            s.schedule_at(Cycle(7), move |m: &mut Log, _: &mut Scheduler<Log>| {
                m.0.push((7, name))
            });
        }
        let mut log = Log::default();
        s.run(&mut log);
        assert_eq!(log.0, vec![(7, "first"), (7, "second"), (7, "third")]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut s: Scheduler<Log> = Scheduler::new();
        s.schedule_at(Cycle(1), |m: &mut Log, s: &mut Scheduler<Log>| {
            m.0.push((s.now().0, "root"));
            s.schedule_in(Cycle(9), |m: &mut Log, s: &mut Scheduler<Log>| {
                m.0.push((s.now().0, "child"));
            });
        });
        let mut log = Log::default();
        s.run(&mut log);
        assert_eq!(log.0, vec![(1, "root"), (10, "child")]);
        assert_eq!(s.events_fired(), 2);
    }

    #[test]
    fn halt_stops_run() {
        let mut s: Scheduler<Log> = Scheduler::new();
        s.schedule_at(Cycle(1), |m: &mut Log, s: &mut Scheduler<Log>| {
            m.0.push((1, "a"));
            s.halt();
        });
        s.schedule_at(Cycle(2), |m: &mut Log, _: &mut Scheduler<Log>| {
            m.0.push((2, "never"))
        });
        let mut log = Log::default();
        s.run(&mut log);
        assert!(s.is_halted());
        assert_eq!(log.0, vec![(1, "a")]);
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut s: Scheduler<Log> = Scheduler::new();
        for t in [5u64, 15, 25] {
            s.schedule_at(Cycle(t), move |m: &mut Log, _: &mut Scheduler<Log>| {
                m.0.push((t, "x"))
            });
        }
        let mut log = Log::default();
        s.run_until(&mut log, Cycle(15));
        assert_eq!(log.0.len(), 2);
        s.run(&mut log);
        assert_eq!(log.0.len(), 3);
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_the_past_panics() {
        let mut s: Scheduler<Log> = Scheduler::new();
        s.schedule_at(Cycle(10), |_: &mut Log, s: &mut Scheduler<Log>| {
            s.schedule_at(Cycle(5), |_: &mut Log, _: &mut Scheduler<Log>| {});
        });
        let mut log = Log::default();
        s.run(&mut log);
    }

    #[test]
    fn schedule_wake_clamps_past_times_to_now() {
        let mut s: Scheduler<Log> = Scheduler::new();
        s.schedule_at(Cycle(10), |m: &mut Log, s: &mut Scheduler<Log>| {
            m.0.push((s.now().0, "tick"));
            // A completion at cycle 4 noticed at cycle 10: fires now, not
            // never (schedule_at would panic).
            s.schedule_wake(Cycle(4), |m: &mut Log, s: &mut Scheduler<Log>| {
                m.0.push((s.now().0, "late-wake"));
            });
            s.schedule_wake(Cycle(15), |m: &mut Log, s: &mut Scheduler<Log>| {
                m.0.push((s.now().0, "future-wake"));
            });
        });
        let mut log = Log::default();
        s.run(&mut log);
        assert_eq!(
            log.0,
            vec![(10, "tick"), (10, "late-wake"), (15, "future-wake")]
        );
    }

    #[test]
    fn debug_is_nonempty() {
        let s: Scheduler<Log> = Scheduler::new();
        assert!(!format!("{s:?}").is_empty());
    }

    #[test]
    fn far_future_events_take_the_overflow_path() {
        let mut s: Scheduler<Log> = Scheduler::new();
        let horizon = s.wheel_size();
        // One event inside the window, two far beyond it (same cycle, so
        // FIFO order must survive the overflow promotion), one farther out.
        s.schedule_at(Cycle(3), |m: &mut Log, _: &mut Scheduler<Log>| {
            m.0.push((3, "near"))
        });
        let far = horizon * 5 + 17;
        s.schedule_at(Cycle(far), move |m: &mut Log, _: &mut Scheduler<Log>| {
            m.0.push((far, "far1"))
        });
        s.schedule_at(Cycle(far), move |m: &mut Log, _: &mut Scheduler<Log>| {
            m.0.push((far, "far2"))
        });
        let farther = horizon * 9;
        s.schedule_at(
            Cycle(farther),
            move |m: &mut Log, _: &mut Scheduler<Log>| m.0.push((farther, "farther")),
        );
        let mut log = Log::default();
        let end = s.run(&mut log);
        assert_eq!(end, Cycle(farther));
        assert_eq!(
            log.0,
            vec![
                (3, "near"),
                (far, "far1"),
                (far, "far2"),
                (farther, "farther")
            ]
        );
    }

    #[test]
    fn wheel_wraps_across_many_windows() {
        // A self-rescheduling chain that crosses the wheel window many
        // times, with a stride that is not a divisor of the wheel size.
        let mut s: Scheduler<Vec<u64>> = Scheduler::with_wheel_bits(6);
        fn tick(m: &mut Vec<u64>, s: &mut Scheduler<Vec<u64>>) {
            m.push(s.now().0);
            if m.len() < 500 {
                s.schedule_in(Cycle(37), tick);
            }
        }
        s.schedule_at(Cycle(0), tick);
        let mut seen = Vec::new();
        s.run(&mut seen);
        assert_eq!(seen.len(), 500);
        for (i, t) in seen.iter().enumerate() {
            assert_eq!(*t, 37 * i as u64);
        }
    }

    #[test]
    fn slab_slots_are_reused() {
        let mut s: Scheduler<u64> = Scheduler::new();
        for round in 0..100u64 {
            s.schedule_at(Cycle(round * 3), |m: &mut u64, _: &mut Scheduler<u64>| {
                *m += 1
            });
            let mut m = 0u64;
            s.run(&mut m);
        }
        // One event in flight at a time: the slab never grows past one slot.
        assert_eq!(s.slab.len(), 1);
        assert_eq!(s.events_fired(), 100);
        assert_eq!(s.events_scheduled(), 100);
    }

    #[test]
    fn pending_events_are_dropped_cleanly() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let dropped: Arc<AtomicU32> = Arc::default();
        struct Tracker(Arc<AtomicU32>);
        impl Drop for Tracker {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let mut s: Scheduler<u64> = Scheduler::new();
            // One inline-sized and one boxed (oversized) event, both queued
            // and never fired.
            let t1 = Tracker(dropped.clone());
            s.schedule_at(Cycle(1), move |_: &mut u64, _: &mut Scheduler<u64>| {
                drop(t1);
            });
            let t2 = Tracker(dropped.clone());
            let ballast = [0u64; 16];
            s.schedule_at(Cycle(2), move |m: &mut u64, _: &mut Scheduler<u64>| {
                *m += ballast[0];
                drop(t2);
            });
            assert_eq!(s.pending(), 2);
        }
        assert_eq!(
            dropped.load(Ordering::Relaxed),
            2,
            "unfired events must drop their state"
        );
    }

    #[test]
    fn oversized_events_fire_correctly() {
        let mut s: Scheduler<Vec<u64>> = Scheduler::new();
        let payload = [7u64; 32]; // 256 bytes: forced onto the boxed path
        s.schedule_at(
            Cycle(4),
            move |m: &mut Vec<u64>, _: &mut Scheduler<Vec<u64>>| m.push(payload.iter().sum()),
        );
        let mut out = Vec::new();
        s.run(&mut out);
        assert_eq!(out, vec![7 * 32]);
    }

    #[test]
    fn peek_time_tracks_the_earliest_event() {
        let mut s: Scheduler<u64> = Scheduler::new();
        assert_eq!(s.peek_time(), None);
        s.schedule_at(Cycle(90), |_: &mut u64, _: &mut Scheduler<u64>| {});
        s.schedule_at(Cycle(10), |_: &mut u64, _: &mut Scheduler<u64>| {});
        let far = s.wheel_size() * 3;
        s.schedule_at(Cycle(far), |_: &mut u64, _: &mut Scheduler<u64>| {});
        assert_eq!(s.peek_time(), Some(Cycle(10)));
        let mut m = 0u64;
        s.step(&mut m);
        assert_eq!(s.peek_time(), Some(Cycle(90)));
        s.step(&mut m);
        assert_eq!(s.peek_time(), Some(Cycle(far)));
        s.step(&mut m);
        assert_eq!(s.peek_time(), None);
    }

    /// The trace-equivalence harness: drives the wheel and the retired heap
    /// engine through the same logical program and compares full traces.
    fn cross_check(initial: &[(u64, u32)], respawn: fn(u64, u32) -> Option<(u64, u32)>) {
        type Trace = Vec<(u64, u32)>;

        type WheelEvent = Box<dyn FnOnce(&mut Trace, &mut Scheduler<Trace>) + Send>;
        type HeapEvent = Box<dyn FnOnce(&mut Trace, &mut reference::HeapScheduler<Trace>)>;

        fn wheel_event(id: u32, respawn: fn(u64, u32) -> Option<(u64, u32)>) -> WheelEvent {
            Box::new(move |m: &mut Trace, s: &mut Scheduler<Trace>| {
                m.push((s.now().0, id));
                if let Some((delay, next_id)) = respawn(s.now().0, id) {
                    s.schedule_in(Cycle(delay), wheel_event(next_id, respawn));
                }
            })
        }
        fn heap_event(id: u32, respawn: fn(u64, u32) -> Option<(u64, u32)>) -> HeapEvent {
            Box::new(
                move |m: &mut Trace, s: &mut reference::HeapScheduler<Trace>| {
                    m.push((s.now().0, id));
                    if let Some((delay, next_id)) = respawn(s.now().0, id) {
                        s.schedule_in(Cycle(delay), heap_event(next_id, respawn));
                    }
                },
            )
        }

        let mut wheel: Scheduler<Trace> = Scheduler::with_wheel_bits(6);
        let mut heap: reference::HeapScheduler<Trace> = reference::HeapScheduler::new();
        for &(t, id) in initial {
            wheel.schedule_at(Cycle(t), wheel_event(id, respawn));
            heap.schedule_at(Cycle(t), heap_event(id, respawn));
        }
        let mut wt = Trace::new();
        let mut ht = Trace::new();
        let wend = wheel.run(&mut wt);
        let hend = heap.run(&mut ht);
        assert_eq!(wt, ht, "wheel and heap traces diverge");
        assert_eq!(wend, hend);
    }

    #[test]
    fn trace_matches_heap_reference_with_ties_and_reschedules() {
        // Dense same-cycle ties plus respawn chains crossing the window.
        let initial: Vec<(u64, u32)> = (0..64u32).map(|i| ((i as u64 * 13) % 32, i)).collect();
        cross_check(&initial, |now, id| {
            // Every third event respawns with a stride derived from its id;
            // chains die out past cycle 2000.
            if id % 3 == 0 && now < 2000 {
                Some(((id as u64 % 7) * 31 + 1, id + 100))
            } else {
                None
            }
        });
    }

    #[test]
    fn trace_matches_heap_reference_zero_delay_chains() {
        // Zero-delay respawns: new events at the *current* cycle must fire
        // after everything already queued for that cycle, on both engines.
        let initial: Vec<(u64, u32)> = (0..16u32).map(|i| (5, i)).collect();
        cross_check(&initial, |_, id| {
            if id < 16 * 4 {
                Some((0, id + 16))
            } else {
                None
            }
        });
    }
}
