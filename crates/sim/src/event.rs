//! The generic discrete-event scheduler.
//!
//! The scheduler is generic over a *model* type `M` that owns the complete
//! simulated system state. Events are fired in `(time, insertion order)`
//! order; two events scheduled for the same cycle fire in the order they were
//! scheduled, which makes runs deterministic without any tie-breaking
//! randomness.

use crate::time::Cycle;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A schedulable event acting on a model of type `M`.
///
/// Any `FnOnce(&mut M, &mut Scheduler<M>)` closure is an event, which is the
/// common way to use the scheduler; implement the trait directly only when an
/// event needs a named type (e.g. for size control).
pub trait Event<M> {
    /// Consumes the event and applies its effect to `model`, possibly
    /// scheduling follow-up events on `sched`.
    fn fire(self: Box<Self>, model: &mut M, sched: &mut Scheduler<M>);
}

impl<M, F> Event<M> for F
where
    F: FnOnce(&mut M, &mut Scheduler<M>),
{
    fn fire(self: Box<Self>, model: &mut M, sched: &mut Scheduler<M>) {
        (*self)(model, sched)
    }
}

struct Entry<M> {
    time: Cycle,
    seq: u64,
    event: Box<dyn Event<M>>,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    /// Reversed so the `BinaryHeap` (a max-heap) pops the *earliest* entry.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic discrete-event scheduler over a model `M`.
///
/// # Example
///
/// ```
/// use svmsyn_sim::{Cycle, Scheduler};
/// let mut sched: Scheduler<u64> = Scheduler::new();
/// sched.schedule_at(Cycle(5), |count: &mut u64, _: &mut Scheduler<u64>| *count += 1);
/// let mut count = 0u64;
/// sched.run(&mut count);
/// assert_eq!(count, 1);
/// assert_eq!(sched.now(), Cycle(5));
/// ```
pub struct Scheduler<M> {
    now: Cycle,
    seq: u64,
    fired: u64,
    halted: bool,
    heap: BinaryHeap<Entry<M>>,
}

impl<M> Default for Scheduler<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> std::fmt::Debug for Scheduler<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("fired", &self.fired)
            .field("halted", &self.halted)
            .finish()
    }
}

impl<M> Scheduler<M> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            now: Cycle::ZERO,
            seq: 0,
            fired: 0,
            halted: false,
            heap: BinaryHeap::new(),
        }
    }

    /// The current simulation time (the timestamp of the event being fired,
    /// or of the last event fired).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `event` to fire at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (`time < self.now()`): a model that
    /// schedules into the past is broken and must be fixed, not tolerated.
    pub fn schedule_at<E: Event<M> + 'static>(&mut self, time: Cycle, event: E) {
        assert!(
            time >= self.now,
            "event scheduled into the past: {time} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time,
            seq,
            event: Box::new(event),
        });
    }

    /// Schedules `event` to fire `delay` cycles from now.
    pub fn schedule_in<E: Event<M> + 'static>(&mut self, delay: Cycle, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Requests that [`run`](Self::run) return before firing further events.
    ///
    /// Intended to be called from inside an event (e.g. when the simulated
    /// application has finished); pending events stay queued.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Whether [`halt`](Self::halt) has been requested.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Fires the single earliest pending event. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self, model: &mut M) -> bool {
        match self.heap.pop() {
            Some(entry) => {
                debug_assert!(entry.time >= self.now);
                self.now = entry.time;
                self.fired += 1;
                entry.event.fire(model, self);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue drains or [`halt`](Self::halt) is called.
    /// Returns the final simulation time.
    pub fn run(&mut self, model: &mut M) -> Cycle {
        while !self.halted && self.step(model) {}
        self.now
    }

    /// Runs until the queue drains, `halt` is called, or the next event would
    /// fire strictly after `deadline`. Returns the final simulation time.
    pub fn run_until(&mut self, model: &mut M, deadline: Cycle) -> Cycle {
        while !self.halted {
            match self.heap.peek() {
                Some(entry) if entry.time <= deadline => {
                    self.step(model);
                }
                _ => break,
            }
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Log(Vec<(u64, &'static str)>);

    #[test]
    fn fires_in_time_order() {
        let mut s: Scheduler<Log> = Scheduler::new();
        s.schedule_at(Cycle(30), |m: &mut Log, _: &mut Scheduler<Log>| {
            m.0.push((30, "c"))
        });
        s.schedule_at(Cycle(10), |m: &mut Log, _: &mut Scheduler<Log>| {
            m.0.push((10, "a"))
        });
        s.schedule_at(Cycle(20), |m: &mut Log, _: &mut Scheduler<Log>| {
            m.0.push((20, "b"))
        });
        let mut log = Log::default();
        let end = s.run(&mut log);
        assert_eq!(end, Cycle(30));
        assert_eq!(log.0, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn same_time_fires_in_insertion_order() {
        let mut s: Scheduler<Log> = Scheduler::new();
        for name in ["first", "second", "third"] {
            s.schedule_at(Cycle(7), move |m: &mut Log, _: &mut Scheduler<Log>| {
                m.0.push((7, name))
            });
        }
        let mut log = Log::default();
        s.run(&mut log);
        assert_eq!(log.0, vec![(7, "first"), (7, "second"), (7, "third")]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut s: Scheduler<Log> = Scheduler::new();
        s.schedule_at(Cycle(1), |m: &mut Log, s: &mut Scheduler<Log>| {
            m.0.push((s.now().0, "root"));
            s.schedule_in(Cycle(9), |m: &mut Log, s: &mut Scheduler<Log>| {
                m.0.push((s.now().0, "child"));
            });
        });
        let mut log = Log::default();
        s.run(&mut log);
        assert_eq!(log.0, vec![(1, "root"), (10, "child")]);
        assert_eq!(s.events_fired(), 2);
    }

    #[test]
    fn halt_stops_run() {
        let mut s: Scheduler<Log> = Scheduler::new();
        s.schedule_at(Cycle(1), |m: &mut Log, s: &mut Scheduler<Log>| {
            m.0.push((1, "a"));
            s.halt();
        });
        s.schedule_at(Cycle(2), |m: &mut Log, _: &mut Scheduler<Log>| {
            m.0.push((2, "never"))
        });
        let mut log = Log::default();
        s.run(&mut log);
        assert!(s.is_halted());
        assert_eq!(log.0, vec![(1, "a")]);
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut s: Scheduler<Log> = Scheduler::new();
        for t in [5u64, 15, 25] {
            s.schedule_at(Cycle(t), move |m: &mut Log, _: &mut Scheduler<Log>| {
                m.0.push((t, "x"))
            });
        }
        let mut log = Log::default();
        s.run_until(&mut log, Cycle(15));
        assert_eq!(log.0.len(), 2);
        s.run(&mut log);
        assert_eq!(log.0.len(), 3);
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_the_past_panics() {
        let mut s: Scheduler<Log> = Scheduler::new();
        s.schedule_at(Cycle(10), |_: &mut Log, s: &mut Scheduler<Log>| {
            s.schedule_at(Cycle(5), |_: &mut Log, _: &mut Scheduler<Log>| {});
        });
        let mut log = Log::default();
        s.run(&mut log);
    }

    #[test]
    fn debug_is_nonempty() {
        let s: Scheduler<Log> = Scheduler::new();
        assert!(!format!("{s:?}").is_empty());
    }
}
