//! Deterministic pseudo-random numbers for workload generation.
//!
//! The stack deliberately uses its own small PRNG rather than a global or
//! thread-local source: every experiment is seeded explicitly, so two runs
//! with the same seed produce identical inputs, identical schedules and
//! identical cycle counts — an invariant the integration tests assert.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded through
//! SplitMix64 as its authors recommend.

/// A deterministic xoshiro256** pseudo-random number generator.
///
/// # Example
///
/// ```
/// use svmsyn_sim::Xoshiro256ss;
/// let mut a = Xoshiro256ss::new(42);
/// let mut b = Xoshiro256ss::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.range(10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256ss {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256ss {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256ss { s }
    }

    /// The raw 256-bit generator state, for checkpoint serialization.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a previously captured [`state`](Self::state).
    pub fn from_state(s: [u64; 4]) -> Self {
        Xoshiro256ss { s }
    }

    /// Next uniformly distributed 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift reduction.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range bound must be positive");
        // 128-bit multiply-high; slight modulo bias is irrelevant for
        // workload generation and keeps the generator branch-free.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Samples a random permutation of `0..n` (used for pointer-chase rings).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        self.shuffle(&mut v);
        v
    }
}

impl svmsyn_snap::Snap for Xoshiro256ss {
    fn save(&self, w: &mut svmsyn_snap::SnapWriter) {
        for word in self.state() {
            w.put_u64(word);
        }
    }
    fn load(r: &mut svmsyn_snap::SnapReader<'_>) -> Result<Self, svmsyn_snap::SnapError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.take_u64()?;
        }
        Ok(Xoshiro256ss::from_state(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Xoshiro256ss::new(7);
        let mut b = Xoshiro256ss::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256ss::new(1);
        let mut b = Xoshiro256ss::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = Xoshiro256ss::new(99);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(r.range(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn range_zero_panics() {
        Xoshiro256ss::new(0).range(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256ss::new(3);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Xoshiro256ss::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256ss::new(11);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 64 elements should move something");
    }

    #[test]
    fn permutation_covers_all_indices() {
        let mut r = Xoshiro256ss::new(13);
        let p = r.permutation(100);
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn rough_uniformity() {
        let mut r = Xoshiro256ss::new(17);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.range(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
