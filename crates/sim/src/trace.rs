//! A bounded, optionally-enabled trace buffer for debugging timing models.
//!
//! Tracing is off by default: the hot paths call [`Trace::emit`] with a
//! closure, so the formatting cost is only paid when the trace is enabled.

use crate::time::Cycle;
use std::collections::VecDeque;
use std::fmt;

/// A bounded ring buffer of `(time, message)` trace records.
///
/// # Example
///
/// ```
/// use svmsyn_sim::{Cycle, Trace};
/// let mut t = Trace::new(16);
/// t.set_enabled(true);
/// t.emit(Cycle(5), || "tlb miss va=0x1000".to_string());
/// assert_eq!(t.records().count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    records: VecDeque<(Cycle, String)>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Trace {
    /// Creates a disabled trace that retains at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Trace {
            records: VecDeque::new(),
            capacity: capacity.max(1),
            enabled: false,
            dropped: 0,
        }
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a message produced by `f` at time `now` if enabled. The
    /// closure is not called when tracing is disabled.
    pub fn emit<F: FnOnce() -> String>(&mut self, now: Cycle, f: F) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back((now, f()));
    }

    /// Iterates over retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = (Cycle, &str)> {
        self.records.iter().map(|(c, s)| (*c, s.as_str()))
    }

    /// Number of records evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discards all retained records.
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (cycle, msg) in &self.records {
            writeln!(f, "[{cycle}] {msg}")?;
        }
        if self.dropped > 0 {
            writeln!(f, "... ({} earlier records dropped)", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(4);
        t.emit(Cycle(1), || panic!("must not be called"));
        assert_eq!(t.records().count(), 0);
    }

    #[test]
    fn enabled_trace_records() {
        let mut t = Trace::new(4);
        t.set_enabled(true);
        assert!(t.is_enabled());
        t.emit(Cycle(1), || "a".to_string());
        t.emit(Cycle(2), || "b".to_string());
        let got: Vec<_> = t.records().collect();
        assert_eq!(got, vec![(Cycle(1), "a"), (Cycle(2), "b")]);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t = Trace::new(2);
        t.set_enabled(true);
        for i in 0..5u64 {
            t.emit(Cycle(i), || format!("m{i}"));
        }
        let got: Vec<_> = t.records().collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1, "m3");
        assert_eq!(t.dropped(), 3);
        let shown = t.to_string();
        assert!(shown.contains("m4") && shown.contains("dropped"));
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::new(1);
        t.set_enabled(true);
        t.emit(Cycle(0), || "x".to_string());
        t.emit(Cycle(1), || "y".to_string());
        t.clear();
        assert_eq!(t.records().count(), 0);
        assert_eq!(t.dropped(), 0);
    }
}
