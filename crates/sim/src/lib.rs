//! # svmsyn-sim — discrete-event simulation kernel
//!
//! The lowest substrate of the `svmsyn` stack: a deterministic, single-threaded
//! discrete-event engine plus the small utilities every timing model needs.
//!
//! * [`Cycle`] — the simulation time unit (one fabric clock cycle).
//! * [`Scheduler`] — a generic event scheduler. The whole system state lives in
//!   one model value `M`; events are boxed closures (or [`Event`] impls) fired
//!   in `(time, insertion order)` order, which makes every run bit-reproducible.
//! * [`FcfsResource`] — a first-come-first-served "resource calendar" used to
//!   model contention on shared single-server resources (bus, DRAM bank, TLB
//!   port) without full event-per-beat machinery.
//! * [`stats`] — counters and power-of-two histograms with a snapshotting
//!   registry used by the report printers.
//! * [`rng`] — a tiny deterministic PRNG (xoshiro256**) so workload generation
//!   never depends on external crates or global state.
//!
//! # Example
//!
//! ```
//! use svmsyn_sim::{Cycle, Scheduler};
//!
//! struct Model { fired: Vec<u64> }
//! let mut sched = Scheduler::new();
//! sched.schedule_at(Cycle(10), |m: &mut Model, s: &mut Scheduler<Model>| {
//!     m.fired.push(s.now().0);
//!     s.schedule_in(Cycle(5), |m: &mut Model, s: &mut Scheduler<Model>| {
//!         m.fired.push(s.now().0);
//!     });
//! });
//! let mut model = Model { fired: Vec::new() };
//! sched.run(&mut model);
//! assert_eq!(model.fired, vec![10, 15]);
//! ```

pub mod event;
pub mod fabric;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::{reference::HeapScheduler, Event, Scheduler, INLINE_EVENT_BYTES};
pub use fabric::FabricResources;
pub use resource::FcfsResource;
pub use rng::Xoshiro256ss;
pub use stats::{Counter, Histogram, StatSet};
pub use time::Cycle;
pub use trace::Trace;
