//! Simulation time: the [`Cycle`] newtype.
//!
//! All timing in the stack is expressed in *fabric clock cycles* (the FPGA
//! clock domain). Other clock domains (the CPU) are converted at their edges
//! by the components that model them.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or duration of) simulated time, in fabric clock cycles.
///
/// `Cycle` is used both as an absolute timestamp and as a duration; the
/// arithmetic below is what a timing model needs, and saturating subtraction
/// keeps accidental negative durations from panicking deep inside a model.
///
/// # Example
///
/// ```
/// use svmsyn_sim::Cycle;
/// let start = Cycle(100);
/// let done = start + Cycle(28);
/// assert_eq!(done.0, 128);
/// assert_eq!(done - start, Cycle(28));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);
    /// The largest representable time; used as "never".
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Returns the later of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    #[must_use]
    pub fn saturating_sub(self, other: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(other.0))
    }

    /// Converts a cycle count at `freq_mhz` into microseconds.
    #[must_use]
    pub fn as_micros(self, freq_mhz: f64) -> f64 {
        self.0 as f64 / freq_mhz
    }
}

impl Add for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign for Cycle {
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Cycle {
        Cycle(v)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> u64 {
        c.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl svmsyn_snap::Snap for Cycle {
    fn save(&self, w: &mut svmsyn_snap::SnapWriter) {
        w.put_u64(self.0);
    }
    fn load(r: &mut svmsyn_snap::SnapReader<'_>) -> Result<Self, svmsyn_snap::SnapError> {
        Ok(Cycle(r.take_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Cycle(3) + Cycle(4), Cycle(7));
        assert_eq!(Cycle(3) + 4u64, Cycle(7));
        assert_eq!(Cycle(9) - Cycle(4), Cycle(5));
        let mut c = Cycle(1);
        c += Cycle(2);
        c += 3u64;
        assert_eq!(c, Cycle(6));
        c -= Cycle(1);
        assert_eq!(c, Cycle(5));
    }

    #[test]
    fn min_max_saturating() {
        assert_eq!(Cycle(3).max(Cycle(9)), Cycle(9));
        assert_eq!(Cycle(3).min(Cycle(9)), Cycle(3));
        assert_eq!(Cycle(3).saturating_sub(Cycle(9)), Cycle::ZERO);
        assert_eq!(Cycle(9).saturating_sub(Cycle(3)), Cycle(6));
    }

    #[test]
    fn conversions_and_display() {
        let c: Cycle = 42u64.into();
        let v: u64 = c.into();
        assert_eq!(v, 42);
        assert_eq!(c.to_string(), "42cy");
        assert_eq!(Cycle(100).as_micros(100.0), 1.0);
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycle = [Cycle(1), Cycle(2), Cycle(3)].into_iter().sum();
        assert_eq!(total, Cycle(6));
    }

    #[test]
    fn ordering() {
        assert!(Cycle(1) < Cycle(2));
        assert_eq!(Cycle::ZERO, Cycle(0));
        assert!(Cycle::MAX > Cycle(u64::MAX - 1));
    }
}
