//! FCFS resource calendars for modeling contention.
//!
//! A [`FcfsResource`] models a single-server resource (a bus, a DRAM bank, a
//! TLB lookup port) as a calendar: a request arriving at time `t` with service
//! time `s` starts at `max(t, next_free)` and completes `s` cycles later. This
//! reproduces first-come-first-served queueing delay exactly for single-server
//! resources, at a fraction of the cost of per-beat event simulation —
//! the standard trick in transaction-level SoC models.

use crate::time::Cycle;

/// A single-server, first-come-first-served shared resource.
///
/// # Example
///
/// ```
/// use svmsyn_sim::{Cycle, FcfsResource};
/// let mut bus = FcfsResource::new("bus");
/// let (s1, d1) = bus.acquire(Cycle(0), 10);
/// let (s2, d2) = bus.acquire(Cycle(3), 10); // arrives while busy, queues
/// assert_eq!((s1, d1), (Cycle(0), Cycle(10)));
/// assert_eq!((s2, d2), (Cycle(10), Cycle(20)));
/// assert_eq!(bus.busy_cycles(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct FcfsResource {
    name: String,
    next_free: Cycle,
    busy: u64,
    ops: u64,
    max_wait: u64,
    total_wait: u64,
}

impl FcfsResource {
    /// Creates an idle resource with a diagnostic `name`.
    pub fn new(name: impl Into<String>) -> Self {
        FcfsResource {
            name: name.into(),
            next_free: Cycle::ZERO,
            busy: 0,
            ops: 0,
            max_wait: 0,
            total_wait: 0,
        }
    }

    /// The diagnostic name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Reserves the resource for `service` cycles for a request arriving at
    /// `now`. Returns `(start, done)`: service begins at `start >= now` and
    /// the resource is released at `done = start + service`.
    pub fn acquire(&mut self, now: Cycle, service: u64) -> (Cycle, Cycle) {
        let start = now.max(self.next_free);
        let done = start + service;
        let wait = (start - now).0;
        self.next_free = done;
        self.busy += service;
        self.ops += 1;
        self.total_wait += wait;
        self.max_wait = self.max_wait.max(wait);
        (start, done)
    }

    /// The earliest time a new request could begin service.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Total cycles spent servicing requests.
    pub fn busy_cycles(&self) -> u64 {
        self.busy
    }

    /// Number of requests serviced.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Longest queueing delay any request experienced, in cycles.
    pub fn max_wait(&self) -> u64 {
        self.max_wait
    }

    /// Mean queueing delay per request, in cycles.
    pub fn mean_wait(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.total_wait as f64 / self.ops as f64
        }
    }

    /// Fraction of `elapsed` the resource spent busy, in `[0, 1]`.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed.0 == 0 {
            0.0
        } else {
            (self.busy as f64 / elapsed.0 as f64).min(1.0)
        }
    }

    /// Total queueing delay across all requests, in cycles.
    pub fn total_wait(&self) -> u64 {
        self.total_wait
    }

    /// Overwrites the calendar position without touching any counter.
    ///
    /// Used by the sharded simulation core when folding per-shard calendar
    /// replicas back into the canonical one at a window barrier: the merged
    /// `next_free` is recomputed from the replicas' busy deltas, while the
    /// cumulative counters are reconciled separately (see
    /// [`absorb_counter_deltas`](Self::absorb_counter_deltas)).
    pub fn set_next_free(&mut self, t: Cycle) {
        self.next_free = t;
    }

    /// Folds the counter *progress* another replica made since `base` into
    /// this resource: `busy`, `ops`, and `total_wait` advance by the replica's
    /// delta; `max_wait` takes the maximum. The calendar position
    /// (`next_free`) is left untouched.
    pub fn absorb_counter_deltas(&mut self, base: &FcfsResource, cur: &FcfsResource) {
        self.busy += cur.busy - base.busy;
        self.ops += cur.ops - base.ops;
        self.total_wait += cur.total_wait - base.total_wait;
        self.max_wait = self.max_wait.max(cur.max_wait);
    }

    /// Resets all counters and frees the resource (used between benchmark
    /// repetitions so a warm calendar does not leak into the next run).
    pub fn reset(&mut self) {
        self.next_free = Cycle::ZERO;
        self.busy = 0;
        self.ops = 0;
        self.max_wait = 0;
        self.total_wait = 0;
    }
}

impl svmsyn_snap::Snap for FcfsResource {
    fn save(&self, w: &mut svmsyn_snap::SnapWriter) {
        w.put_str(&self.name);
        w.put_u64(self.next_free.0);
        w.put_u64(self.busy);
        w.put_u64(self.ops);
        w.put_u64(self.max_wait);
        w.put_u64(self.total_wait);
    }
    fn load(r: &mut svmsyn_snap::SnapReader<'_>) -> Result<Self, svmsyn_snap::SnapError> {
        Ok(FcfsResource {
            name: r.take_str()?,
            next_free: Cycle(r.take_u64()?),
            busy: r.take_u64()?,
            ops: r.take_u64()?,
            max_wait: r.take_u64()?,
            total_wait: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = FcfsResource::new("r");
        let (start, done) = r.acquire(Cycle(100), 7);
        assert_eq!(start, Cycle(100));
        assert_eq!(done, Cycle(107));
        assert_eq!(r.ops(), 1);
        assert_eq!(r.mean_wait(), 0.0);
    }

    #[test]
    fn contention_serializes_fcfs() {
        let mut r = FcfsResource::new("r");
        let (_, d1) = r.acquire(Cycle(0), 10);
        let (s2, d2) = r.acquire(Cycle(1), 5);
        let (s3, _) = r.acquire(Cycle(2), 5);
        assert_eq!(s2, d1);
        assert_eq!(s3, d2);
        assert_eq!(r.max_wait(), 13); // request 3 waited 15 - 2
        assert!(r.mean_wait() > 0.0);
    }

    #[test]
    fn gap_leaves_idle_time() {
        let mut r = FcfsResource::new("r");
        r.acquire(Cycle(0), 10);
        let (start, _) = r.acquire(Cycle(50), 10);
        assert_eq!(start, Cycle(50));
        assert_eq!(r.busy_cycles(), 20);
        assert!((r.utilization(Cycle(60)) - 20.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut r = FcfsResource::new("r");
        r.acquire(Cycle(0), 10);
        r.reset();
        assert_eq!(r.busy_cycles(), 0);
        assert_eq!(r.next_free(), Cycle::ZERO);
        assert_eq!(r.ops(), 0);
        assert_eq!(r.name(), "r");
    }

    #[test]
    fn utilization_caps_at_one() {
        let mut r = FcfsResource::new("r");
        r.acquire(Cycle(0), 100);
        assert_eq!(r.utilization(Cycle(50)), 1.0);
        assert_eq!(r.utilization(Cycle::ZERO), 0.0);
    }
}
