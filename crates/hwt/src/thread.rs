//! The hardware-thread execution engine.
//!
//! A [`HwThread`] runs a compiled kernel cycle-faithfully: the interpreter
//! supplies *semantics* (real values, real branch decisions), the compiled
//! schedule supplies *compute timing* (state counts; initiation intervals
//! for pipelined loops), and every memory operation goes through the MEMIF —
//! MMU translation, burst buffers, real bus contention. Page faults suspend
//! the thread and are reported to the caller (the delegate path); execution
//! resumes with a retry after the OS maps the page.

use std::sync::Arc;

use svmsyn_hls::fsmd::CompiledKernel;
use svmsyn_hls::interp::{Interp, InterpEvent};
use svmsyn_hls::ir::{BlockId, Width};
use svmsyn_mem::{MasterId, MemorySystem, PhysAddr, VirtAddr};
use svmsyn_sim::{Cycle, StatSet};
use svmsyn_vm::mmu::VmFault;
use svmsyn_vm::tlb::Asid;

use crate::memif::{Memif, MemifConfig};

/// Hardware-thread configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HwThreadConfig {
    /// The memory interface (burst engine + MMU).
    pub memif: MemifConfig,
}

/// Why `advance` returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwStep {
    /// The cycle budget was exhausted; call `advance` again.
    Yielded {
        /// Current thread-local time.
        now: Cycle,
    },
    /// A page fault needs OS service; call `advance` again with the
    /// post-service time (the faulting access is retried automatically).
    PageFault {
        /// The fault for the delegate/OS.
        fault: VmFault,
        /// Fault detection time.
        now: Cycle,
    },
    /// The kernel returned and the write buffers are drained.
    Finished {
        /// The kernel's return value.
        ret: Option<i64>,
        /// Completion time.
        now: Cycle,
    },
}

#[derive(Debug, Clone, Copy)]
enum Pending {
    Load {
        va: VirtAddr,
        width: Width,
    },
    Store {
        va: VirtAddr,
        width: Width,
        raw: u64,
    },
}

/// A virtual-memory-enabled hardware thread executing one compiled kernel.
///
/// # Example
///
/// See the crate-level example in [`svmsyn_hwt`](crate).
#[derive(Debug, Clone)]
pub struct HwThread {
    compiled: Arc<CompiledKernel>,
    interp: Interp,
    memif: Memif,
    cur_block: BlockId,
    started: bool,
    pending: Option<Pending>,
    finished: bool,
    mem_ops: u64,
    compute_cycles: u64,
    /// Memory cycles the current schedule window can still hide: scheduled
    /// states already reserve the issue/ack slots of their memory ops, so a
    /// cache-hit access costs no *extra* time until the window's budget is
    /// spent. Misses (line fills, faults) spill past it — the stall model.
    mem_credit: u64,
    hidden_mem_cycles: u64,
}

impl HwThread {
    /// Instantiates the thread with launch arguments, acting as bus master
    /// `master`.
    pub fn new(
        compiled: Arc<CompiledKernel>,
        args: &[i64],
        cfg: &HwThreadConfig,
        master: MasterId,
    ) -> Self {
        let entry = compiled.kernel.entry;
        let interp = Interp::from_decoded(Arc::clone(&compiled.decoded), args);
        HwThread {
            compiled,
            interp,
            memif: Memif::new(cfg.memif, master),
            cur_block: entry,
            started: false,
            pending: None,
            finished: false,
            mem_ops: 0,
            compute_cycles: 0,
            mem_credit: 0,
            hidden_mem_cycles: 0,
        }
    }

    /// Binds the thread's MMU to an address space.
    pub fn set_context(&mut self, asid: Asid, root: PhysAddr) {
        self.memif.set_context(asid, root);
    }

    /// The memory interface (for statistics).
    pub fn memif(&self) -> &Memif {
        &self.memif
    }

    /// Mutable memory-interface access (TLB shootdowns).
    pub fn memif_mut(&mut self) -> &mut Memif {
        &mut self.memif
    }

    /// The compiled kernel this thread executes.
    pub fn compiled(&self) -> &CompiledKernel {
        &self.compiled
    }

    /// Whether the kernel has completed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    fn charge(&mut self, t: &mut Cycle, cycles: u64) {
        self.compute_cycles += cycles;
        if cycles > 0 {
            // A new schedule window opens; zero-cost transfers (intra-
            // pipeline) keep the current window's remaining budget.
            self.mem_credit = cycles;
        }
        *t += cycles;
    }

    /// Advances `t` by a memory-access duration, hiding what the current
    /// schedule window covers.
    fn charge_mem(&mut self, t: &mut Cycle, from: Cycle, to: Cycle) {
        let cost = (to - from).0;
        let hidden = cost.min(self.mem_credit);
        self.mem_credit -= hidden;
        self.hidden_mem_cycles += hidden;
        *t = from + (cost - hidden);
    }

    fn retry_pending(&mut self, mem: &mut MemorySystem, t: &mut Cycle) -> Result<(), HwStep> {
        if let Some(p) = self.pending {
            match p {
                Pending::Load { va, width } => match self.memif.read(mem, va, width, *t) {
                    Ok((raw, done)) => {
                        let from = *t;
                        self.charge_mem(t, from, done);
                        self.interp.provide_load(raw);
                        self.pending = None;
                    }
                    Err(f) => {
                        return Err(HwStep::PageFault {
                            fault: f.fault,
                            now: f.done,
                        })
                    }
                },
                Pending::Store { va, width, raw } => {
                    match self.memif.write(mem, va, width, raw, *t) {
                        Ok(done) => {
                            let from = *t;
                            self.charge_mem(t, from, done);
                            self.pending = None;
                        }
                        Err(f) => {
                            return Err(HwStep::PageFault {
                                fault: f.fault,
                                now: f.done,
                            })
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Advances execution from `now` until the kernel finishes, a page fault
    /// needs service, or `budget` cycles of thread-local time elapse.
    ///
    /// # Panics
    ///
    /// Panics if called after [`HwStep::Finished`] was returned, or if no
    /// context was bound.
    pub fn advance(&mut self, mem: &mut MemorySystem, now: Cycle, budget: u64) -> HwStep {
        assert!(
            !self.finished,
            "advance called on a finished hardware thread"
        );
        let mut t = now;

        if !self.started {
            self.started = true;
            let cost = self.compiled.enter_costs[self.compiled.kernel.entry.0 as usize];
            self.charge(&mut t, cost);
        }
        // Retry a faulted access first (the OS has serviced the fault).
        if let Err(step) = self.retry_pending(mem, &mut t) {
            return step;
        }

        loop {
            if (t - now).0 >= budget {
                return HwStep::Yielded { now: t };
            }
            // `next_mem` never yields compute ops — block compute time is
            // charged per transition via the schedule-derived cost matrix.
            match self.interp.next_mem() {
                InterpEvent::Op(_) => unreachable!("next_mem never yields Op"),
                InterpEvent::BlockChange { from, to } => {
                    let nblocks = self.compiled.kernel.blocks.len();
                    let cost =
                        self.compiled.enter_costs[(from.0 as usize + 1) * nblocks + to.0 as usize];
                    self.charge(&mut t, cost);
                    self.cur_block = to;
                }
                InterpEvent::Load { addr, width } => {
                    self.mem_ops += 1;
                    // Fault-free fast path: only a faulting access goes
                    // through the `pending` retry machinery.
                    match self.memif.read(mem, VirtAddr(addr), width, t) {
                        Ok((raw, done)) => {
                            let from = t;
                            self.charge_mem(&mut t, from, done);
                            self.interp.provide_load(raw);
                        }
                        Err(f) => {
                            self.pending = Some(Pending::Load {
                                va: VirtAddr(addr),
                                width,
                            });
                            return HwStep::PageFault {
                                fault: f.fault,
                                now: f.done,
                            };
                        }
                    }
                }
                InterpEvent::Store { addr, width, value } => {
                    self.mem_ops += 1;
                    match self.memif.write(mem, VirtAddr(addr), width, value, t) {
                        Ok(done) => {
                            let from = t;
                            self.charge_mem(&mut t, from, done);
                        }
                        Err(f) => {
                            self.pending = Some(Pending::Store {
                                va: VirtAddr(addr),
                                width,
                                raw: value,
                            });
                            return HwStep::PageFault {
                                fault: f.fault,
                                now: f.done,
                            };
                        }
                    }
                }
                InterpEvent::Done { ret } => {
                    let done = self.memif.flush(mem, t);
                    self.finished = true;
                    return HwStep::Finished { ret, now: done };
                }
            }
        }
    }

    /// Counter snapshot (MEMIF and MMU absorbed).
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("mem_ops", self.mem_ops as f64);
        s.put("compute_cycles", self.compute_cycles as f64);
        s.put("hidden_mem_cycles", self.hidden_mem_cycles as f64);
        s.put("instrs", self.interp.steps() as f64);
        s.absorb("memif", self.memif.stats());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svmsyn_hls::builder::KernelBuilder;
    use svmsyn_hls::fsmd::{compile, HlsConfig};
    use svmsyn_hls::ir::{BinOp, CmpOp, Kernel};
    use svmsyn_mem::MemConfig;
    use svmsyn_vm::pte::{DirEntry, Pte, PteFlags};

    /// vecadd: dst[i] = src[i] + 1 for i in 0..n
    fn vecadd() -> Kernel {
        let mut b = KernelBuilder::new("vecadd", 3);
        let entry = b.current_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let src = b.arg(0);
        let dst = b.arg(1);
        let n = b.arg(2);
        let zero = b.constant(0);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi();
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let four = b.constant(4);
        let off = b.bin(BinOp::Mul, i, four);
        let sa = b.bin(BinOp::Add, src, off);
        let da = b.bin(BinOp::Add, dst, off);
        let v = b.load(sa, Width::W32);
        let one = b.constant(1);
        let v2 = b.bin(BinOp::Add, v, one);
        b.store(da, v2, Width::W32);
        let i2 = b.bin(BinOp::Add, i, one);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        b.set_phi_incoming(i, &[(entry, zero), (body, i2)]);
        b.finish().unwrap()
    }

    /// Identity-maps VA pages 0..pages to PFNs 100..100+pages.
    fn setup(pages: u64) -> (MemorySystem, PhysAddr) {
        let mut mem = MemorySystem::new(MemConfig::default());
        let root = PhysAddr::from_frame(5);
        mem.poke_u32(root, DirEntry::table(6).encode());
        let flags = PteFlags {
            writable: true,
            user: true,
            ..PteFlags::default()
        };
        for p in 0..pages {
            mem.poke_u32(
                PhysAddr::from_frame(6).offset(4 * p),
                Pte::leaf(100 + p, flags).encode(),
            );
        }
        (mem, root)
    }

    fn run_to_completion(t: &mut HwThread, mem: &mut MemorySystem) -> (Option<i64>, Cycle) {
        let mut now = Cycle(0);
        loop {
            match t.advance(mem, now, 10_000) {
                HwStep::Yielded { now: n } => now = n,
                HwStep::Finished { ret, now } => return (ret, now),
                HwStep::PageFault { fault, .. } => panic!("unexpected fault: {fault}"),
            }
        }
    }

    #[test]
    fn computes_correct_bytes_with_timing() {
        let (mut mem, root) = setup(4);
        let n = 512u64; // 2 KiB in, 2 KiB out
        for i in 0..n {
            mem.poke_u32(PhysAddr::from_frame(100).offset(4 * i), i as u32);
        }
        let ck = Arc::new(compile(&vecadd(), &HlsConfig::default()));
        let mut t = HwThread::new(
            ck,
            &[0, (n * 4) as i64, n as i64],
            &HwThreadConfig::default(),
            MasterId(1),
        );
        t.set_context(Asid(1), root);
        let (ret, end) = run_to_completion(&mut t, &mut mem);
        assert_eq!(ret, None);
        assert!(end > Cycle(n), "timing must be nontrivial");
        for i in 0..n {
            // dst starts at VA n*4 -> PFN 100 + (n*4)/4096 pages offset
            let pa = PhysAddr::from_frame(100).offset(n * 4 + 4 * i);
            assert_eq!(mem.peek_u32(pa), i as u32 + 1, "element {i}");
        }
        assert!(t.is_finished());
        assert!(t.stats().get("memif.cache.misses").unwrap() > 0.0);
    }

    #[test]
    fn page_fault_suspends_and_resumes() {
        let (mut mem, root) = setup(1); // only page 0 mapped; dst page faults
        let n = 8u64;
        let ck = Arc::new(compile(&vecadd(), &HlsConfig::default()));
        let mut t = HwThread::new(
            ck,
            &[0, 4096, n as i64],
            &HwThreadConfig::default(),
            MasterId(1),
        );
        t.set_context(Asid(1), root);
        let step = t.advance(&mut mem, Cycle(0), u64::MAX);
        let (fault, at) = match step {
            HwStep::PageFault { fault, now } => (fault, now),
            other => panic!("expected fault, got {other:?}"),
        };
        assert_eq!(fault.va().page_base(), VirtAddr(4096));
        // "Service" the fault by installing the mapping, then resume.
        let flags = PteFlags {
            writable: true,
            user: true,
            ..PteFlags::default()
        };
        mem.poke_u32(
            PhysAddr::from_frame(6).offset(4),
            Pte::leaf(101, flags).encode(),
        );
        let service_done = at + Cycle(3000);
        let mut now = service_done;
        loop {
            match t.advance(&mut mem, now, u64::MAX) {
                HwStep::Finished { now: end, .. } => {
                    assert!(end > service_done);
                    break;
                }
                HwStep::Yielded { now: n2 } => now = n2,
                HwStep::PageFault { fault, .. } => panic!("second fault: {fault}"),
            }
        }
        assert_eq!(mem.peek_u32(PhysAddr::from_frame(101)), 1);
    }

    #[test]
    fn pipelining_speeds_up_hardware_time() {
        let (mut mem, root) = setup(8);
        let n = 1024i64;
        let plain = compile(
            &vecadd(),
            &HlsConfig {
                pipeline_loops: false,
                ..HlsConfig::default()
            },
        );
        let piped = compile(&vecadd(), &HlsConfig::default());
        let run = |ck: svmsyn_hls::fsmd::CompiledKernel, mem: &mut MemorySystem| {
            let mut t = HwThread::new(
                Arc::new(ck),
                &[0, n * 4, n],
                &HwThreadConfig::default(),
                MasterId(1),
            );
            t.set_context(Asid(1), root);
            run_to_completion(&mut t, mem).1
        };
        let (mut mem2, _) = setup(8);
        let t_plain = run(plain, &mut mem);
        let t_piped = run(piped, &mut mem2);
        assert!(
            t_piped < t_plain,
            "pipelined {t_piped} must beat sequential {t_plain}"
        );
    }

    #[test]
    #[should_panic(expected = "finished hardware thread")]
    fn advance_after_finish_panics() {
        let (mut mem, root) = setup(1);
        let mut b = KernelBuilder::new("nop", 0);
        b.ret(None);
        let ck = Arc::new(compile(&b.finish().unwrap(), &HlsConfig::default()));
        let mut t = HwThread::new(ck, &[], &HwThreadConfig::default(), MasterId(1));
        t.set_context(Asid(1), root);
        let _ = t.advance(&mut mem, Cycle(0), u64::MAX);
        let _ = t.advance(&mut mem, Cycle(0), u64::MAX);
    }

    #[test]
    fn yield_respects_budget() {
        let (mut mem, root) = setup(8);
        let ck = Arc::new(compile(&vecadd(), &HlsConfig::default()));
        let mut t = HwThread::new(
            ck,
            &[0, 8192, 1024],
            &HwThreadConfig::default(),
            MasterId(1),
        );
        t.set_context(Asid(1), root);
        match t.advance(&mut mem, Cycle(0), 50) {
            HwStep::Yielded { now } => assert!(now >= Cycle(50)),
            other => panic!("expected yield, got {other:?}"),
        }
    }
}
