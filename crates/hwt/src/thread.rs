//! The hardware-thread execution engine.
//!
//! A [`HwThread`] runs a compiled kernel cycle-faithfully: the interpreter
//! supplies *semantics* (real values, real branch decisions), the compiled
//! schedule supplies *compute timing* (state counts; initiation intervals
//! for pipelined loops), and every memory operation goes through the MEMIF —
//! MMU translation, burst buffers, real bus contention. Page faults suspend
//! the thread and are reported to the caller (the delegate path); execution
//! resumes with a retry after the OS maps the page.

use std::sync::Arc;

use svmsyn_hls::fsmd::CompiledKernel;
use svmsyn_hls::interp::{Interp, InterpEvent};
use svmsyn_hls::ir::{BlockId, Width};
use svmsyn_mem::{MasterId, MemorySystem, PhysAddr, VirtAddr};
use svmsyn_sim::{Cycle, StatSet};
use svmsyn_vm::mmu::VmFault;
use svmsyn_vm::tlb::Asid;

use crate::memif::{Memif, MemifConfig};

/// Hardware-thread configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HwThreadConfig {
    /// The memory interface (burst engine + MMU).
    pub memif: MemifConfig,
}

/// Why `advance` returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwStep {
    /// The cycle budget was exhausted; call `advance` again.
    Yielded {
        /// Current thread-local time.
        now: Cycle,
    },
    /// A micro-op depends on an outstanding miss: the thread parked it and
    /// handed control back. Wake it with `advance(mem, wake, …)` — `wake`
    /// is the *exact* fabric completion cycle of the fill (the registered
    /// waiter), so the discrete-event scheduler delivers the completion
    /// with no early/late drift. Only the non-blocking configuration
    /// (`miss_depth > 1`) parks; the blocking one stalls in place exactly
    /// as the pre-event-delivery analytic path did.
    Parked {
        /// The fill completion cycle to resume at.
        wake: Cycle,
    },
    /// A page fault needs OS service; call `advance` again with the
    /// post-service time (the faulting access is retried automatically).
    PageFault {
        /// The fault for the delegate/OS.
        fault: VmFault,
        /// Fault detection time.
        now: Cycle,
    },
    /// The kernel returned and the write buffers are drained.
    Finished {
        /// The kernel's return value.
        ret: Option<i64>,
        /// Completion time.
        now: Cycle,
    },
}

#[derive(Debug, Clone, Copy)]
enum Pending {
    Load {
        va: VirtAddr,
        width: Width,
    },
    Store {
        va: VirtAddr,
        width: Width,
        raw: u64,
    },
}

/// A virtual-memory-enabled hardware thread executing one compiled kernel.
///
/// # Example
///
/// See the crate-level example in [`svmsyn_hwt`](crate).
#[derive(Debug, Clone)]
pub struct HwThread {
    compiled: Arc<CompiledKernel>,
    interp: Interp,
    memif: Memif,
    cur_block: BlockId,
    started: bool,
    pending: Option<Pending>,
    finished: bool,
    mem_ops: u64,
    compute_cycles: u64,
    /// Memory cycles the current schedule window can still hide: scheduled
    /// states already reserve the issue/ack slots of their memory ops, so a
    /// cache-hit access costs no *extra* time until the window's budget is
    /// spent. Misses (line fills, faults) spill past it — the stall model.
    mem_credit: u64,
    hidden_mem_cycles: u64,
    /// Outstanding load fills by dependence token: `(token, completion)`.
    /// Tokens are handed to the interpreter's poison tracker; a micro-op
    /// yielding with a live token parks until that fill's completion.
    /// Completions here are clamped monotone in token order (the
    /// interface's fill-return queue is in order), so the poison tracker's
    /// "max token = youngest dependence" rule is exact: waiting for the
    /// youngest token waits for every older one too, even when a
    /// cross-master MSHR merge lets a later fill land first on the fabric.
    dep_fills: Vec<(u32, Cycle)>,
    next_token: u32,
    /// Completion of the most recently tokenized fill (the in-order
    /// fill-return clamp).
    last_fill_done: Cycle,
    /// A micro-op parked on an outstanding miss, with its wake cycle.
    parked: Option<(InterpEvent, Cycle)>,
    /// Times a dependent micro-op actually parked on a miss.
    miss_parks: u64,
}

impl HwThread {
    /// Instantiates the thread with launch arguments, acting as bus master
    /// `master`.
    pub fn new(
        compiled: Arc<CompiledKernel>,
        args: &[i64],
        cfg: &HwThreadConfig,
        master: MasterId,
    ) -> Self {
        let entry = compiled.kernel.entry;
        let interp = Interp::from_decoded(Arc::clone(&compiled.decoded), args);
        HwThread {
            compiled,
            interp,
            memif: Memif::new(cfg.memif, master),
            cur_block: entry,
            started: false,
            pending: None,
            finished: false,
            mem_ops: 0,
            compute_cycles: 0,
            mem_credit: 0,
            hidden_mem_cycles: 0,
            dep_fills: Vec::new(),
            next_token: 0,
            last_fill_done: Cycle::ZERO,
            parked: None,
            miss_parks: 0,
        }
    }

    /// Binds the thread's MMU to an address space.
    pub fn set_context(&mut self, asid: Asid, root: PhysAddr) {
        self.memif.set_context(asid, root);
    }

    /// The memory interface (for statistics).
    pub fn memif(&self) -> &Memif {
        &self.memif
    }

    /// Mutable memory-interface access (TLB shootdowns).
    pub fn memif_mut(&mut self) -> &mut Memif {
        &mut self.memif
    }

    /// The compiled kernel this thread executes.
    pub fn compiled(&self) -> &CompiledKernel {
        &self.compiled
    }

    /// Turns on the interpreter's per-block entry counting (BBV phase
    /// profiling). Instrumentation only — snapshot images are unaffected.
    pub fn enable_block_profile(&mut self) {
        self.interp.enable_block_profile();
    }

    /// Per-block entry counters (empty unless profiling is enabled).
    pub fn block_visits(&self) -> &[u64] {
        self.interp.block_visits()
    }

    /// Whether the kernel has completed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Memory operations issued so far. A faulted access's retries do not
    /// re-count, so a value frozen across consecutive faults means the same
    /// access keeps losing its frames — the signal the simulator's
    /// per-access thrash detector keys on.
    pub fn mem_ops_issued(&self) -> u64 {
        self.mem_ops
    }

    fn charge(&mut self, t: &mut Cycle, cycles: u64) {
        self.compute_cycles += cycles;
        if cycles > 0 {
            // A new schedule window opens; zero-cost transfers (intra-
            // pipeline) keep the current window's remaining budget.
            self.mem_credit = cycles;
        }
        *t += cycles;
    }

    /// Advances `t` by a memory-access duration, hiding what the current
    /// schedule window covers.
    fn charge_mem(&mut self, t: &mut Cycle, from: Cycle, to: Cycle) {
        let cost = (to - from).0;
        let hidden = cost.min(self.mem_credit);
        self.mem_credit -= hidden;
        self.hidden_mem_cycles += hidden;
        *t = from + (cost - hidden);
    }

    /// Allocates a dependence token for an access that rides an outstanding
    /// fill completing after `t`; `0` (clean) when the data is in hand.
    ///
    /// Completions are clamped monotone in token order: the interface
    /// returns fill data in issue order (the simplest hardware), so a
    /// younger token never delivers before an older one. This keeps the
    /// poison tracker's max-token rule sound when a cross-master MSHR
    /// merge would let a later fill complete earlier on the fabric.
    fn fill_token(&mut self, fill: Option<Cycle>, t: Cycle) -> u32 {
        match fill {
            Some(done) if done > t => {
                // Prune landed fills here, not only at dependence checks:
                // a dependence-free stretch (e.g. a pure reduction) must
                // not grow the ring without bound.
                self.dep_fills.retain(|&(_, d)| d > t);
                let done = done.max(self.last_fill_done);
                self.last_fill_done = done;
                self.next_token += 1;
                self.dep_fills.push((self.next_token, done));
                self.next_token
            }
            _ => 0,
        }
    }

    /// Executes one load: the non-blocking path charges only the interface
    /// handshake and hands the interpreter a dependence token for any
    /// outstanding fill; the blocking path charges to completion (the
    /// pre-event-delivery discipline). On a fault, records the pending
    /// retry and returns the `PageFault` step.
    fn do_load(
        &mut self,
        mem: &mut MemorySystem,
        va: VirtAddr,
        width: Width,
        t: &mut Cycle,
        nonblocking: bool,
    ) -> Result<(), HwStep> {
        let from = *t;
        let res = if nonblocking {
            self.memif
                .read_nb(mem, va, width, from)
                .map(|acc| (acc.raw, acc.next, acc.fill))
        } else {
            self.memif
                .read(mem, va, width, from)
                .map(|(raw, done)| (raw, done, None))
        };
        match res {
            Ok((raw, until, fill)) => {
                self.charge_mem(t, from, until);
                let token = self.fill_token(fill, *t);
                self.interp.provide_load_dep(raw, token);
                self.pending = None;
                Ok(())
            }
            Err(f) => {
                self.pending = Some(Pending::Load { va, width });
                Err(HwStep::PageFault {
                    fault: f.fault,
                    now: f.done,
                })
            }
        }
    }

    /// Executes one store: fire-and-forget at the handshake on the
    /// non-blocking path, charged to completion on the blocking one. On a
    /// fault, records the pending retry and returns the `PageFault` step.
    fn do_store(
        &mut self,
        mem: &mut MemorySystem,
        va: VirtAddr,
        width: Width,
        raw: u64,
        t: &mut Cycle,
        nonblocking: bool,
    ) -> Result<(), HwStep> {
        let from = *t;
        let res = if nonblocking {
            self.memif
                .write_nb(mem, va, width, raw, from)
                .map(|acc| acc.next)
        } else {
            self.memif.write(mem, va, width, raw, from)
        };
        match res {
            Ok(until) => {
                self.charge_mem(t, from, until);
                self.pending = None;
                Ok(())
            }
            Err(f) => {
                self.pending = Some(Pending::Store { va, width, raw });
                Err(HwStep::PageFault {
                    fault: f.fault,
                    now: f.done,
                })
            }
        }
    }

    fn retry_pending(&mut self, mem: &mut MemorySystem, t: &mut Cycle) -> Result<(), HwStep> {
        let nonblocking = self.memif.miss_depth() > 1;
        match self.pending {
            Some(Pending::Load { va, width }) => self.do_load(mem, va, width, t, nonblocking),
            Some(Pending::Store { va, width, raw }) => {
                self.do_store(mem, va, width, raw, t, nonblocking)
            }
            None => Ok(()),
        }
    }

    /// Advances execution from `now` until the kernel finishes, a page fault
    /// needs service, or `budget` cycles of thread-local time elapse.
    ///
    /// # Panics
    ///
    /// Panics if called after [`HwStep::Finished`] was returned, or if no
    /// context was bound.
    pub fn advance(&mut self, mem: &mut MemorySystem, now: Cycle, budget: u64) -> HwStep {
        // Driver-contract assert, not workload-reachable: the simulator
        // retires a thread from scheduling on `Finished`, so no kernel
        // content can re-enter a finished thread.
        assert!(
            !self.finished,
            "advance called on a finished hardware thread"
        );
        let mut t = now;

        if !self.started {
            self.started = true;
            let cost = self.compiled.enter_costs[self.compiled.kernel.entry.0 as usize];
            self.charge(&mut t, cost);
        }
        // Retry a faulted access first (the OS has serviced the fault).
        if let Err(step) = self.retry_pending(mem, &mut t) {
            return step;
        }

        let nonblocking = self.memif.miss_depth() > 1;
        loop {
            if (t - now).0 >= budget {
                return HwStep::Yielded { now: t };
            }
            // A parked micro-op resumes first: its wake was scheduled at
            // the fill's exact completion cycle, and the stall was already
            // booked when it parked.
            // `next_mem` never yields compute ops — block compute time is
            // charged per transition via the schedule-derived cost matrix.
            let (ev, dep) = match self.parked.take() {
                Some((ev, wake)) => {
                    t = t.max(wake);
                    (ev, 0)
                }
                None if nonblocking => self.interp.next_mem_dep(),
                None => (self.interp.next_mem(), 0),
            };
            // Hit-under-miss dependence check: a micro-op carrying a live
            // token parks until that fill's completion; everything else
            // keeps retiring under the outstanding misses.
            if dep != 0 {
                self.dep_fills.retain(|&(_, done)| done > t);
                if let Some(&(_, done)) = self.dep_fills.iter().find(|&&(tok, _)| tok == dep) {
                    self.miss_parks += 1;
                    self.memif.note_miss_stall((done - t).0);
                    self.parked = Some((ev, done));
                    return HwStep::Parked { wake: done };
                }
            }
            match ev {
                // Internal invariant, not workload-reachable: `next_mem`
                // folds compute ops into `BlockChange` events by
                // construction, for any kernel.
                InterpEvent::Op(_) => unreachable!("next_mem never yields Op"),
                InterpEvent::BlockChange { from, to } => {
                    let nblocks = self.compiled.kernel.blocks.len();
                    let cost =
                        self.compiled.enter_costs[(from.0 as usize + 1) * nblocks + to.0 as usize];
                    self.charge(&mut t, cost);
                    self.cur_block = to;
                }
                InterpEvent::Load { addr, width } => {
                    self.mem_ops += 1;
                    // Fault-free fast path: only a faulting access goes
                    // through the `pending` retry machinery. Non-blocking,
                    // the thread pays only the interface occupancy — the
                    // fill latency parks the *dependent* micro-op.
                    if let Err(step) = self.do_load(mem, VirtAddr(addr), width, &mut t, nonblocking)
                    {
                        return step;
                    }
                }
                InterpEvent::Store { addr, width, value } => {
                    self.mem_ops += 1;
                    // Fire-and-forget when non-blocking: the store buffer
                    // absorbs the access at the handshake; a write-allocate
                    // miss's fill stays tracked in the MEMIF miss window.
                    if let Err(step) =
                        self.do_store(mem, VirtAddr(addr), width, value, &mut t, nonblocking)
                    {
                        return step;
                    }
                }
                InterpEvent::Done { ret } => {
                    // Outstanding fills land before the final flush: the
                    // kernel is only done when its last miss is.
                    let drained = self.memif.drain_outstanding(mem, t);
                    let done = self.memif.flush(mem, drained);
                    self.finished = true;
                    self.dep_fills.clear();
                    return HwStep::Finished { ret, now: done };
                }
            }
        }
    }

    /// Counter snapshot (MEMIF and MMU absorbed).
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("mem_ops", self.mem_ops as f64);
        s.put("compute_cycles", self.compute_cycles as f64);
        s.put("hidden_mem_cycles", self.hidden_mem_cycles as f64);
        s.put("miss_parks", self.miss_parks as f64);
        s.put("instrs", self.interp.steps() as f64);
        s.absorb("memif", self.memif.stats());
        s
    }
}

// ----------------------------------------------------------------------
// Checkpoint serialization.
// ----------------------------------------------------------------------

impl svmsyn_snap::Snap for Pending {
    fn save(&self, w: &mut svmsyn_snap::SnapWriter) {
        match *self {
            Pending::Load { va, width } => {
                w.put_u8(0);
                w.put_u64(va.0);
                width.save(w);
            }
            Pending::Store { va, width, raw } => {
                w.put_u8(1);
                w.put_u64(va.0);
                width.save(w);
                w.put_u64(raw);
            }
        }
    }

    fn load(r: &mut svmsyn_snap::SnapReader<'_>) -> Result<Self, svmsyn_snap::SnapError> {
        Ok(match r.take_u8()? {
            0 => Pending::Load {
                va: VirtAddr(r.take_u64()?),
                width: Width::load(r)?,
            },
            1 => Pending::Store {
                va: VirtAddr(r.take_u64()?),
                width: Width::load(r)?,
                raw: r.take_u64()?,
            },
            _ => return Err(svmsyn_snap::SnapError::Corrupt("pending-access tag")),
        })
    }
}

impl HwThread {
    /// Serializes the thread's dynamic state: interpreter registers, MEMIF
    /// (MMU + burst cache + fill window), control position, the
    /// faulted-access retry slot, the dependence-fill ring, and the parked
    /// micro-op. The compiled kernel and configuration are design-side and
    /// re-supplied at restore.
    pub fn save_state(&self, w: &mut svmsyn_snap::SnapWriter) {
        use svmsyn_snap::Snap;
        self.interp.save_state(w);
        self.memif.save_state(w);
        self.cur_block.save(w);
        w.put_bool(self.started);
        self.pending.save(w);
        w.put_bool(self.finished);
        w.put_u64(self.mem_ops);
        w.put_u64(self.compute_cycles);
        w.put_u64(self.mem_credit);
        w.put_u64(self.hidden_mem_cycles);
        self.dep_fills.save(w);
        w.put_u32(self.next_token);
        self.last_fill_done.save(w);
        self.parked.save(w);
        w.put_u64(self.miss_parks);
    }

    /// Rebuilds a thread captured by [`save_state`](Self::save_state) over
    /// the design's compiled kernel, configuration, and bus-master
    /// identity.
    pub fn restore_state(
        compiled: Arc<CompiledKernel>,
        cfg: &HwThreadConfig,
        master: MasterId,
        r: &mut svmsyn_snap::SnapReader<'_>,
    ) -> Result<Self, svmsyn_snap::SnapError> {
        use svmsyn_snap::{Snap, SnapError};
        let interp = Interp::restore_state(Arc::clone(&compiled.decoded), r)?;
        let memif = Memif::restore_state(cfg.memif, master, r)?;
        let cur_block = BlockId::load(r)?;
        if cur_block.0 as usize >= compiled.kernel.blocks.len() {
            return Err(SnapError::Corrupt("hardware-thread block id"));
        }
        Ok(HwThread {
            compiled,
            interp,
            memif,
            cur_block,
            started: r.take_bool()?,
            pending: Option::load(r)?,
            finished: r.take_bool()?,
            mem_ops: r.take_u64()?,
            compute_cycles: r.take_u64()?,
            mem_credit: r.take_u64()?,
            hidden_mem_cycles: r.take_u64()?,
            dep_fills: Vec::load(r)?,
            next_token: r.take_u32()?,
            last_fill_done: Cycle::load(r)?,
            parked: Option::load(r)?,
            miss_parks: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svmsyn_hls::builder::KernelBuilder;
    use svmsyn_hls::fsmd::{compile, HlsConfig};
    use svmsyn_hls::ir::{BinOp, CmpOp, Kernel};
    use svmsyn_mem::MemConfig;
    use svmsyn_vm::pte::{DirEntry, Pte, PteFlags};

    /// vecadd: dst[i] = src[i] + 1 for i in 0..n
    fn vecadd() -> Kernel {
        let mut b = KernelBuilder::new("vecadd", 3);
        let entry = b.current_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let src = b.arg(0);
        let dst = b.arg(1);
        let n = b.arg(2);
        let zero = b.constant(0);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi();
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let four = b.constant(4);
        let off = b.bin(BinOp::Mul, i, four);
        let sa = b.bin(BinOp::Add, src, off);
        let da = b.bin(BinOp::Add, dst, off);
        let v = b.load(sa, Width::W32);
        let one = b.constant(1);
        let v2 = b.bin(BinOp::Add, v, one);
        b.store(da, v2, Width::W32);
        let i2 = b.bin(BinOp::Add, i, one);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        b.set_phi_incoming(i, &[(entry, zero), (body, i2)]);
        b.finish().unwrap()
    }

    /// Identity-maps VA pages 0..pages to PFNs 100..100+pages.
    fn setup(pages: u64) -> (MemorySystem, PhysAddr) {
        let mut mem = MemorySystem::new(MemConfig::default());
        let root = PhysAddr::from_frame(5);
        mem.poke_u32(root, DirEntry::table(6).encode());
        let flags = PteFlags {
            writable: true,
            user: true,
            ..PteFlags::default()
        };
        for p in 0..pages {
            mem.poke_u32(
                PhysAddr::from_frame(6).offset(4 * p),
                Pte::leaf(100 + p, flags).encode(),
            );
        }
        (mem, root)
    }

    fn run_to_completion(t: &mut HwThread, mem: &mut MemorySystem) -> (Option<i64>, Cycle) {
        let mut now = Cycle(0);
        loop {
            match t.advance(mem, now, 10_000) {
                HwStep::Yielded { now: n } => now = n,
                HwStep::Parked { wake } => now = wake,
                HwStep::Finished { ret, now } => return (ret, now),
                HwStep::PageFault { fault, .. } => panic!("unexpected fault: {fault}"),
            }
        }
    }

    #[test]
    fn computes_correct_bytes_with_timing() {
        let (mut mem, root) = setup(4);
        let n = 512u64; // 2 KiB in, 2 KiB out
        for i in 0..n {
            mem.poke_u32(PhysAddr::from_frame(100).offset(4 * i), i as u32);
        }
        let ck = Arc::new(compile(&vecadd(), &HlsConfig::default()));
        let mut t = HwThread::new(
            ck,
            &[0, (n * 4) as i64, n as i64],
            &HwThreadConfig::default(),
            MasterId(1),
        );
        t.set_context(Asid(1), root);
        let (ret, end) = run_to_completion(&mut t, &mut mem);
        assert_eq!(ret, None);
        assert!(end > Cycle(n), "timing must be nontrivial");
        for i in 0..n {
            // dst starts at VA n*4 -> PFN 100 + (n*4)/4096 pages offset
            let pa = PhysAddr::from_frame(100).offset(n * 4 + 4 * i);
            assert_eq!(mem.peek_u32(pa), i as u32 + 1, "element {i}");
        }
        assert!(t.is_finished());
        assert!(t.stats().get("memif.cache.misses").unwrap() > 0.0);
    }

    #[test]
    fn page_fault_suspends_and_resumes() {
        let (mut mem, root) = setup(1); // only page 0 mapped; dst page faults
        let n = 8u64;
        let ck = Arc::new(compile(&vecadd(), &HlsConfig::default()));
        let mut t = HwThread::new(
            ck,
            &[0, 4096, n as i64],
            &HwThreadConfig::default(),
            MasterId(1),
        );
        t.set_context(Asid(1), root);
        // The faulting store's value depends on a missed load, so the
        // non-blocking thread may park on that fill before reaching the
        // fault — drive through parks until the fault surfaces.
        let mut now = Cycle(0);
        let (fault, at) = loop {
            match t.advance(&mut mem, now, u64::MAX) {
                HwStep::PageFault { fault, now } => break (fault, now),
                HwStep::Parked { wake } => now = wake,
                HwStep::Yielded { now: n } => now = n,
                other => panic!("expected fault, got {other:?}"),
            }
        };
        assert_eq!(fault.va().page_base(), VirtAddr(4096));
        // "Service" the fault by installing the mapping, then resume.
        let flags = PteFlags {
            writable: true,
            user: true,
            ..PteFlags::default()
        };
        mem.poke_u32(
            PhysAddr::from_frame(6).offset(4),
            Pte::leaf(101, flags).encode(),
        );
        let service_done = at + Cycle(3000);
        let mut now = service_done;
        loop {
            match t.advance(&mut mem, now, u64::MAX) {
                HwStep::Finished { now: end, .. } => {
                    assert!(end > service_done);
                    break;
                }
                HwStep::Yielded { now: n2 } => now = n2,
                HwStep::Parked { wake } => now = wake,
                HwStep::PageFault { fault, .. } => panic!("second fault: {fault}"),
            }
        }
        assert_eq!(mem.peek_u32(PhysAddr::from_frame(101)), 1);
    }

    #[test]
    fn pipelining_speeds_up_hardware_time() {
        let (mut mem, root) = setup(8);
        let n = 1024i64;
        let plain = compile(
            &vecadd(),
            &HlsConfig {
                pipeline_loops: false,
                ..HlsConfig::default()
            },
        );
        let piped = compile(&vecadd(), &HlsConfig::default());
        let run = |ck: svmsyn_hls::fsmd::CompiledKernel, mem: &mut MemorySystem| {
            let mut t = HwThread::new(
                Arc::new(ck),
                &[0, n * 4, n],
                &HwThreadConfig::default(),
                MasterId(1),
            );
            t.set_context(Asid(1), root);
            run_to_completion(&mut t, mem).1
        };
        let (mut mem2, _) = setup(8);
        let t_plain = run(plain, &mut mem);
        let t_piped = run(piped, &mut mem2);
        assert!(
            t_piped < t_plain,
            "pipelined {t_piped} must beat sequential {t_plain}"
        );
    }

    #[test]
    #[should_panic(expected = "finished hardware thread")]
    fn advance_after_finish_panics() {
        let (mut mem, root) = setup(1);
        let mut b = KernelBuilder::new("nop", 0);
        b.ret(None);
        let ck = Arc::new(compile(&b.finish().unwrap(), &HlsConfig::default()));
        let mut t = HwThread::new(ck, &[], &HwThreadConfig::default(), MasterId(1));
        t.set_context(Asid(1), root);
        let _ = t.advance(&mut mem, Cycle(0), u64::MAX);
        let _ = t.advance(&mut mem, Cycle(0), u64::MAX);
    }

    #[test]
    fn yield_respects_budget() {
        let (mut mem, root) = setup(8);
        let ck = Arc::new(compile(&vecadd(), &HlsConfig::default()));
        let mut t = HwThread::new(
            ck,
            &[0, 8192, 1024],
            &HwThreadConfig::default(),
            MasterId(1),
        );
        t.set_context(Asid(1), root);
        match t.advance(&mut mem, Cycle(0), 50) {
            HwStep::Yielded { now } => assert!(now >= Cycle(50)),
            other => panic!("expected yield, got {other:?}"),
        }
    }
}
