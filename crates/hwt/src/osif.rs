//! OSIF — the hardware thread's call interface to its delegate.
//!
//! The ReconOS execution model: a hardware thread issues OS calls (sync
//! primitives, exit) over a FIFO to a software *delegate thread* that
//! performs the real syscall on its behalf. This module defines the call
//! vocabulary; timing and semantics are applied by the system simulation
//! loop using the OS cost model.

/// A call a hardware thread can make through its delegate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OsifCall {
    /// Acquire a mutex.
    MutexLock(u32),
    /// Release a mutex.
    MutexUnlock(u32),
    /// Semaphore P.
    SemWait(u32),
    /// Semaphore V.
    SemPost(u32),
    /// Barrier arrival.
    BarrierWait(u32),
    /// Put a word into a mailbox.
    MboxPut(u32, u64),
    /// Take a word from a mailbox.
    MboxGet(u32),
    /// Thread termination notification.
    Exit,
}

impl OsifCall {
    /// Whether the call can block the calling thread.
    pub fn can_block(&self) -> bool {
        matches!(
            self,
            OsifCall::MutexLock(_)
                | OsifCall::SemWait(_)
                | OsifCall::BarrierWait(_)
                | OsifCall::MboxPut(..)
                | OsifCall::MboxGet(_)
        )
    }
}

impl std::fmt::Display for OsifCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsifCall::MutexLock(id) => write!(f, "mutex_lock({id})"),
            OsifCall::MutexUnlock(id) => write!(f, "mutex_unlock({id})"),
            OsifCall::SemWait(id) => write!(f, "sem_wait({id})"),
            OsifCall::SemPost(id) => write!(f, "sem_post({id})"),
            OsifCall::BarrierWait(id) => write!(f, "barrier_wait({id})"),
            OsifCall::MboxPut(id, v) => write!(f, "mbox_put({id}, {v})"),
            OsifCall::MboxGet(id) => write!(f, "mbox_get({id})"),
            OsifCall::Exit => write!(f, "exit()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_classification() {
        assert!(OsifCall::MutexLock(0).can_block());
        assert!(OsifCall::SemWait(0).can_block());
        assert!(OsifCall::MboxGet(0).can_block());
        assert!(OsifCall::MboxPut(0, 1).can_block());
        assert!(OsifCall::BarrierWait(0).can_block());
        assert!(!OsifCall::MutexUnlock(0).can_block());
        assert!(!OsifCall::SemPost(0).can_block());
        assert!(!OsifCall::Exit.can_block());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(OsifCall::MboxPut(3, 42).to_string(), "mbox_put(3, 42)");
        assert_eq!(OsifCall::Exit.to_string(), "exit()");
    }
}
