//! Fabric cost of the hardware-thread wrapper infrastructure.
//!
//! Together with [`svmsyn_vm::cost`] these formulas produce Table 1: the
//! complete per-thread overhead of virtual-memory enablement is
//! MMU (TLB + walker + control) + burst engine + OSIF.

use svmsyn_sim::FabricResources;

use crate::memif::MemifConfig;

/// Cost of the MEMIF burst engine (burst cache + handshake FSM). The line
/// data array sits in BRAM; tags and control are fabric logic.
pub fn memif_cost(cfg: &MemifConfig) -> FabricResources {
    let cache_bytes = cfg.line_bytes * cfg.cache_lines as u64;
    FabricResources {
        lut: 350 + 8 * cfg.cache_lines as u64,
        ff: 400 + 6 * cfg.cache_lines as u64,
        dsp: 0,
        bram36: cache_bytes.div_ceil(4096).max(1),
    }
}

/// Cost of the OSIF FIFO pair and call encoder.
pub fn osif_cost() -> FabricResources {
    FabricResources {
        lut: 200,
        ff: 250,
        dsp: 0,
        bram36: 1,
    }
}

/// Total per-thread VM-enablement overhead: MMU + MEMIF + OSIF.
pub fn vm_infrastructure_cost(cfg: &MemifConfig) -> FabricResources {
    svmsyn_vm::cost::mmu_cost(&cfg.mmu) + memif_cost(cfg) + osif_cost()
}

#[cfg(test)]
mod tests {
    use super::*;
    use svmsyn_vm::tlb::TlbConfig;

    #[test]
    fn infrastructure_is_sum_of_parts() {
        let cfg = MemifConfig::default();
        assert_eq!(
            vm_infrastructure_cost(&cfg),
            svmsyn_vm::cost::mmu_cost(&cfg.mmu) + memif_cost(&cfg) + osif_cost()
        );
    }

    #[test]
    fn bigger_caches_cost_more() {
        let small = memif_cost(&MemifConfig {
            cache_lines: 8,
            ..MemifConfig::default()
        });
        let large = memif_cost(&MemifConfig {
            cache_lines: 128,
            ..MemifConfig::default()
        });
        assert!(large.lut > small.lut && large.ff > small.ff);
        assert!(large.bram36 >= small.bram36);
    }

    #[test]
    fn tlb_size_dominates_growth() {
        let mk = |entries| MemifConfig {
            mmu: svmsyn_vm::mmu::MmuConfig {
                tlb: TlbConfig::fully_associative(entries),
                ..svmsyn_vm::mmu::MmuConfig::default()
            },
            ..MemifConfig::default()
        };
        let c8 = vm_infrastructure_cost(&mk(8));
        let c64 = vm_infrastructure_cost(&mk(64));
        assert!(c64.lut > c8.lut + 3000, "CAM growth should dominate");
    }
}
