//! MEMIF — the hardware thread's memory interface.
//!
//! Every access goes through the thread's private MMU (virtual addresses —
//! the point of the paper), then through a small BRAM-backed **burst
//! cache** (write-back, write-allocate): sequential and blocked access
//! patterns coalesce into line-sized bus bursts, the multi-line capacity
//! lets several streams coexist (`dst[i] = a[i] + b[i]` touches three), and
//! dirty lines write back on eviction or at the final flush.
//!
//! The cache is timing-only: bytes always move through the shared
//! [`MemorySystem`] functionally, so hardware and software threads stay
//! coherent by construction. Lines never cross a page, so one translation
//! covers a line. Faults are *returned*, not handled: the hardware thread
//! raises them to its delegate and retries after OS service.

use svmsyn_mem::{
    CacheConfig, CacheOutcome, FabricPort, L1Cache, MasterId, MemorySystem, PhysAddr, TxnKind,
    VirtAddr,
};
use svmsyn_sim::{Cycle, StatSet};
use svmsyn_vm::mmu::{Access, Mmu, MmuConfig, VmFault};
use svmsyn_vm::tlb::Asid;

/// Addressing mode of the interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemifMode {
    /// Virtual addressing through the MMU (the paper's SVM threads).
    #[default]
    Virtual,
    /// Raw physical addressing, no MMU: the classical copy-based DMA
    /// accelerator that only ever sees pinned, contiguous buffers.
    Physical,
}

/// MEMIF configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemifConfig {
    /// Burst line size in bytes (power of two, at most a page).
    pub line_bytes: u64,
    /// Burst-cache lines (BRAM capacity of the interface).
    pub cache_lines: usize,
    /// The MMU behind the interface.
    pub mmu: MmuConfig,
    /// Addressing mode.
    pub mode: MemifMode,
    /// Outstanding line-fill depth of the non-blocking interface (its
    /// interface-level MSHRs): how many misses may be in flight before a
    /// new miss must wait for the oldest fill. `1` selects the blocking
    /// (pre-event-delivery) discipline — the hardware thread stalls at
    /// every miss, cycle-identical to the analytic-poll path. A DSE axis
    /// (see `DseConfig::memif_axis`).
    pub miss_depth: u32,
}

impl Default for MemifConfig {
    /// 64 lines of 64 B (a 4 KiB burst cache, two BRAMs) over the default
    /// MMU, virtual addressing, 4 outstanding line fills (matching the
    /// default fabric window).
    fn default() -> Self {
        MemifConfig {
            line_bytes: 64,
            cache_lines: 64,
            mmu: MmuConfig::default(),
            mode: MemifMode::Virtual,
            miss_depth: 4,
        }
    }
}

impl MemifConfig {
    fn cache_config(&self) -> CacheConfig {
        CacheConfig {
            size_bytes: self.line_bytes * self.cache_lines as u64,
            line_bytes: self.line_bytes,
            // Fully associative: the line count is small.
            ways: self.cache_lines,
        }
    }
}

/// A failed access: the fault to raise and the time it was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemifFault {
    /// The fault for the OS.
    pub fault: VmFault,
    /// Detection time.
    pub done: Cycle,
}

/// Most chunks a single access can split into: accesses are at most 8
/// bytes and lines at least 8 (enforced in [`Memif::new`]), so an access
/// straddles at most one full line plus a partial one on each side.
const MAX_CHUNKS: usize = 3;

/// Splits an access into its per-line chunks: `(start va, byte count)`.
/// Accesses are at most 8 bytes, so this is one chunk in the common case
/// and two or three when the access straddles line boundaries — the result
/// is a fixed-size inline buffer plus a count, so the hot path never heap-
/// allocates a chunk list.
fn access_chunks(
    line_bytes: u64,
    va: VirtAddr,
    len: u64,
) -> ([(VirtAddr, u64); MAX_CHUNKS], usize) {
    // Only called once the single-line fast path has been ruled out, so
    // there are always at least two chunks.
    let mut chunks = [(VirtAddr(0), 0u64); MAX_CHUNKS];
    let mut count = 0usize;
    let mut off = 0u64;
    while off < len {
        let cur = VirtAddr(va.0 + off);
        let line_end = (cur.0 & !(line_bytes - 1)) + line_bytes;
        let n = (line_end - cur.0).min(len - off);
        chunks[count] = (cur, n);
        count += 1;
        off += n;
    }
    (chunks, count)
}

/// One non-blocking access's timing, as returned by
/// [`Memif::read_nb`]/[`Memif::write_nb`].
///
/// The split mirrors the split-transaction fabric: `next` is the
/// handshake — when the interface can take the thread's *next* access —
/// and `done` is when this access's data is architecturally in hand. For a
/// burst-cache hit the two coincide (`now + 1`); for a miss `next` is the
/// fill's address handshake while `done` is its completion, so the thread
/// keeps running hit-under-miss and only a *dependent* micro-op parks
/// until `done`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NbAccess {
    /// Loaded raw value (zero for writes).
    pub raw: u64,
    /// When the data is in hand (hit: `now + 1`; miss: fill completion).
    pub done: Cycle,
    /// When the interface may take the next access.
    pub next: Cycle,
    /// Completion cycle of the outstanding line fill this access rides on
    /// (a new miss, or a secondary hit merging onto an in-flight fill);
    /// `None` for a plain hit.
    pub fill: Option<Cycle>,
}

/// The per-thread memory interface (MMU + burst cache).
///
/// # Example
///
/// ```
/// use svmsyn_hwt::memif::{Memif, MemifConfig};
/// use svmsyn_mem::{MasterId, MemConfig, MemorySystem, PhysAddr, VirtAddr};
/// use svmsyn_sim::Cycle;
/// use svmsyn_vm::pte::{DirEntry, Pte, PteFlags};
/// use svmsyn_vm::tlb::Asid;
/// use svmsyn_hls::ir::Width;
///
/// let mut mem = MemorySystem::new(MemConfig::default());
/// let root = PhysAddr::from_frame(5);
/// mem.poke_u32(root, DirEntry::table(6).encode());
/// let flags = PteFlags { writable: true, user: true, ..PteFlags::default() };
/// mem.poke_u32(PhysAddr::from_frame(6), Pte::leaf(7, flags).encode());
///
/// let mut memif = Memif::new(MemifConfig::default(), MasterId(3));
/// memif.set_context(Asid(1), root);
/// let done = memif.write(&mut mem, VirtAddr(8), Width::W32, 0xAB, Cycle(0)).unwrap();
/// let (raw, _) = memif.read(&mut mem, VirtAddr(8), Width::W32, done).unwrap();
/// assert_eq!(raw, 0xAB);
/// ```
#[derive(Debug, Clone)]
pub struct Memif {
    cfg: MemifConfig,
    mmu: Mmu,
    port: FabricPort,
    cache: L1Cache,
    loads: u64,
    stores: u64,
    faults: u64,
    flush_writebacks: u64,
    /// Outstanding line fills of the non-blocking path: `(physical line
    /// base, fill completion)`. Bounded by `cfg.miss_depth`; populated only
    /// by [`read_nb`](Self::read_nb)/[`write_nb`](Self::write_nb) — the
    /// blocking wrappers keep their pre-event-delivery timing untouched.
    outstanding: Vec<(u64, Cycle)>,
    /// Accesses that proceeded while at least one fill was outstanding.
    hit_under_miss: u64,
    /// Σ fill latency (completion − access arrival) of non-blocking fills.
    fill_latency_cycles: u64,
    /// Cycles the consumer actually stalled on outstanding fills (reported
    /// via [`note_miss_stall`](Self::note_miss_stall), plus depth-full
    /// waits). `fill_latency − stall` is the hidden (overlapped) portion.
    miss_stall_cycles: u64,
    /// Of `miss_stall_cycles`, the part caused by a full miss window.
    mshr_stall_cycles: u64,
}

impl Memif {
    /// Creates a cold interface acting as bus master `master`.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two between one access
    /// width (8 B) and a page, or `cache_lines` is zero.
    pub fn new(cfg: MemifConfig, master: MasterId) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two() && cfg.line_bytes <= svmsyn_mem::PAGE_SIZE,
            "line_bytes must be a power of two within a page"
        );
        // A line narrower than the widest access (8 B) would split one
        // access into more than MAX_CHUNKS pieces — and makes no sense as
        // a burst unit anyway.
        assert!(cfg.line_bytes >= 8, "line_bytes must cover one access");
        assert!(cfg.cache_lines > 0, "cache_lines must be positive");
        assert!(cfg.miss_depth >= 1, "miss_depth must be at least 1");
        Memif {
            cfg,
            mmu: Mmu::new(cfg.mmu, master),
            port: FabricPort::new(master),
            cache: L1Cache::new(cfg.cache_config()),
            loads: 0,
            stores: 0,
            faults: 0,
            flush_writebacks: 0,
            outstanding: Vec::new(),
            hit_under_miss: 0,
            fill_latency_cycles: 0,
            miss_stall_cycles: 0,
            mshr_stall_cycles: 0,
        }
    }

    /// The configured outstanding-miss depth.
    pub fn miss_depth(&self) -> u32 {
        self.cfg.miss_depth
    }

    /// Binds the interface to an address space.
    pub fn set_context(&mut self, asid: Asid, root: PhysAddr) {
        self.mmu.set_context(asid, root);
    }

    /// The MMU (for TLB statistics and shootdowns).
    pub fn mmu(&self) -> &Mmu {
        &self.mmu
    }

    /// Mutable MMU access.
    pub fn mmu_mut(&mut self) -> &mut Mmu {
        &mut self.mmu
    }

    /// Resolves an address per the configured mode: MMU translation (with
    /// fault reporting) or raw physical pass-through.
    fn resolve(
        &mut self,
        mem: &mut MemorySystem,
        va: VirtAddr,
        access: Access,
        now: Cycle,
    ) -> Result<(PhysAddr, Cycle), MemifFault> {
        match self.cfg.mode {
            MemifMode::Physical => Ok((PhysAddr(va.0), now)),
            MemifMode::Virtual => match self.mmu.translate(mem, va, access, now) {
                Ok(tr) => Ok((tr.paddr, tr.done)),
                Err(e) => {
                    self.faults += 1;
                    Err(MemifFault {
                        fault: e.fault,
                        done: e.done,
                    })
                }
            },
        }
    }

    /// Resolves a page-crossing access's chunks as one batched MMU epoch:
    /// the translations issue together and misses share the walker's
    /// directory-coalescing [`walk_many`] path. The earliest faulting chunk
    /// wins (the retry re-executes the whole access).
    ///
    /// [`walk_many`]: svmsyn_vm::walker::PageTableWalker::walk_many
    fn resolve_batch(
        &mut self,
        mem: &mut MemorySystem,
        chunks: &[(VirtAddr, u64)],
        access: Access,
        now: Cycle,
    ) -> Result<Vec<(PhysAddr, Cycle)>, MemifFault> {
        let accesses: Vec<(VirtAddr, Access)> =
            chunks.iter().map(|&(va, _)| (va, access)).collect();
        let mut out = Vec::with_capacity(chunks.len());
        for tr in self.mmu.translate_many(mem, &accesses, now) {
            match tr {
                Ok(tr) => out.push((tr.paddr, tr.done)),
                Err(e) => {
                    self.faults += 1;
                    return Err(MemifFault {
                        fault: e.fault,
                        done: e.done,
                    });
                }
            }
        }
        Ok(out)
    }

    /// Batches the chunk translations when the access crosses a page
    /// boundary (only then can more than one translation miss at once);
    /// same-page chunks keep the incremental per-chunk resolve.
    fn maybe_batch(
        &mut self,
        mem: &mut MemorySystem,
        chunks: &[(VirtAddr, u64)],
        access: Access,
        now: Cycle,
    ) -> Result<Option<Vec<(PhysAddr, Cycle)>>, MemifFault> {
        let crosses_page = chunks.first().map(|c| c.0.vpn()) != chunks.last().map(|c| c.0.vpn());
        if self.cfg.mode == MemifMode::Virtual && crosses_page {
            Ok(Some(self.resolve_batch(mem, chunks, access, now)?))
        } else {
            Ok(None)
        }
    }

    /// Whether an access of `len` bytes at `va` stays within one burst line.
    #[inline]
    fn fits_one_line(&self, va: VirtAddr, len: u64) -> bool {
        va.0 + len <= (va.0 & !(self.cfg.line_bytes - 1)) + self.cfg.line_bytes
    }

    /// Charges the timing of one cached access at physical address `pa`.
    /// Returns `(data ready, next issue)`: when the access's data is in
    /// hand, and when the interface may hand the fabric its next sequenced
    /// transaction.
    fn charge(
        &mut self,
        mem: &mut MemorySystem,
        pa: PhysAddr,
        write: bool,
        now: Cycle,
    ) -> (Cycle, Cycle) {
        let line = self.cfg.line_bytes;
        match self.cache.access(pa, write) {
            CacheOutcome::Hit => (now + 1, now + 1),
            CacheOutcome::Miss { writeback } => {
                let master = self.port.master();
                let mut t = now;
                if let Some(victim) = writeback {
                    // Fire-and-forget: the victim drains from a writeback
                    // buffer; the fill waits only for its address handshake,
                    // not its completion.
                    let (_, next) = mem.transfer_handshake(master, victim, line, TxnKind::Write, t);
                    t = next;
                }
                mem.transfer_handshake(master, PhysAddr(pa.0 & !(line - 1)), line, TxnKind::Read, t)
            }
        }
    }

    /// Retires outstanding fills completed by `now` — draining their
    /// registered fabric waiters with them, so the waiter list stays
    /// bounded by the miss window — and returns whether any fill is still
    /// in flight afterwards (the hit-under-miss condition).
    fn purge_fills(&mut self, mem: &mut MemorySystem, now: Cycle) -> bool {
        mem.drain_woken(self.port.master(), now);
        self.outstanding.retain(|&(_, done)| done > now);
        !self.outstanding.is_empty()
    }

    /// Charges one *non-blocking* cached access at `pa`: returns
    /// `(done, next, fill)` — data-in-hand time, next-access handshake, and
    /// the completion of the line fill the data rides on (if any).
    ///
    /// A miss issues its fill as an outstanding transaction (with a
    /// registered fabric completion waiter) and returns at the address
    /// handshake; a *secondary* access to a line whose fill is still in
    /// flight merges onto it — no second transaction, data at the fill's
    /// completion — the interface-level MSHR discipline.
    fn charge_nb(
        &mut self,
        mem: &mut MemorySystem,
        pa: PhysAddr,
        write: bool,
        now: Cycle,
    ) -> (Cycle, Cycle, Option<Cycle>) {
        let line = self.cfg.line_bytes;
        let base = pa.0 & !(line - 1);
        match self.cache.access(pa, write) {
            CacheOutcome::Hit => {
                match self
                    .outstanding
                    .iter()
                    .find(|&&(l, done)| l == base && done > now)
                {
                    // Secondary hit under an in-flight fill: data lands
                    // with the fill; the interface itself is free.
                    Some(&(_, done)) => (done, now + 1, Some(done)),
                    None => (now + 1, now + 1, None),
                }
            }
            CacheOutcome::Miss { writeback } => {
                let mut t = now;
                // Depth throttle: a full miss window waits for the oldest
                // outstanding fill before issuing a new one.
                if self.outstanding.len() >= self.cfg.miss_depth as usize {
                    let earliest = self
                        .outstanding
                        .iter()
                        .map(|&(_, d)| d)
                        .min()
                        .expect("full window is non-empty");
                    if earliest > t {
                        let stall = (earliest - t).0;
                        self.mshr_stall_cycles += stall;
                        self.miss_stall_cycles += stall;
                        t = earliest;
                    }
                    self.outstanding.retain(|&(_, d)| d > t);
                }
                let master = self.port.master();
                if let Some(victim) = writeback {
                    // Fire-and-forget: the victim drains from a writeback
                    // buffer; the fill waits only for its address
                    // handshake, not its completion.
                    let (_, next) = mem.transfer_handshake(master, victim, line, TxnKind::Write, t);
                    t = next;
                }
                let (done, next) =
                    mem.transfer_waited(master, PhysAddr(base), line, TxnKind::Read, t);
                self.fill_latency_cycles += (done - now).0;
                self.outstanding.push((base, done));
                (done, next, Some(done))
            }
        }
    }

    /// The shared multi-chunk walk behind all four access paths (blocking
    /// and non-blocking, read and write): resolves each per-line chunk
    /// (batched through the walker when the access crosses a page),
    /// charges it through the selected discipline, and moves the bytes —
    /// `io` is written for reads and read for writes. Chunk fills chain on
    /// the previous fill's address handshake, so on a windowed fabric a
    /// page-crossing access's line fills overlap each other (and the
    /// batch's walks); the access's data is in hand when the last
    /// outstanding fill completes. `raw` in the result is left zero.
    #[allow(clippy::too_many_arguments)] // private 4-way dispatch hub
    fn chunked(
        &mut self,
        mem: &mut MemorySystem,
        va: VirtAddr,
        len: u64,
        write: bool,
        nonblocking: bool,
        io: &mut [u8; 8],
        now: Cycle,
    ) -> Result<NbAccess, MemifFault> {
        let access = if write { Access::Write } else { Access::Read };
        let (chunk_buf, nchunks) = access_chunks(self.cfg.line_bytes, va, len);
        let chunks = &chunk_buf[..nchunks];
        let batched = self.maybe_batch(mem, chunks, access, now)?;
        let mut t = now;
        let mut done = now;
        let mut fill: Option<Cycle> = None;
        let mut off = 0usize;
        for (i, &(cur, n)) in chunks.iter().enumerate() {
            let (pa, ready) = match &batched {
                Some(b) => b[i],
                None => self.resolve(mem, cur, access, t)?,
            };
            let at = t.max(ready);
            let (d, next, f) = if nonblocking {
                if i == 0 && self.purge_fills(mem, at) {
                    self.hit_under_miss += 1;
                }
                self.charge_nb(mem, pa, write, at)
            } else {
                let (d, next) = self.charge(mem, pa, write, at);
                (d, next, None)
            };
            done = done.max(d);
            t = next;
            if let Some(f) = f {
                fill = Some(fill.map_or(f, |x| x.max(f)));
            }
            // Bytes move at issue (functional coherence).
            let n = n as usize;
            if write {
                mem.load(pa, &io[off..off + n]);
            } else {
                mem.dump(pa, &mut io[off..off + n]);
            }
            off += n;
        }
        Ok(NbAccess {
            raw: 0,
            done,
            next: t,
            fill,
        })
    }

    /// Non-blocking read: issues at `now`, returns the raw value with the
    /// access's [`NbAccess`] timing. The thread continues at `.next`
    /// (hit-under-miss); only consumers of the data need wait for `.done`.
    ///
    /// # Errors
    ///
    /// Returns [`MemifFault`] on a translation fault; retry after service.
    pub fn read_nb(
        &mut self,
        mem: &mut MemorySystem,
        va: VirtAddr,
        width: svmsyn_hls::ir::Width,
        now: Cycle,
    ) -> Result<NbAccess, MemifFault> {
        self.loads += 1;
        let len = width.bytes();
        let mut bytes = [0u8; 8];
        if self.fits_one_line(va, len) {
            let (pa, ready) = self.resolve(mem, va, Access::Read, now)?;
            if self.purge_fills(mem, ready) {
                self.hit_under_miss += 1;
            }
            let (done, next, fill) = self.charge_nb(mem, pa, false, ready);
            mem.dump(pa, &mut bytes[..len as usize]);
            return Ok(NbAccess {
                raw: u64::from_le_bytes(bytes),
                done,
                next,
                fill,
            });
        }
        let mut acc = self.chunked(mem, va, len, false, true, &mut bytes, now)?;
        acc.raw = u64::from_le_bytes(bytes);
        Ok(acc)
    }

    /// Non-blocking (fire-and-forget) write: the store buffer absorbs the
    /// access at `.next`; a write-allocate miss's fill is tracked in the
    /// outstanding window like a read fill.
    ///
    /// # Errors
    ///
    /// Returns [`MemifFault`] on a translation fault; retry after service.
    pub fn write_nb(
        &mut self,
        mem: &mut MemorySystem,
        va: VirtAddr,
        width: svmsyn_hls::ir::Width,
        raw: u64,
        now: Cycle,
    ) -> Result<NbAccess, MemifFault> {
        self.stores += 1;
        let len = width.bytes();
        let mut data = raw.to_le_bytes();
        if self.fits_one_line(va, len) {
            let (pa, ready) = self.resolve(mem, va, Access::Write, now)?;
            if self.purge_fills(mem, ready) {
                self.hit_under_miss += 1;
            }
            let (done, next, fill) = self.charge_nb(mem, pa, true, ready);
            // Bytes land in memory immediately (functional coherence).
            mem.load(pa, &data[..len as usize]);
            return Ok(NbAccess {
                raw: 0,
                done,
                next,
                fill,
            });
        }
        self.chunked(mem, va, len, true, true, &mut data, now)
    }

    /// Records `cycles` the consumer actually stalled waiting on an
    /// outstanding fill (a parked dependent micro-op). Together with the
    /// fill-latency integral this yields `miss_overlap_cycles`.
    pub fn note_miss_stall(&mut self, cycles: u64) {
        self.miss_stall_cycles += cycles;
    }

    /// Waits out every outstanding fill (kernel completion): returns when
    /// the last fill lands, clears the window (and the fills' registered
    /// fabric waiters — no phantom wakeups survive the kernel), and books
    /// the wait as stall.
    pub fn drain_outstanding(&mut self, mem: &mut MemorySystem, now: Cycle) -> Cycle {
        let end = self
            .outstanding
            .iter()
            .map(|&(_, d)| d)
            .max()
            .map_or(now, |d| d.max(now));
        self.miss_stall_cycles += (end - now).0;
        self.outstanding.clear();
        mem.drain_woken(self.port.master(), end);
        end
    }

    /// Number of line fills currently outstanding.
    pub fn outstanding_fills(&self) -> usize {
        self.outstanding.len()
    }

    /// Reads `width` bytes at `va`; returns the little-endian raw value and
    /// the completion time.
    ///
    /// # Errors
    ///
    /// Returns [`MemifFault`] on a translation fault; retry after service.
    pub fn read(
        &mut self,
        mem: &mut MemorySystem,
        va: VirtAddr,
        width: svmsyn_hls::ir::Width,
        now: Cycle,
    ) -> Result<(u64, Cycle), MemifFault> {
        self.loads += 1;
        let len = width.bytes();
        let mut bytes = [0u8; 8];
        // Fast path: the access fits inside one line (the overwhelmingly
        // common case) — one translation, one charge, no chunk list.
        if self.fits_one_line(va, len) {
            let (pa, ready) = self.resolve(mem, va, Access::Read, now)?;
            let (t, _) = self.charge(mem, pa, false, ready);
            mem.dump(pa, &mut bytes[..len as usize]);
            return Ok((u64::from_le_bytes(bytes), t));
        }
        let acc = self.chunked(mem, va, len, false, false, &mut bytes, now)?;
        Ok((u64::from_le_bytes(bytes), acc.done))
    }

    /// Writes the low `width` bytes of `raw` at `va`; returns the completion
    /// time (dirty lines are charged at eviction or final flush).
    ///
    /// # Errors
    ///
    /// Returns [`MemifFault`] on a translation fault; retry after service.
    pub fn write(
        &mut self,
        mem: &mut MemorySystem,
        va: VirtAddr,
        width: svmsyn_hls::ir::Width,
        raw: u64,
        now: Cycle,
    ) -> Result<Cycle, MemifFault> {
        self.stores += 1;
        let len = width.bytes();
        let mut data = raw.to_le_bytes();
        if self.fits_one_line(va, len) {
            let (pa, ready) = self.resolve(mem, va, Access::Write, now)?;
            let (t, _) = self.charge(mem, pa, true, ready);
            // Bytes land in memory immediately (functional coherence).
            mem.load(pa, &data[..len as usize]);
            return Ok(t);
        }
        let acc = self.chunked(mem, va, len, true, false, &mut data, now)?;
        Ok(acc.done)
    }

    /// Drains all dirty lines (kernel completion) as a stream of
    /// outstanding write transactions; returns the time when the last one
    /// completes. On a windowed fabric the writebacks' DRAM latencies
    /// overlap instead of draining one round-trip at a time.
    pub fn flush(&mut self, mem: &mut MemorySystem, now: Cycle) -> Cycle {
        let mut t = now;
        let mut done = now;
        for line in self.cache.drain_dirty() {
            self.flush_writebacks += 1;
            let (d, next) = mem.transfer_handshake(
                self.port.master(),
                line,
                self.cfg.line_bytes,
                TxnKind::Write,
                t,
            );
            t = next;
            done = done.max(d);
        }
        done
    }

    /// Counter snapshot (burst cache and MMU absorbed).
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("loads", self.loads as f64);
        s.put("stores", self.stores as f64);
        s.put("faults", self.faults as f64);
        s.put("flush_writebacks", self.flush_writebacks as f64);
        s.put("hit_under_miss", self.hit_under_miss as f64);
        // Fill latency the thread did NOT stall for: the cycles of
        // outstanding-miss latency hidden behind execution (or behind the
        // other outstanding fills). Zero by construction in the blocking
        // (`miss_depth == 1`) discipline.
        s.put(
            "miss_overlap_cycles",
            self.fill_latency_cycles
                .saturating_sub(self.miss_stall_cycles) as f64,
        );
        s.put("miss_stall_cycles", self.miss_stall_cycles as f64);
        s.put("mshr_stall_cycles", self.mshr_stall_cycles as f64);
        s.absorb("cache", self.cache.stats());
        s.absorb("mmu", self.mmu.stats());
        s
    }
}

// ----------------------------------------------------------------------
// Checkpoint serialization.
// ----------------------------------------------------------------------

impl Memif {
    /// Serializes the interface's dynamic state: the MMU (TLB + walk
    /// caches + bound context), the burst cache, the outstanding-fill
    /// window, and the counters. Geometry and mode are design-side and
    /// re-supplied at restore.
    pub fn save_state(&self, w: &mut svmsyn_snap::SnapWriter) {
        use svmsyn_snap::Snap;
        self.mmu.save_state(w);
        self.cache.save_state(w);
        w.put_u64(self.loads);
        w.put_u64(self.stores);
        w.put_u64(self.faults);
        w.put_u64(self.flush_writebacks);
        self.outstanding.save(w);
        w.put_u64(self.hit_under_miss);
        w.put_u64(self.fill_latency_cycles);
        w.put_u64(self.miss_stall_cycles);
        w.put_u64(self.mshr_stall_cycles);
    }

    /// Rebuilds an interface captured by [`save_state`](Self::save_state)
    /// under the design's MEMIF config and bus-master identity.
    pub fn restore_state(
        cfg: MemifConfig,
        master: MasterId,
        r: &mut svmsyn_snap::SnapReader<'_>,
    ) -> Result<Self, svmsyn_snap::SnapError> {
        use svmsyn_snap::{Snap, SnapError};
        let mmu = Mmu::restore_state(cfg.mmu, master, r)?;
        let cache = L1Cache::restore_state(cfg.cache_config(), r)?;
        let loads = r.take_u64()?;
        let stores = r.take_u64()?;
        let faults = r.take_u64()?;
        let flush_writebacks = r.take_u64()?;
        let outstanding: Vec<(u64, Cycle)> = Vec::load(r)?;
        if outstanding.len() > cfg.miss_depth as usize {
            return Err(SnapError::Corrupt("outstanding-fill window depth"));
        }
        Ok(Memif {
            cfg,
            mmu,
            port: FabricPort::new(master),
            cache,
            loads,
            stores,
            faults,
            flush_writebacks,
            outstanding,
            hit_under_miss: r.take_u64()?,
            fill_latency_cycles: r.take_u64()?,
            miss_stall_cycles: r.take_u64()?,
            mshr_stall_cycles: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svmsyn_hls::ir::Width;
    use svmsyn_mem::MemConfig;
    use svmsyn_vm::pte::{DirEntry, Pte, PteFlags};

    fn setup() -> (MemorySystem, Memif) {
        let mut mem = MemorySystem::new(MemConfig::default());
        let root = PhysAddr::from_frame(5);
        mem.poke_u32(root, DirEntry::table(6).encode());
        let flags = PteFlags {
            writable: true,
            user: true,
            ..PteFlags::default()
        };
        // Map VA pages 0 and 1 to PFNs 7 and 8.
        mem.poke_u32(PhysAddr::from_frame(6), Pte::leaf(7, flags).encode());
        mem.poke_u32(
            PhysAddr::from_frame(6).offset(4),
            Pte::leaf(8, flags).encode(),
        );
        let mut memif = Memif::new(MemifConfig::default(), MasterId(3));
        memif.set_context(Asid(1), root);
        (mem, memif)
    }

    #[test]
    fn sequential_reads_hit_the_burst_cache() {
        let (mut mem, mut memif) = setup();
        mem.load(PhysAddr::from_frame(7), &(0..64).collect::<Vec<u8>>());
        let (v0, t0) = memif
            .read(&mut mem, VirtAddr(0), Width::W32, Cycle(0))
            .unwrap();
        assert_eq!(v0, u32::from_le_bytes([0, 1, 2, 3]) as u64);
        let (v1, t1) = memif.read(&mut mem, VirtAddr(4), Width::W32, t0).unwrap();
        assert_eq!(v1, u32::from_le_bytes([4, 5, 6, 7]) as u64);
        // Buffered hit: TLB lookup (1) + cache hit (1).
        assert!((t1 - t0).0 <= 2, "buffered hit should be cheap");
        assert!((t0 - Cycle(0)).0 > 2, "first read fills the line");
        assert_eq!(memif.stats().get("cache.misses"), Some(1.0));
        assert_eq!(memif.stats().get("cache.hits"), Some(1.0));
    }

    #[test]
    fn multiple_streams_coexist() {
        // Alternating reads from two far-apart pages must not thrash.
        let (mut mem, mut memif) = setup();
        let mut t = Cycle(0);
        for i in 0..16u64 {
            let (_, t1) = memif
                .read(&mut mem, VirtAddr(i * 4), Width::W32, t)
                .unwrap();
            let (_, t2) = memif
                .read(&mut mem, VirtAddr(4096 + i * 4), Width::W32, t1)
                .unwrap();
            t = t2;
        }
        // 32 accesses, 2 line fills only.
        assert_eq!(memif.stats().get("cache.misses"), Some(2.0));
        assert_eq!(memif.stats().get("cache.hits"), Some(30.0));
    }

    #[test]
    fn read_across_line_boundary_fills_both() {
        let (mut mem, mut memif) = setup();
        memif
            .read(&mut mem, VirtAddr(60), Width::W64, Cycle(0))
            .unwrap();
        assert_eq!(memif.stats().get("cache.misses"), Some(2.0));
    }

    #[test]
    fn writes_coalesce_and_flush_once_per_line() {
        let (mut mem, mut memif) = setup();
        let mut t = Cycle(0);
        for i in 0..16u64 {
            t = memif
                .write(&mut mem, VirtAddr(i * 4), Width::W32, i, t)
                .unwrap();
        }
        // 16 word stores in one 64 B line: one fill (write-allocate), no
        // writebacks yet.
        assert_eq!(memif.stats().get("cache.misses"), Some(1.0));
        assert_eq!(memif.stats().get("flush_writebacks"), Some(0.0));
        let end = memif.flush(&mut mem, t);
        assert!(end > t);
        assert_eq!(memif.stats().get("flush_writebacks"), Some(1.0));
        // Data is really in memory at the translated addresses.
        assert_eq!(mem.peek_u32(PhysAddr::from_frame(7).offset(12)), 3);
    }

    #[test]
    fn read_after_write_sees_new_data() {
        let (mut mem, mut memif) = setup();
        let (_, t) = memif
            .read(&mut mem, VirtAddr(0), Width::W32, Cycle(0))
            .unwrap();
        let t = memif
            .write(&mut mem, VirtAddr(0), Width::W32, 0xDEAD, t)
            .unwrap();
        let (v, _) = memif.read(&mut mem, VirtAddr(0), Width::W32, t).unwrap();
        assert_eq!(v, 0xDEAD);
    }

    #[test]
    fn faults_are_returned_with_time() {
        let (mut mem, mut memif) = setup();
        let err = memif
            .read(&mut mem, VirtAddr(0x5000), Width::W32, Cycle(0))
            .unwrap_err();
        assert!(matches!(err.fault, VmFault::NotMapped { .. }));
        assert!(err.done > Cycle(0));
        assert_eq!(memif.stats().get("faults"), Some(1.0));
    }

    #[test]
    fn page_crossing_access_translates_both_pages() {
        let (mut mem, mut memif) = setup();
        mem.load(PhysAddr::from_frame(7).offset(4092), &[1, 2, 3, 4]);
        mem.load(PhysAddr::from_frame(8), &[5, 6, 7, 8]);
        let (v, _) = memif
            .read(&mut mem, VirtAddr(4092), Width::W64, Cycle(0))
            .unwrap();
        assert_eq!(v.to_le_bytes(), [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn flush_without_writes_is_free() {
        let (mut mem, mut memif) = setup();
        assert_eq!(memif.flush(&mut mem, Cycle(5)), Cycle(5));
    }

    #[test]
    fn physical_mode_skips_translation() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let mut memif = Memif::new(
            MemifConfig {
                mode: MemifMode::Physical,
                ..MemifConfig::default()
            },
            MasterId(3),
        );
        // No context bound: physical mode must not need one.
        let t = memif
            .write(&mut mem, VirtAddr(0x2000), Width::W32, 77, Cycle(0))
            .unwrap();
        let (v, _) = memif
            .read(&mut mem, VirtAddr(0x2000), Width::W32, t)
            .unwrap();
        assert_eq!(v, 77);
        assert_eq!(mem.peek_u32(PhysAddr(0x2000)), 77);
        assert_eq!(memif.stats().get("mmu.translations"), Some(0.0));
    }

    #[test]
    fn nb_miss_frees_the_interface_before_the_fill_lands() {
        let (mut mem, mut memif) = setup();
        let acc = memif
            .read_nb(&mut mem, VirtAddr(0), Width::W32, Cycle(0))
            .unwrap();
        assert!(
            acc.next < acc.done,
            "a miss must release the interface at the handshake ({} < {})",
            acc.next,
            acc.done
        );
        assert_eq!(acc.fill, Some(acc.done));
        assert_eq!(memif.outstanding_fills(), 1);
        // An independent same-page access issues while the fill is
        // outstanding (a cross-page access would pay a page walk first).
        let acc2 = memif
            .read_nb(&mut mem, VirtAddr(512), Width::W32, acc.next)
            .unwrap();
        assert!(
            acc2.next < acc.done,
            "hit-under-miss: second access overlaps"
        );
        assert_eq!(memif.stats().get("hit_under_miss"), Some(1.0));
        assert!(memif.stats().get("miss_overlap_cycles").unwrap() >= 0.0);
    }

    #[test]
    fn nb_secondary_hit_merges_onto_the_inflight_fill() {
        let (mut mem, mut memif) = setup();
        let acc = memif
            .read_nb(&mut mem, VirtAddr(0), Width::W32, Cycle(0))
            .unwrap();
        // Same line, one cycle later: a cache hit, but the data is only in
        // hand when the fill lands.
        let sec = memif
            .read_nb(&mut mem, VirtAddr(8), Width::W32, acc.next)
            .unwrap();
        assert_eq!(sec.done, acc.done, "secondary rides the same fill");
        assert!(sec.next < sec.done, "interface itself is free");
        assert_eq!(memif.outstanding_fills(), 1, "no second fill issued");
    }

    #[test]
    fn nb_depth_throttles_outstanding_misses() {
        let (mut mem, mut memif) = setup();
        let mut blocking = Memif::new(
            MemifConfig {
                miss_depth: 1,
                ..MemifConfig::default()
            },
            MasterId(4),
        );
        blocking.set_context(Asid(1), PhysAddr::from_frame(5));
        // Two different-line misses back to back: depth 1 stalls the second
        // until the first fill completes; depth 4 does not.
        let a = memif
            .read_nb(&mut mem, VirtAddr(0), Width::W32, Cycle(0))
            .unwrap();
        let b = memif
            .read_nb(&mut mem, VirtAddr(128), Width::W32, a.next)
            .unwrap();
        assert_eq!(memif.stats().get("mshr_stall_cycles"), Some(0.0));
        assert!(b.next < a.done, "depth 4 overlaps the two fills");
        let (mut mem2, _) = setup();
        let a1 = blocking
            .read_nb(&mut mem2, VirtAddr(0), Width::W32, Cycle(0))
            .unwrap();
        let b1 = blocking
            .read_nb(&mut mem2, VirtAddr(128), Width::W32, a1.next)
            .unwrap();
        assert!(blocking.stats().get("mshr_stall_cycles").unwrap() > 0.0);
        assert!(
            b1.next >= a1.done,
            "depth 1 issues the second fill only after the first lands"
        );
    }

    #[test]
    fn nb_consumed_blocking_matches_the_blocking_api() {
        // Degenerate use — wait for `done` before the next access — must be
        // cycle-identical to the pre-existing blocking wrappers.
        let (mut mem_a, mut memif_a) = setup();
        let (mut mem_b, mut memif_b) = setup();
        let mut ta = Cycle(0);
        let mut tb = Cycle(0);
        for i in 0..64u64 {
            let va = VirtAddr((i * 44) % 8000);
            let (_, done) = memif_a.read(&mut mem_a, va, Width::W32, ta).unwrap();
            ta = done;
            let acc = memif_b.read_nb(&mut mem_b, va, Width::W32, tb).unwrap();
            tb = acc.done;
            assert_eq!(ta, tb, "access {i} diverged");
        }
    }

    #[test]
    fn drain_outstanding_waits_for_the_last_fill() {
        let (mut mem, mut memif) = setup();
        let acc = memif
            .read_nb(&mut mem, VirtAddr(0), Width::W32, Cycle(0))
            .unwrap();
        let end = memif.drain_outstanding(&mut mem, acc.next);
        assert_eq!(end, acc.done);
        assert_eq!(memif.outstanding_fills(), 0);
        // The fill's registered waiter drained with it: no phantom wakeup.
        assert_eq!(mem.fabric().next_wake(MasterId(3)), None);
        assert_eq!(
            memif.drain_outstanding(&mut mem, end),
            end,
            "idempotent when empty"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        Memif::new(
            MemifConfig {
                line_bytes: 48,
                ..MemifConfig::default()
            },
            MasterId(0),
        );
    }
}
