//! # svmsyn-hwt — the hardware-thread substrate
//!
//! Wraps a compiled kernel into a *virtual-memory-enabled hardware thread*:
//!
//! * [`memif`] — the memory interface: private MMU, stream read buffer,
//!   write-combine buffer; every access is virtually addressed and faults
//!   are raised for OS service.
//! * [`osif`] — the ReconOS-style call vocabulary to the delegate thread.
//! * [`thread`] — the execution engine: interpreter semantics + schedule
//!   timing + MEMIF memory path, with fault suspend/retry.
//! * [`cost`] — fabric cost of the wrapper (completes Table 1).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use svmsyn_hls::builder::KernelBuilder;
//! use svmsyn_hls::fsmd::{compile, HlsConfig};
//! use svmsyn_hls::ir::Width;
//! use svmsyn_hwt::thread::{HwStep, HwThread, HwThreadConfig};
//! use svmsyn_mem::{MasterId, MemConfig, MemorySystem, PhysAddr};
//! use svmsyn_sim::Cycle;
//! use svmsyn_vm::pte::{DirEntry, Pte, PteFlags};
//! use svmsyn_vm::tlb::Asid;
//!
//! // A kernel that stores 42 to *arg0.
//! let mut b = KernelBuilder::new("store42", 1);
//! let p = b.arg(0);
//! let c = b.constant(42);
//! b.store(p, c, Width::W32);
//! b.ret(None);
//! let ck = Arc::new(compile(&b.finish().unwrap(), &HlsConfig::default()));
//!
//! // One mapped page: VA 0 -> PFN 9.
//! let mut mem = MemorySystem::new(MemConfig::default());
//! let root = PhysAddr::from_frame(5);
//! mem.poke_u32(root, DirEntry::table(6).encode());
//! let flags = PteFlags { writable: true, user: true, ..PteFlags::default() };
//! mem.poke_u32(PhysAddr::from_frame(6), Pte::leaf(9, flags).encode());
//!
//! let mut t = HwThread::new(ck, &[0], &HwThreadConfig::default(), MasterId(1));
//! t.set_context(Asid(1), root);
//! match t.advance(&mut mem, Cycle(0), u64::MAX) {
//!     HwStep::Finished { .. } => {}
//!     other => panic!("{other:?}"),
//! }
//! assert_eq!(mem.peek_u32(PhysAddr::from_frame(9)), 42);
//! ```

pub mod cost;
pub mod memif;
pub mod osif;
pub mod thread;

pub use memif::{Memif, MemifConfig, MemifFault, MemifMode};
pub use osif::OsifCall;
pub use thread::{HwStep, HwThread, HwThreadConfig};
