//! The memory-system façade: backing store + bus + DRAM timing.
//!
//! [`MemorySystem`] is the single component every master talks to. A timed
//! access moves real bytes *and* advances the timing model; functional
//! (`load`/`dump`) accesses move bytes with no timing, and are used by
//! loaders and checkers that exist outside the simulated machine.

use svmsyn_sim::{Cycle, StatSet};

use crate::addr::PhysAddr;
use crate::bus::{Bus, BusConfig, MasterId};
use crate::dram::{Dram, DramConfig};
use crate::store::SparseMemory;

/// Configuration of the whole memory path.
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// Physical memory size in bytes (page-aligned).
    pub size_bytes: u64,
    /// Shared-bus parameters.
    pub bus: BusConfig,
    /// DRAM timing parameters.
    pub dram: DramConfig,
    /// Largest single bus transaction; longer transfers are split into
    /// back-to-back bursts of at most this size.
    pub max_burst_bytes: u64,
}

impl Default for MemConfig {
    /// The `DESIGN.md` §4 platform: 512 MiB, 8 B/cycle bus, 256 B bursts.
    fn default() -> Self {
        MemConfig {
            size_bytes: 512 << 20,
            bus: BusConfig::default(),
            dram: DramConfig::default(),
            max_burst_bytes: 256,
        }
    }
}

/// The complete memory system seen by all bus masters.
///
/// # Example
///
/// ```
/// use svmsyn_mem::{MemConfig, MemorySystem, MasterId, PhysAddr};
/// use svmsyn_sim::Cycle;
/// let mut mem = MemorySystem::new(MemConfig::default());
/// let done = mem.write(MasterId(0), PhysAddr(0x1000), &[1, 2, 3, 4], Cycle(0));
/// let mut buf = [0u8; 4];
/// let done2 = mem.read(MasterId(0), PhysAddr(0x1000), &mut buf, done);
/// assert_eq!(buf, [1, 2, 3, 4]);
/// assert!(done2 > done);
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    store: SparseMemory,
    bus: Bus,
    dram: Dram,
    max_burst: u64,
    reads: u64,
    writes: u64,
}

impl MemorySystem {
    /// Creates a zeroed memory system.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration (zero/unaligned sizes); see
    /// [`SparseMemory::new`], [`Bus::new`], [`Dram::new`].
    pub fn new(cfg: MemConfig) -> Self {
        assert!(cfg.max_burst_bytes > 0, "max_burst_bytes must be positive");
        MemorySystem {
            store: SparseMemory::new(cfg.size_bytes),
            bus: Bus::new(cfg.bus),
            dram: Dram::new(cfg.dram),
            max_burst: cfg.max_burst_bytes,
            reads: 0,
            writes: 0,
        }
    }

    /// Physical memory size in bytes.
    pub fn size(&self) -> u64 {
        self.store.size()
    }

    /// Advances the timing model for a transfer of `len` bytes at `addr`
    /// arriving at `now`; returns the completion time. Shared by reads and
    /// writes (the bus is half-duplex and the model is symmetric).
    pub fn transfer_time(
        &mut self,
        master: MasterId,
        addr: PhysAddr,
        len: u64,
        now: Cycle,
    ) -> Cycle {
        let mut t = now;
        let mut done = now;
        let mut off = 0u64;
        let len = len.max(1);
        while off < len {
            let blen = self.max_burst.min(len - off);
            let (bus_start, bus_done) = self.bus.grant(master, blen, t);
            let bank_done = self.dram.access(addr.offset(off), blen, bus_start);
            done = bus_done.max(bank_done);
            // The next burst may arbitrate as soon as the bus frees; DRAM
            // latency overlaps with the following arbitration.
            t = bus_done;
            off += blen;
        }
        done
    }

    /// Timed read: copies bytes into `buf` and returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if the physical range is out of bounds (addresses here are
    /// post-translation; an out-of-range access is a simulator bug).
    pub fn read(&mut self, master: MasterId, addr: PhysAddr, buf: &mut [u8], now: Cycle) -> Cycle {
        self.store.read(addr, buf);
        self.reads += 1;
        self.transfer_time(master, addr, buf.len() as u64, now)
    }

    /// Timed write: copies `data` into memory and returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if the physical range is out of bounds.
    pub fn write(&mut self, master: MasterId, addr: PhysAddr, data: &[u8], now: Cycle) -> Cycle {
        self.store.write(addr, data);
        self.writes += 1;
        self.transfer_time(master, addr, data.len() as u64, now)
    }

    /// Timed little-endian `u32` read (one bus transaction), as used by the
    /// page-table walker.
    pub fn read_u32(&mut self, master: MasterId, addr: PhysAddr, now: Cycle) -> (u32, Cycle) {
        let mut b = [0u8; 4];
        let done = self.read(master, addr, &mut b, now);
        (u32::from_le_bytes(b), done)
    }

    /// Timed little-endian `u32` write.
    pub fn write_u32(&mut self, master: MasterId, addr: PhysAddr, v: u32, now: Cycle) -> Cycle {
        self.write(master, addr, &v.to_le_bytes(), now)
    }

    /// Timed little-endian `u64` read.
    pub fn read_u64(&mut self, master: MasterId, addr: PhysAddr, now: Cycle) -> (u64, Cycle) {
        let mut b = [0u8; 8];
        let done = self.read(master, addr, &mut b, now);
        (u64::from_le_bytes(b), done)
    }

    /// Timed little-endian `u64` write.
    pub fn write_u64(&mut self, master: MasterId, addr: PhysAddr, v: u64, now: Cycle) -> Cycle {
        self.write(master, addr, &v.to_le_bytes(), now)
    }

    /// Functional write with no timing (loaders, OS metadata setup whose cost
    /// is charged via explicit cost constants instead).
    pub fn load(&mut self, addr: PhysAddr, data: &[u8]) {
        self.store.write(addr, data);
    }

    /// Functional read with no timing (checkers, debuggers).
    pub fn dump(&self, addr: PhysAddr, buf: &mut [u8]) {
        self.store.read(addr, buf);
    }

    /// Functional `u32` read.
    pub fn peek_u32(&self, addr: PhysAddr) -> u32 {
        self.store.read_u32(addr)
    }

    /// Functional `u32` write.
    pub fn poke_u32(&mut self, addr: PhysAddr, v: u32) {
        self.store.write_u32(addr, v);
    }

    /// Functional `u64` read.
    pub fn peek_u64(&self, addr: PhysAddr) -> u64 {
        self.store.read_u64(addr)
    }

    /// Functional `u64` write.
    pub fn poke_u64(&mut self, addr: PhysAddr, v: u64) {
        self.store.write_u64(addr, v);
    }

    /// Zero-fills a physical range functionally (page zeroing is charged by
    /// the OS cost model, not per byte here).
    pub fn zero(&mut self, addr: PhysAddr, len: u64) {
        self.store.fill(addr, len, 0);
    }

    /// Shared-bus view (for utilization reporting).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// DRAM view (for row-buffer statistics).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Counter snapshot including bus and DRAM sub-stats.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("reads", self.reads as f64);
        s.put("writes", self.writes as f64);
        s.absorb("bus", self.bus.stats());
        s.absorb("dram", self.dram.stats());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemConfig {
            size_bytes: 1 << 20,
            ..MemConfig::default()
        })
    }

    #[test]
    fn timed_roundtrip_moves_bytes() {
        let mut m = mem();
        let t = m.write(MasterId(0), PhysAddr(64), b"hello!!!", Cycle(0));
        let mut buf = [0u8; 8];
        m.read(MasterId(0), PhysAddr(64), &mut buf, t);
        assert_eq!(&buf, b"hello!!!");
    }

    #[test]
    fn longer_transfers_take_longer() {
        let mut a = mem();
        let short = a.transfer_time(MasterId(0), PhysAddr(0), 8, Cycle(0));
        let mut b = mem();
        let long = b.transfer_time(MasterId(0), PhysAddr(0), 4096, Cycle(0));
        assert!(long > short);
    }

    #[test]
    fn bursts_split_at_max_burst() {
        let mut m = MemorySystem::new(MemConfig {
            size_bytes: 1 << 20,
            max_burst_bytes: 64,
            ..MemConfig::default()
        });
        m.transfer_time(MasterId(0), PhysAddr(0), 256, Cycle(0));
        // 256 bytes at 64 B/burst = 4 bus transactions.
        assert_eq!(m.bus().stats().get("transactions"), Some(4.0));
    }

    #[test]
    fn contention_between_masters() {
        let mut m = mem();
        let alone = {
            let mut solo = mem();
            solo.transfer_time(MasterId(0), PhysAddr(0), 4096, Cycle(0))
        };
        m.transfer_time(MasterId(1), PhysAddr(65536), 4096, Cycle(0));
        let contended = m.transfer_time(MasterId(0), PhysAddr(0), 4096, Cycle(0));
        assert!(contended > alone, "sharing the bus must slow master 0 down");
    }

    #[test]
    fn functional_access_has_no_timing() {
        let mut m = mem();
        m.load(PhysAddr(0), &[9, 9]);
        let mut b = [0u8; 2];
        m.dump(PhysAddr(0), &mut b);
        assert_eq!(b, [9, 9]);
        assert_eq!(m.bus().busy_cycles(), 0);
        assert_eq!(m.stats().get("reads"), Some(0.0));
    }

    #[test]
    fn typed_timed_accessors() {
        let mut m = mem();
        let t = m.write_u32(MasterId(0), PhysAddr(16), 0xCAFE_F00D, Cycle(0));
        let (v, t2) = m.read_u32(MasterId(0), PhysAddr(16), t);
        assert_eq!(v, 0xCAFE_F00D);
        assert!(t2 > t);
        let t3 = m.write_u64(MasterId(0), PhysAddr(24), 0x1122_3344_5566_7788, t2);
        let (w, _) = m.read_u64(MasterId(0), PhysAddr(24), t3);
        assert_eq!(w, 0x1122_3344_5566_7788);
    }

    #[test]
    fn zero_and_peek_poke() {
        let mut m = mem();
        m.poke_u32(PhysAddr(0), 0xFFFF_FFFF);
        m.zero(PhysAddr(0), 4);
        assert_eq!(m.peek_u32(PhysAddr(0)), 0);
        m.poke_u64(PhysAddr(8), 7);
        assert_eq!(m.peek_u64(PhysAddr(8)), 7);
    }

    #[test]
    fn stats_absorb_subcomponents() {
        let mut m = mem();
        m.write(MasterId(0), PhysAddr(0), &[1], Cycle(0));
        let s = m.stats();
        assert_eq!(s.get("writes"), Some(1.0));
        assert!(s.get("bus.busy_cycles").unwrap() > 0.0);
        assert!(s.get("dram.accesses").unwrap() > 0.0);
    }
}
