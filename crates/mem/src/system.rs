//! The memory-system façade: backing store + split-transaction fabric +
//! DRAM timing.
//!
//! [`MemorySystem`] is the single component every master talks to. The
//! transaction API ([`issue`](MemorySystem::issue) /
//! [`completion`](MemorySystem::completion) /
//! [`drain_completions`](MemorySystem::drain_completions)) is the native
//! interface: a master issues a [`TxnDesc`] and observes completion later.
//! [`read`](MemorySystem::read) / [`write`](MemorySystem::write) remain as
//! thin *sequenced* wrappers over it — they split a transfer into bursts,
//! chain each burst's issue on the previous address handshake, and return
//! the last completion — for callers that genuinely block (loaders, the
//! software page-fault path). Functional (`load`/`dump`) accesses move
//! bytes with no timing, for loaders and checkers outside the simulated
//! machine.

use svmsyn_sim::{Cycle, StatSet};

use crate::addr::PhysAddr;
use crate::dram::{Dram, DramConfig};
use crate::fabric::{FabricConfig, MasterId, SplitFabric, TxnDesc, TxnId, TxnKind};
use crate::store::SparseMemory;

/// Configuration of the whole memory path.
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// Physical memory size in bytes (page-aligned).
    pub size_bytes: u64,
    /// Split-transaction fabric parameters.
    pub fabric: FabricConfig,
    /// DRAM timing parameters.
    pub dram: DramConfig,
    /// Largest single bus transaction; longer transfers are split into
    /// back-to-back bursts of at most this size.
    pub max_burst_bytes: u64,
}

impl Default for MemConfig {
    /// The `DESIGN.md` §4 platform: 512 MiB, 8 B/cycle channel, 256 B
    /// bursts, 4-deep outstanding windows with 4 MSHRs.
    fn default() -> Self {
        MemConfig {
            size_bytes: 512 << 20,
            fabric: FabricConfig::default(),
            dram: DramConfig::default(),
            max_burst_bytes: 256,
        }
    }
}

/// Little-endian scalar moved by the typed timed accessors. Sealed: the
/// widths the simulated machine has (`u32` PTEs, `u64` words).
trait LeScalar: Copy {
    const BYTES: usize;
    fn from_le(buf: &[u8]) -> Self;
    fn to_le(self, buf: &mut [u8]);
}

impl LeScalar for u32 {
    const BYTES: usize = 4;
    fn from_le(buf: &[u8]) -> Self {
        u32::from_le_bytes(buf.try_into().expect("u32 width"))
    }
    fn to_le(self, buf: &mut [u8]) {
        buf.copy_from_slice(&self.to_le_bytes());
    }
}

impl LeScalar for u64 {
    const BYTES: usize = 8;
    fn from_le(buf: &[u8]) -> Self {
        u64::from_le_bytes(buf.try_into().expect("u64 width"))
    }
    fn to_le(self, buf: &mut [u8]) {
        buf.copy_from_slice(&self.to_le_bytes());
    }
}

/// The complete memory system seen by all bus masters.
///
/// # Example
///
/// ```
/// use svmsyn_mem::{MemConfig, MemorySystem, MasterId, PhysAddr};
/// use svmsyn_sim::Cycle;
/// let mut mem = MemorySystem::new(MemConfig::default());
/// let done = mem.write(MasterId(0), PhysAddr(0x1000), &[1, 2, 3, 4], Cycle(0));
/// let mut buf = [0u8; 4];
/// let done2 = mem.read(MasterId(0), PhysAddr(0x1000), &mut buf, done);
/// assert_eq!(buf, [1, 2, 3, 4]);
/// assert!(done2 > done);
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    pub(crate) store: SparseMemory,
    pub(crate) fabric: SplitFabric,
    pub(crate) dram: Dram,
    max_burst: u64,
    pub(crate) reads: u64,
    pub(crate) writes: u64,
}

impl MemorySystem {
    /// Creates a zeroed memory system.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration (zero/unaligned sizes); see
    /// [`SparseMemory::new`], [`SplitFabric::new`], [`Dram::new`].
    pub fn new(cfg: MemConfig) -> Self {
        assert!(cfg.max_burst_bytes > 0, "max_burst_bytes must be positive");
        MemorySystem {
            store: SparseMemory::new(cfg.size_bytes),
            fabric: SplitFabric::new(cfg.fabric),
            dram: Dram::new(cfg.dram),
            max_burst: cfg.max_burst_bytes,
            reads: 0,
            writes: 0,
        }
    }

    /// Physical memory size in bytes.
    pub fn size(&self) -> u64 {
        self.store.size()
    }

    // ------------------------------------------------------------------
    // The transaction API — the native interface of the split fabric.
    // ------------------------------------------------------------------

    /// Issues one fabric transaction (at most one burst; use the sequenced
    /// wrappers for longer transfers). Timing only — pair with
    /// [`read_txn`](Self::read_txn)/[`write_txn`](Self::write_txn) or the
    /// functional accessors to move bytes.
    ///
    /// # Panics
    ///
    /// Panics if `desc.bytes` exceeds `max_burst_bytes` — longer transfers
    /// must be burst-split (see [`transfer`](Self::transfer)), as the old
    /// blocking path always did.
    pub fn issue(&mut self, desc: TxnDesc, now: Cycle) -> TxnId {
        assert!(
            desc.bytes <= self.max_burst,
            "transaction of {} bytes exceeds max_burst_bytes ({}); burst-split it",
            desc.bytes,
            self.max_burst
        );
        self.fabric.issue(&mut self.dram, desc, now)
    }

    /// Completion time of an issued transaction.
    pub fn completion(&self, id: TxnId) -> Cycle {
        self.fabric.poll(id)
    }

    /// Earliest time the issuing master may hand the fabric its next
    /// sequenced transaction (the address-channel handshake of `id`).
    pub fn next_issue(&self, id: TxnId) -> Cycle {
        self.fabric.next_issue(id)
    }

    /// Drains `master`'s completion queue up to `upto`, oldest first.
    pub fn drain_completions(&mut self, master: MasterId, upto: Cycle) -> Vec<(TxnId, Cycle)> {
        self.fabric.drain_completions(master, upto)
    }

    /// Attaches `master` to the fabric so its stats row is emitted even if
    /// it never transacts (starvation stays visible).
    pub fn attach_master(&mut self, master: MasterId) {
        self.fabric.attach(master);
    }

    /// Registers a completion waiter for `(master, id)`; returns the exact
    /// wake cycle for the discrete-event scheduler.
    pub fn register_waiter(&mut self, master: MasterId, id: TxnId) -> Cycle {
        self.fabric.register_waiter(master, id)
    }

    /// Removes and returns `master`'s waiters whose transactions completed
    /// by `now`.
    pub fn drain_woken(&mut self, master: MasterId, now: Cycle) -> Vec<(TxnId, Cycle)> {
        self.fabric.drain_woken(master, now)
    }

    /// Issues a read transaction *and* moves the bytes into `buf`
    /// (functionally, at issue — the completion time says when the data is
    /// architecturally visible to the master).
    ///
    /// # Panics
    ///
    /// Panics if the physical range is out of bounds or `buf` exceeds one
    /// burst.
    pub fn read_txn(
        &mut self,
        master: MasterId,
        addr: PhysAddr,
        buf: &mut [u8],
        now: Cycle,
    ) -> TxnId {
        assert!(
            buf.len() as u64 <= self.max_burst,
            "read_txn is single-burst; use read() for longer transfers"
        );
        self.store.read(addr, buf);
        self.reads += 1;
        self.issue(
            TxnDesc {
                master,
                addr,
                bytes: buf.len() as u64,
                kind: TxnKind::Read,
            },
            now,
        )
    }

    /// Issues a write transaction and moves `data` into memory.
    ///
    /// # Panics
    ///
    /// Panics if the physical range is out of bounds or `data` exceeds one
    /// burst.
    pub fn write_txn(
        &mut self,
        master: MasterId,
        addr: PhysAddr,
        data: &[u8],
        now: Cycle,
    ) -> TxnId {
        assert!(
            data.len() as u64 <= self.max_burst,
            "write_txn is single-burst; use write() for longer transfers"
        );
        self.store.write(addr, data);
        self.writes += 1;
        self.issue(
            TxnDesc {
                master,
                addr,
                bytes: data.len() as u64,
                kind: TxnKind::Write,
            },
            now,
        )
    }

    // ------------------------------------------------------------------
    // Sequenced wrappers: blocking-style transfers over the fabric.
    // ------------------------------------------------------------------

    /// Times a transfer of `len` bytes at `addr` arriving at `now` as a
    /// chain of burst transactions: each burst issues at the previous
    /// burst's address handshake (so a windowed fabric overlaps their DRAM
    /// latencies), and the transfer completes when the last outstanding
    /// burst does.
    pub fn transfer(
        &mut self,
        master: MasterId,
        addr: PhysAddr,
        len: u64,
        kind: TxnKind,
        now: Cycle,
    ) -> Cycle {
        self.transfer_handshake(master, addr, len, kind, now).0
    }

    /// The shared burst-chaining engine behind both transfer flavors:
    /// returns `(done, next, tail)` — chain completion, final address
    /// handshake, and the id of the burst the chain completes with (not
    /// necessarily the last *issued* one: an MSHR-merged burst rides an
    /// earlier transaction and may land before its predecessors).
    fn transfer_chain(
        &mut self,
        master: MasterId,
        addr: PhysAddr,
        len: u64,
        kind: TxnKind,
        now: Cycle,
    ) -> (Cycle, Cycle, Option<TxnId>) {
        let mut t = now;
        let mut done = now;
        let mut tail: Option<TxnId> = None;
        let mut off = 0u64;
        let len = len.max(1);
        while off < len {
            let blen = self.max_burst.min(len - off);
            let id = self.issue(
                TxnDesc {
                    master,
                    addr: addr.offset(off),
                    bytes: blen,
                    kind,
                },
                t,
            );
            t = self.fabric.next_issue(id);
            let completion = self.fabric.poll(id);
            if completion >= done {
                done = completion;
                tail = Some(id);
            }
            off += blen;
        }
        (done, t, tail)
    }

    /// Like [`transfer`](Self::transfer) but also returns the chain's final
    /// address handshake — when the master may hand the fabric its next
    /// sequenced transfer. Masters that stream dependent work (MEMIF line
    /// fills, CPU cache fills) key off the handshake; blocking callers use
    /// the completion.
    pub fn transfer_handshake(
        &mut self,
        master: MasterId,
        addr: PhysAddr,
        len: u64,
        kind: TxnKind,
        now: Cycle,
    ) -> (Cycle, Cycle) {
        let (done, t, _) = self.transfer_chain(master, addr, len, kind, now);
        (done, t)
    }

    /// Like [`transfer_handshake`](Self::transfer_handshake) but also
    /// registers a completion **waiter** for the burst that completes the
    /// chain: the returned completion is the exact cycle at which
    /// [`drain_woken`](Self::drain_woken) will surface the wake. Masters
    /// whose consumers may park on the transfer (the non-blocking MEMIF's
    /// line fills) issue through this so the wakeup can never be lost to
    /// the bounded completion FIFO.
    pub fn transfer_waited(
        &mut self,
        master: MasterId,
        addr: PhysAddr,
        len: u64,
        kind: TxnKind,
        now: Cycle,
    ) -> (Cycle, Cycle) {
        let (done, t, tail) = self.transfer_chain(master, addr, len, kind, now);
        if let Some(id) = tail {
            let wake = self.fabric.register_waiter(master, id);
            debug_assert_eq!(wake, done, "chain tail must complete the chain");
        }
        (done, t)
    }

    /// Timed read: copies bytes into `buf` and returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if the physical range is out of bounds (addresses here are
    /// post-translation; an out-of-range access is a simulator bug).
    pub fn read(&mut self, master: MasterId, addr: PhysAddr, buf: &mut [u8], now: Cycle) -> Cycle {
        self.store.read(addr, buf);
        self.reads += 1;
        self.transfer(master, addr, buf.len() as u64, TxnKind::Read, now)
    }

    /// Timed write: copies `data` into memory and returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if the physical range is out of bounds.
    pub fn write(&mut self, master: MasterId, addr: PhysAddr, data: &[u8], now: Cycle) -> Cycle {
        self.store.write(addr, data);
        self.writes += 1;
        self.transfer(master, addr, data.len() as u64, TxnKind::Write, now)
    }

    /// Timed little-endian scalar read (one transaction) behind the typed
    /// `read_u32`/`read_u64` pair.
    fn read_scalar<T: LeScalar>(
        &mut self,
        master: MasterId,
        addr: PhysAddr,
        now: Cycle,
    ) -> (T, Cycle) {
        let mut b = [0u8; 8];
        let id = self.read_txn(master, addr, &mut b[..T::BYTES], now);
        (T::from_le(&b[..T::BYTES]), self.completion(id))
    }

    /// Timed little-endian scalar write behind the typed pair.
    fn write_scalar<T: LeScalar>(
        &mut self,
        master: MasterId,
        addr: PhysAddr,
        v: T,
        now: Cycle,
    ) -> Cycle {
        let mut b = [0u8; 8];
        v.to_le(&mut b[..T::BYTES]);
        let id = self.write_txn(master, addr, &b[..T::BYTES], now);
        self.completion(id)
    }

    /// Timed little-endian `u32` read (one bus transaction), as used by the
    /// page-table walker.
    pub fn read_u32(&mut self, master: MasterId, addr: PhysAddr, now: Cycle) -> (u32, Cycle) {
        self.read_scalar(master, addr, now)
    }

    /// Like [`read_u32`](Self::read_u32) but returns the outstanding
    /// transaction instead of its completion — the walker's issue-side
    /// entry point.
    pub fn read_u32_txn(&mut self, master: MasterId, addr: PhysAddr, now: Cycle) -> (u32, TxnId) {
        let mut b = [0u8; 4];
        let id = self.read_txn(master, addr, &mut b, now);
        (u32::from_le_bytes(b), id)
    }

    /// Timed little-endian `u32` write.
    pub fn write_u32(&mut self, master: MasterId, addr: PhysAddr, v: u32, now: Cycle) -> Cycle {
        self.write_scalar(master, addr, v, now)
    }

    /// Timed little-endian `u64` read.
    pub fn read_u64(&mut self, master: MasterId, addr: PhysAddr, now: Cycle) -> (u64, Cycle) {
        self.read_scalar(master, addr, now)
    }

    /// Timed little-endian `u64` write.
    pub fn write_u64(&mut self, master: MasterId, addr: PhysAddr, v: u64, now: Cycle) -> Cycle {
        self.write_scalar(master, addr, v, now)
    }

    /// Functional write with no timing (loaders, OS metadata setup whose cost
    /// is charged via explicit cost constants instead).
    pub fn load(&mut self, addr: PhysAddr, data: &[u8]) {
        self.store.write(addr, data);
    }

    /// Functional read with no timing (checkers, debuggers).
    pub fn dump(&self, addr: PhysAddr, buf: &mut [u8]) {
        self.store.read(addr, buf);
    }

    /// Functional `u32` read.
    pub fn peek_u32(&self, addr: PhysAddr) -> u32 {
        self.store.read_u32(addr)
    }

    /// Functional `u32` write.
    pub fn poke_u32(&mut self, addr: PhysAddr, v: u32) {
        self.store.write_u32(addr, v);
    }

    /// Functional `u64` read.
    pub fn peek_u64(&self, addr: PhysAddr) -> u64 {
        self.store.read_u64(addr)
    }

    /// Functional `u64` write.
    pub fn poke_u64(&mut self, addr: PhysAddr, v: u64) {
        self.store.write_u64(addr, v);
    }

    /// Zero-fills a physical range functionally (page zeroing is charged by
    /// the OS cost model, not per byte here).
    pub fn zero(&mut self, addr: PhysAddr, len: u64) {
        self.store.fill(addr, len, 0);
    }

    /// Fabric view (for utilization and overlap reporting).
    /// Minimum cycles between a master issuing a transaction and its
    /// earliest possible completion: the address-phase arbitration plus a
    /// row-hit access of a single beat. The sharded simulation core derives
    /// its conservative lookahead window from this bound.
    pub fn min_issue_to_complete(&self) -> u64 {
        self.fabric.config().arb_cycles + self.dram.config().t_row_hit + 1
    }

    /// Starts (or clears) dirty-frame journaling on the backing store (see
    /// [`SparseMemory::enable_journal`]).
    pub fn enable_store_journal(&mut self) {
        self.store.enable_journal();
    }

    /// Drains the backing store's dirty-frame journal.
    pub fn take_store_journal(&mut self) -> Vec<u64> {
        self.store.take_journal()
    }

    /// Moves this replica's fabric onto a disjoint transaction-id lane (see
    /// [`SplitFabric::set_id_lane`]).
    pub fn set_fabric_id_lane(&mut self, start: u64, stride: u64) {
        self.fabric.set_id_lane(start, stride);
    }

    /// The fabric's next unissued transaction id (lane-aware).
    pub fn fabric_next_txn_id(&self) -> u64 {
        self.fabric.next_id
    }

    pub fn fabric(&self) -> &SplitFabric {
        &self.fabric
    }

    /// DRAM view (for row-buffer statistics).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Counter snapshot including fabric and DRAM sub-stats.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("reads", self.reads as f64);
        s.put("writes", self.writes as f64);
        s.absorb("fabric", self.fabric.stats());
        s.absorb("dram", self.dram.stats());
        s
    }
}

// ----------------------------------------------------------------------
// Checkpoint serialization.
// ----------------------------------------------------------------------

impl MemorySystem {
    /// Serializes the whole memory path: backing store, fabric arbiter,
    /// DRAM banks, and the access counters.
    pub fn save_state(&self, w: &mut svmsyn_snap::SnapWriter) {
        self.store.save_state(w);
        self.fabric.save_state(w);
        self.dram.save_state(w);
        w.put_u64(self.reads);
        w.put_u64(self.writes);
    }

    /// Rebuilds a memory system captured by
    /// [`save_state`](Self::save_state) under the design's `cfg`.
    pub fn restore_state(
        cfg: &MemConfig,
        r: &mut svmsyn_snap::SnapReader<'_>,
    ) -> Result<Self, svmsyn_snap::SnapError> {
        use svmsyn_snap::SnapError;
        let store = SparseMemory::restore_state(r)?;
        if store.size() != cfg.size_bytes {
            return Err(SnapError::Corrupt("memory size differs from config"));
        }
        let fabric = SplitFabric::restore_state(cfg.fabric.clone(), r)?;
        let dram = Dram::restore_state(cfg.dram.clone(), r)?;
        Ok(MemorySystem {
            store,
            fabric,
            dram,
            max_burst: cfg.max_burst_bytes,
            reads: r.take_u64()?,
            writes: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemConfig {
            size_bytes: 1 << 20,
            ..MemConfig::default()
        })
    }

    #[test]
    fn timed_roundtrip_moves_bytes() {
        let mut m = mem();
        let t = m.write(MasterId(0), PhysAddr(64), b"hello!!!", Cycle(0));
        let mut buf = [0u8; 8];
        m.read(MasterId(0), PhysAddr(64), &mut buf, t);
        assert_eq!(&buf, b"hello!!!");
    }

    #[test]
    fn longer_transfers_take_longer() {
        let mut a = mem();
        let short = a.transfer(MasterId(0), PhysAddr(0), 8, TxnKind::Read, Cycle(0));
        let mut b = mem();
        let long = b.transfer(MasterId(0), PhysAddr(0), 4096, TxnKind::Read, Cycle(0));
        assert!(long > short);
    }

    #[test]
    fn bursts_split_at_max_burst() {
        let mut m = MemorySystem::new(MemConfig {
            size_bytes: 1 << 20,
            max_burst_bytes: 64,
            ..MemConfig::default()
        });
        m.transfer(MasterId(0), PhysAddr(0), 256, TxnKind::Read, Cycle(0));
        // 256 bytes at 64 B/burst = 4 fabric transactions.
        assert_eq!(m.fabric().stats().get("transactions"), Some(4.0));
    }

    #[test]
    fn contention_between_masters() {
        let mut m = mem();
        let alone = {
            let mut solo = mem();
            solo.transfer(MasterId(0), PhysAddr(0), 4096, TxnKind::Read, Cycle(0))
        };
        m.transfer(MasterId(1), PhysAddr(65536), 4096, TxnKind::Read, Cycle(0));
        let contended = m.transfer(MasterId(0), PhysAddr(0), 4096, TxnKind::Read, Cycle(0));
        assert!(
            contended > alone,
            "sharing the data channel must slow master 0 down"
        );
    }

    #[test]
    fn windowed_fabric_overlaps_bank_strided_reads() {
        // Bank-strided 64 B reads (8 KiB stride rotates DRAM banks): a
        // blocking master round-trips each one; a windowed master keeps
        // several outstanding, so independent bank latencies overlap.
        let run = |fabric: FabricConfig, blocking: bool| {
            let mut m = MemorySystem::new(MemConfig {
                size_bytes: 1 << 20,
                fabric,
                ..MemConfig::default()
            });
            let mut t = Cycle(0);
            let mut end = Cycle(0);
            for i in 0..8u64 {
                let id = m.issue(
                    TxnDesc {
                        master: MasterId(0),
                        addr: PhysAddr(i * 8192),
                        bytes: 64,
                        kind: TxnKind::Read,
                    },
                    t,
                );
                end = end.max(m.completion(id));
                t = if blocking {
                    m.completion(id)
                } else {
                    m.next_issue(id)
                };
            }
            end
        };
        let serial = run(FabricConfig::blocking(), true);
        let overlapped = run(FabricConfig::default(), false);
        assert!(
            overlapped < serial,
            "outstanding reads must overlap DRAM latency ({overlapped} vs {serial})"
        );
    }

    #[test]
    fn issue_poll_drain_roundtrip() {
        let mut m = mem();
        let desc = TxnDesc {
            master: MasterId(2),
            addr: PhysAddr(128),
            bytes: 64,
            kind: TxnKind::Read,
        };
        let id = m.issue(desc, Cycle(0));
        let done = m.completion(id);
        assert!(done > Cycle(0));
        assert!(m.next_issue(id) <= done);
        let drained = m.drain_completions(MasterId(2), done);
        assert_eq!(drained, vec![(id, done)]);
    }

    #[test]
    fn functional_access_has_no_timing() {
        let mut m = mem();
        m.load(PhysAddr(0), &[9, 9]);
        let mut b = [0u8; 2];
        m.dump(PhysAddr(0), &mut b);
        assert_eq!(b, [9, 9]);
        assert_eq!(m.fabric().busy_cycles(), 0);
        assert_eq!(m.stats().get("reads"), Some(0.0));
    }

    #[test]
    fn typed_timed_accessors() {
        let mut m = mem();
        let t = m.write_u32(MasterId(0), PhysAddr(16), 0xCAFE_F00D, Cycle(0));
        let (v, t2) = m.read_u32(MasterId(0), PhysAddr(16), t);
        assert_eq!(v, 0xCAFE_F00D);
        assert!(t2 > t);
        let t3 = m.write_u64(MasterId(0), PhysAddr(24), 0x1122_3344_5566_7788, t2);
        let (w, _) = m.read_u64(MasterId(0), PhysAddr(24), t3);
        assert_eq!(w, 0x1122_3344_5566_7788);
        let (v2, id) = m.read_u32_txn(MasterId(0), PhysAddr(16), t3);
        assert_eq!(v2, 0xCAFE_F00D);
        assert!(m.completion(id) > t3);
    }

    #[test]
    fn zero_and_peek_poke() {
        let mut m = mem();
        m.poke_u32(PhysAddr(0), 0xFFFF_FFFF);
        m.zero(PhysAddr(0), 4);
        assert_eq!(m.peek_u32(PhysAddr(0)), 0);
        m.poke_u64(PhysAddr(8), 7);
        assert_eq!(m.peek_u64(PhysAddr(8)), 7);
    }

    #[test]
    fn stats_absorb_subcomponents() {
        let mut m = mem();
        m.write(MasterId(0), PhysAddr(0), &[1], Cycle(0));
        let s = m.stats();
        assert_eq!(s.get("writes"), Some(1.0));
        assert!(s.get("fabric.busy_cycles").unwrap() > 0.0);
        assert!(s.get("dram.accesses").unwrap() > 0.0);
    }
}
