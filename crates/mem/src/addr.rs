//! Address newtypes and page geometry.
//!
//! The platform models a Zynq-era 32-bit SoC: 4 KiB pages, physical memory
//! starting at address zero. Virtual and physical addresses are kept as
//! distinct newtypes so a raw physical address can never be handed to a
//! component that expects a virtual one ([C-NEWTYPE]).

use std::fmt;
use std::ops::{Add, Sub};

/// Page size in bytes (4 KiB, the ARMv7 short-descriptor small page).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Mask of the in-page offset bits.
pub const PAGE_MASK: u64 = PAGE_SIZE - 1;

/// A physical (bus) address.
///
/// # Example
///
/// ```
/// use svmsyn_mem::{PhysAddr, PAGE_SIZE};
/// let pa = PhysAddr(PAGE_SIZE + 8);
/// assert_eq!(pa.frame(), 1);
/// assert_eq!(pa.page_offset(), 8);
/// assert_eq!(pa.page_base(), PhysAddr(PAGE_SIZE));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

/// A virtual address within some address space.
///
/// # Example
///
/// ```
/// use svmsyn_mem::VirtAddr;
/// let va = VirtAddr(0x0040_1010);
/// assert_eq!(va.vpn(), 0x401);
/// assert_eq!(va.page_offset(), 0x10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

macro_rules! addr_common {
    ($t:ident) => {
        impl $t {
            /// The in-page byte offset.
            #[must_use]
            pub fn page_offset(self) -> u64 {
                self.0 & PAGE_MASK
            }

            /// The address rounded down to its page base.
            #[must_use]
            pub fn page_base(self) -> $t {
                $t(self.0 & !PAGE_MASK)
            }

            /// The address rounded up to the next page boundary (identity if
            /// already aligned).
            #[must_use]
            pub fn page_align_up(self) -> $t {
                $t((self.0 + PAGE_MASK) & !PAGE_MASK)
            }

            /// Whether the address is page-aligned.
            #[must_use]
            pub fn is_page_aligned(self) -> bool {
                self.page_offset() == 0
            }

            /// Byte offset addition.
            #[must_use]
            pub fn offset(self, bytes: u64) -> $t {
                $t(self.0 + bytes)
            }
        }

        impl Add<u64> for $t {
            type Output = $t;
            fn add(self, rhs: u64) -> $t {
                $t(self.0 + rhs)
            }
        }

        impl Sub<u64> for $t {
            type Output = $t;
            fn sub(self, rhs: u64) -> $t {
                $t(self.0 - rhs)
            }
        }

        impl Sub for $t {
            type Output = u64;
            fn sub(self, rhs: $t) -> u64 {
                self.0 - rhs.0
            }
        }

        impl From<u64> for $t {
            fn from(v: u64) -> $t {
                $t(v)
            }
        }

        impl From<$t> for u64 {
            fn from(a: $t) -> u64 {
                a.0
            }
        }

        impl fmt::LowerHex for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}(0x{:x})", stringify!($t), self.0)
            }
        }
    };
}

addr_common!(PhysAddr);
addr_common!(VirtAddr);

impl PhysAddr {
    /// The physical frame number (`addr >> 12`).
    #[must_use]
    pub fn frame(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Reconstructs an address from a frame number.
    #[must_use]
    pub fn from_frame(frame: u64) -> PhysAddr {
        PhysAddr(frame << PAGE_SHIFT)
    }
}

impl VirtAddr {
    /// The virtual page number (`addr >> 12`).
    #[must_use]
    pub fn vpn(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Reconstructs an address from a virtual page number.
    #[must_use]
    pub fn from_vpn(vpn: u64) -> VirtAddr {
        VirtAddr(vpn << PAGE_SHIFT)
    }

    /// Index into the first-level page directory (bits 31:22).
    #[must_use]
    pub fn l1_index(self) -> usize {
        ((self.0 >> 22) & 0x3FF) as usize
    }

    /// Index into the second-level page table (bits 21:12).
    #[must_use]
    pub fn l2_index(self) -> usize {
        ((self.0 >> PAGE_SHIFT) & 0x3FF) as usize
    }
}

/// Splits the byte range `[addr, addr + len)` into per-page chunks
/// `(page_start_addr, in_range_offset, chunk_len)`.
///
/// This is the helper both the MEMIF burst engine and the CPU cache model use
/// to honor the "bursts never cross a page boundary" rule.
///
/// # Example
///
/// ```
/// use svmsyn_mem::{split_at_page_boundaries, VirtAddr};
/// let chunks = split_at_page_boundaries(VirtAddr(4090), 12);
/// assert_eq!(chunks, vec![(VirtAddr(4090), 0, 6), (VirtAddr(4096), 6, 6)]);
/// ```
pub fn split_at_page_boundaries(addr: VirtAddr, len: u64) -> Vec<(VirtAddr, u64, u64)> {
    let mut out = Vec::new();
    let mut cur = addr.0;
    let end = addr.0 + len;
    while cur < end {
        let page_end = (cur & !PAGE_MASK) + PAGE_SIZE;
        let chunk_end = page_end.min(end);
        out.push((VirtAddr(cur), cur - addr.0, chunk_end - cur));
        cur = chunk_end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_frame_roundtrip() {
        let pa = PhysAddr::from_frame(123);
        assert_eq!(pa.frame(), 123);
        assert_eq!(pa.0, 123 * PAGE_SIZE);
        assert!(pa.is_page_aligned());
        assert!(!(pa + 1).is_page_aligned());
    }

    #[test]
    fn virt_vpn_and_indices() {
        // va = (l1=3, l2=5, off=9)
        let va = VirtAddr((3 << 22) | (5 << 12) | 9);
        assert_eq!(va.l1_index(), 3);
        assert_eq!(va.l2_index(), 5);
        assert_eq!(va.page_offset(), 9);
        assert_eq!(va.vpn(), (3 << 10) | 5);
        assert_eq!(VirtAddr::from_vpn(va.vpn()).0, va.page_base().0);
    }

    #[test]
    fn align_up_and_down() {
        let a = VirtAddr(PAGE_SIZE + 1);
        assert_eq!(a.page_base().0, PAGE_SIZE);
        assert_eq!(a.page_align_up().0, 2 * PAGE_SIZE);
        let b = VirtAddr(2 * PAGE_SIZE);
        assert_eq!(b.page_align_up(), b);
    }

    #[test]
    fn arithmetic_and_formatting() {
        let pa = PhysAddr(0x100);
        assert_eq!((pa + 0x10) - pa, 0x10);
        assert_eq!(pa - 0x80, PhysAddr(0x80));
        assert_eq!(format!("{pa:x}"), "100");
        assert_eq!(format!("{pa:X}"), "100");
        assert!(pa.to_string().contains("0x100"));
        let va: VirtAddr = 0x42u64.into();
        let raw: u64 = va.into();
        assert_eq!(raw, 0x42);
    }

    #[test]
    fn split_within_single_page() {
        let chunks = split_at_page_boundaries(VirtAddr(100), 50);
        assert_eq!(chunks, vec![(VirtAddr(100), 0, 50)]);
    }

    #[test]
    fn split_spanning_three_pages() {
        let chunks = split_at_page_boundaries(VirtAddr(PAGE_SIZE - 10), PAGE_SIZE + 20);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], (VirtAddr(PAGE_SIZE - 10), 0, 10));
        assert_eq!(chunks[1], (VirtAddr(PAGE_SIZE), 10, PAGE_SIZE));
        assert_eq!(chunks[2], (VirtAddr(2 * PAGE_SIZE), 10 + PAGE_SIZE, 10));
        let total: u64 = chunks.iter().map(|c| c.2).sum();
        assert_eq!(total, PAGE_SIZE + 20);
    }

    #[test]
    fn split_empty_range() {
        assert!(split_at_page_boundaries(VirtAddr(0), 0).is_empty());
    }
}
