//! # svmsyn-mem — the physical memory substrate
//!
//! Byte-accurate physical memory with a transaction-level timing model of the
//! shared path to DRAM:
//!
//! * [`PhysAddr`] / [`VirtAddr`] — address newtypes and page geometry.
//! * [`SparseMemory`] — lazily materialized backing store holding real bytes.
//! * [`SplitFabric`] — the split-transaction memory fabric: issue/complete
//!   transactions, per-master outstanding windows, MSHR merging, decoupled
//!   address/data phases. [`FabricPort`] is the per-master handle.
//! * [`reference::FcfsBus`](reference) — the retained blocking FCFS bus,
//!   kept as the differential oracle for the fabric.
//! * [`Dram`] — banked DRAM with an open-row policy.
//! * [`MemorySystem`] — the façade every bus master talks to; timed accesses
//!   move real data *and* advance the timing model.
//!
//! # Example
//!
//! ```
//! use svmsyn_mem::{MemConfig, MemorySystem, MasterId, PhysAddr};
//! use svmsyn_sim::Cycle;
//!
//! let mut mem = MemorySystem::new(MemConfig::default());
//! let done = mem.write(MasterId(0), PhysAddr(0), &[42u8; 64], Cycle(0));
//! let mut buf = [0u8; 64];
//! mem.read(MasterId(0), PhysAddr(0), &mut buf, done);
//! assert_eq!(buf[0], 42);
//! ```

pub mod addr;
pub mod cache;
pub mod dram;
pub mod fabric;
pub mod merge;
pub mod reference;
pub mod store;
pub mod system;

pub use addr::{split_at_page_boundaries, PhysAddr, VirtAddr, PAGE_MASK, PAGE_SHIFT, PAGE_SIZE};
pub use cache::{CacheConfig, CacheOutcome, L1Cache};
pub use dram::{Dram, DramConfig};
pub use fabric::{FabricConfig, FabricPort, MasterId, SplitFabric, TxnDesc, TxnId, TxnKind};
pub use store::SparseMemory;
pub use system::{MemConfig, MemorySystem};
