//! A small set-associative write-back timing cache.
//!
//! Used twice in the stack: as the CPU's L1 data cache (`svmsyn-os`) and as
//! the hardware thread's MEMIF burst cache (`svmsyn-hwt`). It is a *timing*
//! cache: data always moves through the [`MemorySystem`](crate::MemorySystem)
//! functionally, so software and hardware threads stay coherent by
//! construction, and the cache only decides which accesses cost bus
//! transactions.

use svmsyn_sim::StatSet;

use crate::addr::PhysAddr;

/// L1 data-cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl Default for CacheConfig {
    /// 32 KiB, 64 B lines, 4-way.
    fn default() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 4,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    dirty: bool,
    stamp: u64,
}

/// A write-back, write-allocate timing cache.
#[derive(Debug, Clone)]
pub struct L1Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

/// Outcome of a cache access: what bus traffic it implies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// In cache: no bus traffic.
    Hit,
    /// Line fill required; optionally a dirty victim writeback first.
    Miss {
        /// Physical base address of the dirty victim to write back, if any.
        writeback: Option<PhysAddr>,
    },
}

impl L1Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let lines = cfg.size_bytes / cfg.line_bytes;
        let sets = (lines / cfg.ways as u64) as usize;
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            sets > 0 && (sets & (sets - 1)) == 0,
            "set count must be a power of two"
        );
        L1Cache {
            cfg,
            sets: vec![vec![Line::default(); cfg.ways]; sets],
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    fn index(&self, pa: PhysAddr) -> (usize, u64) {
        let line = pa.0 / self.cfg.line_bytes;
        (
            (line as usize) & (self.sets.len() - 1),
            line / self.sets.len() as u64,
        )
    }

    /// Simulates an access; returns the implied bus traffic.
    pub fn access(&mut self, pa: PhysAddr, write: bool) -> CacheOutcome {
        self.clock += 1;
        let (set_idx, tag) = self.index(pa);
        let sets_n = self.sets.len() as u64;
        let line_bytes = self.cfg.line_bytes;
        let clock = self.clock;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.stamp = clock;
            line.dirty |= write;
            self.hits += 1;
            return CacheOutcome::Hit;
        }
        self.misses += 1;
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.stamp } else { 0 })
            .expect("ways > 0");
        let writeback = if victim.valid && victim.dirty {
            self.writebacks += 1;
            let victim_line = victim.tag * sets_n + set_idx as u64;
            Some(PhysAddr(victim_line * line_bytes))
        } else {
            None
        };
        *victim = Line {
            valid: true,
            tag,
            dirty: write,
            stamp: clock,
        };
        CacheOutcome::Miss { writeback }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.cfg.line_bytes
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("hits", self.hits as f64);
        s.put("misses", self.misses as f64);
        s.put("hit_rate", self.hit_rate());
        s.put("writebacks", self.writebacks as f64);
        s
    }

    /// Returns the line base addresses of all dirty lines and marks them
    /// clean (the final flush at kernel completion). Lines stay resident.
    pub fn drain_dirty(&mut self) -> Vec<PhysAddr> {
        let mut out = Vec::new();
        let sets_n = self.sets.len() as u64;
        for (set_idx, set) in self.sets.iter_mut().enumerate() {
            for line in set {
                if line.valid && line.dirty {
                    line.dirty = false;
                    self.writebacks += 1;
                    let victim_line = line.tag * sets_n + set_idx as u64;
                    out.push(PhysAddr(victim_line * self.cfg.line_bytes));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = L1Cache::new(CacheConfig::default());
        assert!(matches!(
            c.access(PhysAddr(0x100), false),
            CacheOutcome::Miss { .. }
        ));
        assert_eq!(c.access(PhysAddr(0x104), false), CacheOutcome::Hit);
        assert!(c.hit_rate() > 0.0);
    }

    #[test]
    fn dirty_eviction_reports_victim() {
        let cfg = CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            ways: 1,
        };
        let mut c = L1Cache::new(cfg);
        c.access(PhysAddr(0), true); // dirty line 0 of set 0
                                     // Same set (4 sets, direct mapped): line at 256 maps to set 0.
        match c.access(PhysAddr(256), false) {
            CacheOutcome::Miss { writeback: Some(v) } => assert_eq!(v, PhysAddr(0)),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
    }

    #[test]
    fn drain_dirty_returns_and_clears() {
        let mut c = L1Cache::new(CacheConfig::default());
        c.access(PhysAddr(0), true);
        c.access(PhysAddr(4096), true);
        c.access(PhysAddr(8192), false);
        let mut dirty = c.drain_dirty();
        dirty.sort();
        assert_eq!(dirty, vec![PhysAddr(0), PhysAddr(4096)]);
        assert!(c.drain_dirty().is_empty(), "drain clears dirty bits");
        // Lines stay resident (clean) after draining.
        assert_eq!(c.access(PhysAddr(0), false), CacheOutcome::Hit);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        L1Cache::new(CacheConfig {
            size_bytes: 100,
            line_bytes: 48,
            ways: 1,
        });
    }
}
