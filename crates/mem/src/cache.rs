//! A small set-associative write-back timing cache.
//!
//! Used twice in the stack: as the CPU's L1 data cache (`svmsyn-os`) and as
//! the hardware thread's MEMIF burst cache (`svmsyn-hwt`). It is a *timing*
//! cache: data always moves through the [`MemorySystem`](crate::MemorySystem)
//! functionally, so software and hardware threads stay coherent by
//! construction, and the cache only decides which accesses cost bus
//! transactions.

use svmsyn_sim::StatSet;

use crate::addr::PhysAddr;

/// L1 data-cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl Default for CacheConfig {
    /// 32 KiB, 64 B lines, 4-way.
    fn default() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 4,
        }
    }
}

/// Sentinel tag marking an invalid way. Tags are `line >> log2(sets)`, so a
/// real tag of `u64::MAX` would require a ~2^64-byte address space.
const TAG_EMPTY: u64 = u64::MAX;

/// A write-back, write-allocate timing cache.
///
/// Line state lives in contiguous set-major parallel arrays
/// (`set * ways + way`), the same flattening the TLB uses: the hit scan
/// sweeps a dense `u64` tag vector (validity folded into a sentinel tag)
/// instead of chasing per-set `Vec` allocations through 24-byte records,
/// and the set stride is precomputed at construction. This matters most for
/// the MEMIF burst cache, which is configured fully associative (one set,
/// 64 ways) and scans on every access.
#[derive(Debug, Clone)]
pub struct L1Cache {
    cfg: CacheConfig,
    /// Set-major tags; `TAG_EMPTY` marks an invalid way.
    tags: Box<[u64]>,
    /// Set-major LRU stamps (`0` for never-touched ways).
    stamps: Box<[u64]>,
    /// Set-major dirty bits.
    dirty: Box<[bool]>,
    /// Number of sets (power of two).
    sets: usize,
    /// Set index mask (`sets - 1`).
    set_mask: u64,
    /// `log2(line_bytes)`: the line index is a shift, not a division.
    line_shift: u32,
    /// `log2(sets)`.
    set_shift: u32,
    /// The most recent distinct hit/fill slots, probed before the set scan:
    /// streaming kernels cycle through a handful of lines (one per stream —
    /// vecadd touches three), which these catch in O(1). `u32::MAX` = empty.
    recent: [u32; 4],
    clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

/// Outcome of a cache access: what bus traffic it implies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// In cache: no bus traffic.
    Hit,
    /// Line fill required; optionally a dirty victim writeback first.
    Miss {
        /// Physical base address of the dirty victim to write back, if any.
        writeback: Option<PhysAddr>,
    },
}

impl L1Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let lines = cfg.size_bytes / cfg.line_bytes;
        let sets = (lines / cfg.ways as u64) as usize;
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            sets > 0 && (sets & (sets - 1)) == 0,
            "set count must be a power of two"
        );
        let lines = sets * cfg.ways;
        L1Cache {
            cfg,
            tags: vec![TAG_EMPTY; lines].into_boxed_slice(),
            stamps: vec![0u64; lines].into_boxed_slice(),
            dirty: vec![false; lines].into_boxed_slice(),
            sets,
            set_mask: sets as u64 - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_shift: sets.trailing_zeros(),
            recent: [u32::MAX; 4],
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    #[inline]
    fn note_recent(&mut self, slot: usize) {
        let slot = slot as u32;
        if self.recent[0] != slot {
            // Shift-in at the front; duplicates further back age out.
            self.recent = [slot, self.recent[0], self.recent[1], self.recent[2]];
        }
    }

    fn index(&self, pa: PhysAddr) -> (usize, u64) {
        let line = pa.0 >> self.line_shift;
        ((line & self.set_mask) as usize, line >> self.set_shift)
    }

    /// Simulates an access; returns the implied bus traffic.
    #[inline]
    pub fn access(&mut self, pa: PhysAddr, write: bool) -> CacheOutcome {
        self.clock += 1;
        let (set_idx, tag) = self.index(pa);
        let base = set_idx * self.cfg.ways;
        // Recent-slot probes first (a stale slot simply mismatches on tag).
        for (i, r) in self.recent.into_iter().enumerate() {
            let r = r as usize;
            if r >= base && r < base + self.cfg.ways && self.tags[r] == tag {
                self.stamps[r] = self.clock;
                self.dirty[r] |= write;
                self.hits += 1;
                if i != 0 {
                    self.note_recent(r);
                }
                return CacheOutcome::Hit;
            }
        }
        self.access_slow(base, set_idx, tag, write)
    }

    /// The non-recent-slot path: set scan, then fill/eviction.
    fn access_slow(&mut self, base: usize, set_idx: usize, tag: u64, write: bool) -> CacheOutcome {
        // A dense equality scan over the set's tag vector.
        let tags = &self.tags[base..base + self.cfg.ways];
        if let Some(way) = tags.iter().position(|&t| t == tag) {
            let slot = base + way;
            self.stamps[slot] = self.clock;
            self.dirty[slot] |= write;
            self.hits += 1;
            self.note_recent(slot);
            return CacheOutcome::Hit;
        }
        self.misses += 1;
        // LRU victim; never-touched ways (stamp 0) win ties in way order,
        // matching the original "invalid counts as stamp 0" policy.
        let mut victim = 0usize;
        let mut best = u64::MAX;
        let stamps = &self.stamps[base..base + self.cfg.ways];
        for (w, (&t, &s)) in tags.iter().zip(stamps).enumerate() {
            let key = if t == TAG_EMPTY { 0 } else { s };
            if key < best {
                best = key;
                victim = w;
            }
        }
        let slot = base + victim;
        let writeback = if self.tags[slot] != TAG_EMPTY && self.dirty[slot] {
            self.writebacks += 1;
            let victim_line = self.tags[slot] * self.sets as u64 + set_idx as u64;
            Some(PhysAddr(victim_line * self.cfg.line_bytes))
        } else {
            None
        };
        self.tags[slot] = tag;
        self.stamps[slot] = self.clock;
        self.dirty[slot] = write;
        self.note_recent(slot);
        CacheOutcome::Miss { writeback }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.cfg.line_bytes
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("hits", self.hits as f64);
        s.put("misses", self.misses as f64);
        s.put("hit_rate", self.hit_rate());
        s.put("writebacks", self.writebacks as f64);
        s
    }

    /// Returns the line base addresses of all dirty lines and marks them
    /// clean (the final flush at kernel completion). Lines stay resident.
    pub fn drain_dirty(&mut self) -> Vec<PhysAddr> {
        let mut out = Vec::new();
        let sets_n = self.sets as u64;
        let ways = self.cfg.ways;
        for i in 0..self.tags.len() {
            if self.tags[i] != TAG_EMPTY && self.dirty[i] {
                self.dirty[i] = false;
                self.writebacks += 1;
                let set_idx = (i / ways) as u64;
                let victim_line = self.tags[i] * sets_n + set_idx;
                out.push(PhysAddr(victim_line * self.cfg.line_bytes));
            }
        }
        out
    }
}

// ----------------------------------------------------------------------
// Checkpoint serialization.
// ----------------------------------------------------------------------

impl L1Cache {
    /// Serializes tags, LRU stamps, dirty bits and counters. Geometry is
    /// config; the recent-slot memo is a pure probe accelerator (it never
    /// changes hit/miss outcomes or victim choice) and is not captured.
    pub fn save_state(&self, w: &mut svmsyn_snap::SnapWriter) {
        use svmsyn_snap::Snap;
        self.tags.save(w);
        self.stamps.save(w);
        self.dirty.save(w);
        w.put_u64(self.clock);
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        w.put_u64(self.writebacks);
    }

    /// Rebuilds a cache captured by [`save_state`](Self::save_state) under
    /// the design's `cfg`.
    pub fn restore_state(
        cfg: CacheConfig,
        r: &mut svmsyn_snap::SnapReader<'_>,
    ) -> Result<Self, svmsyn_snap::SnapError> {
        use svmsyn_snap::{Snap, SnapError};
        let mut c = L1Cache::new(cfg);
        let lines = c.tags.len();
        c.tags = Box::<[u64]>::load(r)?;
        c.stamps = Box::<[u64]>::load(r)?;
        c.dirty = Box::<[bool]>::load(r)?;
        if c.tags.len() != lines || c.stamps.len() != lines || c.dirty.len() != lines {
            return Err(SnapError::Corrupt("cache line-array length"));
        }
        c.clock = r.take_u64()?;
        c.hits = r.take_u64()?;
        c.misses = r.take_u64()?;
        c.writebacks = r.take_u64()?;
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = L1Cache::new(CacheConfig::default());
        assert!(matches!(
            c.access(PhysAddr(0x100), false),
            CacheOutcome::Miss { .. }
        ));
        assert_eq!(c.access(PhysAddr(0x104), false), CacheOutcome::Hit);
        assert!(c.hit_rate() > 0.0);
    }

    #[test]
    fn dirty_eviction_reports_victim() {
        let cfg = CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            ways: 1,
        };
        let mut c = L1Cache::new(cfg);
        c.access(PhysAddr(0), true); // dirty line 0 of set 0
                                     // Same set (4 sets, direct mapped): line at 256 maps to set 0.
        match c.access(PhysAddr(256), false) {
            CacheOutcome::Miss { writeback: Some(v) } => assert_eq!(v, PhysAddr(0)),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
    }

    #[test]
    fn drain_dirty_returns_and_clears() {
        let mut c = L1Cache::new(CacheConfig::default());
        c.access(PhysAddr(0), true);
        c.access(PhysAddr(4096), true);
        c.access(PhysAddr(8192), false);
        let mut dirty = c.drain_dirty();
        dirty.sort();
        assert_eq!(dirty, vec![PhysAddr(0), PhysAddr(4096)]);
        assert!(c.drain_dirty().is_empty(), "drain clears dirty bits");
        // Lines stay resident (clean) after draining.
        assert_eq!(c.access(PhysAddr(0), false), CacheOutcome::Hit);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        L1Cache::new(CacheConfig {
            size_bytes: 100,
            line_bytes: 48,
            ways: 1,
        });
    }
}
