//! The retained blocking FCFS bus — the differential oracle for the
//! split-transaction fabric.
//!
//! Before the fabric redesign every master went through
//! `Bus::grant(master, bytes, now) -> (start, done)`: one call-return per
//! transaction, the whole address+data occupancy held on a single FCFS
//! calendar. That model survives here, unchanged, as [`FcfsBus`] so the
//! conformance suite (`tests/fabric_conformance.rs`) can replay
//! proptest-generated multi-master streams against both implementations:
//! with `window = 1, mshrs = 0` the [`SplitFabric`](crate::SplitFabric)
//! must be cycle-identical to this oracle.

use svmsyn_sim::{Cycle, FcfsResource, StatSet};

use crate::fabric::MasterId;

/// Oracle bus parameters (times in fabric cycles).
#[derive(Debug, Clone, PartialEq)]
pub struct BusConfig {
    /// Data bytes transferred per cycle.
    pub width_bytes: u64,
    /// Arbitration + address phase cost per transaction.
    pub arb_cycles: u64,
}

impl Default for BusConfig {
    /// Defaults from `DESIGN.md` §4 (8 B/cycle, 4-cycle arbitration).
    fn default() -> Self {
        BusConfig {
            width_bytes: 8,
            arb_cycles: 4,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct MasterStats {
    transactions: u64,
    bytes: u64,
    wait_cycles: u64,
}

/// The blocking FCFS system bus (the pre-redesign model, kept as oracle).
///
/// # Example
///
/// ```
/// use svmsyn_mem::reference::{BusConfig, FcfsBus};
/// use svmsyn_mem::MasterId;
/// use svmsyn_sim::Cycle;
/// let mut bus = FcfsBus::new(BusConfig::default());
/// let (s0, _d0) = bus.grant(MasterId(0), 64, Cycle(0));
/// let (s1, _d1) = bus.grant(MasterId(1), 64, Cycle(0));
/// assert!(s1 > s0, "second master waits for the first");
/// ```
#[derive(Debug, Clone)]
pub struct FcfsBus {
    cfg: BusConfig,
    cal: FcfsResource,
    masters: Vec<MasterStats>,
}

impl FcfsBus {
    /// Creates an idle bus.
    ///
    /// # Panics
    ///
    /// Panics if `width_bytes` is zero.
    pub fn new(cfg: BusConfig) -> Self {
        assert!(cfg.width_bytes > 0, "bus width must be positive");
        FcfsBus {
            cfg,
            cal: FcfsResource::new("bus"),
            masters: Vec::new(),
        }
    }

    /// The configuration this bus was built with.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// Cycles a transaction of `len` bytes occupies the bus.
    pub fn occupancy(&self, len: u64) -> u64 {
        self.cfg.arb_cycles + len.div_ceil(self.cfg.width_bytes).max(1)
    }

    /// Requests the bus for a `len`-byte transaction by `master` arriving at
    /// `now`. Returns `(grant, release)` times.
    pub fn grant(&mut self, master: MasterId, len: u64, now: Cycle) -> (Cycle, Cycle) {
        let service = self.occupancy(len);
        let (start, done) = self.cal.acquire(now, service);
        let idx = master.0 as usize;
        if idx >= self.masters.len() {
            self.masters.resize(idx + 1, MasterStats::default());
        }
        let m = &mut self.masters[idx];
        m.transactions += 1;
        m.bytes += len;
        m.wait_cycles += (start - now).0;
        (start, done)
    }

    /// Total cycles the bus spent busy.
    pub fn busy_cycles(&self) -> u64 {
        self.cal.busy_cycles()
    }

    /// Bus utilization over `elapsed`.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        self.cal.utilization(elapsed)
    }

    /// Bytes transferred by `master` so far.
    pub fn master_bytes(&self, master: MasterId) -> u64 {
        self.masters.get(master.0 as usize).map_or(0, |m| m.bytes)
    }

    /// Counter snapshot, including per-master breakdowns.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("busy_cycles", self.cal.busy_cycles() as f64);
        s.put("transactions", self.cal.ops() as f64);
        s.put("mean_wait", self.cal.mean_wait());
        s.put("max_wait", self.cal.max_wait() as f64);
        for (i, m) in self.masters.iter().enumerate() {
            s.put(format!("m{i}.transactions"), m.transactions as f64);
            s.put(format!("m{i}.bytes"), m.bytes as f64);
            s.put(format!("m{i}.wait_cycles"), m.wait_cycles as f64);
        }
        s
    }

    /// Resets the calendar and all counters.
    pub fn reset(&mut self) {
        self.cal.reset();
        self.masters.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_includes_arbitration() {
        let bus = FcfsBus::new(BusConfig::default());
        assert_eq!(bus.occupancy(8), 4 + 1);
        assert_eq!(bus.occupancy(64), 4 + 8);
        assert_eq!(bus.occupancy(1), 4 + 1);
        assert_eq!(
            bus.occupancy(0),
            4 + 1,
            "empty transaction still arbitrates"
        );
    }

    #[test]
    fn masters_contend_fcfs() {
        let mut bus = FcfsBus::new(BusConfig::default());
        let (s0, d0) = bus.grant(MasterId(0), 64, Cycle(0));
        let (s1, d1) = bus.grant(MasterId(1), 64, Cycle(0));
        assert_eq!(s0, Cycle(0));
        assert_eq!(s1, d0);
        assert_eq!(d1 - s1, d0 - s0);
    }

    #[test]
    fn per_master_accounting() {
        let mut bus = FcfsBus::new(BusConfig::default());
        bus.grant(MasterId(0), 64, Cycle(0));
        bus.grant(MasterId(2), 32, Cycle(0));
        assert_eq!(bus.master_bytes(MasterId(0)), 64);
        assert_eq!(bus.master_bytes(MasterId(1)), 0);
        assert_eq!(bus.master_bytes(MasterId(2)), 32);
        let s = bus.stats();
        assert_eq!(s.get("m2.bytes"), Some(32.0));
        assert!(s.get("m2.wait_cycles").unwrap() > 0.0);
    }

    #[test]
    fn utilization_and_reset() {
        let mut bus = FcfsBus::new(BusConfig::default());
        bus.grant(MasterId(0), 8, Cycle(0));
        assert!(bus.utilization(Cycle(10)) > 0.0);
        assert_eq!(bus.busy_cycles(), 5);
        bus.reset();
        assert_eq!(bus.busy_cycles(), 0);
        assert_eq!(bus.master_bytes(MasterId(0)), 0);
    }
}
