//! The byte-accurate sparse backing store.
//!
//! Physical memory contents are real: kernels read and write actual bytes,
//! the page-table walker decodes actual PTEs, and integration tests compare
//! accelerator output bytes against software references. Frames are allocated
//! lazily so a 512 MiB physical space costs only what is touched.

use crate::addr::{PhysAddr, PAGE_MASK, PAGE_SHIFT, PAGE_SIZE};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A multiplicative (Fibonacci) hasher for frame numbers: frame lookups sit
/// on the simulator's per-access hot path, where SipHash's per-lookup setup
/// dominates the table probe itself. Not DoS-resistant — keys are simulated
/// frame numbers, not attacker input.
#[derive(Debug, Default, Clone)]
pub struct FrameHasher(u64);

impl Hasher for FrameHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut h = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        self.0 = h;
    }
}

type FrameIndex = HashMap<u64, u32, BuildHasherDefault<FrameHasher>>;

/// Slots in the direct-mapped frame-lookup memo (power of two).
const MEMO_SLOTS: usize = 16;
/// Memo slot sentinel: no frame cached.
const MEMO_EMPTY: u64 = u64::MAX;

/// A sparse, byte-accurate physical memory image.
///
/// Frame payloads live in an append-only arena (`pages`) indexed through a
/// frame-number map, with a small direct-mapped memo short-circuiting the
/// map for recently touched frames — the simulator hot loop streams over a
/// handful of frames at a time, so most accesses never reach the map.
///
/// # Example
///
/// ```
/// use svmsyn_mem::{PhysAddr, SparseMemory};
/// let mut m = SparseMemory::new(1 << 20);
/// m.write_u32(PhysAddr(0x100), 0xDEAD_BEEF);
/// assert_eq!(m.read_u32(PhysAddr(0x100)), 0xDEAD_BEEF);
/// ```
#[derive(Debug, Clone)]
pub struct SparseMemory {
    index: FrameIndex,
    pages: Vec<Box<[u8]>>,
    /// `(frame, arena index)` memo, direct-mapped by `frame % MEMO_SLOTS`.
    /// Interior-mutable so reads can refresh it; arena indices are stable
    /// (frames are never removed), so entries never go stale.
    memo: [std::cell::Cell<(u64, u32)>; MEMO_SLOTS],
    size: u64,
    /// Dirty-frame journal for the sharded simulation core: when enabled,
    /// every frame that passes through [`frame_mut`](Self::frame_mut) is
    /// recorded so window barriers can fold only the frames a shard actually
    /// touched. Not part of the snapshot format — it is transient merge
    /// bookkeeping, never simulated state.
    journal: Option<std::collections::BTreeSet<u64>>,
}

impl SparseMemory {
    /// Creates a zero-initialized memory of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not page-aligned.
    pub fn new(size: u64) -> Self {
        assert!(
            size > 0 && size & PAGE_MASK == 0,
            "size must be page-aligned"
        );
        SparseMemory {
            index: FrameIndex::default(),
            pages: Vec::new(),
            memo: [const { std::cell::Cell::new((MEMO_EMPTY, 0)) }; MEMO_SLOTS],
            size,
            journal: None,
        }
    }

    /// Starts (or clears) dirty-frame journaling. Every subsequent mutation
    /// records its frame number until [`take_journal`](Self::take_journal)
    /// drains the set.
    pub fn enable_journal(&mut self) {
        self.journal = Some(std::collections::BTreeSet::new());
    }

    /// Drains the dirty-frame journal, returning the touched frame numbers in
    /// ascending order. Returns an empty vec when journaling is disabled.
    /// Journaling stays enabled after the drain.
    pub fn take_journal(&mut self) -> Vec<u64> {
        match &mut self.journal {
            Some(j) => std::mem::take(j).into_iter().collect(),
            None => Vec::new(),
        }
    }

    /// Total addressable bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Number of frames actually materialized.
    pub fn resident_frames(&self) -> usize {
        self.pages.len()
    }

    fn check(&self, addr: PhysAddr, len: u64) {
        assert!(
            addr.0.checked_add(len).is_some_and(|end| end <= self.size),
            "physical access out of range: {addr} + {len} > {}",
            self.size
        );
    }

    /// Looks up a materialized frame, memo first.
    pub(crate) fn frame(&self, frame: u64) -> Option<&[u8]> {
        let slot = &self.memo[(frame as usize) & (MEMO_SLOTS - 1)];
        let (k, idx) = slot.get();
        if k == frame {
            return Some(&self.pages[idx as usize]);
        }
        let idx = *self.index.get(&frame)?;
        slot.set((frame, idx));
        Some(&self.pages[idx as usize])
    }

    pub(crate) fn frame_mut(&mut self, frame: u64) -> &mut [u8] {
        if let Some(j) = &mut self.journal {
            j.insert(frame);
        }
        let slot = (frame as usize) & (MEMO_SLOTS - 1);
        let (k, idx) = self.memo[slot].get();
        let idx = if k == frame {
            idx
        } else {
            let idx = match self.index.get(&frame) {
                Some(&i) => i,
                None => {
                    let i = self.pages.len() as u32;
                    self.pages
                        .push(vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
                    self.index.insert(frame, i);
                    i
                }
            };
            self.memo[slot].set((frame, idx));
            idx
        };
        &mut self.pages[idx as usize]
    }

    /// Copies `buf.len()` bytes starting at `addr` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size (a simulator bug: all
    /// addresses here are post-translation physical addresses).
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) {
        self.check(addr, buf.len() as u64);
        // Word-sized single-frame accesses dominate the simulator hot path.
        let in_page = (addr.0 & PAGE_MASK) as usize;
        if buf.len() <= 8 && in_page + buf.len() <= PAGE_SIZE as usize {
            match self.frame(addr.0 >> PAGE_SHIFT) {
                Some(data) => {
                    for (i, b) in buf.iter_mut().enumerate() {
                        *b = data[in_page + i];
                    }
                }
                None => buf.fill(0),
            }
            return;
        }
        let mut off = 0usize;
        while off < buf.len() {
            let cur = addr.0 + off as u64;
            let frame = cur >> PAGE_SHIFT;
            let in_page = (cur & PAGE_MASK) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(buf.len() - off);
            match self.frame(frame) {
                // Word-sized accesses dominate the simulator hot path; a
                // bounded byte loop compiles to straight-line code instead
                // of a libc memcpy call for a runtime-length slice copy.
                #[allow(clippy::manual_memcpy)]
                Some(data) if n <= 8 => {
                    for i in 0..n {
                        buf[off + i] = data[in_page + i];
                    }
                }
                Some(data) => buf[off..off + n].copy_from_slice(&data[in_page..in_page + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
        }
    }

    /// Copies `data` into memory starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn write(&mut self, addr: PhysAddr, data: &[u8]) {
        self.check(addr, data.len() as u64);
        let in_page = (addr.0 & PAGE_MASK) as usize;
        if data.len() <= 8 && in_page + data.len() <= PAGE_SIZE as usize {
            let dst = self.frame_mut(addr.0 >> PAGE_SHIFT);
            for (i, &b) in data.iter().enumerate() {
                dst[in_page + i] = b;
            }
            return;
        }
        let mut off = 0usize;
        while off < data.len() {
            let cur = addr.0 + off as u64;
            let frame = cur >> PAGE_SHIFT;
            let in_page = (cur & PAGE_MASK) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(data.len() - off);
            let dst = self.frame_mut(frame);
            if n <= 8 {
                // Bounded byte loop: no memcpy call for word-sized writes.
                #[allow(clippy::manual_memcpy)]
                for i in 0..n {
                    dst[in_page + i] = data[off + i];
                }
            } else {
                dst[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            }
            off += n;
        }
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: PhysAddr) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: PhysAddr, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: PhysAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: PhysAddr, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Fills `len` bytes starting at `addr` with `byte` (used by the OS to
    /// zero fresh anonymous pages).
    pub fn fill(&mut self, addr: PhysAddr, len: u64, byte: u8) {
        self.check(addr, len);
        let mut off = 0u64;
        while off < len {
            let cur = addr.0 + off;
            let frame = cur >> PAGE_SHIFT;
            let in_page = (cur & PAGE_MASK) as usize;
            let n = (PAGE_SIZE - in_page as u64).min(len - off);
            if byte == 0 && !self.index.contains_key(&frame) {
                // Unmaterialized frames already read as zero.
            } else {
                self.frame_mut(frame)[in_page..in_page + n as usize].fill(byte);
            }
            off += n;
        }
    }
}

// ----------------------------------------------------------------------
// Checkpoint serialization.
// ----------------------------------------------------------------------

impl SparseMemory {
    /// Serializes the memory image: total size, then every materialized
    /// frame's `(frame number, page bytes)`, **sorted by frame number** —
    /// `HashMap` iteration order is nondeterministic and must never leak
    /// into the byte-stable snapshot format. The lookup memo is a pure
    /// performance cache (it never changes access results) and is not
    /// captured.
    pub fn save_state(&self, w: &mut svmsyn_snap::SnapWriter) {
        w.put_u64(self.size);
        let mut frames: Vec<u64> = self.index.keys().copied().collect();
        frames.sort_unstable();
        w.put_usize(frames.len());
        for f in frames {
            w.put_u64(f);
            w.put_raw(&self.pages[self.index[&f] as usize]);
        }
    }

    /// Rebuilds a memory image captured by [`save_state`](Self::save_state).
    pub fn restore_state(
        r: &mut svmsyn_snap::SnapReader<'_>,
    ) -> Result<Self, svmsyn_snap::SnapError> {
        use svmsyn_snap::SnapError;
        let size = r.take_u64()?;
        if size == 0 || size & PAGE_MASK != 0 {
            return Err(SnapError::Corrupt("memory size not page-aligned"));
        }
        let mut m = SparseMemory::new(size);
        let n = r.take_len()?;
        for _ in 0..n {
            let frame = r.take_u64()?;
            if frame >= size >> PAGE_SHIFT {
                return Err(SnapError::Corrupt("frame number beyond memory size"));
            }
            let bytes = r.take_raw(PAGE_SIZE as usize)?;
            m.frame_mut(frame).copy_from_slice(bytes);
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_reads_zero() {
        let m = SparseMemory::new(1 << 16);
        let mut buf = [0xFFu8; 16];
        m.read(PhysAddr(0x123), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(m.resident_frames(), 0);
        assert_eq!(m.size(), 1 << 16);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = SparseMemory::new(1 << 16);
        let data: Vec<u8> = (0..64).collect();
        m.write(PhysAddr(100), &data);
        let mut back = vec![0u8; 64];
        m.read(PhysAddr(100), &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn cross_page_roundtrip() {
        let mut m = SparseMemory::new(1 << 16);
        let data: Vec<u8> = (0..255).map(|i| i as u8).collect();
        let base = PhysAddr(PAGE_SIZE - 100);
        m.write(base, &data);
        let mut back = vec![0u8; data.len()];
        m.read(base, &mut back);
        assert_eq!(back, data);
        assert_eq!(m.resident_frames(), 2);
    }

    #[test]
    fn typed_accessors() {
        let mut m = SparseMemory::new(1 << 16);
        m.write_u32(PhysAddr(8), 0x1234_5678);
        assert_eq!(m.read_u32(PhysAddr(8)), 0x1234_5678);
        m.write_u64(PhysAddr(16), 0xA1B2_C3D4_E5F6_0718);
        assert_eq!(m.read_u64(PhysAddr(16)), 0xA1B2_C3D4_E5F6_0718);
        // little-endian layout
        let mut b = [0u8; 4];
        m.read(PhysAddr(8), &mut b);
        assert_eq!(b, [0x78, 0x56, 0x34, 0x12]);
    }

    #[test]
    fn fill_and_zero_fill() {
        let mut m = SparseMemory::new(1 << 16);
        m.fill(PhysAddr(0), 2 * PAGE_SIZE, 0);
        assert_eq!(m.resident_frames(), 0, "zero fill of fresh frames is free");
        m.fill(PhysAddr(PAGE_SIZE - 4), 8, 0xAB);
        let mut buf = [0u8; 8];
        m.read(PhysAddr(PAGE_SIZE - 4), &mut buf);
        assert_eq!(buf, [0xAB; 8]);
        m.fill(PhysAddr(PAGE_SIZE - 4), 8, 0);
        m.read(PhysAddr(PAGE_SIZE - 4), &mut buf);
        assert_eq!(buf, [0; 8]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        let m = SparseMemory::new(1 << 16);
        let mut buf = [0u8; 8];
        m.read(PhysAddr((1 << 16) - 4), &mut buf);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_size_panics() {
        SparseMemory::new(1000);
    }
}
