//! The byte-accurate sparse backing store.
//!
//! Physical memory contents are real: kernels read and write actual bytes,
//! the page-table walker decodes actual PTEs, and integration tests compare
//! accelerator output bytes against software references. Frames are allocated
//! lazily so a 512 MiB physical space costs only what is touched.

use crate::addr::{PhysAddr, PAGE_MASK, PAGE_SHIFT, PAGE_SIZE};
use std::collections::HashMap;

/// A sparse, byte-accurate physical memory image.
///
/// # Example
///
/// ```
/// use svmsyn_mem::{PhysAddr, SparseMemory};
/// let mut m = SparseMemory::new(1 << 20);
/// m.write_u32(PhysAddr(0x100), 0xDEAD_BEEF);
/// assert_eq!(m.read_u32(PhysAddr(0x100)), 0xDEAD_BEEF);
/// ```
#[derive(Debug, Clone)]
pub struct SparseMemory {
    frames: HashMap<u64, Box<[u8]>>,
    size: u64,
}

impl SparseMemory {
    /// Creates a zero-initialized memory of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not page-aligned.
    pub fn new(size: u64) -> Self {
        assert!(
            size > 0 && size & PAGE_MASK == 0,
            "size must be page-aligned"
        );
        SparseMemory {
            frames: HashMap::new(),
            size,
        }
    }

    /// Total addressable bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Number of frames actually materialized.
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    fn check(&self, addr: PhysAddr, len: u64) {
        assert!(
            addr.0.checked_add(len).is_some_and(|end| end <= self.size),
            "physical access out of range: {addr} + {len} > {}",
            self.size
        );
    }

    fn frame_mut(&mut self, frame: u64) -> &mut [u8] {
        self.frames
            .entry(frame)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Copies `buf.len()` bytes starting at `addr` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size (a simulator bug: all
    /// addresses here are post-translation physical addresses).
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) {
        self.check(addr, buf.len() as u64);
        let mut off = 0usize;
        while off < buf.len() {
            let cur = addr.0 + off as u64;
            let frame = cur >> PAGE_SHIFT;
            let in_page = (cur & PAGE_MASK) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(buf.len() - off);
            match self.frames.get(&frame) {
                Some(data) => buf[off..off + n].copy_from_slice(&data[in_page..in_page + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
        }
    }

    /// Copies `data` into memory starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn write(&mut self, addr: PhysAddr, data: &[u8]) {
        self.check(addr, data.len() as u64);
        let mut off = 0usize;
        while off < data.len() {
            let cur = addr.0 + off as u64;
            let frame = cur >> PAGE_SHIFT;
            let in_page = (cur & PAGE_MASK) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(data.len() - off);
            self.frame_mut(frame)[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            off += n;
        }
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: PhysAddr) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: PhysAddr, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: PhysAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: PhysAddr, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Fills `len` bytes starting at `addr` with `byte` (used by the OS to
    /// zero fresh anonymous pages).
    pub fn fill(&mut self, addr: PhysAddr, len: u64, byte: u8) {
        self.check(addr, len);
        let mut off = 0u64;
        while off < len {
            let cur = addr.0 + off;
            let frame = cur >> PAGE_SHIFT;
            let in_page = (cur & PAGE_MASK) as usize;
            let n = (PAGE_SIZE - in_page as u64).min(len - off);
            if byte == 0 && !self.frames.contains_key(&frame) {
                // Unmaterialized frames already read as zero.
            } else {
                self.frame_mut(frame)[in_page..in_page + n as usize].fill(byte);
            }
            off += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_reads_zero() {
        let m = SparseMemory::new(1 << 16);
        let mut buf = [0xFFu8; 16];
        m.read(PhysAddr(0x123), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(m.resident_frames(), 0);
        assert_eq!(m.size(), 1 << 16);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = SparseMemory::new(1 << 16);
        let data: Vec<u8> = (0..64).collect();
        m.write(PhysAddr(100), &data);
        let mut back = vec![0u8; 64];
        m.read(PhysAddr(100), &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn cross_page_roundtrip() {
        let mut m = SparseMemory::new(1 << 16);
        let data: Vec<u8> = (0..255).map(|i| i as u8).collect();
        let base = PhysAddr(PAGE_SIZE - 100);
        m.write(base, &data);
        let mut back = vec![0u8; data.len()];
        m.read(base, &mut back);
        assert_eq!(back, data);
        assert_eq!(m.resident_frames(), 2);
    }

    #[test]
    fn typed_accessors() {
        let mut m = SparseMemory::new(1 << 16);
        m.write_u32(PhysAddr(8), 0x1234_5678);
        assert_eq!(m.read_u32(PhysAddr(8)), 0x1234_5678);
        m.write_u64(PhysAddr(16), 0xA1B2_C3D4_E5F6_0718);
        assert_eq!(m.read_u64(PhysAddr(16)), 0xA1B2_C3D4_E5F6_0718);
        // little-endian layout
        let mut b = [0u8; 4];
        m.read(PhysAddr(8), &mut b);
        assert_eq!(b, [0x78, 0x56, 0x34, 0x12]);
    }

    #[test]
    fn fill_and_zero_fill() {
        let mut m = SparseMemory::new(1 << 16);
        m.fill(PhysAddr(0), 2 * PAGE_SIZE, 0);
        assert_eq!(m.resident_frames(), 0, "zero fill of fresh frames is free");
        m.fill(PhysAddr(PAGE_SIZE - 4), 8, 0xAB);
        let mut buf = [0u8; 8];
        m.read(PhysAddr(PAGE_SIZE - 4), &mut buf);
        assert_eq!(buf, [0xAB; 8]);
        m.fill(PhysAddr(PAGE_SIZE - 4), 8, 0);
        m.read(PhysAddr(PAGE_SIZE - 4), &mut buf);
        assert_eq!(buf, [0; 8]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        let m = SparseMemory::new(1 << 16);
        let mut buf = [0u8; 8];
        m.read(PhysAddr((1 << 16) - 4), &mut buf);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_size_panics() {
        SparseMemory::new(1000);
    }
}
