//! Banked DRAM timing with an open-row (row buffer) policy.
//!
//! The model captures what matters for the evaluation: a row-buffer *hit*
//! costs the CAS latency only, a *miss* adds precharge + activate, banks
//! service requests independently and FCFS, and the data beats stream at the
//! DRAM interface width. Absolute parameters are configurable and documented
//! in [`DramConfig`].

use svmsyn_sim::{Cycle, FcfsResource, StatSet};

use crate::addr::PhysAddr;

/// DRAM geometry and timing parameters (all times in fabric cycles).
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Number of independent banks.
    pub banks: u32,
    /// Row-buffer size per bank, bytes. Must be a power of two.
    pub row_bytes: u64,
    /// Access latency on a row-buffer hit (CAS).
    pub t_row_hit: u64,
    /// Access latency on a row-buffer miss (precharge + activate + CAS).
    pub t_row_miss: u64,
    /// Bytes transferred per cycle once streaming.
    pub width_bytes: u64,
}

impl Default for DramConfig {
    /// Defaults sized for the Zynq-era platform in `DESIGN.md` §4.
    fn default() -> Self {
        DramConfig {
            banks: 8,
            row_bytes: 8 * 1024,
            t_row_hit: 20,
            t_row_miss: 48,
            width_bytes: 8,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Bank {
    pub(crate) open_row: Option<u64>,
    pub(crate) cal: FcfsResource,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
}

/// The banked DRAM timing model.
///
/// # Example
///
/// ```
/// use svmsyn_mem::{Dram, DramConfig, PhysAddr};
/// use svmsyn_sim::Cycle;
/// let mut d = Dram::new(DramConfig::default());
/// let first = d.access(PhysAddr(0), 64, Cycle(0));
/// let second = d.access(PhysAddr(64), 64, first); // same row: hit, cheaper
/// assert!(second - first < first - Cycle(0));
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    pub(crate) banks: Vec<Bank>,
    pub(crate) accesses: u64,
    pub(crate) bytes: u64,
}

impl Dram {
    /// Creates a DRAM model with all row buffers closed.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or `row_bytes`/`width_bytes` are not powers
    /// of two.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.banks > 0, "need at least one bank");
        assert!(
            cfg.row_bytes.is_power_of_two(),
            "row_bytes must be a power of two"
        );
        assert!(
            cfg.width_bytes.is_power_of_two(),
            "width_bytes must be a power of two"
        );
        let banks = (0..cfg.banks)
            .map(|i| Bank {
                open_row: None,
                cal: FcfsResource::new(format!("dram.bank{i}")),
                hits: 0,
                misses: 0,
            })
            .collect();
        Dram {
            cfg,
            banks,
            accesses: 0,
            bytes: 0,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    fn bank_and_row(&self, addr: PhysAddr) -> (usize, u64) {
        // Row-interleaved banking: consecutive rows map to consecutive banks,
        // so streaming accesses rotate across banks while staying row-local
        // inside each row.
        let row_global = addr.0 / self.cfg.row_bytes;
        let bank = (row_global % self.cfg.banks as u64) as usize;
        let row = row_global / self.cfg.banks as u64;
        (bank, row)
    }

    /// Services an access of `len` bytes at `addr`, arriving at `now`.
    /// Returns the completion time. The access is assumed not to cross a row
    /// boundary (callers split larger transfers into bus-sized bursts well
    /// below the 8 KiB row).
    pub fn access(&mut self, addr: PhysAddr, len: u64, now: Cycle) -> Cycle {
        let (bank_idx, row) = self.bank_and_row(addr);
        let bank = &mut self.banks[bank_idx];
        let hit = bank.open_row == Some(row);
        let lat = if hit {
            bank.hits += 1;
            self.cfg.t_row_hit
        } else {
            bank.misses += 1;
            bank.open_row = Some(row);
            self.cfg.t_row_miss
        };
        let beats = len.div_ceil(self.cfg.width_bytes).max(1);
        let (_, done) = bank.cal.acquire(now, lat + beats);
        self.accesses += 1;
        self.bytes += len;
        done
    }

    /// Row-buffer hits across all banks.
    pub fn row_hits(&self) -> u64 {
        self.banks.iter().map(|b| b.hits).sum()
    }

    /// Row-buffer misses across all banks.
    pub fn row_misses(&self) -> u64 {
        self.banks.iter().map(|b| b.misses).sum()
    }

    /// Snapshot of counters for reporting.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("accesses", self.accesses as f64);
        s.put("bytes", self.bytes as f64);
        s.put("row_hits", self.row_hits() as f64);
        s.put("row_misses", self.row_misses() as f64);
        let total = self.row_hits() + self.row_misses();
        s.put(
            "row_hit_rate",
            if total == 0 {
                0.0
            } else {
                self.row_hits() as f64 / total as f64
            },
        );
        s
    }
}

// ----------------------------------------------------------------------
// Checkpoint serialization.
// ----------------------------------------------------------------------

impl Dram {
    /// Serializes per-bank open rows, calendars and hit/miss counters plus
    /// the aggregate counters; geometry comes from config at restore.
    pub fn save_state(&self, w: &mut svmsyn_snap::SnapWriter) {
        use svmsyn_snap::Snap;
        w.put_u64(self.accesses);
        w.put_u64(self.bytes);
        w.put_usize(self.banks.len());
        for b in &self.banks {
            b.open_row.save(w);
            b.cal.save(w);
            w.put_u64(b.hits);
            w.put_u64(b.misses);
        }
    }

    /// Rebuilds a DRAM model captured by [`save_state`](Self::save_state)
    /// under the design's `cfg`.
    pub fn restore_state(
        cfg: DramConfig,
        r: &mut svmsyn_snap::SnapReader<'_>,
    ) -> Result<Self, svmsyn_snap::SnapError> {
        use svmsyn_snap::{Snap, SnapError};
        let mut d = Dram::new(cfg);
        d.accesses = r.take_u64()?;
        d.bytes = r.take_u64()?;
        if r.take_len()? != d.banks.len() {
            return Err(SnapError::Corrupt("dram bank count"));
        }
        for b in &mut d.banks {
            b.open_row = Option::<u64>::load(r)?;
            b.cal = svmsyn_sim::FcfsResource::load(r)?;
            b.hits = r.take_u64()?;
            b.misses = r.take_u64()?;
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    #[test]
    fn first_access_misses_row() {
        let mut d = dram();
        d.access(PhysAddr(0), 8, Cycle(0));
        assert_eq!(d.row_misses(), 1);
        assert_eq!(d.row_hits(), 0);
    }

    #[test]
    fn same_row_hits() {
        let mut d = dram();
        let t1 = d.access(PhysAddr(0), 8, Cycle(0));
        let t2 = d.access(PhysAddr(8), 8, t1);
        assert_eq!(d.row_hits(), 1);
        // hit latency strictly lower than miss latency
        assert!((t2 - t1) < (t1 - Cycle(0)));
    }

    #[test]
    fn different_rows_same_bank_miss() {
        let cfg = DramConfig::default();
        let stride = cfg.row_bytes * cfg.banks as u64; // next row in the same bank
        let mut d = Dram::new(cfg);
        d.access(PhysAddr(0), 8, Cycle(0));
        d.access(PhysAddr(stride), 8, Cycle(100));
        assert_eq!(d.row_misses(), 2);
    }

    #[test]
    fn adjacent_rows_hit_different_banks() {
        let cfg = DramConfig::default();
        let row = cfg.row_bytes;
        let mut d = Dram::new(cfg);
        let a = d.access(PhysAddr(0), 8, Cycle(0));
        // Next row maps to the next bank, so it does not queue behind bank 0.
        let b = d.access(PhysAddr(row), 8, Cycle(0));
        assert_eq!(a, b, "independent banks service concurrently");
    }

    #[test]
    fn bank_contention_serializes() {
        let mut d = dram();
        let a = d.access(PhysAddr(0), 8, Cycle(0));
        let b = d.access(PhysAddr(16), 8, Cycle(0)); // same bank & row: queued
        assert!(b > a);
    }

    #[test]
    fn beats_scale_with_length() {
        let mut d = dram();
        let short = d.access(PhysAddr(0), 8, Cycle(0)) - Cycle(0);
        let mut d2 = dram();
        let long = d2.access(PhysAddr(0), 512, Cycle(0)) - Cycle(0);
        assert!(long > short);
        assert_eq!(long.0 - short.0, (512 / 8) - 1);
    }

    #[test]
    fn stats_snapshot() {
        let mut d = dram();
        d.access(PhysAddr(0), 64, Cycle(0));
        d.access(PhysAddr(64), 64, Cycle(100));
        let s = d.stats();
        assert_eq!(s.get("accesses"), Some(2.0));
        assert_eq!(s.get("bytes"), Some(128.0));
        assert_eq!(s.get("row_hit_rate"), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_row_bytes_panics() {
        Dram::new(DramConfig {
            row_bytes: 1000,
            ..DramConfig::default()
        });
    }
}
