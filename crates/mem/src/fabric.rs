//! The split-transaction memory fabric.
//!
//! The fabric replaces the blocking `Bus::grant()` call-return of the early
//! model (retained as [`reference::FcfsBus`](crate::reference::FcfsBus))
//! with an **issue/complete** transaction interface: a master
//! [`issue`](SplitFabric::issue)s a [`TxnDesc`] and receives a [`TxnId`];
//! completion is observed later via [`poll`](SplitFabric::poll) or by
//! draining the per-master completion queue. Three mechanisms let
//! independent masters overlap where the blocking bus serialized them:
//!
//! * a per-master **outstanding window** (configurable depth): up to
//!   `window` transactions of one master may be in flight at once, so a
//!   master's own DRAM latencies overlap instead of round-tripping;
//! * **MSHR-style miss registers**: concurrent reads that land on the same
//!   `mshr_line_bytes` line — from *any* master — merge onto the
//!   transaction already in flight and complete with it, paying no second
//!   bus or DRAM occupancy;
//! * separate **address and data-beat phases**: the address phase occupies
//!   the address channel for `arb_cycles` only, the data beats occupy the
//!   data channel once DRAM delivers — so master B's address phase and data
//!   beats interleave with master A's DRAM latency instead of queueing
//!   behind A's whole transaction.
//!
//! **The degenerate point is the old bus.** With `window == 1` and
//! `mshrs == 0` ([`FabricConfig::blocking`]) the fabric holds the (unified)
//! channel for the whole address+data occupancy and completes at
//! `max(bus_done, bank_done)` — cycle-identical to the FCFS oracle. The
//! differential suite in `tests/fabric_conformance.rs` replays
//! proptest-generated multi-master streams against
//! [`reference::FcfsBus`](crate::reference::FcfsBus) to pin this down.
//!
//! Timing is calendar-analytic like the rest of the stack: completion times
//! are computed at issue. Channel slots are granted in *issue order* (the
//! in-order slotting of a real pipelined bus without reordering buffers), so
//! no master starves — the fairness property tests assert bounded per-
//! transaction latency under adversarial streams.

use std::collections::VecDeque;

use svmsyn_sim::{Cycle, FcfsResource, StatSet};

use crate::addr::PhysAddr;
use crate::dram::Dram;

/// Identifies a bus master for windowing and accounting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MasterId(pub u16);

impl std::fmt::Display for MasterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Direction of a transaction (reads are MSHR-mergeable, writes are not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// A read: data flows memory → master.
    Read,
    /// A write (or writeback): data flows master → memory.
    Write,
}

/// One transaction request, as handed to [`SplitFabric::issue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnDesc {
    /// The issuing master.
    pub master: MasterId,
    /// Physical start address.
    pub addr: PhysAddr,
    /// Transfer length in bytes (at most one burst; callers split larger
    /// transfers).
    pub bytes: u64,
    /// Read or write.
    pub kind: TxnKind,
}

/// Handle of an issued transaction, used to poll its completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxnId(u64);

/// Fabric parameters (times in fabric cycles).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FabricConfig {
    /// Data bytes transferred per cycle.
    pub width_bytes: u64,
    /// Address-phase (arbitration) cost per transaction.
    pub arb_cycles: u64,
    /// Per-master outstanding-transaction window. `1` means a blocking
    /// master; together with `mshrs == 0` it selects the FCFS-oracle path.
    pub window: u32,
    /// Miss-status holding registers: concurrently tracked in-flight read
    /// lines. `0` disables same-line merging.
    pub mshrs: u32,
    /// Merge granularity of the MSHRs in bytes (power of two).
    pub mshr_line_bytes: u64,
}

impl Default for FabricConfig {
    /// The `DESIGN.md` §4 channel (8 B/cycle, 4-cycle address phase) with a
    /// modest AXI-class outstanding capability: 4-deep windows, 4 MSHRs over
    /// 64 B lines.
    fn default() -> Self {
        FabricConfig {
            width_bytes: 8,
            arb_cycles: 4,
            window: 4,
            mshrs: 4,
            mshr_line_bytes: 64,
        }
    }
}

impl FabricConfig {
    /// The degenerate blocking configuration: depth-1 windows, no MSHRs.
    /// Cycle-identical to [`reference::FcfsBus`](crate::reference::FcfsBus).
    pub fn blocking() -> Self {
        FabricConfig {
            window: 1,
            mshrs: 0,
            ..FabricConfig::default()
        }
    }

    /// A blocking/split variant of `self` with the given outstanding depth
    /// and MSHR count (the DSE fabric-axis constructor).
    pub fn with_outstanding(&self, window: u32, mshrs: u32) -> Self {
        FabricConfig {
            window,
            mshrs,
            ..self.clone()
        }
    }

    /// Whether this configuration runs the split (phase-decoupled) path.
    /// Depth-1 windows with no MSHRs degenerate to the held-bus oracle.
    pub fn split(&self) -> bool {
        self.window > 1 || self.mshrs > 0
    }

    /// Data beats a transfer of `len` bytes occupies the data channel for.
    pub fn beats(&self, len: u64) -> u64 {
        len.div_ceil(self.width_bytes).max(1)
    }
}

/// Depth of the transaction-record ring: completions must be polled within
/// this many subsequently issued transactions (every in-tree master polls
/// immediately or within one batch).
const RECORD_RING: usize = 4096;

/// Per-master completion-queue depth beyond the window (a hardware
/// completion FIFO is sized to the window; the slack absorbs merged reads).
const COMPLETION_SLACK: usize = 8;

#[derive(Debug, Clone, Copy)]
pub(crate) struct TxnRecord {
    pub(crate) id: u64,
    pub(crate) completion: Cycle,
    pub(crate) next_issue: Cycle,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct MasterStats {
    transactions: u64,
    bytes: u64,
    /// Cycles spent waiting for the address channel (post-window).
    wait_cycles: u64,
    /// Cycles transaction issue was deferred because the window was full.
    window_stall_cycles: u64,
    /// Reads merged onto an in-flight same-line transaction.
    merges: u64,
    /// Σ (completion − arrival): the occupancy integral. Divided by the
    /// master's busy span this is its mean outstanding depth.
    inflight_cycles: u64,
    /// Completions evicted from the bounded completion FIFO before a
    /// FIFO-consuming master drained them — a lost event, asserted zero by
    /// the conformance suite. Analytic (poll-only) masters never consume
    /// the FIFO and are not counted.
    dropped_completions: u64,
    first_issue: Option<Cycle>,
    last_completion: Cycle,
}

#[derive(Debug, Clone)]
pub(crate) struct MasterState {
    /// Completion times of the last `window` transactions, a ring indexed by
    /// issue count: transaction `n` may not issue before transaction
    /// `n − window` completed.
    window_ring: Vec<Cycle>,
    issued: u64,
    /// Undrained completions, oldest first, capped at
    /// `window + COMPLETION_SLACK`.
    completions: VecDeque<(TxnId, Cycle)>,
    /// Whether this master has ever drained its completion FIFO. Analytic
    /// masters that only `poll` never consume the FIFO, so its recycling
    /// is not a lost event for them; drops are only counted for consumers.
    fifo_consumer: bool,
    /// Registered completion waiters `(txn, completion)`, in registration
    /// order. A waiter survives until [`SplitFabric::drain_woken`] removes
    /// it — it never ages out, so a registered wakeup cannot be lost.
    waiters: Vec<(TxnId, Cycle)>,
    stats: MasterStats,
}

impl MasterState {
    fn new(window: u32) -> Self {
        MasterState {
            window_ring: vec![Cycle::ZERO; window.max(1) as usize],
            issued: 0,
            completions: VecDeque::new(),
            fifo_consumer: false,
            waiters: Vec::new(),
            stats: MasterStats::default(),
        }
    }
}

/// The split-transaction fabric arbiter: address channel, data channel,
/// per-master windows, and the MSHR file.
///
/// # Example
///
/// ```
/// use svmsyn_mem::{Dram, DramConfig, FabricConfig, MasterId, PhysAddr, SplitFabric, TxnDesc, TxnKind};
/// use svmsyn_sim::Cycle;
/// let mut fabric = SplitFabric::new(FabricConfig::default());
/// let mut dram = Dram::new(DramConfig::default());
/// let desc = |m: u16, addr: u64| TxnDesc {
///     master: MasterId(m),
///     addr: PhysAddr(addr),
///     bytes: 64,
///     kind: TxnKind::Read,
/// };
/// // Two independent masters issue at the same cycle and stay outstanding.
/// let a = fabric.issue(&mut dram, desc(0, 0x0000), Cycle(0));
/// let b = fabric.issue(&mut dram, desc(1, 0x4000), Cycle(0));
/// assert!(fabric.poll(b) > Cycle(0));
/// assert!(fabric.poll(a) > Cycle(0));
/// ```
#[derive(Debug, Clone)]
pub struct SplitFabric {
    cfg: FabricConfig,
    /// Address channel; in the blocking configuration it is the unified bus
    /// and holds each transaction for the full address+data occupancy.
    pub(crate) addr_bus: FcfsResource,
    /// Data channel (split mode only).
    pub(crate) data_bus: FcfsResource,
    pub(crate) masters: Vec<MasterState>,
    /// In-flight read lines: `(line base, completion)`.
    pub(crate) mshrs: Vec<(u64, Cycle)>,
    /// Every in-flight transaction's `(master, first line, last line,
    /// completion)`. A merged read's completion is clamped to no earlier
    /// than its own master's in-flight traffic on the same line — the MSHR
    /// bypass must never reorder a master's same-line transactions
    /// (reads, writes, or earlier merges alike). Purged as entries retire,
    /// so the list stays at most `window` entries per master.
    pub(crate) inflight_lines: Vec<(MasterId, u64, u64, Cycle)>,
    pub(crate) records: Vec<Option<TxnRecord>>,
    pub(crate) next_id: u64,
    /// Transaction-id lane stride. The serial simulator keeps the default of
    /// 1 (dense ids). The sharded core gives each shard's fabric replica a
    /// disjoint id lane (`start + k * stride`) so transactions issued
    /// concurrently on different shards can never collide — and, because the
    /// stride is a power of two dividing [`RECORD_RING`], different lanes can
    /// never alias the same record-ring slot. Transient merge bookkeeping:
    /// deliberately not serialized (restore re-derives lanes).
    pub(crate) id_stride: u64,
}

impl SplitFabric {
    /// Creates an idle fabric.
    ///
    /// # Panics
    ///
    /// Panics if `width_bytes` or `window` is zero, or `mshr_line_bytes` is
    /// not a power of two.
    pub fn new(cfg: FabricConfig) -> Self {
        assert!(cfg.width_bytes > 0, "fabric width must be positive");
        assert!(cfg.window > 0, "outstanding window must be at least 1");
        assert!(
            cfg.mshr_line_bytes.is_power_of_two(),
            "mshr_line_bytes must be a power of two"
        );
        SplitFabric {
            cfg,
            addr_bus: FcfsResource::new("fabric.addr"),
            data_bus: FcfsResource::new("fabric.data"),
            masters: Vec::new(),
            mshrs: Vec::new(),
            inflight_lines: Vec::new(),
            records: vec![None; RECORD_RING],
            next_id: 0,
            id_stride: 1,
        }
    }

    /// Moves this fabric replica onto a disjoint transaction-id lane: ids
    /// issue as `start, start + stride, start + 2*stride, ...`. Used by the
    /// sharded simulation core; the serial path never calls this and keeps
    /// dense ids (`stride == 1`).
    ///
    /// # Panics
    ///
    /// Panics unless `stride` is a power of two dividing the record ring
    /// (lanes must never alias a ring slot) and `start` is at least the
    /// current `next_id` (ids stay monotone).
    pub fn set_id_lane(&mut self, start: u64, stride: u64) {
        assert!(
            stride.is_power_of_two() && (RECORD_RING as u64).is_multiple_of(stride),
            "id lane stride must be a power of two dividing the record ring"
        );
        assert!(start >= self.next_id, "id lane must not reuse issued ids");
        self.next_id = start;
        self.id_stride = stride;
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    pub(crate) fn master_state(&mut self, master: MasterId) -> &mut MasterState {
        let idx = master.0 as usize;
        if idx >= self.masters.len() {
            let window = self.cfg.window;
            self.masters
                .resize_with(idx + 1, || MasterState::new(window));
        }
        &mut self.masters[idx]
    }

    /// Whether `desc` is a read contained in one MSHR line (merge-eligible).
    fn mergeable(&self, desc: &TxnDesc) -> bool {
        let line = self.cfg.mshr_line_bytes;
        desc.kind == TxnKind::Read
            && self.cfg.mshrs > 0
            && desc.bytes <= line
            && (desc.addr.0 & !(line - 1)) == ((desc.addr.0 + desc.bytes.max(1) - 1) & !(line - 1))
    }

    /// Issues a transaction arriving at `now`; DRAM timing comes from
    /// `dram`. Returns the transaction's id; the completion time is
    /// available immediately via [`poll`](Self::poll) (the model is
    /// calendar-analytic) and is also pushed onto the master's completion
    /// queue.
    pub fn issue(&mut self, dram: &mut Dram, desc: TxnDesc, now: Cycle) -> TxnId {
        let split = self.cfg.split();
        let window = self.cfg.window as u64;

        // Window throttle: transaction n waits for transaction n − window.
        let (ready, stall) = {
            let m = self.master_state(desc.master);
            let slot = (m.issued % window) as usize;
            let ready = if split {
                now.max(m.window_ring[slot])
            } else {
                // Blocking configuration: the master's own call-return
                // discipline enforces depth 1, exactly as the FCFS oracle.
                now
            };
            (ready, (ready - now).0)
        };

        // Per-master purge of the retired in-flight records, once per
        // issue: `ready` is monotonic per master but NOT across masters,
        // so using it as a global clock would evict other masters'
        // still-in-flight entries and break their ordering clamps. The
        // MSHR file is never bulk-purged — `done > ready` in the probe
        // itself decides in-flight-ness relative to *this* requester, so
        // merge behavior cannot depend on unrelated masters' clock skew.
        if split && self.cfg.mshrs > 0 {
            self.inflight_lines
                .retain(|&(m, _, _, done)| m != desc.master || done > ready);
        }

        // MSHR probe: ride an in-flight read of the same line. The merged
        // completion is clamped to the issuing master's own in-flight
        // same-line traffic, so the bypass never reorders a master's
        // transactions to one line.
        let mut merged = None;
        if split && self.mergeable(&desc) {
            let line = desc.addr.0 & !(self.cfg.mshr_line_bytes - 1);
            if let Some(&(_, done)) = self
                .mshrs
                .iter()
                .find(|&&(l, done)| l == line && done > ready)
            {
                let own_order_floor = self
                    .inflight_lines
                    .iter()
                    .filter(|&&(m, first, last, _)| {
                        m == desc.master && first <= line && line <= last
                    })
                    .map(|&(_, _, _, d)| d)
                    .max()
                    .unwrap_or(Cycle::ZERO);
                merged = Some(done.max(own_order_floor));
            }
        }

        let (completion, next_issue, wait) = match merged {
            Some(done) => (done, ready, 0),
            None => {
                let beats = self.cfg.beats(desc.bytes);
                if split {
                    let (a_start, a_done) = self.addr_bus.acquire(ready, self.cfg.arb_cycles);
                    // The bank starts as the address phase delivers the
                    // command (same overlap the blocking oracle assumes),
                    // and the data beats stream onto the channel as the
                    // bank produces them: the channel slot begins `beats`
                    // before the bank finishes, never before the address
                    // phase ends — so an uncontended transaction completes
                    // at `max(bank_done, a_done + beats)`.
                    let bank_done = dram.access(desc.addr, desc.bytes, a_start);
                    let stream = Cycle(bank_done.0.saturating_sub(beats)).max(a_done);
                    let (_, d_done) = self.data_bus.acquire(stream, beats);
                    (d_done.max(bank_done), a_done, (a_start - ready).0)
                } else {
                    let (start, bus_done) =
                        self.addr_bus.acquire(ready, self.cfg.arb_cycles + beats);
                    let bank_done = dram.access(desc.addr, desc.bytes, start);
                    (bus_done.max(bank_done), bus_done, (start - ready).0)
                }
            }
        };

        // Track the new in-flight line if an MSHR is free, and record every
        // in-flight transaction (merged ones too) for the same-line
        // ordering clamp above.
        if split && self.cfg.mshrs > 0 {
            if merged.is_none() && self.mergeable(&desc) {
                let line = desc.addr.0 & !(self.cfg.mshr_line_bytes - 1);
                // Capacity reclaim happens only at allocation, and only of
                // the single earliest-completing retired entry — never a
                // bulk purge against this requester's clock, which is not
                // a global clock and would evict entries that masters
                // running behind it could still legitimately merge with.
                // A full file of still-in-flight entries means the new
                // miss simply goes untracked, as in hardware.
                if self.mshrs.len() as u32 >= self.cfg.mshrs {
                    if let Some(i) = (0..self.mshrs.len())
                        .filter(|&i| self.mshrs[i].1 <= ready)
                        .min_by_key(|&i| self.mshrs[i].1)
                    {
                        self.mshrs.swap_remove(i);
                    }
                }
                if (self.mshrs.len() as u32) < self.cfg.mshrs {
                    self.mshrs.push((line, completion));
                }
            }
            let line = self.cfg.mshr_line_bytes;
            let first = desc.addr.0 & !(line - 1);
            let last = (desc.addr.0 + desc.bytes.max(1) - 1) & !(line - 1);
            self.inflight_lines
                .push((desc.master, first, last, completion));
        }

        let id = TxnId(self.next_id);
        self.next_id += self.id_stride;
        self.records[(id.0 % RECORD_RING as u64) as usize] = Some(TxnRecord {
            id: id.0,
            completion,
            next_issue,
        });

        let m = self.master_state(desc.master);
        let slot = (m.issued % window) as usize;
        m.window_ring[slot] = completion;
        m.issued += 1;
        m.completions.push_back((id, completion));
        let cap = window as usize + COMPLETION_SLACK;
        while m.completions.len() > cap {
            // Every eviction is counted; `stats()` reports the count only
            // for FIFO-consuming masters (so a master that starts draining
            // late still surfaces its earlier losses, while analytic
            // poll-only masters — which are expected to let the FIFO
            // recycle — don't read as lossy).
            m.completions.pop_front();
            m.stats.dropped_completions += 1;
        }
        let s = &mut m.stats;
        s.transactions += 1;
        s.bytes += desc.bytes;
        s.wait_cycles += wait;
        s.window_stall_cycles += stall;
        if merged.is_some() {
            s.merges += 1;
        }
        s.inflight_cycles += (completion - now).0;
        s.first_issue.get_or_insert(now);
        s.last_completion = s.last_completion.max(completion);
        id
    }

    fn record(&self, id: TxnId) -> &TxnRecord {
        let rec = self.records[(id.0 % RECORD_RING as u64) as usize]
            .as_ref()
            .expect("polled a transaction that was never issued");
        assert_eq!(
            rec.id, id.0,
            "transaction record retired from the ring — poll completions promptly"
        );
        rec
    }

    /// Completion time of transaction `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never issued or its record has been retired from
    /// the bounded ring (issue more than [`RECORD_RING`]-ish transactions
    /// without polling and the oldest records recycle).
    pub fn poll(&self, id: TxnId) -> Cycle {
        self.record(id).completion
    }

    /// The earliest time the issuing master may hand the fabric its next
    /// *sequenced* transaction (the address-channel handshake of `id`): the
    /// split path releases at the end of the address phase, the blocking
    /// path at bus release. Dependent work (a walk's leaf read, a burst
    /// chain) keys off this instead of the full completion.
    pub fn next_issue(&self, id: TxnId) -> Cycle {
        self.record(id).next_issue
    }

    /// Drains `master`'s completion queue up to and including `upto`,
    /// oldest first. Completions older than the queue depth
    /// (`window + 8`) are dropped at issue time, mirroring a completion
    /// FIFO sized to the window; each drop is counted in
    /// `m{i}.dropped_completions` — a lost wakeup under event-driven
    /// delivery, so well-behaved masters keep it at zero (or register a
    /// [waiter](Self::register_waiter), which never ages out).
    pub fn drain_completions(&mut self, master: MasterId, upto: Cycle) -> Vec<(TxnId, Cycle)> {
        let m = self.master_state(master);
        m.fifo_consumer = true;
        let mut out = Vec::new();
        while let Some(&(id, done)) = m.completions.front() {
            if done > upto {
                break;
            }
            out.push((id, done));
            m.completions.pop_front();
        }
        out
    }

    /// Transactions currently waiting in `master`'s completion queue.
    pub fn pending_completions(&self, master: MasterId) -> usize {
        self.masters
            .get(master.0 as usize)
            .map_or(0, |m| m.completions.len())
    }

    /// Attaches `master` to the fabric without issuing anything: its
    /// per-master stats row is emitted (all zeros until it transacts), so a
    /// configured-but-wedged master stays visible in
    /// [`stats`](Self::stats) instead of silently vanishing.
    pub fn attach(&mut self, master: MasterId) {
        self.master_state(master);
    }

    // ------------------------------------------------------------------
    // Completion-event hook: registered waiters per (master, TxnId).
    //
    // The timing model is calendar-analytic — a transaction's completion
    // cycle is known at issue — so "delivering" a completion event means
    // scheduling a wake at exactly that cycle. A consumer that parks on a
    // transaction registers a waiter; the returned cycle is the exact wake
    // time to hand the discrete-event scheduler, and `drain_woken` confirms
    // delivery (waiters never age out, unlike the bounded completion FIFO,
    // so a registered wakeup cannot be lost).
    // ------------------------------------------------------------------

    /// Registers a completion waiter for `(master, id)` and returns the
    /// exact completion cycle to schedule the wake at.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never issued or already retired from the record
    /// ring (register promptly, like polling).
    pub fn register_waiter(&mut self, master: MasterId, id: TxnId) -> Cycle {
        let done = self.record(id).completion;
        self.master_state(master).waiters.push((id, done));
        done
    }

    /// The earliest wake cycle among `master`'s registered waiters.
    pub fn next_wake(&self, master: MasterId) -> Option<Cycle> {
        self.masters
            .get(master.0 as usize)
            .and_then(|m| m.waiters.iter().map(|&(_, done)| done).min())
    }

    /// Removes and returns every registered waiter of `master` whose
    /// transaction has completed by `now`, in registration order.
    pub fn drain_woken(&mut self, master: MasterId, now: Cycle) -> Vec<(TxnId, Cycle)> {
        let m = self.master_state(master);
        let mut woken = Vec::new();
        m.waiters.retain(|&(id, done)| {
            if done <= now {
                woken.push((id, done));
                false
            } else {
                true
            }
        });
        woken
    }

    /// Total cycles the data-carrying channel spent busy (the unified bus in
    /// the blocking configuration; the data channel in split mode).
    pub fn busy_cycles(&self) -> u64 {
        if self.cfg.split() {
            self.data_bus.busy_cycles()
        } else {
            self.addr_bus.busy_cycles()
        }
    }

    /// Data-channel utilization over `elapsed`.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed.0 == 0 {
            0.0
        } else {
            (self.busy_cycles() as f64 / elapsed.0 as f64).min(1.0)
        }
    }

    /// Bytes transferred by `master` so far.
    pub fn master_bytes(&self, master: MasterId) -> u64 {
        self.masters
            .get(master.0 as usize)
            .map_or(0, |m| m.stats.bytes)
    }

    /// Reads merged onto in-flight same-line transactions, all masters.
    pub fn merges(&self) -> u64 {
        self.masters.iter().map(|m| m.stats.merges).sum()
    }

    /// Counter snapshot, including per-master overlap/occupancy breakdowns.
    ///
    /// Per master `N`: `mN.transactions`, `mN.bytes`, `mN.wait_cycles`
    /// (address-channel wait), `mN.window_stall_cycles` (issue deferred by a
    /// full window), `mN.merges`, `mN.inflight_cycles` (occupancy integral),
    /// and `mN.overlap` — mean outstanding depth over the master's busy
    /// span, `1.0` for a perfectly blocking master, above it when
    /// transactions overlap.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("busy_cycles", self.busy_cycles() as f64);
        s.put("addr_busy_cycles", self.addr_bus.busy_cycles() as f64);
        s.put("data_busy_cycles", self.data_bus.busy_cycles() as f64);
        // Issued transactions, merged reads included, so the aggregate
        // always equals the per-master sums; `addr_phases` is the subset
        // that actually occupied the address channel.
        s.put(
            "transactions",
            self.masters
                .iter()
                .map(|m| m.stats.transactions)
                .sum::<u64>() as f64,
        );
        s.put("addr_phases", self.addr_bus.ops() as f64);
        s.put("mean_wait", self.addr_bus.mean_wait());
        s.put("max_wait", self.addr_bus.max_wait() as f64);
        s.put("merges", self.merges() as f64);
        // Reported for FIFO-consuming masters only: a poll-only master is
        // expected to let the bounded FIFO recycle (no event is lost for
        // it), while a draining master's evictions — including any from
        // before its first drain — are lost wakeups.
        s.put(
            "dropped_completions",
            self.masters
                .iter()
                .filter(|m| m.fifo_consumer)
                .map(|m| m.stats.dropped_completions)
                .sum::<u64>() as f64,
        );
        let mut inflight_total = 0.0;
        // Every attached master gets a row — an all-zeros row for a
        // configured-but-wedged master is exactly how starvation shows up.
        for (i, m) in self.masters.iter().enumerate() {
            let st = &m.stats;
            s.put(format!("m{i}.transactions"), st.transactions as f64);
            s.put(format!("m{i}.bytes"), st.bytes as f64);
            s.put(format!("m{i}.wait_cycles"), st.wait_cycles as f64);
            s.put(
                format!("m{i}.window_stall_cycles"),
                st.window_stall_cycles as f64,
            );
            s.put(format!("m{i}.merges"), st.merges as f64);
            s.put(format!("m{i}.inflight_cycles"), st.inflight_cycles as f64);
            s.put(
                format!("m{i}.dropped_completions"),
                if m.fifo_consumer {
                    st.dropped_completions as f64
                } else {
                    0.0
                },
            );
            let span = (st.last_completion - st.first_issue.unwrap_or(Cycle::ZERO)).0;
            s.put(
                format!("m{i}.overlap"),
                if span == 0 {
                    0.0
                } else {
                    st.inflight_cycles as f64 / span as f64
                },
            );
            inflight_total += st.inflight_cycles as f64;
        }
        s.put("inflight_cycles", inflight_total);
        s
    }

    /// Resets the calendars and all counters.
    pub fn reset(&mut self) {
        self.addr_bus.reset();
        self.data_bus.reset();
        self.masters.clear();
        self.mshrs.clear();
        self.inflight_lines.clear();
        self.records.fill(None);
        self.next_id = 0;
    }
}

// ----------------------------------------------------------------------
// Checkpoint serialization.
// ----------------------------------------------------------------------

use svmsyn_snap::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for TxnId {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TxnId(r.take_u64()?))
    }
}

impl Snap for MasterId {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u16(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MasterId(r.take_u16()?))
    }
}

impl Snap for TxnRecord {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.id);
        self.completion.save(w);
        self.next_issue.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TxnRecord {
            id: r.take_u64()?,
            completion: Cycle::load(r)?,
            next_issue: Cycle::load(r)?,
        })
    }
}

impl Snap for MasterStats {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.transactions);
        w.put_u64(self.bytes);
        w.put_u64(self.wait_cycles);
        w.put_u64(self.window_stall_cycles);
        w.put_u64(self.merges);
        w.put_u64(self.inflight_cycles);
        w.put_u64(self.dropped_completions);
        self.first_issue.save(w);
        self.last_completion.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MasterStats {
            transactions: r.take_u64()?,
            bytes: r.take_u64()?,
            wait_cycles: r.take_u64()?,
            window_stall_cycles: r.take_u64()?,
            merges: r.take_u64()?,
            inflight_cycles: r.take_u64()?,
            dropped_completions: r.take_u64()?,
            first_issue: Option::<Cycle>::load(r)?,
            last_completion: Cycle::load(r)?,
        })
    }
}

impl Snap for MasterState {
    fn save(&self, w: &mut SnapWriter) {
        self.window_ring.save(w);
        w.put_u64(self.issued);
        self.completions.save(w);
        w.put_bool(self.fifo_consumer);
        self.waiters.save(w);
        self.stats.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MasterState {
            window_ring: Vec::<Cycle>::load(r)?,
            issued: r.take_u64()?,
            completions: std::collections::VecDeque::load(r)?,
            fifo_consumer: r.take_bool()?,
            waiters: Vec::load(r)?,
            stats: MasterStats::load(r)?,
        })
    }
}

impl SplitFabric {
    /// Serializes the arbiter state: channel calendars, per-master windows,
    /// completion FIFOs and waiters, the MSHR file, in-flight line records,
    /// and the bounded transaction-record ring. The configuration is *not*
    /// captured — restore re-supplies it from the design.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.addr_bus.save(w);
        self.data_bus.save(w);
        self.masters.save(w);
        self.mshrs.save(w);
        self.inflight_lines.save(w);
        self.records.save(w);
        w.put_u64(self.next_id);
    }

    /// Rebuilds a fabric captured by [`save_state`](Self::save_state) under
    /// configuration `cfg` (which must be the design's — channel widths and
    /// window depths are config, not state).
    pub fn restore_state(cfg: FabricConfig, r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut f = SplitFabric::new(cfg);
        f.addr_bus = FcfsResource::load(r)?;
        f.data_bus = FcfsResource::load(r)?;
        f.masters = Vec::load(r)?;
        f.mshrs = Vec::load(r)?;
        f.inflight_lines = Vec::load(r)?;
        f.records = Vec::load(r)?;
        if f.records.len() != RECORD_RING {
            return Err(SnapError::Corrupt("fabric record ring length"));
        }
        for m in &f.masters {
            if m.window_ring.len() != f.cfg.window.max(1) as usize {
                return Err(SnapError::Corrupt("fabric window ring length"));
            }
        }
        f.next_id = r.take_u64()?;
        Ok(f)
    }
}

/// Simulated end-to-end cycles for the canonical two-master overlap
/// scenario: two independent masters each streaming `reads` bank-strided
/// 64 B reads. The issue discipline follows the configuration — a blocking
/// fabric's masters round-trip each read (chain on [`poll`]), a split
/// fabric's masters stream (chain on [`next_issue`]) — so the ratio of a
/// [`FabricConfig::blocking`] run to a windowed run *is* the overlap
/// speedup. Both the `fabric_overlapped_reads_per_sec` benchmark and the
/// conformance suite's >1.3× bar call this one definition, so they cannot
/// drift apart.
///
/// [`poll`]: SplitFabric::poll
/// [`next_issue`]: SplitFabric::next_issue
pub fn two_master_stream_cycles(cfg: FabricConfig, reads: u64) -> u64 {
    let blocking = !cfg.split();
    let mut fabric = SplitFabric::new(cfg);
    let mut dram = Dram::new(crate::dram::DramConfig::default());
    let mut clocks = [Cycle::ZERO; 2];
    let mut end = Cycle::ZERO;
    for i in 0..reads {
        for m in 0..2u16 {
            let id = fabric.issue(
                &mut dram,
                TxnDesc {
                    master: MasterId(m),
                    addr: PhysAddr(((m as u64) << 22) | ((i % 64) * 8192)),
                    bytes: 64,
                    kind: TxnKind::Read,
                },
                clocks[m as usize],
            );
            end = end.max(fabric.poll(id));
            clocks[m as usize] = if blocking {
                fabric.poll(id)
            } else {
                fabric.next_issue(id)
            };
        }
    }
    end.0
}

/// A master's handle on the fabric: its [`MasterId`] plus the issue-side
/// convenience API. Every master in the stack (MEMIF burst engine,
/// page-table walker, CPU cache fills, the copy-baseline DMA engine) holds
/// one and goes through it — the fabric-facing half of the split-transaction
/// redesign.
///
/// The port is deliberately state-free (`Copy`): all shared arbiter state
/// lives in the [`SplitFabric`] inside the
/// [`MemorySystem`](crate::MemorySystem), which callers pass in as they
/// always have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricPort {
    master: MasterId,
}

impl FabricPort {
    /// Creates the port for `master`.
    pub fn new(master: MasterId) -> Self {
        FabricPort { master }
    }

    /// The master this port issues as.
    pub fn master(&self) -> MasterId {
        self.master
    }

    /// Builds the descriptor for a transaction from this port.
    pub fn desc(&self, addr: PhysAddr, bytes: u64, kind: TxnKind) -> TxnDesc {
        TxnDesc {
            master: self.master,
            addr,
            bytes,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramConfig;

    fn dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    fn read(m: u16, addr: u64, bytes: u64) -> TxnDesc {
        TxnDesc {
            master: MasterId(m),
            addr: PhysAddr(addr),
            bytes,
            kind: TxnKind::Read,
        }
    }

    #[test]
    fn blocking_config_matches_fcfs_formula() {
        let cfg = FabricConfig::blocking();
        assert!(!cfg.split());
        let mut f = SplitFabric::new(cfg.clone());
        let mut d = dram();
        let a = f.issue(&mut d, read(0, 0, 64), Cycle(0));
        // occupancy = arb 4 + 8 beats = 12; bank = 48 + 8 = 56 from start 0.
        assert_eq!(f.poll(a), Cycle(56));
        assert_eq!(f.next_issue(a), Cycle(12));
        let b = f.issue(&mut d, read(1, 8192, 64), Cycle(0));
        // Second master queues behind the whole first transaction on the
        // unified channel (starts at 12, different bank so dram from 12).
        assert_eq!(f.next_issue(b), Cycle(24));
        assert_eq!(f.poll(b), Cycle(12 + 56));
    }

    #[test]
    fn split_mode_overlaps_independent_masters() {
        let mut blocking = SplitFabric::new(FabricConfig::blocking());
        let mut db = dram();
        let mut split = SplitFabric::new(FabricConfig::default());
        let mut ds = dram();
        // Two masters, four reads each, bank-strided: the split fabric must
        // finish strictly earlier than the blocking one even with each
        // master chaining its own transactions dependently.
        let mut end_blocking = Cycle::ZERO;
        let mut end_split = Cycle::ZERO;
        for m in 0..2u16 {
            let (mut tb, mut ts) = (Cycle::ZERO, Cycle::ZERO);
            for i in 0..4u64 {
                let addr = ((m as u64) << 20) | (i * 8192);
                let idb = blocking.issue(&mut db, read(m, addr, 64), tb);
                tb = blocking.poll(idb); // blocking master round-trips
                end_blocking = end_blocking.max(tb);
                let ids = split.issue(&mut ds, read(m, addr, 64), ts);
                ts = split.next_issue(ids); // windowed master streams
                end_split = end_split.max(split.poll(ids));
            }
        }
        assert!(
            end_split < end_blocking,
            "split {end_split} must beat blocking {end_blocking}"
        );
    }

    #[test]
    fn window_throttles_outstanding_depth() {
        let cfg = FabricConfig {
            window: 2,
            mshrs: 0,
            ..FabricConfig::default()
        };
        let mut f = SplitFabric::new(cfg);
        let mut d = dram();
        // Issue four reads at cycle 0 from one master: the third must stall
        // until the first completes.
        let ids: Vec<_> = (0..4)
            .map(|i| f.issue(&mut d, read(0, i * 8192, 64), Cycle(0)))
            .collect();
        let c0 = f.poll(ids[0]);
        let s = f.stats();
        assert!(s.get("m0.window_stall_cycles").unwrap() > 0.0);
        assert!(f.poll(ids[2]) > c0, "txn 2 issued only after txn 0 done");
        // Completions are non-decreasing in issue order (in-order slotting).
        for w in ids.windows(2) {
            assert!(f.poll(w[0]) <= f.poll(w[1]));
        }
    }

    #[test]
    fn mshr_merges_same_line_reads_across_masters() {
        let mut f = SplitFabric::new(FabricConfig::default());
        let mut d = dram();
        let a = f.issue(&mut d, read(0, 0x100, 64), Cycle(0));
        let b = f.issue(&mut d, read(1, 0x120, 8), Cycle(1));
        assert_eq!(f.poll(b), f.poll(a), "same-line read rides the MSHR");
        assert_eq!(f.merges(), 1);
        assert_eq!(f.stats().get("m1.merges"), Some(1.0));
        // A read to a different line pays its own way.
        let c = f.issue(&mut d, read(1, 0x4000, 64), Cycle(1));
        assert!(f.poll(c) > f.poll(a));
        assert_eq!(f.merges(), 1);
    }

    #[test]
    fn mshr_capacity_bounds_tracked_lines() {
        let cfg = FabricConfig {
            mshrs: 1,
            ..FabricConfig::default()
        };
        let mut f = SplitFabric::new(cfg);
        let mut d = dram();
        let a = f.issue(&mut d, read(0, 0x000, 64), Cycle(0));
        let _b = f.issue(&mut d, read(0, 0x1000, 64), Cycle(0)); // no MSHR left
        let c = f.issue(&mut d, read(1, 0x1000, 64), Cycle(0)); // cannot merge
        assert!(f.poll(c) > f.poll(a));
        assert_eq!(f.merges(), 0);
        // Writes never merge, even to a tracked line.
        let w = f.issue(
            &mut d,
            TxnDesc {
                kind: TxnKind::Write,
                ..read(1, 0x000, 64)
            },
            Cycle(0),
        );
        assert!(f.poll(w) > f.poll(a));
    }

    #[test]
    fn completion_queue_drains_in_order() {
        let mut f = SplitFabric::new(FabricConfig::default());
        let mut d = dram();
        let a = f.issue(&mut d, read(0, 0, 64), Cycle(0));
        let b = f.issue(&mut d, read(0, 8192, 64), Cycle(0));
        assert_eq!(f.pending_completions(MasterId(0)), 2);
        let drained = f.drain_completions(MasterId(0), f.poll(a));
        assert_eq!(drained, vec![(a, f.poll(a))]);
        let drained = f.drain_completions(MasterId(0), Cycle::MAX);
        assert_eq!(drained, vec![(b, f.poll(b))]);
        assert_eq!(f.pending_completions(MasterId(0)), 0);
    }

    #[test]
    fn waiters_wake_at_exact_completion_and_never_age_out() {
        let mut f = SplitFabric::new(FabricConfig::default());
        let mut d = dram();
        let a = f.issue(&mut d, read(0, 0, 64), Cycle(0));
        let wake = f.register_waiter(MasterId(0), a);
        assert_eq!(wake, f.poll(a), "wake must be the exact completion cycle");
        assert_eq!(f.next_wake(MasterId(0)), Some(wake));
        // Mark the master as a FIFO consumer, then flood enough subsequent
        // transactions to recycle the completion FIFO: the drops are
        // counted, but the registered waiter must survive regardless.
        f.drain_completions(MasterId(0), Cycle::ZERO);
        for i in 0..64u64 {
            f.issue(&mut d, read(0, 0x10000 + i * 8192, 64), wake);
        }
        assert!(f.stats().get("m0.dropped_completions").unwrap() > 0.0);
        assert_eq!(f.drain_woken(MasterId(0), wake - Cycle(1)), vec![]);
        assert_eq!(f.drain_woken(MasterId(0), wake), vec![(a, wake)]);
        assert_eq!(f.next_wake(MasterId(0)), None);
    }

    #[test]
    fn attached_master_reports_a_zero_row() {
        let mut f = SplitFabric::new(FabricConfig::default());
        let mut d = dram();
        f.attach(MasterId(1));
        f.issue(&mut d, read(0, 0, 64), Cycle(0));
        let s = f.stats();
        assert_eq!(s.get("m1.transactions"), Some(0.0));
        assert_eq!(s.get("m1.window_stall_cycles"), Some(0.0));
        assert_eq!(s.get("m0.transactions"), Some(1.0));
        assert_eq!(s.get("dropped_completions"), Some(0.0));
    }

    #[test]
    fn pre_drain_drops_surface_once_the_master_drains() {
        let mut f = SplitFabric::new(FabricConfig::default());
        let mut d = dram();
        for i in 0..20u64 {
            f.issue(&mut d, read(0, i * 8192, 64), Cycle(0));
        }
        // Poll-only so far: the recycling FIFO loses nothing for this
        // master, so it reads as lossless.
        assert_eq!(f.stats().get("m0.dropped_completions"), Some(0.0));
        // The first drain marks it a FIFO consumer: the earlier evictions
        // were real losses for it and surface retroactively.
        f.drain_completions(MasterId(0), Cycle::MAX);
        assert!(f.stats().get("m0.dropped_completions").unwrap() > 0.0);
        assert!(f.stats().get("dropped_completions").unwrap() > 0.0);
    }

    #[test]
    fn prompt_drains_never_drop_completions() {
        let mut f = SplitFabric::new(FabricConfig::default());
        let mut d = dram();
        let mut t = Cycle(0);
        for i in 0..64u64 {
            let id = f.issue(&mut d, read(0, (i % 8) * 8192, 64), t);
            t = f.next_issue(id);
            f.drain_completions(MasterId(0), t);
        }
        f.drain_completions(MasterId(0), Cycle::MAX);
        assert_eq!(f.stats().get("m0.dropped_completions"), Some(0.0));
    }

    #[test]
    fn per_master_accounting_and_overlap() {
        let mut f = SplitFabric::new(FabricConfig::default());
        let mut d = dram();
        let mut t = Cycle(0);
        for i in 0..4u64 {
            let id = f.issue(&mut d, read(2, i * 8192, 64), t);
            t = f.next_issue(id);
        }
        let s = f.stats();
        assert_eq!(s.get("m2.transactions"), Some(4.0));
        assert_eq!(s.get("m2.bytes"), Some(256.0));
        assert!(
            s.get("m2.overlap").unwrap() > 1.0,
            "streamed reads must overlap"
        );
        assert_eq!(f.master_bytes(MasterId(2)), 256);
        assert_eq!(f.master_bytes(MasterId(9)), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut f = SplitFabric::new(FabricConfig::default());
        let mut d = dram();
        f.issue(&mut d, read(0, 0, 64), Cycle(0));
        assert!(f.busy_cycles() > 0);
        f.reset();
        assert_eq!(f.busy_cycles(), 0);
        assert_eq!(f.master_bytes(MasterId(0)), 0);
        assert_eq!(f.pending_completions(MasterId(0)), 0);
    }

    #[test]
    fn port_builds_descs() {
        let p = FabricPort::new(MasterId(7));
        let d = p.desc(PhysAddr(64), 8, TxnKind::Write);
        assert_eq!(d.master, MasterId(7));
        assert_eq!(d.bytes, 8);
        assert_eq!(p.master(), MasterId(7));
        assert_eq!(MasterId(3).to_string(), "m3");
    }
}
