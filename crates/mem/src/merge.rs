//! Window-barrier fold/refresh machinery for the sharded simulation core.
//!
//! The sharded simulator gives every shard a full replica of the
//! [`MemorySystem`] and lets the replicas diverge for one conservative
//! lookahead window at a time. At each window barrier the coordinator calls
//! into this module to reconcile the replicas against a **canonical** system
//! (the one that entered the window):
//!
//! * [`fold_and_refresh_calendars`] — merges the FCFS calendar *positions*
//!   (fabric address/data channels, per-bank DRAM calendars and open rows)
//!   conservatively: work booked concurrently on different replicas is
//!   serialized after the furthest-ahead replica, so no replica ever sees a
//!   calendar earlier than the canonical one. Counters are left strictly
//!   per-replica-cumulative and reconciled only at the final merge.
//! * [`fold_stores`] / [`refresh_stores`] — propagate byte contents through
//!   the dirty-frame journals: each shard's touched frames are three-way
//!   merged into the canonical store (byte-level, against the canonical
//!   pre-fold image), and the canonical store's accumulated dirty frames are
//!   broadcast back to every replica before the next window.
//! * [`counter_base`] / [`merged_memory`] — build the outcome-facing
//!   [`MemorySystem`]: canonical bytes and calendars, plus every replica's
//!   counter *deltas* since its base, with per-master fabric state taken
//!   from the shard that owns the master.
//!
//! Everything here is deterministic in shard order, so the parallel run and
//! the sequential single-wheel oracle produce bit-identical merges.

use svmsyn_sim::FcfsResource;

use crate::addr::PAGE_SIZE;
use crate::fabric::MasterId;
use crate::system::MemorySystem;

/// Per-shard calendar positions captured at the last refresh; the fold uses
/// the busy-counter deltas against these to know how much *new* work each
/// replica booked during the window.
#[derive(Debug, Clone)]
pub struct CalendarBase {
    addr_busy: u64,
    data_busy: u64,
    banks_busy: Vec<u64>,
}

/// Captures a replica's calendar busy counters (call after every refresh).
pub fn calendar_base(mem: &MemorySystem) -> CalendarBase {
    CalendarBase {
        addr_busy: mem.fabric.addr_bus.busy_cycles(),
        data_busy: mem.fabric.data_bus.busy_cycles(),
        banks_busy: mem.dram.banks.iter().map(|b| b.cal.busy_cycles()).collect(),
    }
}

/// Conservative merge of one calendar across replicas: the furthest-ahead
/// replica keeps its position and every other replica's newly booked busy
/// cycles queue behind it. Returns `(merged next_free, winner shard)` where
/// the winner is the replica with the greatest `next_free` among those that
/// booked work (ties break to the lower shard index); `None` when no replica
/// booked anything (the canonical position stands).
fn fold_one_calendar<'a>(
    cals: impl Iterator<Item = (&'a FcfsResource, u64)>,
) -> (Option<(svmsyn_sim::Cycle, usize)>, u64) {
    let mut winner: Option<(svmsyn_sim::Cycle, usize)> = None;
    let mut total_delta = 0u64;
    let mut winner_delta = 0u64;
    for (s, (cal, base_busy)) in cals.enumerate() {
        let delta = cal.busy_cycles() - base_busy;
        total_delta += delta;
        if delta > 0 && winner.is_none_or(|(nf, _)| cal.next_free() > nf) {
            winner = Some((cal.next_free(), s));
            winner_delta = delta;
        }
    }
    (winner, total_delta - winner_delta)
}

/// Folds every replica's calendar positions into the canonical system and
/// pushes the merged positions back out to all replicas, then re-captures
/// `bases` for the next window. Counters are not touched.
pub fn fold_and_refresh_calendars(
    canon: &mut MemorySystem,
    shards: &mut [&mut MemorySystem],
    bases: &mut [CalendarBase],
) {
    assert_eq!(shards.len(), bases.len());
    // Fabric address channel.
    let (winner, rest) = fold_one_calendar(
        shards
            .iter()
            .zip(bases.iter())
            .map(|(m, b)| (&m.fabric.addr_bus, b.addr_busy)),
    );
    if let Some((nf, _)) = winner {
        canon.fabric.addr_bus.set_next_free(nf + rest);
    }
    // Fabric data channel.
    let (winner, rest) = fold_one_calendar(
        shards
            .iter()
            .zip(bases.iter())
            .map(|(m, b)| (&m.fabric.data_bus, b.data_busy)),
    );
    if let Some((nf, _)) = winner {
        canon.fabric.data_bus.set_next_free(nf + rest);
    }
    // DRAM banks: calendar position plus the open-row register, which
    // follows the winning replica (the one whose row buffer state is the
    // latest in merged time).
    let n_banks = canon.dram.banks.len();
    for bank in 0..n_banks {
        let (winner, rest) = fold_one_calendar(
            shards
                .iter()
                .zip(bases.iter())
                .map(|(m, b)| (&m.dram.banks[bank].cal, b.banks_busy[bank])),
        );
        if let Some((nf, s)) = winner {
            canon.dram.banks[bank].cal.set_next_free(nf + rest);
            canon.dram.banks[bank].open_row = shards[s].dram.banks[bank].open_row;
        }
    }
    // Refresh: every replica adopts the canonical positions and re-bases.
    for (mem, base) in shards.iter_mut().zip(bases.iter_mut()) {
        mem.fabric
            .addr_bus
            .set_next_free(canon.fabric.addr_bus.next_free());
        mem.fabric
            .data_bus
            .set_next_free(canon.fabric.data_bus.next_free());
        for bank in 0..n_banks {
            mem.dram.banks[bank]
                .cal
                .set_next_free(canon.dram.banks[bank].cal.next_free());
            mem.dram.banks[bank].open_row = canon.dram.banks[bank].open_row;
        }
        base.addr_busy = mem.fabric.addr_bus.busy_cycles();
        base.data_busy = mem.fabric.data_bus.busy_cycles();
        for (bank, busy) in base.banks_busy.iter_mut().enumerate() {
            *busy = mem.dram.banks[bank].cal.busy_cycles();
        }
    }
}

/// Three-way merges every replica's dirty frames into the canonical store.
///
/// Shards are folded in index order. The first replica to touch a frame
/// copies it wholesale (after the canonical pre-fold image is stashed as the
/// merge base); later replicas only apply the bytes they changed relative to
/// that base. Two replicas writing the *same* byte differently is a data
/// race in the simulated program; the higher shard index deterministically
/// wins, mirroring an arbitrary but fixed hardware write order.
///
/// The canonical store's own journal picks up every folded frame, so the
/// next [`refresh_stores`] broadcast covers them automatically.
pub fn fold_stores(canon: &mut MemorySystem, shards: &mut [&mut MemorySystem]) {
    let mut bases: std::collections::HashMap<u64, Option<Box<[u8]>>> =
        std::collections::HashMap::new();
    for mem in shards.iter_mut() {
        for frame in mem.store.take_journal() {
            let shard_bytes: &[u8] = mem
                .store
                .frame(frame)
                .expect("journaled frame is materialized");
            match bases.entry(frame) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(canon.store.frame(frame).map(Box::from));
                    canon.store.frame_mut(frame).copy_from_slice(shard_bytes);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    let dst = canon.store.frame_mut(frame);
                    match e.get() {
                        Some(base) => {
                            for i in 0..PAGE_SIZE as usize {
                                if shard_bytes[i] != base[i] {
                                    dst[i] = shard_bytes[i];
                                }
                            }
                        }
                        None => {
                            // Canonical frame was unmaterialized: base is all
                            // zeroes, so every nonzero byte is a shard write.
                            for i in 0..PAGE_SIZE as usize {
                                if shard_bytes[i] != 0 {
                                    dst[i] = shard_bytes[i];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Broadcasts the canonical store's accumulated dirty frames (folds from the
/// last barrier plus any OS writes made during barrier-time fault service)
/// to every replica, then clears the replica journals so the next fold sees
/// only genuinely new writes.
pub fn refresh_stores(canon: &mut MemorySystem, shards: &mut [&mut MemorySystem]) {
    let frames = canon.store.take_journal();
    for frame in &frames {
        let bytes: Box<[u8]> = canon
            .store
            .frame(*frame)
            .expect("canonical dirty frame is materialized")
            .into();
        for mem in shards.iter_mut() {
            mem.store.frame_mut(*frame).copy_from_slice(&bytes);
        }
    }
    for mem in shards.iter_mut() {
        mem.store.take_journal();
    }
}

/// A replica's cumulative counters at shard creation; [`merged_memory`]
/// absorbs each replica's progress *since* this base so boot-time work (which
/// every replica inherited from the canonical clone) is counted exactly once.
#[derive(Debug, Clone)]
pub struct CounterBase {
    reads: u64,
    writes: u64,
    addr_bus: FcfsResource,
    data_bus: FcfsResource,
    banks: Vec<(FcfsResource, u64, u64)>,
    dram_accesses: u64,
    dram_bytes: u64,
}

/// Captures a replica's counter state (call once, right after cloning the
/// canonical system into the replica).
pub fn counter_base(mem: &MemorySystem) -> CounterBase {
    CounterBase {
        reads: mem.reads,
        writes: mem.writes,
        addr_bus: mem.fabric.addr_bus.clone(),
        data_bus: mem.fabric.data_bus.clone(),
        banks: mem
            .dram
            .banks
            .iter()
            .map(|b| (b.cal.clone(), b.hits, b.misses))
            .collect(),
        dram_accesses: mem.dram.accesses,
        dram_bytes: mem.dram.bytes,
    }
}

/// Builds the outcome-facing memory system: canonical bytes and calendar
/// positions, all replicas' counter deltas, and per-master fabric state taken
/// from the owning shard (`owner_of_master[id]`; ids beyond the table default
/// to shard 0). Deterministic in shard order.
pub fn merged_memory(
    canon: &MemorySystem,
    shards: &[&MemorySystem],
    bases: &[CounterBase],
    owner_of_master: &[usize],
) -> MemorySystem {
    assert_eq!(shards.len(), bases.len());
    let mut out = canon.clone();
    for (mem, base) in shards.iter().zip(bases.iter()) {
        out.reads += mem.reads - base.reads;
        out.writes += mem.writes - base.writes;
        out.fabric
            .addr_bus
            .absorb_counter_deltas(&base.addr_bus, &mem.fabric.addr_bus);
        out.fabric
            .data_bus
            .absorb_counter_deltas(&base.data_bus, &mem.fabric.data_bus);
        out.dram.accesses += mem.dram.accesses - base.dram_accesses;
        out.dram.bytes += mem.dram.bytes - base.dram_bytes;
        for (bank, (cal, hits, misses)) in base.banks.iter().enumerate() {
            let cur = &mem.dram.banks[bank];
            out.dram.banks[bank]
                .cal
                .absorb_counter_deltas(cal, &cur.cal);
            out.dram.banks[bank].hits += cur.hits - hits;
            out.dram.banks[bank].misses += cur.misses - misses;
        }
    }
    let owner = |id: usize| owner_of_master.get(id).copied().unwrap_or(0);
    // Per-master state: whole-state copy from the owning shard — only the
    // owner ever issues on a master, so its replica is the sole authority.
    let n_masters = shards
        .iter()
        .map(|m| m.fabric.masters.len())
        .max()
        .unwrap_or(0)
        .max(out.fabric.masters.len());
    for id in 0..n_masters {
        let src = shards[owner(id)];
        if id < src.fabric.masters.len() {
            *out.fabric.master_state(MasterId(id as u16)) = src.fabric.masters[id].clone();
        }
    }
    // MSHRs: union of every replica's in-flight lines, deduplicated exactly,
    // newest completions kept up to the configured capacity.
    let mut mshrs: Vec<(u64, svmsyn_sim::Cycle)> = Vec::new();
    for mem in shards {
        for e in &mem.fabric.mshrs {
            if !mshrs.contains(e) {
                mshrs.push(*e);
            }
        }
    }
    mshrs.sort_unstable_by_key(|&(line, done)| (done, line));
    let cap = out.fabric.config().mshrs as usize;
    if mshrs.len() > cap {
        mshrs.drain(..mshrs.len() - cap);
    }
    out.fabric.mshrs = mshrs;
    // In-flight line tracking: owner-partitioned, concatenated in shard
    // order (each entry names its master, and only the owner's copy of an
    // inherited entry is taken, so nothing duplicates).
    out.fabric.inflight_lines.clear();
    for (s, mem) in shards.iter().enumerate() {
        for e in &mem.fabric.inflight_lines {
            if owner(e.0 .0 as usize) == s {
                out.fabric.inflight_lines.push(*e);
            }
        }
    }
    // Transaction records: per ring slot, the youngest id wins (lanes are
    // disjoint, so ids order issues globally).
    for mem in shards {
        for (slot, rec) in mem.fabric.records.iter().enumerate() {
            if let Some(rec) = rec {
                let keep = out.fabric.records[slot].is_none_or(|cur| rec.id > cur.id);
                if keep {
                    out.fabric.records[slot] = Some(*rec);
                }
            }
        }
        out.fabric.next_id = out.fabric.next_id.max(mem.fabric.next_id);
    }
    out.fabric.id_stride = 1;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::system::MemConfig;
    use svmsyn_sim::Cycle;

    fn sys() -> MemorySystem {
        MemorySystem::new(MemConfig {
            size_bytes: 1 << 20,
            ..MemConfig::default()
        })
    }

    #[test]
    fn store_fold_three_way_merges_disjoint_writes() {
        let mut canon = sys();
        canon.poke_u32(PhysAddr(0), 0x1111_1111);
        canon.enable_store_journal();
        canon.take_store_journal();
        let mut a = canon.clone();
        let mut b = canon.clone();
        // Disjoint bytes of the same frame from two replicas.
        a.poke_u32(PhysAddr(8), 0xAAAA_AAAA);
        b.poke_u32(PhysAddr(16), 0xBBBB_BBBB);
        fold_stores(&mut canon, &mut [&mut a, &mut b]);
        assert_eq!(canon.peek_u32(PhysAddr(0)), 0x1111_1111);
        assert_eq!(canon.peek_u32(PhysAddr(8)), 0xAAAA_AAAA);
        assert_eq!(canon.peek_u32(PhysAddr(16)), 0xBBBB_BBBB);
        // Refresh pushes the merged frame back to both replicas.
        refresh_stores(&mut canon, &mut [&mut a, &mut b]);
        assert_eq!(a.peek_u32(PhysAddr(16)), 0xBBBB_BBBB);
        assert_eq!(b.peek_u32(PhysAddr(8)), 0xAAAA_AAAA);
    }

    #[test]
    fn calendar_fold_serializes_concurrent_work() {
        let mut canon = sys();
        canon.enable_store_journal();
        let mut a = canon.clone();
        let mut b = canon.clone();
        let mut bases = vec![calendar_base(&a), calendar_base(&b)];
        // Both replicas book address-channel work in the same window.
        a.fabric.addr_bus.acquire(Cycle(0), 10);
        b.fabric.addr_bus.acquire(Cycle(0), 25);
        fold_and_refresh_calendars(&mut canon, &mut [&mut a, &mut b], &mut bases);
        // Winner is b (next_free 25); a's 10 cycles queue behind it.
        assert_eq!(canon.fabric.addr_bus.next_free(), Cycle(35));
        assert_eq!(a.fabric.addr_bus.next_free(), Cycle(35));
        assert_eq!(b.fabric.addr_bus.next_free(), Cycle(35));
        // No work in the next window leaves the position unchanged.
        fold_and_refresh_calendars(&mut canon, &mut [&mut a, &mut b], &mut bases);
        assert_eq!(canon.fabric.addr_bus.next_free(), Cycle(35));
    }

    #[test]
    fn merged_memory_counts_boot_work_once() {
        let mut canon = sys();
        canon.attach_master(MasterId(1));
        canon.attach_master(MasterId(2));
        // Boot-time timed traffic, inherited by both replicas.
        canon.read(MasterId(1), PhysAddr(0), &mut [0u8; 64], Cycle(0));
        let boot_reads = canon.stats().get("reads").unwrap();
        canon.enable_store_journal();
        let a = canon.clone();
        let mut b = canon.clone();
        let bases = vec![counter_base(&a), counter_base(&b)];
        b.read(MasterId(2), PhysAddr(4096), &mut [0u8; 64], Cycle(100));
        let merged = merged_memory(&canon, &[&a, &b], &bases, &[0, 0, 1]);
        assert_eq!(merged.stats().get("reads").unwrap(), boot_reads + 1.0);
        assert!(merged.fabric_next_txn_id() >= b.fabric_next_txn_id());
    }
}
