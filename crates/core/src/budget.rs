//! Host-core budgeting shared by every component that multiplies
//! parallelism: the sweep service's worker pool, the DSE evaluator's
//! thread count, and the sharded simulation engine all draw from the same
//! physical cores. One simulation configured with `shards = S` occupies
//! `S` host threads while a window executes, so a pool of `W` workers
//! each running an `S`-shard simulation wants `W × S <= host_cores()` —
//! [`worker_budget`] computes the largest `W` that fits.

/// Host CPUs available to this process (`1` when detection fails —
/// sandboxes and exotic platforms degrade to serial, never to a panic).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The worker-pool size to use when each worker runs an `shards`-shard
/// simulation.
///
/// * `requested == 0` (auto): one worker per `shards` host cores,
///   at least one — the pool and the per-simulation shards together
///   saturate the host without oversubscribing it.
/// * `requested > 0` with `shards <= 1`: honored verbatim — serial
///   simulations cost one core each and explicit pool sizes are part of
///   existing callers' contracts.
/// * `requested > 0` with `shards > 1`: clamped so
///   `workers × shards <= host_cores()` (but never below one worker) —
///   an explicit pool size tuned for serial runs would oversubscribe
///   `shards`-fold otherwise.
///
/// # Examples
///
/// ```
/// use svmsyn::worker_budget;
/// // Serial sims: explicit requests are honored verbatim.
/// assert_eq!(worker_budget(7, 1), 7);
/// // Auto sizing always grants at least one worker.
/// assert!(worker_budget(0, 4) >= 1);
/// // Sharded sims never multiply out beyond the host (modulo the
/// // one-worker floor).
/// let w = worker_budget(64, 4);
/// assert!(w == 1 || w * 4 <= svmsyn::host_cores().max(4));
/// ```
pub fn worker_budget(requested: usize, shards: usize) -> usize {
    let shards = shards.max(1);
    let cores = host_cores();
    if requested == 0 {
        return (cores / shards).max(1);
    }
    if shards == 1 {
        return requested;
    }
    requested.min((cores / shards).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_cores_is_positive() {
        assert!(host_cores() >= 1);
    }

    #[test]
    fn explicit_serial_request_is_verbatim() {
        assert_eq!(worker_budget(1, 1), 1);
        assert_eq!(worker_budget(16, 1), 16);
        assert_eq!(worker_budget(16, 0), 16); // shards 0 normalizes to 1
    }

    #[test]
    fn auto_divides_cores_by_shards() {
        let cores = host_cores();
        assert_eq!(worker_budget(0, 1), cores);
        assert_eq!(worker_budget(0, 2), (cores / 2).max(1));
        // More shards than cores still grants a worker.
        assert_eq!(worker_budget(0, cores * 2), 1);
    }

    #[test]
    fn sharded_request_is_clamped_to_cores() {
        let cores = host_cores();
        let w = worker_budget(usize::MAX, 2);
        assert_eq!(w, (cores / 2).max(1));
        // But a modest request under the budget passes through.
        assert_eq!(worker_budget(1, 2), 1);
    }
}
