//! The application model: what the system-level synthesis toolflow consumes.
//!
//! An [`Application`] is a multithreaded program description: shared buffers
//! in one virtual address space, synchronization objects, and threads — each
//! a kernel (in `svmsyn-hls` IR) plus the synchronization actions it
//! performs before and after its kernel runs. The toolflow decides which
//! threads become hardware, the runtime gives both kinds the same
//! primitives.

use std::sync::Arc;

use svmsyn_hls::decode::DecodedKernel;
use svmsyn_hls::ir::Kernel;
use svmsyn_hls::VerifyError;

/// How a shared buffer is initialized and mapped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferSpec {
    /// Diagnostic name.
    pub name: String,
    /// Length in bytes.
    pub len: u64,
    /// Initial contents (shorter than `len` means zero-filled tail).
    pub init: Vec<u8>,
    /// Pre-fault all pages at load time instead of demand paging.
    pub populate: bool,
}

/// A synchronization object declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncSpec {
    /// A mutex.
    Mutex,
    /// A counting semaphore with an initial count.
    Semaphore(i64),
    /// A barrier for `n` parties.
    Barrier(u32),
    /// A bounded mailbox with `capacity` slots.
    Mbox(usize),
}

/// A synchronization action in a thread's pre/post sequence, referencing a
/// [`SyncSpec`] by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncAction {
    /// Acquire mutex `i`.
    MutexLock(usize),
    /// Release mutex `i`.
    MutexUnlock(usize),
    /// P on semaphore `i`.
    SemWait(usize),
    /// V on semaphore `i`.
    SemPost(usize),
    /// Arrive at barrier `i`.
    BarrierWait(usize),
    /// Put `value` into mailbox `i`.
    MboxPut(usize, u64),
    /// Take from mailbox `i` (value discarded; used for ordering).
    MboxGet(usize),
}

impl SyncAction {
    /// The referenced sync-object index.
    pub fn object(&self) -> usize {
        match self {
            SyncAction::MutexLock(i)
            | SyncAction::MutexUnlock(i)
            | SyncAction::SemWait(i)
            | SyncAction::SemPost(i)
            | SyncAction::BarrierWait(i)
            | SyncAction::MboxPut(i, _)
            | SyncAction::MboxGet(i) => *i,
        }
    }
}

/// How one kernel launch argument is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgSpec {
    /// The virtual address of buffer `i` plus a byte offset.
    Buffer(usize, u64),
    /// A literal value.
    Value(i64),
}

/// One thread of the application.
#[derive(Debug, Clone)]
pub struct ThreadSpec {
    /// Diagnostic name.
    pub name: String,
    /// The kernel this thread executes.
    pub kernel: Kernel,
    /// The kernel pre-decoded to micro-ops, shared by every simulation of
    /// this application (cloning an `Application` shares the decode, so DSE
    /// re-evaluations never re-decode).
    pub decoded: Arc<DecodedKernel>,
    /// Launch arguments (must match `kernel.num_args`).
    pub args: Vec<ArgSpec>,
    /// Sync actions before the kernel runs.
    pub pre: Vec<SyncAction>,
    /// Sync actions after the kernel completes.
    pub post: Vec<SyncAction>,
    /// Whether the partitioner may map this thread to hardware.
    pub hw_eligible: bool,
}

/// A complete application description.
#[derive(Debug, Clone)]
pub struct Application {
    /// Diagnostic name.
    pub name: String,
    /// Shared buffers.
    pub buffers: Vec<BufferSpec>,
    /// Synchronization objects.
    pub sync_objects: Vec<SyncSpec>,
    /// Threads.
    pub threads: Vec<ThreadSpec>,
}

/// Errors from application validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppError {
    /// A thread's argument count does not match its kernel.
    ArgCountMismatch {
        /// Offending thread name.
        thread: String,
        /// Arguments supplied.
        given: usize,
        /// Arguments the kernel expects.
        expected: usize,
    },
    /// An argument references a missing buffer.
    BadBufferRef {
        /// Offending thread name.
        thread: String,
        /// The missing buffer index.
        index: usize,
    },
    /// A sync action references a missing object or the wrong kind.
    BadSyncRef {
        /// Offending thread name.
        thread: String,
        /// The offending action.
        action: SyncAction,
    },
    /// The application has no threads.
    NoThreads,
    /// A thread's kernel failed IR verification. `KernelBuilder::finish`
    /// verifies on the builder path, but a hand-constructed [`Kernel`] can
    /// reach the application unchecked — and the simulate-time
    /// interpreters assume verified IR (a phi missing a predecessor edge
    /// would panic mid-run). Catch it here, structurally.
    MalformedKernel {
        /// Offending thread name.
        thread: String,
        /// The verifier's diagnosis.
        error: VerifyError,
    },
}

impl std::fmt::Display for AppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppError::ArgCountMismatch {
                thread,
                given,
                expected,
            } => {
                write!(
                    f,
                    "thread {thread}: {given} args given, kernel expects {expected}"
                )
            }
            AppError::BadBufferRef { thread, index } => {
                write!(f, "thread {thread}: no buffer {index}")
            }
            AppError::BadSyncRef { thread, action } => {
                write!(f, "thread {thread}: invalid sync reference {action:?}")
            }
            AppError::NoThreads => write!(f, "application has no threads"),
            AppError::MalformedKernel { thread, error } => {
                write!(f, "thread {thread}: malformed kernel: {error}")
            }
        }
    }
}

impl std::error::Error for AppError {}

impl Application {
    /// Validates cross-references (arg counts, buffer and sync indices, and
    /// action/object kind agreement).
    ///
    /// # Errors
    ///
    /// Returns the first [`AppError`] found.
    pub fn validate(&self) -> Result<(), AppError> {
        if self.threads.is_empty() {
            return Err(AppError::NoThreads);
        }
        for t in &self.threads {
            if let Err(error) = svmsyn_hls::verify(&t.kernel) {
                return Err(AppError::MalformedKernel {
                    thread: t.name.clone(),
                    error,
                });
            }
            if t.args.len() != t.kernel.num_args as usize {
                return Err(AppError::ArgCountMismatch {
                    thread: t.name.clone(),
                    given: t.args.len(),
                    expected: t.kernel.num_args as usize,
                });
            }
            for a in &t.args {
                if let ArgSpec::Buffer(i, _) = a {
                    if *i >= self.buffers.len() {
                        return Err(AppError::BadBufferRef {
                            thread: t.name.clone(),
                            index: *i,
                        });
                    }
                }
            }
            for action in t.pre.iter().chain(&t.post) {
                let i = action.object();
                let ok = matches!(
                    (self.sync_objects.get(i), action),
                    (
                        Some(SyncSpec::Mutex),
                        SyncAction::MutexLock(_) | SyncAction::MutexUnlock(_)
                    ) | (
                        Some(SyncSpec::Semaphore(_)),
                        SyncAction::SemWait(_) | SyncAction::SemPost(_)
                    ) | (Some(SyncSpec::Barrier(_)), SyncAction::BarrierWait(_))
                        | (
                            Some(SyncSpec::Mbox(_)),
                            SyncAction::MboxPut(..) | SyncAction::MboxGet(_)
                        )
                );
                if !ok {
                    return Err(AppError::BadSyncRef {
                        thread: t.name.clone(),
                        action: *action,
                    });
                }
            }
        }
        Ok(())
    }

    /// Indices of threads the partitioner may move to hardware.
    pub fn hw_eligible(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.hw_eligible)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Fluent builder for [`Application`].
///
/// # Example
///
/// ```
/// use svmsyn::app::{ApplicationBuilder, ArgSpec};
/// use svmsyn_hls::builder::KernelBuilder;
/// use svmsyn_hls::ir::BinOp;
///
/// let mut kb = KernelBuilder::new("k", 1);
/// let x = kb.arg(0);
/// let y = kb.bin(BinOp::Add, x, x);
/// kb.ret(Some(y));
/// let kernel = kb.finish().unwrap();
///
/// let app = ApplicationBuilder::new("demo")
///     .buffer("data", 4096, vec![], false)
///     .thread("worker", kernel, vec![ArgSpec::Buffer(0, 0)], true)
///     .build()
///     .unwrap();
/// assert_eq!(app.threads.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ApplicationBuilder {
    app: Application,
    /// Threads awaiting verification + decode at [`build`](Self::build).
    pending: Vec<PendingThread>,
}

/// A thread as handed to the builder: kernel not yet verified, so not yet
/// decoded (the decoder, like the interpreters, assumes verified IR).
#[derive(Debug, Clone)]
struct PendingThread {
    name: String,
    kernel: Kernel,
    args: Vec<ArgSpec>,
    pre: Vec<SyncAction>,
    post: Vec<SyncAction>,
    hw_eligible: bool,
}

impl ApplicationBuilder {
    /// Starts an empty application.
    pub fn new(name: impl Into<String>) -> Self {
        ApplicationBuilder {
            app: Application {
                name: name.into(),
                buffers: Vec::new(),
                sync_objects: Vec::new(),
                threads: Vec::new(),
            },
            pending: Vec::new(),
        }
    }

    /// Adds a buffer; returns the builder for chaining. The buffer's index
    /// is its insertion order.
    pub fn buffer(
        mut self,
        name: impl Into<String>,
        len: u64,
        init: Vec<u8>,
        populate: bool,
    ) -> Self {
        self.app.buffers.push(BufferSpec {
            name: name.into(),
            len,
            init,
            populate,
        });
        self
    }

    /// Adds a sync object; its index is its insertion order.
    pub fn sync(mut self, spec: SyncSpec) -> Self {
        self.app.sync_objects.push(spec);
        self
    }

    /// Adds a plain thread with no sync actions.
    pub fn thread(
        self,
        name: impl Into<String>,
        kernel: Kernel,
        args: Vec<ArgSpec>,
        hw_eligible: bool,
    ) -> Self {
        self.thread_full(name, kernel, args, vec![], vec![], hw_eligible)
    }

    /// Adds a thread with pre/post sync actions.
    #[allow(clippy::too_many_arguments)]
    pub fn thread_full(
        mut self,
        name: impl Into<String>,
        kernel: Kernel,
        args: Vec<ArgSpec>,
        pre: Vec<SyncAction>,
        post: Vec<SyncAction>,
        hw_eligible: bool,
    ) -> Self {
        self.pending.push(PendingThread {
            name: name.into(),
            kernel,
            args,
            pre,
            post,
            hw_eligible,
        });
        self
    }

    /// Validates and returns the application. Kernels are verified before
    /// they are decoded to micro-ops: the decoder and the simulate-time
    /// interpreters assume verified IR, so a hand-assembled malformed
    /// kernel must be rejected here rather than panic mid-run.
    ///
    /// # Errors
    ///
    /// Returns [`AppError`] if validation fails.
    pub fn build(mut self) -> Result<Application, AppError> {
        for t in self.pending {
            if let Err(error) = svmsyn_hls::verify(&t.kernel) {
                return Err(AppError::MalformedKernel {
                    thread: t.name,
                    error,
                });
            }
            let decoded = Arc::new(DecodedKernel::decode(&t.kernel));
            self.app.threads.push(ThreadSpec {
                name: t.name,
                kernel: t.kernel,
                decoded,
                args: t.args,
                pre: t.pre,
                post: t.post,
                hw_eligible: t.hw_eligible,
            });
        }
        self.app.validate()?;
        Ok(self.app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svmsyn_hls::builder::KernelBuilder;

    fn kernel(args: u16) -> Kernel {
        let mut b = KernelBuilder::new("k", args);
        b.ret(None);
        b.finish().unwrap()
    }

    #[test]
    fn builder_happy_path() {
        let app = ApplicationBuilder::new("a")
            .buffer("in", 1024, vec![1, 2, 3], false)
            .buffer("out", 1024, vec![], true)
            .sync(SyncSpec::Semaphore(0))
            .thread_full(
                "producer",
                kernel(1),
                vec![ArgSpec::Buffer(0, 0)],
                vec![],
                vec![SyncAction::SemPost(0)],
                true,
            )
            .thread_full(
                "consumer",
                kernel(1),
                vec![ArgSpec::Buffer(1, 16)],
                vec![SyncAction::SemWait(0)],
                vec![],
                false,
            )
            .build()
            .unwrap();
        assert_eq!(app.buffers.len(), 2);
        assert_eq!(app.hw_eligible(), vec![0]);
    }

    #[test]
    fn arg_count_mismatch_rejected() {
        let err = ApplicationBuilder::new("a")
            .thread("t", kernel(2), vec![ArgSpec::Value(1)], false)
            .build()
            .unwrap_err();
        assert!(matches!(err, AppError::ArgCountMismatch { .. }));
        assert!(err.to_string().contains("expects 2"));
    }

    #[test]
    fn bad_buffer_ref_rejected() {
        let err = ApplicationBuilder::new("a")
            .thread("t", kernel(1), vec![ArgSpec::Buffer(3, 0)], false)
            .build()
            .unwrap_err();
        assert!(matches!(err, AppError::BadBufferRef { index: 3, .. }));
    }

    #[test]
    fn sync_kind_mismatch_rejected() {
        let err = ApplicationBuilder::new("a")
            .sync(SyncSpec::Mutex)
            .thread_full(
                "t",
                kernel(0),
                vec![],
                vec![SyncAction::SemWait(0)], // index 0 is a mutex
                vec![],
                false,
            )
            .build()
            .unwrap_err();
        assert!(matches!(err, AppError::BadSyncRef { .. }));
    }

    #[test]
    fn hand_built_malformed_kernel_rejected() {
        use svmsyn_hls::ir::{Block, BlockId, Instr, Op, Terminator, Value};
        // A phi with no incoming edges in a block with one predecessor:
        // `KernelBuilder::finish` would reject this, but a hand-assembled
        // kernel skips that check. The interpreter would panic resolving
        // the phi mid-simulation; validation must catch it up front.
        let k = Kernel {
            name: "bad".into(),
            num_args: 0,
            instrs: vec![Instr {
                op: Op::Phi(vec![]),
            }],
            blocks: vec![
                Block {
                    instrs: vec![],
                    term: Terminator::Jump(BlockId(1)),
                },
                Block {
                    instrs: vec![Value(0)],
                    term: Terminator::Return(None),
                },
            ],
            entry: BlockId(0),
        };
        let err = ApplicationBuilder::new("a")
            .thread("t", k, vec![], false)
            .build()
            .unwrap_err();
        assert!(matches!(err, AppError::MalformedKernel { .. }));
        assert!(err.to_string().contains("malformed kernel"));
    }

    #[test]
    fn empty_app_rejected() {
        assert_eq!(
            ApplicationBuilder::new("a").build().unwrap_err(),
            AppError::NoThreads
        );
    }

    #[test]
    fn sync_action_object_index() {
        assert_eq!(SyncAction::MboxPut(4, 9).object(), 4);
        assert_eq!(SyncAction::BarrierWait(2).object(), 2);
    }
}
