//! Canonical content fingerprints for applications and platforms.
//!
//! The content-addressed result store (`svmsyn-store`) keys evaluations by
//! `(app fingerprint, platform fingerprint, variant, placements)`, and those
//! keys must collide exactly when the inputs are the same *content* — across
//! processes, across hosts, across builds. So fingerprints here are fnv1a-64
//! digests of canonical snap encodings: every semantically relevant field is
//! written with fixed tags and little-endian scalars, in declaration order,
//! with collection lengths prefixed. Nothing depends on pointer values,
//! hash-map iteration order, or `Debug` formatting (the
//! [`checkpoint::design_fingerprint`](crate::checkpoint::design_fingerprint)
//! precedent hashes Debug strings, which is fine for same-process snapshot
//! guards but not for a shared on-disk store).
//!
//! Names are included deliberately: an application's buffer/thread names and
//! a kernel's name are part of its declared content (two apps that differ
//! only in name are different submissions and may diverge later). The one
//! exception is [`Platform::name`], which is cosmetic — `with_walker` and
//! friends clone it unchanged across materially different variants — so the
//! platform fingerprint excludes it, mirroring what `design_fingerprint`
//! does for `SystemDesign::name`.

use svmsyn_snap::{fnv1a, SnapWriter};

use crate::app::{Application, ArgSpec, BufferSpec, SyncAction, SyncSpec, ThreadSpec};
use crate::platform::Platform;

/// Bumped when the canonical encoding changes shape; mixed into both
/// fingerprints so stale store records from an older encoding never match.
pub const FINGERPRINT_VERSION: u32 = 1;

/// The canonical fingerprint of an application: a content hash of its
/// buffers, sync objects, and threads (kernel IR included). Two
/// applications built independently — in different processes — from the
/// same description produce the same value.
pub fn app_fingerprint(app: &Application) -> u64 {
    let mut w = SnapWriter::new();
    encode_application(app, &mut w);
    fnv1a(&w.into_bytes())
}

/// The canonical fingerprint of a platform: a content hash of every
/// parameter that affects synthesis or simulation. The cosmetic `name` is
/// excluded (variant constructors copy it across different configurations).
pub fn platform_fingerprint(platform: &Platform) -> u64 {
    let mut w = SnapWriter::new();
    encode_platform(platform, &mut w);
    fnv1a(&w.into_bytes())
}

/// Writes the application's canonical encoding into `w` (exposed so tests
/// can compare whole encodings byte-for-byte across processes).
pub fn encode_application(app: &Application, w: &mut SnapWriter) {
    w.put_u32(FINGERPRINT_VERSION);
    w.put_str(&app.name);
    w.put_usize(app.buffers.len());
    for b in &app.buffers {
        encode_buffer(b, w);
    }
    w.put_usize(app.sync_objects.len());
    for s in &app.sync_objects {
        encode_sync_spec(s, w);
    }
    w.put_usize(app.threads.len());
    for t in &app.threads {
        encode_thread(t, w);
    }
}

/// Writes the platform's canonical encoding into `w`.
pub fn encode_platform(p: &Platform, w: &mut SnapWriter) {
    w.put_u32(FINGERPRINT_VERSION);
    // Fabric budget + clock. f64 → raw bits: total order not needed, only
    // bit-equality, and the bits are what the config actually holds.
    w.put_u64(p.fabric.lut);
    w.put_u64(p.fabric.ff);
    w.put_u64(p.fabric.dsp);
    w.put_u64(p.fabric.bram36);
    w.put_u64(p.fabric_mhz.to_bits());
    // Memory system.
    w.put_u64(p.mem.size_bytes);
    w.put_u64(p.mem.fabric.width_bytes);
    w.put_u64(p.mem.fabric.arb_cycles);
    w.put_u32(p.mem.fabric.window);
    w.put_u32(p.mem.fabric.mshrs);
    w.put_u64(p.mem.fabric.mshr_line_bytes);
    w.put_u32(p.mem.dram.banks);
    w.put_u64(p.mem.dram.row_bytes);
    w.put_u64(p.mem.dram.t_row_hit);
    w.put_u64(p.mem.dram.t_row_miss);
    w.put_u64(p.mem.dram.width_bytes);
    w.put_u64(p.mem.max_burst_bytes);
    // OS: cores, the full cost model, frame economics.
    w.put_usize(p.os.cores);
    w.put_u64(p.os.costs.interrupt_entry);
    w.put_u64(p.os.costs.delegate_wakeup);
    w.put_u64(p.os.costs.syscall);
    w.put_u64(p.os.costs.fault_service);
    w.put_u64(p.os.costs.page_zero);
    w.put_u64(p.os.costs.context_switch);
    w.put_u64(p.os.costs.timeslice);
    w.put_u64(p.os.costs.osif_transfer);
    w.put_u64(p.os.costs.swap_out);
    w.put_u64(p.os.costs.swap_in);
    w.put_u64(p.os.costs.reclaim_scan);
    w.put_u64(p.os.reserved_frames);
    match p.os.frame_budget {
        None => w.put_u8(0),
        Some(n) => {
            w.put_u8(1);
            w.put_u64(n);
        }
    }
    w.put_u8(match p.os.alloc_policy {
        svmsyn_os::AllocPolicy::Lazy => 0,
        svmsyn_os::AllocPolicy::Eager => 1,
    });
    // HLS options.
    w.put_usize(p.hls.fu.alu);
    w.put_usize(p.hls.fu.mul);
    w.put_usize(p.hls.fu.div);
    w.put_usize(p.hls.fu.mem_ports);
    w.put_bool(p.hls.pipeline_loops);
    w.put_bool(p.hls.optimize);
    // MEMIF geometry.
    w.put_u64(p.memif.line_bytes);
    w.put_usize(p.memif.cache_lines);
    w.put_usize(p.memif.mmu.tlb.entries);
    w.put_usize(p.memif.mmu.tlb.ways);
    w.put_u8(match p.memif.mmu.tlb.replacement {
        svmsyn_vm::tlb::Replacement::Lru => 0,
        svmsyn_vm::tlb::Replacement::Fifo => 1,
        svmsyn_vm::tlb::Replacement::Random => 2,
    });
    w.put_u64(p.memif.mmu.tlb.hit_cycles);
    w.put_usize(p.memif.mmu.walker.l1_entries);
    w.put_usize(p.memif.mmu.walker.l2_entries);
    w.put_u8(match p.memif.mode {
        svmsyn_hwt::memif::MemifMode::Virtual => 0,
        svmsyn_hwt::memif::MemifMode::Physical => 1,
    });
    w.put_u32(p.memif.miss_depth);
    w.put_usize(p.max_hw_threads);
}

fn encode_buffer(b: &BufferSpec, w: &mut SnapWriter) {
    w.put_str(&b.name);
    w.put_u64(b.len);
    w.put_bytes(&b.init);
    w.put_bool(b.populate);
}

fn encode_sync_spec(s: &SyncSpec, w: &mut SnapWriter) {
    match s {
        SyncSpec::Mutex => w.put_u8(0),
        SyncSpec::Semaphore(n) => {
            w.put_u8(1);
            w.put_i64(*n);
        }
        SyncSpec::Barrier(n) => {
            w.put_u8(2);
            w.put_u32(*n);
        }
        SyncSpec::Mbox(cap) => {
            w.put_u8(3);
            w.put_usize(*cap);
        }
    }
}

fn encode_thread(t: &ThreadSpec, w: &mut SnapWriter) {
    w.put_str(&t.name);
    // The kernel IR is the content; `decoded` is derived from it
    // deterministically, so it is excluded.
    t.kernel.encode_canonical(w);
    w.put_usize(t.args.len());
    for a in &t.args {
        match a {
            ArgSpec::Buffer(i, off) => {
                w.put_u8(0);
                w.put_usize(*i);
                w.put_u64(*off);
            }
            ArgSpec::Value(v) => {
                w.put_u8(1);
                w.put_i64(*v);
            }
        }
    }
    w.put_usize(t.pre.len());
    for a in &t.pre {
        encode_sync_action(a, w);
    }
    w.put_usize(t.post.len());
    for a in &t.post {
        encode_sync_action(a, w);
    }
    w.put_bool(t.hw_eligible);
}

fn encode_sync_action(a: &SyncAction, w: &mut SnapWriter) {
    match a {
        SyncAction::MutexLock(i) => {
            w.put_u8(0);
            w.put_usize(*i);
        }
        SyncAction::MutexUnlock(i) => {
            w.put_u8(1);
            w.put_usize(*i);
        }
        SyncAction::SemWait(i) => {
            w.put_u8(2);
            w.put_usize(*i);
        }
        SyncAction::SemPost(i) => {
            w.put_u8(3);
            w.put_usize(*i);
        }
        SyncAction::BarrierWait(i) => {
            w.put_u8(4);
            w.put_usize(*i);
        }
        SyncAction::MboxPut(i, v) => {
            w.put_u8(5);
            w.put_usize(*i);
            w.put_u64(*v);
        }
        SyncAction::MboxGet(i) => {
            w.put_u8(6);
            w.put_usize(*i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use svmsyn_hls::builder::KernelBuilder;
    use svmsyn_hls::ir::BinOp;

    use crate::app::ApplicationBuilder;

    fn build_app(name: &str, n: u64, seed: i64) -> Application {
        let mut kb = KernelBuilder::new("k", 2);
        let a = kb.arg(0);
        let b = kb.arg(1);
        let s = kb.bin(BinOp::Add, a, b);
        kb.ret(Some(s));
        let kernel = kb.finish().unwrap();
        ApplicationBuilder::new(name)
            .buffer("data", n, vec![1, 2, 3], false)
            .sync(SyncSpec::Semaphore(seed))
            .thread(
                "worker",
                kernel,
                vec![ArgSpec::Buffer(0, 0), ArgSpec::Value(seed)],
                true,
            )
            .build()
            .unwrap()
    }

    #[test]
    fn identical_apps_collide_distinct_apps_do_not() {
        // Two independent builds of the same description → same digest.
        assert_eq!(
            app_fingerprint(&build_app("a", 4096, 7)),
            app_fingerprint(&build_app("a", 4096, 7))
        );
        // Any content difference → different digest.
        let base = app_fingerprint(&build_app("a", 4096, 7));
        assert_ne!(base, app_fingerprint(&build_app("b", 4096, 7)));
        assert_ne!(base, app_fingerprint(&build_app("a", 8192, 7)));
        assert_ne!(base, app_fingerprint(&build_app("a", 4096, 8)));
    }

    #[test]
    fn platform_name_is_cosmetic_but_variants_are_not() {
        let p = Platform::default();
        let mut renamed = p.clone();
        renamed.name = "same-soc-other-label".into();
        assert_eq!(platform_fingerprint(&p), platform_fingerprint(&renamed));

        let base = platform_fingerprint(&p);
        assert_ne!(base, platform_fingerprint(&Platform::small()));
        assert_ne!(base, platform_fingerprint(&p.with_miss_depth(1)));
        assert_ne!(
            base,
            platform_fingerprint(&p.with_walker(svmsyn_vm::walker::WalkerConfig {
                l1_entries: 2,
                l2_entries: 2,
            }))
        );
        let mut pressured = p.pressure_point();
        pressured.frame_budget = Some(64);
        assert_ne!(base, platform_fingerprint(&p.with_pressure(pressured)));
    }

    #[test]
    fn encoding_is_stable_under_clone() {
        // Cloning shares Arc'd decode state and moves allocations — none of
        // that may leak into the encoding.
        let app = build_app("a", 4096, 7);
        let clone = app.clone();
        let mut w1 = SnapWriter::new();
        let mut w2 = SnapWriter::new();
        encode_application(&app, &mut w1);
        encode_application(&clone, &mut w2);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
    }

    proptest! {
        #[test]
        fn fingerprint_is_pure_function_of_content(
            n in 1u64..1_000_000,
            seed in -1_000_000i64..1_000_000,
            depth in 1u32..64,
        ) {
            let a1 = build_app("p", n, seed);
            let a2 = build_app("p", n, seed);
            prop_assert_eq!(app_fingerprint(&a1), app_fingerprint(&a2));

            let p1 = Platform::default().with_miss_depth(depth);
            let p2 = Platform::default().with_miss_depth(depth);
            prop_assert_eq!(platform_fingerprint(&p1), platform_fingerprint(&p2));
            if depth != Platform::default().memif.miss_depth {
                prop_assert!(
                    platform_fingerprint(&p1) != platform_fingerprint(&Platform::default())
                );
            }
        }
    }
}
