//! The copy-based accelerator baseline and the SVM flow it is compared to.
//!
//! The classical (pre-SVM) way to attach an HLS accelerator: pin a
//! physically contiguous DMA buffer, have the CPU *copy* the pageable input
//! into it, run the accelerator with raw physical addresses, and copy the
//! result back. The paper's SVM threads skip both copies by translating in
//! hardware. [`run_copy_flow`] and [`run_svm_flow`] time both flows over
//! identical kernels and data — Figure 4's crossover comes from here.

use std::sync::Arc;

use svmsyn_hls::fsmd::compile;
use svmsyn_hls::ir::Kernel;
use svmsyn_hwt::memif::MemifMode;
use svmsyn_hwt::thread::{HwStep, HwThread, HwThreadConfig};
use svmsyn_mem::{FabricPort, MasterId, MemorySystem, PhysAddr, TxnKind};
use svmsyn_os::os::Os;
use svmsyn_sim::Cycle;

use crate::platform::Platform;
use crate::sim::SimError;

/// Timing breakdown of the copy-based flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyFlowTimes {
    /// CPU copy of the input into the pinned buffer.
    pub copy_in: Cycle,
    /// Accelerator compute (physical addressing).
    pub compute: Cycle,
    /// CPU copy of the result back to pageable memory.
    pub copy_out: Cycle,
}

impl CopyFlowTimes {
    /// End-to-end cycles.
    pub fn total(&self) -> Cycle {
        self.copy_in + self.compute + self.copy_out
    }
}

const CPU_MASTER: MasterId = MasterId(0);
const HW_MASTER: MasterId = MasterId(1);
const COPY_CHUNK: u64 = 64;

/// One side of a CPU-driven copy: either a pageable virtual range (resolved
/// page by page through the address space) or a physically contiguous
/// pinned region.
#[derive(Debug, Clone, Copy)]
enum CopySide {
    Paged(svmsyn_mem::VirtAddr),
    Pinned(PhysAddr),
}

impl CopySide {
    fn resolve(
        &self,
        os: &Os,
        asid: svmsyn_vm::tlb::Asid,
        mem: &MemorySystem,
        off: u64,
    ) -> PhysAddr {
        match self {
            CopySide::Pinned(base) => base.offset(off),
            CopySide::Paged(va) => {
                let cur = svmsyn_mem::VirtAddr(va.0 + off);
                os.space(asid)
                    .translate(mem, cur)
                    .expect("copy range must be mapped")
                    .0
            }
        }
    }
}

/// Times the DMA-style copy of `len` bytes, translating pageable sides page
/// by page — pageable buffers are *not* physically contiguous, which is the
/// whole reason the pinned bounce buffer exists.
///
/// The engine is a fabric master behind a [`FabricPort`], pipelined in
/// window-sized groups: a group's chunk *reads* all issue first (chained on
/// the address handshake, so their DRAM latencies overlap under the
/// engine's outstanding window), then each chunk's dependent *write* issues
/// at its read's completion. Grouping matters because the fabric's
/// calendars slot in call order — interleaving `read, write, read, …` would
/// park every next read behind the previous chunk's late-arriving write and
/// serialize the copy. The group size is the fabric window (the engine's
/// buffer depth); on the blocking configuration the group is one chunk and
/// the loop degenerates to the old call-return copy.
fn timed_copy(
    os: &Os,
    asid: svmsyn_vm::tlb::Asid,
    mem: &mut MemorySystem,
    src: CopySide,
    dst: CopySide,
    len: u64,
    now: Cycle,
) -> Cycle {
    let port = FabricPort::new(CPU_MASTER);
    let group = mem.fabric().config().window.max(1) as u64;
    let mut issue = now;
    let mut done = now;
    let mut off = 0;
    while off < len {
        // Issue up to `group` chunk reads back to back...
        let mut reads = Vec::with_capacity(group as usize);
        while off < len && (reads.len() as u64) < group {
            let n = COPY_CHUNK.min(len - off);
            let src_pa = src.resolve(os, asid, mem, off);
            let dst_pa = dst.resolve(os, asid, mem, off);
            let rd = mem.issue(port.desc(src_pa, n, TxnKind::Read), issue);
            issue = mem.next_issue(rd);
            reads.push((rd, dst_pa, n));
            // Move the real bytes too.
            let mut buf = vec![0u8; n as usize];
            mem.dump(src_pa, &mut buf);
            mem.load(dst_pa, &buf);
            off += n;
        }
        // ...then drain their dependent writes.
        for (rd, dst_pa, n) in reads {
            let wr = mem.issue(port.desc(dst_pa, n, TxnKind::Write), mem.completion(rd));
            done = done.max(mem.completion(wr));
        }
        if group == 1 {
            // True blocking engine: the next chunk's read waits for the
            // write's full completion, exactly the old call-return loop.
            issue = done;
        }
    }
    done
}

fn drive_hw(
    thread: &mut HwThread,
    mem: &mut MemorySystem,
    os: &mut Os,
    asid: svmsyn_vm::tlb::Asid,
    start: Cycle,
) -> Result<Cycle, SimError> {
    let mut now = start;
    loop {
        match thread.advance(mem, now, 1_000_000) {
            HwStep::Yielded { now: n } => now = n,
            HwStep::Parked { wake } => now = wake,
            HwStep::Finished { now, .. } => return Ok(now),
            HwStep::PageFault { fault, now: at } => {
                let write = fault.access() == svmsyn_vm::mmu::Access::Write;
                now = os
                    .service_fault(asid, fault.va(), write, true, mem, at)
                    .map_err(|f| SimError::Segv {
                        thread: "baseline-hw".into(),
                        fault: f,
                    })?;
            }
        }
    }
}

/// Runs the copy-based flow: pin → copy in → compute (physical) → copy out.
///
/// `make_args` receives the (physical) input and output base addresses the
/// accelerator should use. Returns the timing breakdown and the output
/// bytes.
///
/// # Errors
///
/// Returns [`SimError`] on OS setup failure or an accelerator fault.
pub fn run_copy_flow(
    kernel: &Kernel,
    platform: &Platform,
    input: &[u8],
    out_len: u64,
    make_args: &dyn Fn(u64, u64) -> Vec<i64>,
) -> Result<(CopyFlowTimes, Vec<u8>), SimError> {
    let mut mem = MemorySystem::new(platform.mem.clone());
    let mut os = Os::new(&platform.os, &mem);
    let asid = os.create_space(&mut mem)?;

    // Pageable application buffers (input resident, as in the SVM flow).
    let src_va = os.mmap(asid, input.len().max(1) as u64, true, true, &mut mem)?;
    os.copy_in(asid, src_va, input, &mut mem)?;
    let dst_va = os.mmap(asid, out_len.max(1), true, true, &mut mem)?;

    // Pinned DMA bounce buffers.
    let (_pin_in_va, pin_in) = os.mmap_pinned(asid, input.len().max(1) as u64, true, &mut mem)?;
    let (_pin_out_va, pin_out) = os.mmap_pinned(asid, out_len.max(1), true, &mut mem)?;

    // Copy in: pageable src -> pinned (page-by-page translation).
    let t0 = Cycle::ZERO;
    let t_in = timed_copy(
        &os,
        asid,
        &mut mem,
        CopySide::Paged(src_va),
        CopySide::Pinned(pin_in),
        input.len() as u64,
        t0,
    );

    // Compute with raw physical addressing.
    let ck = Arc::new(compile(kernel, &platform.hls));
    let cfg = HwThreadConfig {
        memif: svmsyn_hwt::memif::MemifConfig {
            mode: MemifMode::Physical,
            ..platform.memif
        },
    };
    let args = make_args(pin_in.0, pin_out.0);
    let mut hw = HwThread::new(ck, &args, &cfg, HW_MASTER);
    let t_compute = drive_hw(&mut hw, &mut mem, &mut os, asid, t_in)?;

    // Copy out: pinned -> pageable dst (page-by-page translation).
    let t_out = timed_copy(
        &os,
        asid,
        &mut mem,
        CopySide::Pinned(pin_out),
        CopySide::Paged(dst_va),
        out_len,
        t_compute,
    );

    let mut output = vec![0u8; out_len as usize];
    os.copy_out(asid, dst_va, &mut output, &mem);
    Ok((
        CopyFlowTimes {
            copy_in: t_in - t0,
            compute: t_compute - t_in,
            copy_out: t_out - t_compute,
        },
        output,
    ))
}

/// Runs the SVM flow on identical data: the accelerator reads/writes the
/// pageable buffers directly through its MMU (zero copy).
///
/// `make_args` receives the (virtual) input and output base addresses.
/// Returns the end-to-end cycles and the output bytes.
///
/// # Errors
///
/// Returns [`SimError`] on OS setup failure or an unservicable fault.
pub fn run_svm_flow(
    kernel: &Kernel,
    platform: &Platform,
    input: &[u8],
    out_len: u64,
    make_args: &dyn Fn(u64, u64) -> Vec<i64>,
) -> Result<(Cycle, Vec<u8>), SimError> {
    let mut mem = MemorySystem::new(platform.mem.clone());
    let mut os = Os::new(&platform.os, &mem);
    let asid = os.create_space(&mut mem)?;

    let src_va = os.mmap(asid, input.len().max(1) as u64, true, true, &mut mem)?;
    os.copy_in(asid, src_va, input, &mut mem)?;
    let dst_va = os.mmap(asid, out_len.max(1), true, true, &mut mem)?;

    let ck = Arc::new(compile(kernel, &platform.hls));
    let cfg = HwThreadConfig {
        memif: platform.memif,
    };
    let args = make_args(src_va.0, dst_va.0);
    let mut hw = HwThread::new(ck, &args, &cfg, HW_MASTER);
    let root = os.space(asid).root();
    hw.set_context(asid, root);
    let end = drive_hw(&mut hw, &mut mem, &mut os, asid, Cycle::ZERO)?;

    let mut output = vec![0u8; out_len as usize];
    os.copy_out(asid, dst_va, &mut output, &mem);
    Ok((end, output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use svmsyn_hls::builder::KernelBuilder;
    use svmsyn_hls::ir::{BinOp, CmpOp, Width};

    /// dst[i] = src[i] + 7
    fn add7() -> Kernel {
        let mut b = KernelBuilder::new("add7", 3);
        let entry = b.current_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let src = b.arg(0);
        let dst = b.arg(1);
        let n = b.arg(2);
        let zero = b.constant(0);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi();
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let four = b.constant(4);
        let off = b.bin(BinOp::Mul, i, four);
        let sa = b.bin(BinOp::Add, src, off);
        let da = b.bin(BinOp::Add, dst, off);
        let v = b.load(sa, Width::W32);
        let seven = b.constant(7);
        let v7 = b.bin(BinOp::Add, v, seven);
        b.store(da, v7, Width::W32);
        let one = b.constant(1);
        let i2 = b.bin(BinOp::Add, i, one);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        b.set_phi_incoming(i, &[(entry, zero), (body, i2)]);
        b.finish().unwrap()
    }

    fn input(n: u64) -> Vec<u8> {
        (0..n as u32).flat_map(|i| i.to_le_bytes()).collect()
    }

    fn check(out: &[u8], n: u64) {
        for i in 0..n as usize {
            let mut w = [0u8; 4];
            w.copy_from_slice(&out[i * 4..i * 4 + 4]);
            assert_eq!(u32::from_le_bytes(w), i as u32 + 7, "element {i}");
        }
    }

    #[test]
    fn both_flows_compute_identical_results() {
        let k = add7();
        let n = 512u64;
        let platform = Platform::default();
        let args = |a: u64, b: u64| vec![a as i64, b as i64, n as i64];
        let (copy_times, copy_out) = run_copy_flow(&k, &platform, &input(n), n * 4, &args).unwrap();
        let (svm_time, svm_out) = run_svm_flow(&k, &platform, &input(n), n * 4, &args).unwrap();
        check(&copy_out, n);
        check(&svm_out, n);
        assert_eq!(copy_out, svm_out);
        assert!(copy_times.total() > Cycle(0));
        assert!(svm_time > Cycle(0));
    }

    #[test]
    fn copy_overhead_grows_with_size_and_svm_wins_large() {
        let k = add7();
        let platform = Platform::default();
        let mut last_copy_overhead = 0u64;
        for n in [256u64, 4096] {
            let args = move |a: u64, b: u64| vec![a as i64, b as i64, n as i64];
            let (ct, _) = run_copy_flow(&k, &platform, &input(n), n * 4, &args).unwrap();
            let overhead = (ct.copy_in + ct.copy_out).0;
            assert!(overhead > last_copy_overhead);
            last_copy_overhead = overhead;
        }
        // At 4096 elements the SVM flow must beat copy-based end to end.
        let n = 4096u64;
        let args = move |a: u64, b: u64| vec![a as i64, b as i64, n as i64];
        let (ct, _) = run_copy_flow(&k, &platform, &input(n), n * 4, &args).unwrap();
        let (svm, _) = run_svm_flow(&k, &platform, &input(n), n * 4, &args).unwrap();
        assert!(
            svm < ct.total(),
            "svm {svm} must beat copy {total}",
            total = ct.total()
        );
    }

    #[test]
    fn windowed_fabric_overlaps_the_copy_engine() {
        // The DMA engine's grouped issue must actually overlap chunk DRAM
        // latencies: the copy phases on the windowed default platform beat
        // the same copy on the blocking (window=1) fabric.
        let k = add7();
        let n = 4096u64;
        let args = move |a: u64, b: u64| vec![a as i64, b as i64, n as i64];
        let windowed = Platform::default();
        let blocking = {
            let mut p = Platform::default();
            p.mem.fabric = svmsyn_mem::FabricConfig::blocking();
            p
        };
        let (tw, _) = run_copy_flow(&k, &windowed, &input(n), n * 4, &args).unwrap();
        let (tb, _) = run_copy_flow(&k, &blocking, &input(n), n * 4, &args).unwrap();
        let copy_w = (tw.copy_in + tw.copy_out).0;
        let copy_b = (tb.copy_in + tb.copy_out).0;
        assert!(
            copy_w < copy_b,
            "windowed copy {copy_w} must beat blocking copy {copy_b}"
        );
    }

    #[test]
    fn physical_mode_never_faults() {
        let k = add7();
        let platform = Platform::default();
        let n = 64u64;
        let args = move |a: u64, b: u64| vec![a as i64, b as i64, n as i64];
        let (ct, out) = run_copy_flow(&k, &platform, &input(n), n * 4, &args).unwrap();
        check(&out, n);
        assert!(ct.compute > Cycle(0));
    }
}
