//! Full-system simulation of a synthesized design.
//!
//! [`simulate`] boots the OS, loads the application's buffers into one
//! shared virtual address space, instantiates each thread (hardware threads
//! with their private MMUs bound to that space; software threads on the CPU
//! model), and runs everything to completion on the deterministic event
//! scheduler. Hardware and software threads contend for the same bus,
//! synchronize through the same primitives, and fault into the same OS —
//! the paper's execution model end to end.

use std::cell::OnceCell;
use std::sync::Arc;

use svmsyn_hwt::thread::{HwStep, HwThread, HwThreadConfig};
use svmsyn_mem::{MasterId, MemorySystem, VirtAddr};
use svmsyn_os::addrspace::{OsError, Sigsegv};
use svmsyn_os::cpu::{SliceEnd, SwExec, SwExecConfig};
use svmsyn_os::os::Os;
use svmsyn_os::sync::{SyncResult, ThreadId, Wake};
use svmsyn_sim::{Cycle, Scheduler, StatSet};
use svmsyn_snap::{Snap, SnapError, SnapReader, SnapWriter};
use svmsyn_vm::mmu::Access;
use svmsyn_vm::tlb::Asid;

use crate::app::{SyncAction, SyncSpec};
use crate::checkpoint::{design_fingerprint, Checkpoint};
use crate::flow::{Placement, SystemDesign};

/// Snapshot image format version this binary writes and understands.
/// Bumped whenever the payload layout changes; images from other versions
/// are rejected at restore with [`SnapError::Version`].
pub const SNAPSHOT_VERSION: u32 = 1;

/// Simulation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Cycle budget per thread advance (smaller = fairer calendar
    /// interleaving, more events).
    pub quantum: u64,
    /// Hard cap on scheduler events (runaway guard).
    pub max_events: u64,
    /// Thrash detector: consecutive faults by one hardware thread with no
    /// memory op issued in between before the run ends with
    /// [`SimError::Thrashing`] (0 disables). Catches accesses that can
    /// never complete — e.g. an access spanning two pages under a frame
    /// budget that holds only one, refaulting forever.
    pub fault_retry_budget: u32,
    /// Thrash watchdog: length of the fault-rate window in cycles.
    pub thrash_window: u64,
    /// Thrash watchdog: faults within one window before the run ends with
    /// [`SimError::Thrashing`] (0 disables). Catches runs making so little
    /// progress per fault that finishing is hopeless — ping-ponging frames
    /// between threads — long before `max_events`.
    pub thrash_fault_limit: u32,
    /// Graceful interruption: when non-zero, [`Sim::run`] pauses after this
    /// many scheduler events and returns a resumable [`Checkpoint`]
    /// ([`simulate`] resumes transparently). `0` disables pausing.
    pub checkpoint_every: u64,
    /// Requested simulation shards. `1` (the default) runs the classic
    /// single-wheel engine; `> 1` partitions the threads across per-shard
    /// event wheels advanced in conservative lookahead windows (see
    /// [`crate::shard`]). The planner may reduce the effective count — see
    /// [`crate::shard::planned_shards`].
    pub shards: u32,
    /// Lookahead window override in cycles for the sharded engine. `0`
    /// (the default) derives the window from the fabric's minimum
    /// issue-to-complete latency and the quantum.
    pub shard_window: u64,
}

impl Default for SimConfig {
    /// 2 k-cycle quanta (fine enough that concurrent threads book the
    /// shared-bus calendar in near-time-order), 5 M events, a 64-retry
    /// per-access fault budget, and the rate watchdog off (pressure
    /// scenarios opt in with a limit matched to their fault costs).
    fn default() -> Self {
        SimConfig {
            quantum: 2_000,
            max_events: 5_000_000,
            fault_retry_budget: 64,
            thrash_window: 1_000_000,
            thrash_fault_limit: 0,
            checkpoint_every: 0,
            shards: 1,
            shard_window: 0,
        }
    }
}

/// Why a simulation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A thread performed an unservicable access.
    Segv {
        /// Thread name.
        thread: String,
        /// The fault.
        fault: Sigsegv,
    },
    /// All remaining threads are blocked on synchronization.
    Deadlock {
        /// Names of the blocked threads.
        blocked: Vec<String>,
    },
    /// The event cap was exceeded. Carries a checkpoint of the run at the
    /// limit: callers can raise `max_events` and resume instead of losing
    /// the work ([`None`] only for checkpoints that failed to assemble,
    /// which no current path produces).
    EventLimit {
        /// Simulated cycle at which the cap was hit.
        cycle: u64,
        /// Events fired when the cap was hit.
        events: u64,
        /// Names of the threads still runnable at the limit.
        runnable: Vec<String>,
        /// The run, frozen at the limit — resume with a raised budget.
        checkpoint: Option<Checkpoint>,
    },
    /// The run was fault-bound beyond hope of progress: one access
    /// refaulted past its retry budget, or the system-wide fault rate
    /// exceeded the watchdog limit (see [`SimConfig`]).
    Thrashing {
        /// The thread charged with the thrash (`"system"` for the
        /// rate-watchdog trip, which no single thread owns).
        thread: String,
        /// Faults observed (per-access streak, or faults in the window).
        faults: u64,
        /// Cycles over which they accumulated.
        window: u64,
        /// The run, frozen at the trip with the faulting thread re-armed —
        /// resume with a raised retry budget or watchdog limit.
        checkpoint: Option<Checkpoint>,
    },
    /// OS-level setup failed (e.g. out of memory for buffers).
    Os(OsError),
    /// A checkpoint image was rejected at restore (corrupt, truncated,
    /// version-mismatched, or from a different design).
    Snapshot(SnapError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Segv { thread, fault } => write!(f, "thread {thread}: {fault}"),
            SimError::Deadlock { blocked } => {
                write!(f, "deadlock; blocked threads: {}", blocked.join(", "))
            }
            // Stable prefix: external tooling matches on "event limit
            // exceeded".
            SimError::EventLimit {
                cycle,
                events,
                runnable,
                ..
            } => {
                write!(
                    f,
                    "event limit exceeded at cycle {cycle} after {events} events; runnable: {}",
                    if runnable.is_empty() {
                        "none".to_string()
                    } else {
                        runnable.join(", ")
                    }
                )
            }
            SimError::Thrashing {
                thread,
                faults,
                window,
                ..
            } => {
                write!(
                    f,
                    "thrashing: {thread} took {faults} page faults within {window} cycles"
                )
            }
            SimError::Os(e) => write!(f, "os setup failed: {e}"),
            SimError::Snapshot(e) => write!(f, "snapshot rejected: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    /// The wrapped cause for the two composing variants, so `?`-chained
    /// callers can walk to the underlying [`OsError`] / [`SnapError`].
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Os(e) => Some(e),
            SimError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OsError> for SimError {
    fn from(e: OsError) -> Self {
        SimError::Os(e)
    }
}

impl From<SnapError> for SimError {
    fn from(e: SnapError) -> Self {
        SimError::Snapshot(e)
    }
}

impl SimError {
    /// The resumable checkpoint attached to a budget-exhaustion error
    /// ([`EventLimit`][Self::EventLimit] / [`Thrashing`][Self::Thrashing]),
    /// if any: restore it with a raised budget and continue the run.
    pub fn checkpoint(&self) -> Option<&Checkpoint> {
        match self {
            SimError::EventLimit { checkpoint, .. } | SimError::Thrashing { checkpoint, .. } => {
                checkpoint.as_ref()
            }
            _ => None,
        }
    }
}

/// Per-thread results.
#[derive(Debug, Clone)]
pub struct ThreadMetrics {
    /// Thread name.
    pub name: String,
    /// Where it ran.
    pub placement: Placement,
    /// Spawn time.
    pub start: Cycle,
    /// Completion time (post-sync included).
    pub end: Cycle,
    /// Kernel return value, if any.
    pub ret: Option<i64>,
    /// The retired execution body (source of the lazy counter snapshot).
    pub(crate) body: Body,
    /// Cached snapshot; assembled on first [`stats`][Self::stats] call.
    pub(crate) stats: OnceCell<StatSet>,
}

impl ThreadMetrics {
    /// The thread's own counters (MEMIF/MMU or cache/TLB absorbed).
    ///
    /// Assembled lazily on first call: counter snapshots allocate a keyed
    /// map, which is measurable overhead for sweeps that only read the
    /// makespan (DSE evaluates thousands of runs).
    pub fn stats(&self) -> &StatSet {
        self.stats.get_or_init(|| match &self.body {
            Body::Sw(sw) => sw.stats(),
            Body::Hw(hw) => hw.stats(),
        })
    }
}

/// Barrier-synchronization counters from a sharded run (see
/// [`crate::shard`]). `None` on [`SimOutcome`]s produced by the serial
/// single-wheel engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardSyncStats {
    /// Lookahead windows executed (barrier count).
    pub windows: u64,
    /// Cross-shard interactions exchanged at barriers: page-fault services,
    /// kernel-finish notifications routed through the coordinator.
    pub crossings: u64,
    /// Σ over (window × shard) of idle cycles between a shard's last event
    /// and the window edge — the conservative-lookahead synchronization
    /// cost. When this dominates `windows × window length × shards`, the
    /// shards are starved and a larger window (or fewer shards) would pay.
    pub barrier_wait_cycles: u64,
    /// Shards the run executed on.
    pub shards: u64,
    /// The lookahead window length `W`, in cycles.
    pub window_len: u64,
}

impl ShardSyncStats {
    /// The fraction of all shard-cycles spent idle at window barriers
    /// (`0.0` when no windows ran).
    pub fn barrier_wait_fraction(&self) -> f64 {
        let total = self.windows * self.window_len * self.shards;
        if total == 0 {
            0.0
        } else {
            self.barrier_wait_cycles as f64 / total as f64
        }
    }
}

/// The outcome of a full-system simulation.
#[derive(Debug)]
pub struct SimOutcome {
    /// Completion time of the last thread.
    pub makespan: Cycle,
    /// Per-thread metrics, in application order.
    pub threads: Vec<ThreadMetrics>,
    /// Cached system-wide counters; see [`stats`][Self::stats].
    pub(crate) stats: OnceCell<StatSet>,
    /// Where each application buffer was mapped.
    pub buffer_vas: Vec<VirtAddr>,
    /// Final memory image (for checkers).
    pub mem: MemorySystem,
    /// Final OS state (for checkers and reports).
    pub os: Os,
    /// The shared address space.
    pub asid: Asid,
    /// TLB shootdowns broadcast during the run (one per reclaimed page per
    /// MMU/CPU-TLB target).
    pub shootdowns: u64,
    /// Barrier-synchronization counters when the run used the sharded
    /// engine; `None` for serial single-wheel runs.
    pub sync: Option<ShardSyncStats>,
}

/// Assembles the system-wide counter set from its components — shared by
/// the final [`SimOutcome::stats`] and the mid-run [`Sim::live_stats`], so
/// the sampling estimator's per-interval deltas use exactly the same keys
/// and aggregation rules as the ground-truth totals it extrapolates.
pub(crate) fn assemble_stats<'a>(
    makespan: Cycle,
    thread_stats: impl Iterator<Item = &'a StatSet>,
    os: &Os,
    mem: &MemorySystem,
    shootdowns: u64,
) -> StatSet {
    let mut stats = StatSet::new();
    stats.put("makespan", makespan.0 as f64);
    stats.absorb("os", os.stats());
    stats.absorb("mem", mem.stats());
    // Memory-pressure health: how hard the frame budget squeezed
    // the run. `shootdowns` counts per-target invalidations (a
    // broadcast to N MMUs is N shootdowns — the storm, not the
    // trigger).
    stats.put("pressure.major_faults", os.major_faults() as f64);
    stats.put("pressure.reclaims", os.reclaims() as f64);
    stats.put("pressure.shootdowns", shootdowns as f64);
    stats.put("pressure.swap_busy_cycles", os.swap.busy_cycles() as f64);
    // System-wide walker health: the hardware threads' per-level
    // walk-cache hit rates, aggregated over all MMUs. Software
    // threads have no walker and contribute nothing.
    let (mut walks, mut l1_hits, mut l2_hits) = (0.0, 0.0, 0.0);
    // Hit-under-miss health of the non-blocking MEMIFs: accesses
    // that retired while a fill was outstanding, and the fill
    // latency hidden behind execution instead of stalling.
    let (mut hum, mut overlap, mut parks) = (0.0, 0.0, 0.0);
    for s in thread_stats {
        if let Some(w) = s.get("memif.mmu.walker.walks") {
            walks += w;
            l1_hits += s.get("memif.mmu.walker.l1_walk_hits").unwrap_or(0.0)
                + s.get("memif.mmu.walker.dir_coalesced").unwrap_or(0.0);
            l2_hits += s.get("memif.mmu.walker.l2_walk_hits").unwrap_or(0.0);
        }
        hum += s.get("memif.hit_under_miss").unwrap_or(0.0);
        overlap += s.get("memif.miss_overlap_cycles").unwrap_or(0.0);
        parks += s.get("miss_parks").unwrap_or(0.0);
    }
    stats.put("memif.hit_under_miss", hum);
    stats.put("memif.miss_overlap_cycles", overlap);
    stats.put("memif.miss_parks", parks);
    stats.put("vm.walks", walks);
    // The raw hit counters ride along with the rates: rates are ratios of
    // counters, and the sampling estimator extrapolates counters (additive
    // over intervals) and re-derives the ratios from them.
    stats.put("vm.l1_walk_hits", l1_hits);
    stats.put("vm.l2_walk_hits", l2_hits);
    let rate = |hits: f64| if walks > 0.0 { hits / walks } else { 0.0 };
    stats.put("vm.l1_walk_hit_rate", rate(l1_hits));
    stats.put("vm.l2_walk_hit_rate", rate(l2_hits));
    // Fabric health: how much the split-transaction fabric actually
    // overlapped. `outstanding_mean` is the system-wide average
    // number of in-flight transactions (Σ per-master occupancy
    // integrals over the makespan); per-master `overlap` and
    // `window_stall_cycles` breakdowns live under `mem.fabric.mN.*`.
    // `inflight_cycles` and `data_busy_cycles` are those ratios'
    // numerators, exported for the same counters-first reason as the
    // walk-hit counts above.
    let f = mem.fabric().stats();
    let span = makespan.0.max(1) as f64;
    let inflight = f.get("inflight_cycles").unwrap_or(0.0);
    stats.put("fabric.inflight_cycles", inflight);
    stats.put("fabric.outstanding_mean", inflight / span);
    stats.put("fabric.merges", f.get("merges").unwrap_or(0.0));
    stats.put("fabric.data_busy_cycles", mem.fabric().busy_cycles() as f64);
    stats.put(
        "fabric.data_utilization",
        mem.fabric().utilization(makespan),
    );
    stats
}

impl SimOutcome {
    /// System-wide counters (OS, bus, DRAM absorbed), assembled lazily on
    /// first call — simulation itself never pays for the snapshot.
    pub fn stats(&self) -> &StatSet {
        self.stats.get_or_init(|| {
            let mut stats = assemble_stats(
                self.makespan,
                self.threads.iter().map(|t| t.stats()),
                &self.os,
                &self.mem,
                self.shootdowns,
            );
            // Sharded runs report their barrier-protocol cost; the keys are
            // simply absent from serial runs so stat diffs between engines
            // stay honest.
            if let Some(sync) = &self.sync {
                stats.put("sync.windows", sync.windows as f64);
                stats.put("sync.crossings", sync.crossings as f64);
                stats.put("sync.barrier_wait_cycles", sync.barrier_wait_cycles as f64);
            }
            stats
        })
    }

    /// Copies the final contents of application buffer `idx` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn read_buffer(&self, idx: usize, buf: &mut [u8]) {
        self.os
            .copy_out(self.asid, self.buffer_vas[idx], buf, &self.mem);
    }

    /// Wall-clock duration in microseconds at the design's achieved clock.
    pub fn wall_micros(&self, design: &SystemDesign) -> f64 {
        self.makespan.as_micros(design.system_mhz)
    }

    /// Human-readable run-health warnings for summary reports. Today this
    /// flags one condition: a sharded run whose shards spent most of their
    /// cycles idle at window barriers — the parallelism is not paying and
    /// a larger `shard_window` (or fewer shards) would.
    pub fn summary_warnings(&self) -> Vec<String> {
        let mut warnings = Vec::new();
        if let Some(sync) = &self.sync {
            let frac = sync.barrier_wait_fraction();
            if sync.windows > 0 && frac > 0.5 {
                warnings.push(format!(
                    "barrier wait dominates: {:.0}% of shard-cycles idle across {} windows \
                     ({} shards, window {} cycles) — raise shard_window or lower shards",
                    frac * 100.0,
                    sync.windows,
                    sync.shards,
                    sync.window_len,
                ));
            }
        }
        warnings
    }
}

// The size gap between the variants is fine: bodies live in a short Vec
// (one per thread) and boxing the large variant would cost an indirection
// on every scheduler step.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum Body {
    Sw(SwExec),
    Hw(HwThread),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    Pre(usize),
    Run,
    Post(usize),
    Done,
}

#[derive(Debug)]
pub(crate) struct ThreadRt {
    pub(crate) name: String,
    pub(crate) placement: Placement,
    pub(crate) body: Body,
    pub(crate) pre: Vec<SyncAction>,
    pub(crate) post: Vec<SyncAction>,
    pub(crate) phase: Phase,
    pub(crate) start: Cycle,
    pub(crate) end: Option<Cycle>,
    pub(crate) ret: Option<i64>,
}

#[derive(Debug)]
pub(crate) struct SystemState {
    pub(crate) mem: MemorySystem,
    pub(crate) os: Os,
    pub(crate) asid: Asid,
    pub(crate) threads: Vec<ThreadRt>,
    pub(crate) sync_ids: Vec<u32>,
    pub(crate) quantum: u64,
    pub(crate) finished: usize,
    pub(crate) error: Option<SimError>,
    /// Per-hardware-thread consecutive-fault streak `(mem_ops_issued,
    /// count, first)`; cleared on any step that makes progress.
    pub(crate) fault_streaks: Vec<Option<(u64, u32, Cycle)>>,
    /// Per-access fault-retry budget (0 = disabled).
    pub(crate) retry_budget: u32,
    /// Per-target TLB shootdowns broadcast so far.
    pub(crate) shootdowns: u64,
    /// Mirror of every scheduler-resident step event `(fire time, insertion
    /// sequence, thread)`. The scheduler's closures cannot be serialized,
    /// but every event in this system is "step thread `i` at cycle `t`", so
    /// the snapshot records this registry instead and restore re-schedules
    /// equivalent closures in original insertion order. Each closure
    /// unregisters its own entry as it fires.
    pub(crate) pending_steps: Vec<(Cycle, u64, u32)>,
    /// Monotonic insertion counter backing `pending_steps` ordering.
    pub(crate) next_step_seq: u64,
}

/// Broadcasts the OS's queued reclaim shootdowns to every hardware MMU
/// (TLB + walk caches) and software CPU TLB — pressure made visible as
/// invalidation storms.
fn drain_shootdowns(state: &mut SystemState) {
    let pending = state.os.take_shootdowns();
    for (asid, va) in pending {
        for t in &mut state.threads {
            match &mut t.body {
                Body::Hw(hw) => hw.memif_mut().mmu_mut().invalidate_page(asid, va),
                Body::Sw(sw) => sw.shootdown(asid, va),
            }
            state.shootdowns += 1;
        }
    }
}

type Sched = Scheduler<SystemState>;

/// Drops `seq` from the pending-step mirror (as its event fires). Order in
/// the mirror is irrelevant — snapshot sorts by `(time, seq)` — so the
/// removal is a swap.
fn unregister_step(state: &mut SystemState, seq: u64) {
    if let Some(idx) = state.pending_steps.iter().position(|&(_, s, _)| s == seq) {
        state.pending_steps.swap_remove(idx);
    }
}

fn schedule_step(state: &mut SystemState, sched: &mut Sched, at: Cycle, i: usize) {
    let seq = state.next_step_seq;
    state.next_step_seq += 1;
    state.pending_steps.push((at, seq, i as u32));
    sched.schedule_at(at, move |state: &mut SystemState, sched: &mut Sched| {
        unregister_step(state, seq);
        step_thread(state, sched, i)
    });
}

/// Completion delivery for a parked thread: wakes it at the fill's exact
/// completion cycle (clamped to `now` if the completion already elapsed
/// while the thread was descheduled — `schedule_wake`'s contract). The
/// mirror records the *clamped* time: that is the cycle the wheel actually
/// holds, and the one restore must re-schedule at.
fn schedule_wake_step(state: &mut SystemState, sched: &mut Sched, wake: Cycle, i: usize) {
    let seq = state.next_step_seq;
    state.next_step_seq += 1;
    state
        .pending_steps
        .push((wake.max(sched.now()), seq, i as u32));
    sched.schedule_wake(wake, move |state: &mut SystemState, sched: &mut Sched| {
        unregister_step(state, seq);
        step_thread(state, sched, i)
    });
}

fn wake_cost(state: &SystemState, j: usize) -> u64 {
    match state.threads[j].placement {
        Placement::Software => state.os.costs.context_switch,
        Placement::Hardware => state.os.costs.delegate_wakeup + state.os.costs.osif_transfer,
    }
}

fn apply_wakes(state: &mut SystemState, sched: &mut Sched, wakes: &[Wake], at: Cycle) {
    for w in wakes {
        let j = w.thread().0 as usize;
        let cost = wake_cost(state, j);
        schedule_step(state, sched, at + cost, j);
    }
}

fn handle_sync(state: &mut SystemState, sched: &mut Sched, i: usize, k: usize, is_pre: bool) {
    let now = sched.now();
    let actions = if is_pre {
        state.threads[i].pre.clone()
    } else {
        state.threads[i].post.clone()
    };
    if k >= actions.len() {
        if is_pre {
            state.threads[i].phase = Phase::Run;
            schedule_step(state, sched, now, i);
        } else {
            state.threads[i].phase = Phase::Done;
            state.threads[i].end = Some(now);
            state.finished += 1;
        }
        return;
    }
    let action = actions[k];
    let cost = match state.threads[i].placement {
        Placement::Hardware => state.os.costs.osif_call_total(),
        Placement::Software => state.os.costs.syscall,
    };
    let t = now + cost;
    let tid = ThreadId(i as u32);
    let oid = state.sync_ids[action.object()];
    let (result, wakes) = match action {
        SyncAction::MutexLock(_) => (state.os.sync.mutex_lock(tid, oid), vec![]),
        SyncAction::MutexUnlock(_) => (
            SyncResult::Proceed { value: None },
            state.os.sync.mutex_unlock(tid, oid),
        ),
        SyncAction::SemWait(_) => (state.os.sync.sem_wait(tid, oid), vec![]),
        SyncAction::SemPost(_) => (
            SyncResult::Proceed { value: None },
            state.os.sync.sem_post(oid),
        ),
        SyncAction::BarrierWait(_) => state.os.sync.barrier_wait(tid, oid),
        SyncAction::MboxPut(_, v) => state.os.sync.mbox_put(tid, oid, v),
        SyncAction::MboxGet(_) => state.os.sync.mbox_get(tid, oid),
    };
    // A blocked action completes upon wakeup (FIFO handoff semantics), so
    // the phase index always advances.
    state.threads[i].phase = if is_pre {
        Phase::Pre(k + 1)
    } else {
        Phase::Post(k + 1)
    };
    apply_wakes(state, sched, &wakes, t);
    match result {
        SyncResult::Proceed { .. } => schedule_step(state, sched, t, i),
        SyncResult::Block => { /* the waker reschedules us */ }
    }
}

enum BodyOutcome {
    Reschedule(Cycle),
    /// A hardware thread parked on an outstanding miss: wake at exactly
    /// the fill's completion cycle via the scheduler's wake path.
    Wake(Cycle),
    Finished(Option<i64>, Cycle),
    Fault(Sigsegv),
    /// One access refaulted past the retry budget: the run is thrashing.
    Thrash {
        faults: u64,
        window: u64,
    },
}

fn run_body(state: &mut SystemState, sched: &mut Sched, i: usize) {
    let now = sched.now();
    let quantum = state.quantum;
    let asid = state.asid;
    let outcome = {
        let SystemState {
            mem,
            os,
            threads,
            fault_streaks,
            retry_budget,
            ..
        } = &mut *state;
        let rt = &mut threads[i];
        match &mut rt.body {
            Body::Hw(hw) => match hw.advance(mem, now, quantum) {
                HwStep::Yielded { now } => {
                    fault_streaks[i] = None;
                    BodyOutcome::Reschedule(now)
                }
                // Event-driven completion delivery: the thread parked a
                // dependent micro-op on an outstanding miss; the timing
                // wheel wakes it at the fill's exact completion cycle.
                HwStep::Parked { wake } => {
                    fault_streaks[i] = None;
                    BodyOutcome::Wake(wake)
                }
                HwStep::PageFault { fault, now } => {
                    // A fault with no memory op issued since the previous
                    // one is a retry that lost its frames again (faulted
                    // issues don't re-count on retry). Past the budget the
                    // access can never complete — stop instead of spinning
                    // to max_events.
                    let issued = hw.mem_ops_issued();
                    let (count, first) = match &mut fault_streaks[i] {
                        Some((at, c, f)) if *at == issued => {
                            *c += 1;
                            (*c, *f)
                        }
                        s => {
                            *s = Some((issued, 1, now));
                            (1, now)
                        }
                    };
                    if *retry_budget > 0 && count > *retry_budget {
                        BodyOutcome::Thrash {
                            faults: count as u64,
                            window: (now - first).0,
                        }
                    } else {
                        let write = fault.access() == Access::Write;
                        match os.service_fault(asid, fault.va(), write, true, mem, now) {
                            Ok(done) => BodyOutcome::Reschedule(done),
                            Err(segv) => BodyOutcome::Fault(segv),
                        }
                    }
                }
                HwStep::Finished { ret, now } => {
                    fault_streaks[i] = None;
                    BodyOutcome::Finished(ret, now)
                }
            },
            Body::Sw(sw) => {
                // Reserve a CPU window, then execute inside it.
                let (start, _) = os.cpus.run_slice(ThreadId(i as u32), now, quantum);
                match sw.run_slice(os, mem, start, quantum) {
                    Ok((end, SliceEnd::Finished { ret })) => BodyOutcome::Finished(ret, end),
                    Ok((end, SliceEnd::BudgetExhausted)) => BodyOutcome::Reschedule(end),
                    Err(segv) => BodyOutcome::Fault(segv),
                }
            }
        }
    };
    match outcome {
        BodyOutcome::Reschedule(at) => schedule_step(state, sched, at, i),
        BodyOutcome::Wake(wake) => schedule_wake_step(state, sched, wake, i),
        BodyOutcome::Finished(ret, at) => {
            let rt = &mut state.threads[i];
            rt.ret = ret;
            rt.phase = Phase::Post(0);
            schedule_step(state, sched, at, i);
        }
        BodyOutcome::Fault(segv) => {
            state.error = Some(SimError::Segv {
                thread: state.threads[i].name.clone(),
                fault: segv,
            });
            sched.halt();
        }
        BodyOutcome::Thrash { faults, window } => {
            // Re-arm the faulting thread at `now` before halting: the
            // checkpoint attached to this error then has a runnable thread,
            // so restoring it under a raised `fault_retry_budget` (or
            // watchdog limit) retries the access instead of wedging. The
            // fault streak is preserved in the snapshot, so a resume under
            // the *same* budget deterministically trips again.
            schedule_step(state, sched, now, i);
            state.error = Some(SimError::Thrashing {
                thread: state.threads[i].name.clone(),
                faults,
                window,
                checkpoint: None,
            });
            sched.halt();
        }
    }
}

fn step_thread(state: &mut SystemState, sched: &mut Sched, i: usize) {
    if state.error.is_some() {
        return;
    }
    match state.threads[i].phase {
        Phase::Pre(k) => handle_sync(state, sched, i, k, true),
        Phase::Run => run_body(state, sched, i),
        Phase::Post(k) => handle_sync(state, sched, i, k, false),
        Phase::Done => {}
    }
}

/// What one [`Sim::run`] call produced.
#[derive(Debug)]
pub enum RunProgress {
    /// No events remain: every thread finished, or the rest are blocked —
    /// [`Sim::finish`] tells the two apart.
    Complete,
    /// `checkpoint_every` events elapsed since the last pause. The run can
    /// be resumed by calling [`Sim::run`] again on this instance, or later
    /// — in another process — via [`Sim::restore`] of the checkpoint.
    Paused(Checkpoint),
}

/// A live full-system simulation: the state machine behind [`simulate`],
/// exposed so callers can interrupt, snapshot, restore, and resume runs.
///
/// Determinism contract: a restored `Sim` replays the exact event sequence
/// the original would have run — same final buffers, same cycle counts,
/// same counters — and `snapshot` is a pure function of logical state, so
/// `restore(snapshot(s))` re-snapshots to byte-identical images.
pub struct Sim<'d> {
    design: &'d SystemDesign,
    cfg: SimConfig,
    state: SystemState,
    sched: Sched,
    buffer_vas: Vec<VirtAddr>,
    /// Fault-rate watchdog: window anchor cycle.
    window_start: Cycle,
    /// Fault-rate watchdog: faults observed at the window anchor.
    window_base_faults: u64,
    /// Events fired at the last `checkpoint_every` pause.
    last_pause_events: u64,
}

impl std::fmt::Debug for Sim<'_> {
    /// Position summary only — the full state is megabytes of Debug noise.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.sched.now())
            .field("events_fired", &self.sched.events_fired())
            .field("pending", &self.sched.pending())
            .field("finished", &self.state.finished)
            .finish_non_exhaustive()
    }
}

impl<'d> Sim<'d> {
    /// Boots the OS, maps the application's buffers, and instantiates every
    /// thread, ready to [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Os`] when setup fails (e.g. out of memory for
    /// buffers).
    pub fn new(design: &'d SystemDesign, cfg: &SimConfig) -> Result<Sim<'d>, SimError> {
        let (mut state, buffer_vas) = boot_system(design, cfg)?;
        // One step event per live thread is in flight at a time, plus wake
        // events: size the slab once so the hot loop never reallocates it.
        let mut sched: Sched = Scheduler::with_capacity(state.threads.len() * 2 + 8);
        for i in 0..state.threads.len() {
            let start = state.threads[i].start;
            schedule_step(&mut state, &mut sched, start, i);
        }

        Ok(Sim {
            design,
            cfg: *cfg,
            state,
            sched,
            buffer_vas,
            window_start: Cycle::ZERO,
            window_base_faults: 0,
            last_pause_events: 0,
        })
    }
}

/// Boots the OS, maps the application's buffers, creates the sync objects,
/// and instantiates every thread — the design-to-system elaboration shared
/// by the serial engine ([`Sim::new`]) and the sharded coordinator
/// ([`crate::shard`]). Returns the booted [`SystemState`] with no events
/// scheduled yet (`pending_steps` empty, `next_step_seq` 0) plus the buffer
/// base addresses.
pub(crate) fn boot_system(
    design: &SystemDesign,
    cfg: &SimConfig,
) -> Result<(SystemState, Vec<VirtAddr>), SimError> {
    let app = &design.app;
    let platform = &design.platform;
    let mut mem = MemorySystem::new(platform.mem.clone());
    let mut os = Os::new(&platform.os, &mem);
    let asid = os.create_space(&mut mem)?;

    // Buffers.
    let mut buffer_vas = Vec::with_capacity(app.buffers.len());
    for b in &app.buffers {
        let va = os.mmap(asid, b.len.max(1), true, b.populate, &mut mem)?;
        if !b.init.is_empty() {
            os.copy_in(asid, va, &b.init, &mut mem)?;
        }
        buffer_vas.push(va);
    }

    // Sync objects.
    let sync_ids: Vec<u32> = app
        .sync_objects
        .iter()
        .map(|s| match s {
            SyncSpec::Mutex => os.sync.create_mutex(),
            SyncSpec::Semaphore(n) => os.sync.create_sem(*n),
            SyncSpec::Barrier(n) => os.sync.create_barrier(*n),
            SyncSpec::Mbox(c) => os.sync.create_mbox(*c),
        })
        .collect();

    // Threads.
    let root = os.space(asid).root();
    let mut threads = Vec::with_capacity(app.threads.len());
    for (i, spec) in app.threads.iter().enumerate() {
        let args: Vec<i64> = spec
            .args
            .iter()
            .map(|a| match a {
                crate::app::ArgSpec::Buffer(bi, off) => (buffer_vas[*bi].0 + off) as i64,
                crate::app::ArgSpec::Value(v) => *v,
            })
            .collect();
        let master = MasterId(i as u16 + 1);
        // Attach every configured master up front: a thread that wedges
        // before its first transaction still gets its (all-zero) fabric
        // stats row, so starvation is visible instead of silent.
        mem.attach_master(master);
        let body = match design.placements[i] {
            Placement::Hardware => {
                let ck = design.threads[i]
                    .compiled
                    .clone()
                    .expect("hardware thread must have a compiled kernel");
                let mut hw = HwThread::new(
                    ck,
                    &args,
                    &HwThreadConfig {
                        memif: platform.memif,
                    },
                    master,
                );
                hw.set_context(asid, root);
                Body::Hw(hw)
            }
            Placement::Software => Body::Sw(SwExec::new(
                ThreadId(i as u32),
                asid,
                Arc::clone(&spec.decoded),
                &args,
                SwExecConfig::with_master(master),
            )),
        };
        // Thread spawn is serialized through the parent (one syscall
        // each).
        let start = Cycle(i as u64 * os.costs.syscall);
        threads.push(ThreadRt {
            name: spec.name.clone(),
            placement: design.placements[i],
            body,
            pre: spec.pre.clone(),
            post: spec.post.clone(),
            phase: Phase::Pre(0),
            start,
            end: None,
            ret: None,
        });
    }

    let n_threads = threads.len();
    let mut state = SystemState {
        mem,
        os,
        asid,
        threads,
        sync_ids,
        quantum: cfg.quantum,
        finished: 0,
        error: None,
        fault_streaks: vec![None; n_threads],
        retry_budget: cfg.fault_retry_budget,
        shootdowns: 0,
        pending_steps: Vec::new(),
        next_step_seq: 0,
    };
    // Setup-time population/copy-in may already have reclaimed under a
    // tight frame budget; broadcast those shootdowns before anything
    // runs.
    drain_shootdowns(&mut state);
    Ok((state, buffer_vas))
}

impl<'d> Sim<'d> {
    /// The current simulation time.
    pub fn now(&self) -> Cycle {
        self.sched.now()
    }

    /// Scheduler events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.sched.events_fired()
    }

    /// The live OS (counters, swap, resident registry) — read-only.
    pub fn os(&self) -> &Os {
        &self.state.os
    }

    /// The system-wide counter set at the current simulation time, keyed
    /// and aggregated exactly like the final [`SimOutcome::stats`] (with
    /// `makespan` reading the current cycle). Differences of two
    /// `live_stats` snapshots are the per-interval deltas the sampling
    /// estimator extrapolates from; ratio keys (`*_rate`, `*_mean`,
    /// `*_utilization`) are only meaningful cumulatively, which is why the
    /// set also carries their raw numerator counters.
    pub fn live_stats(&self) -> StatSet {
        let thread_stats: Vec<StatSet> = self
            .state
            .threads
            .iter()
            .map(|t| match &t.body {
                Body::Sw(sw) => sw.stats(),
                Body::Hw(hw) => hw.stats(),
            })
            .collect();
        assemble_stats(
            self.sched.now(),
            thread_stats.iter(),
            &self.state.os,
            &self.state.mem,
            self.state.shootdowns,
        )
    }

    /// Turns on basic-block profiling in every thread's interpreter.
    /// Instrumentation only: snapshots taken from a profiled run are
    /// byte-identical to unprofiled ones, and restoring never re-enables
    /// profiling.
    pub fn enable_block_profile(&mut self) {
        for t in &mut self.state.threads {
            match &mut t.body {
                Body::Sw(sw) => sw.enable_block_profile(),
                Body::Hw(hw) => hw.enable_block_profile(),
            }
        }
    }

    /// The basic-block-vector signature accumulated since profiling was
    /// enabled: every thread's per-block entry counters, concatenated in
    /// application thread order. Dimensions are stable for a given design
    /// (Σ blocks over threads), so differences of two snapshots are the
    /// per-interval BBVs that phase clustering consumes. All-zero until
    /// [`enable_block_profile`](Self::enable_block_profile) is called.
    pub fn bbv_snapshot(&self) -> Vec<u64> {
        let mut bbv = Vec::new();
        for (i, t) in self.state.threads.iter().enumerate() {
            let visits = match &t.body {
                Body::Sw(sw) => sw.block_visits(),
                Body::Hw(hw) => hw.block_visits(),
            };
            if visits.is_empty() {
                // Profiling off (or a restored body): keep dimensions
                // stable so callers can still diff snapshots.
                let blocks = self.design.app.threads[i].decoded.num_blocks().max(1);
                bbv.resize(bbv.len() + blocks, 0);
            } else {
                bbv.extend_from_slice(visits);
            }
        }
        bbv
    }

    /// Post-event bookkeeping: shootdown broadcast, event cap, fault-rate
    /// watchdog. Returns `false` when the run must stop (an error was set).
    fn after_step(&mut self) -> bool {
        drain_shootdowns(&mut self.state);
        if self.sched.events_fired() > self.cfg.max_events {
            // Snapshot *before* setting the error: the image never contains
            // an error state, only the resumable position at the limit.
            let checkpoint = self.snapshot();
            self.state.error = Some(SimError::EventLimit {
                cycle: self.sched.now().0,
                events: self.sched.events_fired(),
                runnable: self
                    .state
                    .threads
                    .iter()
                    .filter(|t| t.phase != Phase::Done)
                    .map(|t| t.name.clone())
                    .collect(),
                checkpoint: Some(checkpoint),
            });
            return false;
        }
        if self.cfg.thrash_fault_limit > 0 {
            let now = self.sched.now();
            let faults = self.state.os.hw_faults() + self.state.os.sw_faults();
            if (now - self.window_start).0 >= self.cfg.thrash_window {
                self.window_start = now;
                self.window_base_faults = faults;
            } else if faults - self.window_base_faults > self.cfg.thrash_fault_limit as u64 {
                // No single thread owns a system-wide fault storm. The
                // watchdog trips between events, so the pending steps are
                // intact and the checkpoint resumes under a raised limit.
                let checkpoint = self.snapshot();
                self.state.error = Some(SimError::Thrashing {
                    thread: "system".to_string(),
                    faults: faults - self.window_base_faults,
                    window: self.cfg.thrash_window,
                    checkpoint: Some(checkpoint),
                });
                return false;
            }
        }
        true
    }

    /// Attaches a checkpoint to a budget-exhaustion error raised *inside*
    /// an event (the per-access thrash trip), where the snapshot could not
    /// be taken at error-construction time.
    fn attach_checkpoint(&self, e: SimError) -> SimError {
        match e {
            SimError::Thrashing {
                thread,
                faults,
                window,
                checkpoint: None,
            } => {
                let checkpoint = self.snapshot();
                SimError::Thrashing {
                    thread,
                    faults,
                    window,
                    checkpoint: Some(checkpoint),
                }
            }
            other => other,
        }
    }

    /// Runs until completion, an error, or (with `checkpoint_every` set) a
    /// periodic pause.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on segmentation fault or budget exhaustion;
    /// [`SimError::EventLimit`] and [`SimError::Thrashing`] carry a
    /// resumable checkpoint of the run at the trip point.
    pub fn run(&mut self) -> Result<RunProgress, SimError> {
        while self.state.error.is_none() && self.sched.step(&mut self.state) {
            if !self.after_step() {
                break;
            }
            if self.cfg.checkpoint_every > 0
                && self.sched.events_fired() - self.last_pause_events >= self.cfg.checkpoint_every
            {
                self.last_pause_events = self.sched.events_fired();
                return Ok(RunProgress::Paused(self.snapshot()));
            }
        }
        if let Some(e) = self.state.error.take() {
            return Err(self.attach_checkpoint(e));
        }
        Ok(RunProgress::Complete)
    }

    /// Runs while the next event's timestamp is at most `until`, stopping
    /// between events. Returns `true` while later events remain — the
    /// chaos harness's "kill at cycle `c`" primitive and the bisector's
    /// probe-advance.
    ///
    /// # Errors
    ///
    /// Same contract as [`run`](Self::run); `checkpoint_every` pauses do
    /// not apply here.
    pub fn run_until(&mut self, until: Cycle) -> Result<bool, SimError> {
        while self.state.error.is_none() {
            match self.sched.peek_time() {
                Some(t) if t <= until => {}
                Some(_) => return Ok(true),
                None => return Ok(false),
            }
            if !self.sched.step(&mut self.state) {
                break;
            }
            if !self.after_step() {
                break;
            }
        }
        if let Some(e) = self.state.error.take() {
            return Err(self.attach_checkpoint(e));
        }
        Ok(self.sched.pending() > 0)
    }

    /// Serializes the complete simulator state — scheduler position and
    /// pending events, memory image, fabric transactions, caches, TLBs,
    /// walk caches, interpreter tables, OS state, per-thread metrics — into
    /// a versioned, checksummed, fingerprinted image.
    ///
    /// The bytes are a pure function of logical state: re-snapshotting a
    /// restored run yields the identical image.
    pub fn snapshot(&self) -> Checkpoint {
        let s = &self.state;
        write_snapshot(
            self.design,
            SnapshotView {
                now: self.sched.now(),
                fired: self.sched.events_fired(),
                scheduled: self.sched.events_scheduled(),
                window_start: self.window_start,
                window_base_faults: self.window_base_faults,
                buffer_vas: &self.buffer_vas,
                mem: &s.mem,
                os: &s.os,
                asid: s.asid,
                sync_ids: &s.sync_ids,
                finished: s.finished,
                fault_streaks: s.fault_streaks.clone(),
                shootdowns: s.shootdowns,
                threads: s.threads.iter().collect(),
                next_step_seq: s.next_step_seq,
                steps: s.pending_steps.clone(),
            },
        )
    }

    /// Rebuilds a simulation from a checkpoint image, validated end to end:
    /// magic, version, checksum, design fingerprint, then every field
    /// range. Config-side values (`quantum`, budgets, OS costs) come from
    /// `cfg` and the design, which is what lets a resumed run continue
    /// under raised budgets or adjusted pressure costs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Snapshot`] describing exactly what was rejected
    /// — never panics, never silently misparses.
    pub fn restore(
        design: &'d SystemDesign,
        cfg: &SimConfig,
        checkpoint: &Checkpoint,
    ) -> Result<Sim<'d>, SimError> {
        Sim::restore_inner(design, cfg, checkpoint).map_err(SimError::Snapshot)
    }

    fn restore_inner(
        design: &'d SystemDesign,
        cfg: &SimConfig,
        checkpoint: &Checkpoint,
    ) -> Result<Sim<'d>, SnapError> {
        let SnapshotParts {
            now,
            fired,
            scheduled,
            window_start,
            window_base_faults,
            buffer_vas,
            mem,
            os,
            asid,
            sync_ids,
            finished,
            fault_streaks,
            shootdowns,
            threads,
            next_step_seq,
            mut steps,
        } = read_snapshot(design, checkpoint)?;
        let mut state = SystemState {
            mem,
            os,
            asid,
            threads,
            sync_ids,
            quantum: cfg.quantum,
            finished,
            error: None,
            fault_streaks,
            retry_budget: cfg.fault_retry_budget,
            shootdowns,
            pending_steps: Vec::with_capacity(steps.len()),
            next_step_seq,
        };
        // Rebuild the wheel: rewind the counters to the checkpoint minus
        // the events about to be re-added, then re-schedule in original
        // insertion order — `(time, seq)` — so same-cycle FIFO order (and
        // therefore the entire future event sequence) is reproduced
        // exactly.
        let mut sched: Sched = Scheduler::with_capacity(state.threads.len() * 2 + 8);
        sched.restore_meta(now, fired, scheduled - steps.len() as u64);
        steps.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        for &(at, seq, t) in &steps {
            let i = t as usize;
            state.pending_steps.push((at, seq, t));
            sched.schedule_at(at, move |state: &mut SystemState, sched: &mut Sched| {
                unregister_step(state, seq);
                step_thread(state, sched, i)
            });
        }

        Ok(Sim {
            design,
            cfg: *cfg,
            state,
            sched,
            buffer_vas,
            window_start,
            window_base_faults,
            last_pause_events: fired,
        })
    }

    /// Consumes the simulation and assembles the outcome. Call after
    /// [`run`](Self::run) returns [`RunProgress::Complete`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] when threads remain blocked on
    /// synchronization (the no-events-left completion's failure shape).
    pub fn finish(mut self) -> Result<SimOutcome, SimError> {
        if let Some(e) = self.state.error.take() {
            return Err(self.attach_checkpoint(e));
        }
        if self.state.finished < self.state.threads.len() {
            return Err(SimError::Deadlock {
                blocked: self
                    .state
                    .threads
                    .iter()
                    .filter(|t| t.phase != Phase::Done)
                    .map(|t| t.name.clone())
                    .collect(),
            });
        }

        let makespan = self
            .state
            .threads
            .iter()
            .filter_map(|t| t.end)
            .max()
            .unwrap_or(Cycle::ZERO);
        let threads = self
            .state
            .threads
            .into_iter()
            .map(|t| ThreadMetrics {
                name: t.name,
                placement: t.placement,
                start: t.start,
                end: t.end.expect("all threads finished"),
                ret: t.ret,
                body: t.body,
                stats: OnceCell::new(),
            })
            .collect();

        Ok(SimOutcome {
            makespan,
            threads,
            stats: OnceCell::new(),
            buffer_vas: self.buffer_vas,
            mem: self.state.mem,
            os: self.state.os,
            asid: self.state.asid,
            shootdowns: self.state.shootdowns,
            sync: None,
        })
    }
}

/// Simulates a synthesized design to completion (resuming transparently
/// through any `checkpoint_every` pauses).
///
/// # Errors
///
/// Returns [`SimError`] on setup failure, segmentation fault, deadlock, or
/// budget exhaustion — the budget errors carry a resumable checkpoint.
pub fn simulate(design: &SystemDesign, cfg: &SimConfig) -> Result<SimOutcome, SimError> {
    // Sharded dispatch: when the planner grants more than one shard the
    // run goes through the parallel engine. `shards <= 1` (and every
    // design the planner forces serial) takes the classic single-wheel
    // path below, untouched.
    if crate::shard::planned_shards(design, cfg) > 1 {
        return crate::shard::simulate_sharded(design, cfg, crate::shard::ExecMode::Parallel);
    }
    let mut sim = Sim::new(design, cfg)?;
    while !matches!(sim.run()?, RunProgress::Complete) {}
    sim.finish()
}

/// A borrowed view of everything a snapshot image records, in engine-
/// neutral form: the serial engine fills it from its wheel and
/// [`SystemState`]; the sharded coordinator fills it from its barrier
/// state (merged memory, per-shard thread homes, control queue + shard
/// mirrors). [`write_snapshot`] serializes the view into the one shared
/// image format, which is what makes serial and sharded checkpoints
/// interchangeable.
pub(crate) struct SnapshotView<'a> {
    pub(crate) now: Cycle,
    pub(crate) fired: u64,
    pub(crate) scheduled: u64,
    pub(crate) window_start: Cycle,
    pub(crate) window_base_faults: u64,
    pub(crate) buffer_vas: &'a [VirtAddr],
    pub(crate) mem: &'a MemorySystem,
    pub(crate) os: &'a Os,
    pub(crate) asid: Asid,
    pub(crate) sync_ids: &'a [u32],
    pub(crate) finished: usize,
    pub(crate) fault_streaks: Vec<Option<(u64, u32, Cycle)>>,
    pub(crate) shootdowns: u64,
    /// Thread runtimes in application order.
    pub(crate) threads: Vec<&'a ThreadRt>,
    pub(crate) next_step_seq: u64,
    /// Pending step events, any order (sorted into `(time, seq)` here).
    pub(crate) steps: Vec<(Cycle, u64, u32)>,
}

/// Serializes a [`SnapshotView`] into a versioned, checksummed,
/// fingerprinted checkpoint image. The byte layout is the format both
/// engines read and write; the bytes are a pure function of the view.
pub(crate) fn write_snapshot(design: &SystemDesign, v: SnapshotView<'_>) -> Checkpoint {
    let mut w = SnapWriter::new();
    // Scheduler position.
    w.put_u64(v.now.0);
    w.put_u64(v.fired);
    w.put_u64(v.scheduled);
    // Fault-rate watchdog anchor.
    w.put_u64(v.window_start.0);
    w.put_u64(v.window_base_faults);
    // Address-space layout.
    let vas: Vec<u64> = v.buffer_vas.iter().map(|b| b.0).collect();
    vas.save(&mut w);
    v.mem.save_state(&mut w);
    v.os.save_state(&mut w);
    v.asid.save(&mut w);
    v.sync_ids.to_vec().save(&mut w);
    w.put_u64(v.finished as u64);
    v.fault_streaks.save(&mut w);
    w.put_u64(v.shootdowns);
    // Per-thread runtime state. Names, placements, and sync scripts are
    // design-side and re-supplied at restore.
    for t in &v.threads {
        match &t.body {
            Body::Sw(sw) => {
                w.put_u8(0);
                sw.save_state(&mut w);
            }
            Body::Hw(hw) => {
                w.put_u8(1);
                hw.save_state(&mut w);
            }
        }
        let (tag, k) = match t.phase {
            Phase::Pre(k) => (0u8, k as u64),
            Phase::Run => (1, 0),
            Phase::Post(k) => (2, k as u64),
            Phase::Done => (3, 0),
        };
        w.put_u8(tag);
        w.put_u64(k);
        t.start.save(&mut w);
        t.end.save(&mut w);
        t.ret.save(&mut w);
    }
    // The event mirror, sorted into firing order `(time, insertion
    // seq)`: the live mirror's order depends on swap-remove history, which
    // is not logical state.
    w.put_u64(v.next_step_seq);
    let mut steps = v.steps;
    steps.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
    steps.save(&mut w);
    Checkpoint::from_bytes(svmsyn_snap::write_image(
        SNAPSHOT_VERSION,
        design_fingerprint(design),
        &w.into_bytes(),
    ))
}

/// Everything [`read_snapshot`] parses out of a checkpoint image — the
/// owned counterpart of [`SnapshotView`], ready for either engine to
/// rebuild from.
pub(crate) struct SnapshotParts {
    pub(crate) now: Cycle,
    pub(crate) fired: u64,
    pub(crate) scheduled: u64,
    pub(crate) window_start: Cycle,
    pub(crate) window_base_faults: u64,
    pub(crate) buffer_vas: Vec<VirtAddr>,
    pub(crate) mem: MemorySystem,
    pub(crate) os: Os,
    pub(crate) asid: Asid,
    pub(crate) sync_ids: Vec<u32>,
    pub(crate) finished: usize,
    pub(crate) fault_streaks: Vec<Option<(u64, u32, Cycle)>>,
    pub(crate) shootdowns: u64,
    pub(crate) threads: Vec<ThreadRt>,
    pub(crate) next_step_seq: u64,
    /// Pending steps, validated (in-range thread, `at >= now`,
    /// `seq < next_step_seq`) but in image order — sort by `(at, seq)`
    /// before re-scheduling.
    pub(crate) steps: Vec<(Cycle, u64, u32)>,
}

/// Parses and validates a checkpoint image end to end: magic, version,
/// checksum, design fingerprint, then every field range. Shared by the
/// serial restore path and the sharded coordinator's restore.
pub(crate) fn read_snapshot(
    design: &SystemDesign,
    checkpoint: &Checkpoint,
) -> Result<SnapshotParts, SnapError> {
    let (fingerprint, payload) = svmsyn_snap::read_image(checkpoint.as_bytes(), SNAPSHOT_VERSION)?;
    let expected = design_fingerprint(design);
    if fingerprint != expected {
        return Err(SnapError::DesignMismatch {
            found: fingerprint,
            expected,
        });
    }
    let r = &mut SnapReader::new(payload);
    let now = Cycle(r.take_u64()?);
    let fired = r.take_u64()?;
    let scheduled = r.take_u64()?;
    let window_start = Cycle(r.take_u64()?);
    let window_base_faults = r.take_u64()?;
    let buffer_vas: Vec<VirtAddr> = Vec::<u64>::load(r)?.into_iter().map(VirtAddr).collect();
    let platform = &design.platform;
    let mem = MemorySystem::restore_state(&platform.mem, r)?;
    let os = Os::restore_state(&platform.os, r)?;
    let asid = Asid::load(r)?;
    let sync_ids = Vec::<u32>::load(r)?;
    let finished = r.take_u64()? as usize;
    let fault_streaks = Vec::<Option<(u64, u32, Cycle)>>::load(r)?;
    let shootdowns = r.take_u64()?;

    let app = &design.app;
    let mut threads = Vec::with_capacity(app.threads.len());
    for (i, spec) in app.threads.iter().enumerate() {
        let master = MasterId(i as u16 + 1);
        let tag = r.take_u8()?;
        let body = match (tag, design.placements[i]) {
            (0, Placement::Software) => Body::Sw(SwExec::restore_state(
                Arc::clone(&spec.decoded),
                SwExecConfig::with_master(master),
                r,
            )?),
            (1, Placement::Hardware) => {
                let ck = design.threads[i]
                    .compiled
                    .clone()
                    .ok_or(SnapError::Corrupt(
                        "hardware thread without compiled kernel",
                    ))?;
                Body::Hw(HwThread::restore_state(
                    ck,
                    &HwThreadConfig {
                        memif: platform.memif,
                    },
                    master,
                    r,
                )?)
            }
            _ => return Err(SnapError::Corrupt("thread body tag vs placement")),
        };
        let ptag = r.take_u8()?;
        let k = r.take_u64()? as usize;
        let phase = match ptag {
            0 if k <= spec.pre.len() => Phase::Pre(k),
            1 => Phase::Run,
            2 if k <= spec.post.len() => Phase::Post(k),
            3 => Phase::Done,
            _ => return Err(SnapError::Corrupt("thread phase")),
        };
        let start = Cycle::load(r)?;
        let end = Option::<Cycle>::load(r)?;
        let ret = Option::<i64>::load(r)?;
        threads.push(ThreadRt {
            name: spec.name.clone(),
            placement: design.placements[i],
            body,
            pre: spec.pre.clone(),
            post: spec.post.clone(),
            phase,
            start,
            end,
            ret,
        });
    }

    let next_step_seq = r.take_u64()?;
    let steps = Vec::<(Cycle, u64, u32)>::load(r)?;
    if r.remaining() != 0 {
        return Err(SnapError::Corrupt("trailing bytes after payload"));
    }
    if finished > threads.len() {
        return Err(SnapError::Corrupt("finished-thread count"));
    }
    if fault_streaks.len() != threads.len() {
        return Err(SnapError::Corrupt("fault-streak table size"));
    }
    if steps.len() as u64 > scheduled {
        return Err(SnapError::Corrupt("pending-step count"));
    }
    for &(at, seq, t) in &steps {
        if t as usize >= threads.len() {
            return Err(SnapError::Corrupt("pending-step thread index"));
        }
        if at < now {
            return Err(SnapError::Corrupt("pending-step fire time"));
        }
        if seq >= next_step_seq {
            return Err(SnapError::Corrupt("pending-step sequence"));
        }
    }

    Ok(SnapshotParts {
        now,
        fired,
        scheduled,
        window_start,
        window_base_faults,
        buffer_vas,
        mem,
        os,
        asid,
        sync_ids,
        finished,
        fault_streaks,
        shootdowns,
        threads,
        next_step_seq,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{ApplicationBuilder, ArgSpec, SyncAction, SyncSpec};
    use crate::flow::synthesize;
    use crate::platform::Platform;
    use svmsyn_hls::builder::KernelBuilder;
    use svmsyn_hls::ir::{BinOp, CmpOp, Kernel, Width};

    /// dst[i] = src[i] * 3 for i in 0..n.
    fn scale_kernel() -> Kernel {
        let mut b = KernelBuilder::new("scale", 3);
        let entry = b.current_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let src = b.arg(0);
        let dst = b.arg(1);
        let n = b.arg(2);
        let zero = b.constant(0);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi();
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let four = b.constant(4);
        let off = b.bin(BinOp::Mul, i, four);
        let sa = b.bin(BinOp::Add, src, off);
        let da = b.bin(BinOp::Add, dst, off);
        let v = b.load(sa, Width::W32);
        let three = b.constant(3);
        let v3 = b.bin(BinOp::Mul, v, three);
        b.store(da, v3, Width::W32);
        let one = b.constant(1);
        let i2 = b.bin(BinOp::Add, i, one);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        b.set_phi_incoming(i, &[(entry, zero), (body, i2)]);
        b.finish().unwrap()
    }

    fn scale_app(n: u64) -> crate::app::Application {
        let init: Vec<u8> = (0..n as u32).flat_map(|i| i.to_le_bytes()).collect();
        ApplicationBuilder::new("scale")
            .buffer("src", n * 4, init, false)
            .buffer("dst", n * 4, vec![], false)
            .thread(
                "scaler",
                scale_kernel(),
                vec![
                    ArgSpec::Buffer(0, 0),
                    ArgSpec::Buffer(1, 0),
                    ArgSpec::Value(n as i64),
                ],
                true,
            )
            .build()
            .unwrap()
    }

    fn check_scaled(outcome: &SimOutcome, n: u64) {
        let mut buf = vec![0u8; (n * 4) as usize];
        outcome.read_buffer(1, &mut buf);
        for i in 0..n as usize {
            let mut w = [0u8; 4];
            w.copy_from_slice(&buf[i * 4..i * 4 + 4]);
            assert_eq!(u32::from_le_bytes(w), (i as u32) * 3, "element {i}");
        }
    }

    #[test]
    fn software_run_is_correct() {
        let app = scale_app(512);
        let d = synthesize(&app, &Platform::default(), &[Placement::Software]).unwrap();
        let o = simulate(&d, &SimConfig::default()).unwrap();
        check_scaled(&o, 512);
        assert!(o.makespan > Cycle(0));
        assert_eq!(o.threads.len(), 1);
        assert!(o.stats().get("os.sw_faults").unwrap() >= 1.0);
    }

    #[test]
    fn hardware_run_is_correct_and_faults_demand_pages() {
        let app = scale_app(512);
        let d = synthesize(&app, &Platform::default(), &[Placement::Hardware]).unwrap();
        let o = simulate(&d, &SimConfig::default()).unwrap();
        check_scaled(&o, 512);
        // dst is demand-paged: the HW thread faulted at least once.
        assert!(o.stats().get("os.hw_faults").unwrap() >= 1.0);
        assert!(o.wall_micros(&d) > 0.0);
    }

    #[test]
    fn hw_and_sw_compute_identical_bytes() {
        let app = scale_app(256);
        let sw = simulate(
            &synthesize(&app, &Platform::default(), &[Placement::Software]).unwrap(),
            &SimConfig::default(),
        )
        .unwrap();
        let hw = simulate(
            &synthesize(&app, &Platform::default(), &[Placement::Hardware]).unwrap(),
            &SimConfig::default(),
        )
        .unwrap();
        let mut a = vec![0u8; 1024];
        let mut b = vec![0u8; 1024];
        sw.read_buffer(1, &mut a);
        hw.read_buffer(1, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn producer_consumer_via_semaphore() {
        // producer scales into mid, posts; consumer waits, scales mid into out.
        let n = 128u64;
        let init: Vec<u8> = (0..n as u32).flat_map(|i| i.to_le_bytes()).collect();
        let app = ApplicationBuilder::new("pipe")
            .buffer("in", n * 4, init, false)
            .buffer("mid", n * 4, vec![], false)
            .buffer("out", n * 4, vec![], false)
            .sync(SyncSpec::Semaphore(0))
            .thread_full(
                "producer",
                scale_kernel(),
                vec![
                    ArgSpec::Buffer(0, 0),
                    ArgSpec::Buffer(1, 0),
                    ArgSpec::Value(n as i64),
                ],
                vec![],
                vec![SyncAction::SemPost(0)],
                true,
            )
            .thread_full(
                "consumer",
                scale_kernel(),
                vec![
                    ArgSpec::Buffer(1, 0),
                    ArgSpec::Buffer(2, 0),
                    ArgSpec::Value(n as i64),
                ],
                vec![SyncAction::SemWait(0)],
                vec![],
                false,
            )
            .build()
            .unwrap();
        let d = synthesize(
            &app,
            &Platform::default(),
            &[Placement::Hardware, Placement::Software],
        )
        .unwrap();
        let o = simulate(&d, &SimConfig::default()).unwrap();
        let mut out = vec![0u8; (n * 4) as usize];
        o.read_buffer(2, &mut out);
        for i in 0..n as usize {
            let mut w = [0u8; 4];
            w.copy_from_slice(&out[i * 4..i * 4 + 4]);
            assert_eq!(u32::from_le_bytes(w), (i as u32) * 9, "element {i}");
        }
        // The consumer must have finished after the producer.
        assert!(o.threads[1].end > o.threads[0].end - Cycle(1));
    }

    #[test]
    fn deadlock_detected() {
        let mut kb = KernelBuilder::new("nop", 0);
        kb.ret(None);
        let app = ApplicationBuilder::new("dead")
            .sync(SyncSpec::Semaphore(0))
            .thread_full(
                "waiter",
                kb.finish().unwrap(),
                vec![],
                vec![SyncAction::SemWait(0)],
                vec![],
                false,
            )
            .build()
            .unwrap();
        let d = synthesize(&app, &Platform::default(), &[Placement::Software]).unwrap();
        let err = simulate(&d, &SimConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
        assert!(err.to_string().contains("waiter"));
    }

    #[test]
    fn determinism_same_inputs_same_makespan() {
        let app = scale_app(256);
        let d = synthesize(&app, &Platform::default(), &[Placement::Hardware]).unwrap();
        let a = simulate(&d, &SimConfig::default()).unwrap();
        let b = simulate(&d, &SimConfig::default()).unwrap();
        assert_eq!(a.makespan, b.makespan);
    }

    /// A platform whose frame pool is capped at `budget` frames total
    /// (page tables included) — the memory-pressure scenarios below.
    fn pressured_platform(budget: u64) -> Platform {
        let mut p = Platform::default();
        p.os.frame_budget = Some(budget);
        p
    }

    #[test]
    fn overcommitted_hardware_run_completes_via_reclaim_and_swap() {
        // 2048 elements = 2 src + 2 dst data pages, but the budget holds
        // the root table, one L2 table, and only 2 data frames: the
        // working set over-commits physical memory and the run can only
        // finish through reclaim, swap-out, and major-fault swap-in.
        let n = 2048u64;
        let app = scale_app(n);
        let d = synthesize(&app, &pressured_platform(4), &[Placement::Hardware]).unwrap();
        let o = simulate(&d, &SimConfig::default()).unwrap();
        // Results are byte-correct even though every page was evicted
        // and swapped back at least once along the way.
        check_scaled(&o, n);
        let s = o.stats();
        assert!(s.get("pressure.reclaims").unwrap() >= 1.0, "no reclaims");
        assert!(
            s.get("pressure.major_faults").unwrap() >= 1.0,
            "no major faults"
        );
        assert!(
            s.get("pressure.shootdowns").unwrap() >= 1.0,
            "no shootdowns"
        );
        assert!(s.get("pressure.swap_busy_cycles").unwrap() >= 1.0);
        // Every reclaim either swapped out a dirty page or dropped a
        // clean one — the books must balance.
        assert_eq!(
            s.get("pressure.reclaims").unwrap(),
            s.get("os.swap.swap_outs").unwrap() + s.get("os.clean_evictions").unwrap()
        );
    }

    #[test]
    fn overcommitted_run_matches_unpressured_bytes() {
        let n = 1024u64;
        let app = scale_app(n);
        let calm = simulate(
            &synthesize(&app, &Platform::default(), &[Placement::Hardware]).unwrap(),
            &SimConfig::default(),
        )
        .unwrap();
        let pressed = simulate(
            &synthesize(&app, &pressured_platform(4), &[Placement::Hardware]).unwrap(),
            &SimConfig::default(),
        )
        .unwrap();
        let mut a = vec![0u8; (n * 4) as usize];
        let mut b = vec![0u8; (n * 4) as usize];
        calm.read_buffer(1, &mut a);
        pressed.read_buffer(1, &mut b);
        assert_eq!(a, b);
        // Pressure costs time: the pressed run cannot be faster.
        assert!(pressed.makespan >= calm.makespan);
    }

    #[test]
    fn overcommitted_software_run_completes_via_reclaim() {
        let n = 2048u64;
        let app = scale_app(n);
        let d = synthesize(&app, &pressured_platform(4), &[Placement::Software]).unwrap();
        let o = simulate(&d, &SimConfig::default()).unwrap();
        check_scaled(&o, n);
        assert!(o.stats().get("pressure.reclaims").unwrap() >= 1.0);
    }

    /// One W64 load straddling a page boundary: both pages must be
    /// resident at once for the access to complete.
    fn straddle_kernel() -> Kernel {
        let mut b = KernelBuilder::new("straddle", 1);
        let a = b.arg(0);
        let v = b.load(a, Width::W64);
        b.ret(Some(v));
        b.finish().unwrap()
    }

    #[test]
    fn impossible_access_trips_retry_budget_not_event_limit() {
        // The budget holds root + L2 + ONE data frame, but the straddling
        // load needs two pages at once: each retry's fault service evicts
        // the other half. Without the per-access retry budget this spins
        // until max_events; with it the run ends in `Thrashing` charged to
        // the faulting thread.
        let app = ApplicationBuilder::new("straddle")
            .buffer("buf", 8192, vec![], false)
            .thread(
                "straddler",
                straddle_kernel(),
                vec![ArgSpec::Buffer(0, 4092)],
                true,
            )
            .build()
            .unwrap();
        let d = synthesize(&app, &pressured_platform(3), &[Placement::Hardware]).unwrap();
        let err = simulate(&d, &SimConfig::default()).unwrap_err();
        match &err {
            SimError::Thrashing { thread, faults, .. } => {
                assert_eq!(thread, "straddler");
                assert!(*faults > u64::from(SimConfig::default().fault_retry_budget));
            }
            other => panic!("expected Thrashing, got {other:?}"),
        }
        assert!(err.to_string().starts_with("thrashing:"));
    }

    #[test]
    fn fault_rate_watchdog_trips_as_system_thrash() {
        // One data frame for a src/dst streaming pair: every load evicts
        // the dst page, every store evicts the src page. Each access does
        // complete (so the per-access retry budget never trips), but the
        // fault rate is one per access — the watchdog calls the run
        // hopeless long before max_events.
        let app = scale_app(2048);
        let d = synthesize(&app, &pressured_platform(3), &[Placement::Hardware]).unwrap();
        let cfg = SimConfig {
            thrash_window: 1 << 40,
            thrash_fault_limit: 16,
            ..SimConfig::default()
        };
        let err = simulate(&d, &cfg).unwrap_err();
        assert!(
            matches!(&err, SimError::Thrashing { thread, .. } if thread == "system"),
            "expected system thrash, got {err:?}"
        );
    }

    #[test]
    fn event_limit_error_names_runnable_threads() {
        let app = scale_app(512);
        let d = synthesize(&app, &Platform::default(), &[Placement::Hardware]).unwrap();
        let cfg = SimConfig {
            max_events: 10,
            ..SimConfig::default()
        };
        let err = simulate(&d, &cfg).unwrap_err();
        match &err {
            SimError::EventLimit {
                cycle,
                events,
                runnable,
                ..
            } => {
                assert!(*events > 10);
                assert!(*cycle > 0);
                assert!(runnable.iter().any(|t| t == "scaler"));
            }
            other => panic!("expected EventLimit, got {other:?}"),
        }
        // Tooling greps on this prefix; keep it stable.
        assert!(err.to_string().starts_with("event limit exceeded"));
    }

    #[test]
    fn mutex_serializes_critical_sections() {
        // Two SW threads lock the same mutex around their kernels.
        let n = 64u64;
        let init: Vec<u8> = (0..n as u32).flat_map(|i| i.to_le_bytes()).collect();
        let app = ApplicationBuilder::new("mx")
            .buffer("in", n * 4, init.clone(), false)
            .buffer("o1", n * 4, vec![], false)
            .buffer("o2", n * 4, vec![], false)
            .sync(SyncSpec::Mutex)
            .thread_full(
                "a",
                scale_kernel(),
                vec![
                    ArgSpec::Buffer(0, 0),
                    ArgSpec::Buffer(1, 0),
                    ArgSpec::Value(n as i64),
                ],
                vec![SyncAction::MutexLock(0)],
                vec![SyncAction::MutexUnlock(0)],
                false,
            )
            .thread_full(
                "b",
                scale_kernel(),
                vec![
                    ArgSpec::Buffer(0, 0),
                    ArgSpec::Buffer(2, 0),
                    ArgSpec::Value(n as i64),
                ],
                vec![SyncAction::MutexLock(0)],
                vec![SyncAction::MutexUnlock(0)],
                false,
            )
            .build()
            .unwrap();
        let d = synthesize(&app, &Platform::default(), &[Placement::Software; 2]).unwrap();
        let o = simulate(&d, &SimConfig::default()).unwrap();
        assert_eq!(o.threads.len(), 2);
        assert!(o.stats().get("os.sync_contended").unwrap() >= 1.0);
    }

    /// Drives a restored simulation to completion.
    fn resume_to_end(mut sim: Sim<'_>) -> SimOutcome {
        while !matches!(sim.run().unwrap(), RunProgress::Complete) {}
        sim.finish().unwrap()
    }

    #[test]
    fn event_limit_checkpoint_resumes_under_raised_budget() {
        let app = scale_app(512);
        let d = synthesize(&app, &Platform::default(), &[Placement::Hardware]).unwrap();
        let reference = simulate(&d, &SimConfig::default()).unwrap();

        let tight = SimConfig {
            max_events: 10,
            ..SimConfig::default()
        };
        let err = simulate(&d, &tight).unwrap_err();
        let cp = err.checkpoint().expect("EventLimit carries a checkpoint");
        // Raise the budget and continue exactly where the limit tripped.
        let o = resume_to_end(Sim::restore(&d, &SimConfig::default(), cp).unwrap());
        check_scaled(&o, 512);
        assert_eq!(o.makespan, reference.makespan);
        assert_eq!(o.shootdowns, reference.shootdowns);
    }

    #[test]
    fn watchdog_thrash_checkpoint_resumes_with_watchdog_relaxed() {
        let app = scale_app(2048);
        let d = synthesize(&app, &pressured_platform(3), &[Placement::Hardware]).unwrap();
        let reference = simulate(&d, &SimConfig::default()).unwrap();

        let cfg = SimConfig {
            thrash_window: 1 << 40,
            thrash_fault_limit: 16,
            ..SimConfig::default()
        };
        let err = simulate(&d, &cfg).unwrap_err();
        assert!(matches!(&err, SimError::Thrashing { thread, .. } if thread == "system"));
        let cp = err.checkpoint().expect("Thrashing carries a checkpoint");
        // The watchdog only aborts — it never alters the event sequence —
        // so resuming without it replays the uninterrupted run's tail.
        let o = resume_to_end(Sim::restore(&d, &SimConfig::default(), cp).unwrap());
        check_scaled(&o, 2048);
        assert_eq!(o.makespan, reference.makespan);
    }

    #[test]
    fn per_access_thrash_rearms_and_trips_again_on_resume() {
        let app = ApplicationBuilder::new("straddle")
            .buffer("buf", 8192, vec![], false)
            .thread(
                "straddler",
                straddle_kernel(),
                vec![ArgSpec::Buffer(0, 4092)],
                true,
            )
            .build()
            .unwrap();
        let d = synthesize(&app, &pressured_platform(3), &[Placement::Hardware]).unwrap();
        let err = simulate(&d, &SimConfig::default()).unwrap_err();
        let cp = match &err {
            SimError::Thrashing {
                thread, checkpoint, ..
            } => {
                assert_eq!(thread, "straddler");
                checkpoint.clone().expect("Thrashing carries a checkpoint")
            }
            other => panic!("expected Thrashing, got {other:?}"),
        };
        // The faulting access re-arms at the trip point: resuming under the
        // same budget deterministically trips the same error again, and a
        // raised budget would keep retrying instead of wedging silently.
        let mut resumed = Sim::restore(&d, &SimConfig::default(), &cp).unwrap();
        let again = loop {
            match resumed.run() {
                Ok(RunProgress::Paused(_)) => continue,
                Ok(RunProgress::Complete) => panic!("impossible access completed"),
                Err(e) => break e,
            }
        };
        assert!(matches!(&again, SimError::Thrashing { thread, .. } if thread == "straddler"));
    }

    #[test]
    fn checkpoint_every_pauses_and_simulate_resumes_transparently() {
        let app = scale_app(512);
        let d = synthesize(&app, &Platform::default(), &[Placement::Hardware]).unwrap();
        let reference = simulate(&d, &SimConfig::default()).unwrap();

        let cfg = SimConfig {
            checkpoint_every: 8,
            ..SimConfig::default()
        };
        // The paused run, hand-resumed across every pause.
        let mut sim = Sim::new(&d, &cfg).unwrap();
        let mut pauses = 0usize;
        let o = loop {
            match sim.run().unwrap() {
                RunProgress::Paused(cp) => {
                    pauses += 1;
                    assert!(!cp.is_empty());
                }
                RunProgress::Complete => break sim.finish().unwrap(),
            }
        };
        assert!(pauses >= 2, "expected repeated pauses, got {pauses}");
        check_scaled(&o, 512);
        assert_eq!(o.makespan, reference.makespan);
        // And `simulate` itself resumes through pauses transparently.
        let o2 = simulate(&d, &cfg).unwrap();
        assert_eq!(o2.makespan, reference.makespan);
    }

    #[test]
    fn restore_then_resnapshot_is_byte_identical() {
        let app = scale_app(512);
        let d = synthesize(&app, &Platform::default(), &[Placement::Hardware]).unwrap();
        let cfg = SimConfig::default();
        let mut sim = Sim::new(&d, &cfg).unwrap();
        let end = simulate(&d, &cfg).unwrap().makespan;
        assert!(sim.run_until(Cycle(end.0 / 2)).unwrap());
        let cp = sim.snapshot();
        let restored = Sim::restore(&d, &cfg, &cp).unwrap();
        assert_eq!(restored.now(), sim.now());
        assert_eq!(restored.events_fired(), sim.events_fired());
        assert_eq!(restored.snapshot().as_bytes(), cp.as_bytes());
    }
}
