//! The system-generation flow: HLS per hardware thread, VM infrastructure
//! sizing, resource accounting, clock closure.
//!
//! [`synthesize`] is the paper's toolflow entry point: given an application,
//! a platform, and a placement vector, it compiles every hardware-mapped
//! kernel, attaches the per-thread VM infrastructure (MMU + MEMIF + OSIF),
//! checks the fabric budget, and determines the achievable system clock.

use std::sync::Arc;
use std::time::Instant;

use svmsyn_hls::fsmd::{compile, CompiledKernel};
use svmsyn_hwt::cost::vm_infrastructure_cost;
use svmsyn_sim::FabricResources;
use svmsyn_vm::cost::mmu_fmax_mhz;

use crate::app::Application;
use crate::platform::Platform;

/// Where a thread executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// On the FPGA fabric as a VM-enabled hardware thread.
    Hardware,
    /// On a CPU core as a software thread.
    Software,
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Placement::Hardware => write!(f, "HW"),
            Placement::Software => write!(f, "SW"),
        }
    }
}

/// Why synthesis failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// The design does not fit the fabric budget.
    OverBudget {
        /// Total requested resources.
        requested: FabricResources,
        /// The platform budget.
        budget: FabricResources,
    },
    /// More hardware threads than the platform has fabric ports.
    TooManyHwThreads {
        /// Hardware threads requested.
        requested: usize,
        /// The platform limit.
        limit: usize,
    },
    /// The placement vector length does not match the thread count.
    PlacementLengthMismatch {
        /// Placements given.
        given: usize,
        /// Threads in the application.
        expected: usize,
    },
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::OverBudget { requested, budget } => {
                write!(f, "over budget: need {requested}, have {budget}")
            }
            SynthesisError::TooManyHwThreads { requested, limit } => {
                write!(
                    f,
                    "{requested} hardware threads exceed the limit of {limit}"
                )
            }
            SynthesisError::PlacementLengthMismatch { given, expected } => {
                write!(f, "{given} placements for {expected} threads")
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

/// Per-thread synthesis results.
#[derive(Debug, Clone)]
pub struct ThreadSynthesis {
    /// Thread name.
    pub name: String,
    /// Where it was placed.
    pub placement: Placement,
    /// The compiled kernel (hardware threads only).
    pub compiled: Option<Arc<CompiledKernel>>,
    /// Kernel datapath + FSM resources (hardware threads only).
    pub kernel_resources: FabricResources,
    /// VM infrastructure (MMU + MEMIF + OSIF) resources.
    pub vm_resources: FabricResources,
    /// Estimated kernel Fmax in MHz.
    pub kernel_fmax: f64,
}

impl ThreadSynthesis {
    /// Total fabric cost of this thread.
    pub fn total_resources(&self) -> FabricResources {
        self.kernel_resources + self.vm_resources
    }
}

/// A fully synthesized system.
#[derive(Debug, Clone)]
pub struct SystemDesign {
    /// The application (shared with the simulator).
    pub app: Arc<Application>,
    /// The platform.
    pub platform: Platform,
    /// Per-thread placement.
    pub placements: Vec<Placement>,
    /// Per-thread synthesis results.
    pub threads: Vec<ThreadSynthesis>,
    /// Total fabric usage.
    pub total_resources: FabricResources,
    /// Achieved system clock in MHz (min of platform clock, kernel Fmax,
    /// MMU Fmax across hardware threads).
    pub system_mhz: f64,
    /// Toolflow wall-clock time in seconds (Table 4).
    pub synthesis_seconds: f64,
}

impl SystemDesign {
    /// Number of hardware threads in the design.
    pub fn hw_thread_count(&self) -> usize {
        self.placements
            .iter()
            .filter(|p| **p == Placement::Hardware)
            .count()
    }

    /// Fabric utilization against the platform budget (worst component).
    pub fn utilization(&self) -> f64 {
        self.total_resources.utilization(&self.platform.fabric)
    }
}

/// Runs the toolflow for a fixed placement.
///
/// # Errors
///
/// Returns [`SynthesisError`] when the placement vector is malformed, too
/// many threads map to hardware, or the fabric budget is exceeded.
///
/// # Example
///
/// ```
/// use svmsyn::app::{ApplicationBuilder, ArgSpec};
/// use svmsyn::flow::{synthesize, Placement};
/// use svmsyn::platform::Platform;
/// use svmsyn_hls::builder::KernelBuilder;
/// use svmsyn_hls::ir::BinOp;
///
/// let mut kb = KernelBuilder::new("twice", 1);
/// let x = kb.arg(0);
/// let y = kb.bin(BinOp::Add, x, x);
/// kb.ret(Some(y));
/// let app = ApplicationBuilder::new("demo")
///     .thread("t0", kb.finish().unwrap(), vec![ArgSpec::Value(21)], true)
///     .build()
///     .unwrap();
///
/// let design = synthesize(&app, &Platform::default(), &[Placement::Hardware]).unwrap();
/// assert_eq!(design.hw_thread_count(), 1);
/// assert!(design.total_resources.lut > 0);
/// ```
pub fn synthesize(
    app: &Application,
    platform: &Platform,
    placements: &[Placement],
) -> Result<SystemDesign, SynthesisError> {
    let started = Instant::now();
    if placements.len() != app.threads.len() {
        return Err(SynthesisError::PlacementLengthMismatch {
            given: placements.len(),
            expected: app.threads.len(),
        });
    }
    let hw_count = placements
        .iter()
        .filter(|p| **p == Placement::Hardware)
        .count();
    if hw_count > platform.max_hw_threads {
        return Err(SynthesisError::TooManyHwThreads {
            requested: hw_count,
            limit: platform.max_hw_threads,
        });
    }

    let mut threads = Vec::with_capacity(app.threads.len());
    let mut total = FabricResources::ZERO;
    let mut system_mhz = platform.fabric_mhz;
    for (spec, &placement) in app.threads.iter().zip(placements) {
        match placement {
            Placement::Hardware => {
                let compiled = Arc::new(compile(&spec.kernel, &platform.hls));
                let vm = vm_infrastructure_cost(&platform.memif);
                total += compiled.resources + vm;
                system_mhz = system_mhz
                    .min(compiled.fmax_mhz)
                    .min(mmu_fmax_mhz(&platform.memif.mmu));
                threads.push(ThreadSynthesis {
                    name: spec.name.clone(),
                    placement,
                    kernel_resources: compiled.resources,
                    vm_resources: vm,
                    kernel_fmax: compiled.fmax_mhz,
                    compiled: Some(compiled),
                });
            }
            Placement::Software => {
                threads.push(ThreadSynthesis {
                    name: spec.name.clone(),
                    placement,
                    compiled: None,
                    kernel_resources: FabricResources::ZERO,
                    vm_resources: FabricResources::ZERO,
                    kernel_fmax: f64::INFINITY,
                });
            }
        }
    }

    if !total.fits_within(&platform.fabric) {
        return Err(SynthesisError::OverBudget {
            requested: total,
            budget: platform.fabric,
        });
    }

    Ok(SystemDesign {
        app: Arc::new(app.clone()),
        platform: platform.clone(),
        placements: placements.to_vec(),
        threads,
        total_resources: total,
        system_mhz,
        synthesis_seconds: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{ApplicationBuilder, ArgSpec};
    use svmsyn_hls::builder::KernelBuilder;
    use svmsyn_hls::ir::BinOp;

    fn demo_app(threads: usize) -> Application {
        let mut builder = ApplicationBuilder::new("demo");
        for i in 0..threads {
            let mut kb = KernelBuilder::new(format!("k{i}"), 1);
            let x = kb.arg(0);
            let y = kb.bin(BinOp::Mul, x, x);
            kb.ret(Some(y));
            builder = builder.thread(
                format!("t{i}"),
                kb.finish().unwrap(),
                vec![ArgSpec::Value(i as i64)],
                true,
            );
        }
        builder.build().unwrap()
    }

    #[test]
    fn all_software_uses_no_fabric() {
        let app = demo_app(3);
        let d = synthesize(&app, &Platform::default(), &[Placement::Software; 3]).unwrap();
        assert_eq!(d.total_resources, FabricResources::ZERO);
        assert_eq!(d.hw_thread_count(), 0);
        assert_eq!(d.system_mhz, d.platform.fabric_mhz);
        assert_eq!(d.utilization(), 0.0);
    }

    #[test]
    fn hardware_threads_accumulate_resources() {
        let app = demo_app(2);
        let one = synthesize(
            &app,
            &Platform::default(),
            &[Placement::Hardware, Placement::Software],
        )
        .unwrap();
        let two = synthesize(&app, &Platform::default(), &[Placement::Hardware; 2]).unwrap();
        assert!(two.total_resources.lut > one.total_resources.lut);
        assert!(two.threads[1].compiled.is_some());
        assert!(one.threads[1].compiled.is_none());
        assert!(two.synthesis_seconds >= 0.0);
    }

    #[test]
    fn placement_length_checked() {
        let app = demo_app(2);
        let err = synthesize(&app, &Platform::default(), &[Placement::Software]).unwrap_err();
        assert!(matches!(
            err,
            SynthesisError::PlacementLengthMismatch { .. }
        ));
    }

    #[test]
    fn hw_thread_cap_enforced() {
        let app = demo_app(3);
        let platform = Platform {
            max_hw_threads: 2,
            ..Platform::default()
        };
        let err = synthesize(&app, &platform, &[Placement::Hardware; 3]).unwrap_err();
        assert!(matches!(
            err,
            SynthesisError::TooManyHwThreads {
                requested: 3,
                limit: 2
            }
        ));
    }

    #[test]
    fn budget_enforced() {
        let app = demo_app(2);
        let platform = Platform {
            fabric: FabricResources::new(100, 100, 1, 1),
            ..Platform::default()
        };
        let err = synthesize(&app, &platform, &[Placement::Hardware; 2]).unwrap_err();
        assert!(matches!(err, SynthesisError::OverBudget { .. }));
        assert!(err.to_string().contains("over budget"));
    }

    #[test]
    fn system_clock_closes_on_slowest_component() {
        let app = demo_app(1);
        let d = synthesize(&app, &Platform::default(), &[Placement::Hardware]).unwrap();
        assert!(d.system_mhz <= d.platform.fabric_mhz);
        assert!(d.system_mhz > 0.0);
    }
}
