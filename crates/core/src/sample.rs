//! SimPoint-style sampled simulation with measured error bars.
//!
//! Long runs are estimated from a handful of simulated windows instead of
//! the whole event stream, in three steps:
//!
//! 1. **Phase profiling** — one instrumented full run, paused every
//!    [`SampleConfig::interval_events`] scheduler events, collects a
//!    basic-block vector (BBV) per interval: how often each static basic
//!    block was entered, L1-normalized so interval length cancels out.
//!    Intervals with similar BBVs execute similar code — they are the same
//!    *phase* — and their per-interval costs cluster tightly.
//! 2. **Clustering** — dependency-free k-means over the BBVs with a
//!    deterministic seeded RNG ([`Xoshiro256ss`]); `k` is chosen by a
//!    BIC-style score so single-phase workloads collapse to one cluster
//!    instead of being force-split. Each phase elects representatives:
//!    its medoid plus seeded random extras (at least two where the phase
//!    has two members, so a variance estimate exists).
//! 3. **Extrapolation** — [`SampledRun::estimate`] restores the boundary
//!    checkpoint of each representative interval, simulates exactly that
//!    window, and scales the measured per-interval counter deltas by the
//!    phase populations. The partial tail interval is simulated exactly.
//!    Every estimate carries a confidence interval from the stratified
//!    sampling variance, so the error is *measured*, not assumed.
//!
//! Only additive counters are extrapolated (the [`COUNTER_KEYS`]
//! whitelist); ratio stats such as `vm.l1_walk_hit_rate` are re-derived
//! from estimated numerator and denominator with conservatively widened
//! bars. Gauges (`os.frames_allocated`, per-thread breakdowns) are not
//! estimable from samples and are deliberately absent.

use std::collections::BTreeMap;

use svmsyn_sim::{StatSet, Xoshiro256ss};

use crate::checkpoint::Checkpoint;
use crate::flow::SystemDesign;
use crate::report::Table;
use crate::sim::{RunProgress, Sim, SimConfig, SimError, SimOutcome};

/// Additive system-wide counters the estimator extrapolates. Each must be
/// a monotone sum over scheduler events so that per-interval deltas add up
/// to the full-run total (the property the stratified estimator relies
/// on). Keys must exist in [`SimOutcome::stats`] / [`Sim::live_stats`].
pub const COUNTER_KEYS: &[&str] = &[
    "makespan",
    "os.hw_faults",
    "os.sw_faults",
    "pressure.major_faults",
    "pressure.reclaims",
    "pressure.shootdowns",
    "pressure.swap_busy_cycles",
    "vm.walks",
    "vm.l1_walk_hits",
    "vm.l2_walk_hits",
    "memif.hit_under_miss",
    "memif.miss_overlap_cycles",
    "memif.miss_parks",
    "fabric.merges",
    "fabric.inflight_cycles",
    "fabric.data_busy_cycles",
];

/// Ratio stats re-derived from extrapolated counters: `(key, numerator,
/// denominator)`. The CI is the interval quotient `[lo/hi', hi/lo']` —
/// conservative, never tighter than the counter bars it derives from.
pub const RATIO_KEYS: &[(&str, &str, &str)] = &[
    ("vm.l1_walk_hit_rate", "vm.l1_walk_hits", "vm.walks"),
    ("vm.l2_walk_hit_rate", "vm.l2_walk_hits", "vm.walks"),
    (
        "fabric.outstanding_mean",
        "fabric.inflight_cycles",
        "makespan",
    ),
    (
        "fabric.data_utilization",
        "fabric.data_busy_cycles",
        "makespan",
    ),
];

/// Knobs for profiling, clustering and estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleConfig {
    /// Interval length in scheduler events (the unit
    /// [`SimConfig::checkpoint_every`] counts). Smaller intervals resolve
    /// finer phase structure but cost more checkpoints.
    pub interval_events: u64,
    /// Upper bound on the number of phases k-means may use.
    pub max_phases: usize,
    /// Representatives simulated per phase (clamped to at least 2 where
    /// the phase has 2+ members, so every phase gets a variance estimate,
    /// and to the phase population).
    pub samples_per_phase: usize,
    /// Weight of the performance features appended to each BBV: the
    /// interval's cycle length plus the deltas of a few key counters
    /// (walks, fabric occupancy and data cycles, reclaims), each
    /// normalized to its run mean. The BBV alone is blind to *cost*
    /// phases — identical code that walks the page table every k-th
    /// interval, or whose memory overlap ramps while latency stays
    /// hidden, has an identical normalized BBV — so measured cost rides
    /// along as extra clustering dimensions. 0 disables them
    /// (pure-SimPoint code signature).
    pub duration_weight: f64,
    /// Seed for clustering initialization and representative picks. Equal
    /// seeds produce byte-identical [`SampledEstimate::report`]s.
    pub seed: u64,
    /// Half-width multiplier: the reported bar is `z * stderr`.
    pub confidence_z: f64,
    /// Lloyd iteration cap per k-means run.
    pub kmeans_iters: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            interval_events: 512,
            max_phases: 8,
            samples_per_phase: 3,
            duration_weight: 1.0,
            seed: 0x5EED_CAFE,
            // z = 3 on a stratified stderr: wide enough that the
            // conformance suite's containment check holds across every
            // workload, narrow enough to stay useful (a few percent).
            confidence_z: 3.0,
            kmeans_iters: 24,
        }
    }
}

/// One phase: the intervals k-means grouped together and the subset the
/// plan simulates.
#[derive(Debug, Clone)]
pub struct SamplePhase {
    /// Member interval indices, ascending.
    pub members: Vec<usize>,
    /// Representative interval indices (subset of `members`), ascending.
    /// First elected is always the medoid.
    pub sampled: Vec<usize>,
}

/// The product of the profiling pass: phase structure, the sampling plan,
/// and the boundary checkpoints the estimator fast-forwards from.
pub struct SampleProfile {
    /// The configuration the profile was collected under; [`SampledRun`]
    /// replays intervals with the same `interval_events`.
    pub cfg: SampleConfig,
    /// Number of complete intervals (the tail rides separately).
    pub intervals: usize,
    /// Events in the final partial interval (`< cfg.interval_events`).
    pub tail_events: u64,
    /// Phases, ordered by first member interval.
    pub phases: Vec<SamplePhase>,
    /// Ground-truth makespan of the profiled run (cycles), kept for
    /// coverage reporting only — estimated *means* always come from
    /// replayed sampled windows, never from profiled counters.
    pub profiled_makespan: u64,
    /// Total events of the profiled run.
    pub profiled_events: u64,
    /// Within-phase variance of each counter's per-interval delta,
    /// indexed `[phase][COUNTER_KEYS position]`, measured over all phase
    /// members during profiling. Feeds the stratified error bars: the
    /// sample variance of 3–4 replayed windows is itself too noisy to
    /// certify a width (a plateau phase whose picks agree exactly would
    /// claim zero), while the profile knows the true dispersion.
    pub phase_var: Vec<Vec<f64>>,
    /// Start-of-interval checkpoints, keyed by interval index, for every
    /// sampled interval except 0 (which starts from [`Sim::new`]) plus
    /// key `intervals` = start of the tail. Unsampled boundaries are
    /// dropped at the end of profiling.
    checkpoints: BTreeMap<usize, Checkpoint>,
}

impl std::fmt::Debug for SampleProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SampleProfile")
            .field("intervals", &self.intervals)
            .field("tail_events", &self.tail_events)
            .field("phases", &self.phases)
            .field("checkpoints", &self.checkpoints.keys())
            .finish_non_exhaustive()
    }
}

impl SampleProfile {
    /// Interval indices the plan simulates, ascending and deduplicated.
    pub fn sampled_intervals(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .phases
            .iter()
            .flat_map(|p| p.sampled.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// A point estimate with a symmetric error bar: `value ± half_width`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatEstimate {
    /// The extrapolated value.
    pub value: f64,
    /// Half-width of the confidence interval (`z * stderr`; exactly 0 for
    /// fully-enumerated strata and the tail).
    pub half_width: f64,
}

impl StatEstimate {
    /// Lower bar edge.
    pub fn lo(&self) -> f64 {
        self.value - self.half_width
    }

    /// Upper bar edge.
    pub fn hi(&self) -> f64 {
        self.value + self.half_width
    }

    /// Whether `truth` falls inside the bar (with a relative epsilon for
    /// float round-off in exact, zero-width estimates).
    pub fn contains(&self, truth: f64) -> bool {
        let slack = 1e-6 * self.value.abs().max(1.0);
        (truth - self.value).abs() <= self.half_width + slack
    }

    /// `|truth - value| / max(|truth|, 1)` — the conformance suite's
    /// relative-error metric.
    pub fn rel_error(&self, truth: f64) -> f64 {
        (truth - self.value).abs() / truth.abs().max(1.0)
    }
}

/// A full-run estimate extrapolated from sampled windows.
#[derive(Debug, Clone)]
pub struct SampledEstimate {
    /// Per-stat estimates with error bars ([`COUNTER_KEYS`] plus
    /// [`RATIO_KEYS`]), deterministically ordered.
    pub stats: BTreeMap<String, StatEstimate>,
    /// Cycles actually simulated by the estimator (sampled windows plus
    /// the exact tail) — the numerator of [`coverage`](Self::coverage).
    pub cycles_simulated: u64,
    /// Full-run cycles (profiled ground-truth makespan).
    pub cycles_full: u64,
    /// Windows simulated (sampled intervals; the tail adds one more when
    /// non-empty).
    pub intervals_simulated: usize,
    /// Complete intervals in the full run.
    pub intervals_total: usize,
    /// Number of phases in the plan.
    pub phases: usize,
    /// The clustering/sampling seed (for reproduction).
    pub seed: u64,
    /// Interval length in events.
    pub interval_events: u64,
}

impl SampledEstimate {
    /// Looks up one stat's estimate.
    pub fn get(&self, key: &str) -> Option<StatEstimate> {
        self.stats.get(key).copied()
    }

    /// Fraction of the full run's cycles the estimator simulated.
    pub fn coverage(&self) -> f64 {
        self.cycles_simulated as f64 / self.cycles_full.max(1) as f64
    }

    /// Deterministic textual report: equal seeds and equal designs render
    /// byte-identical strings (the DSE-memo determinism contract).
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sampled run: seed=0x{:016x} phases={} intervals={}x{} events\n",
            self.seed, self.phases, self.intervals_total, self.interval_events
        ));
        out.push_str(&format!(
            "simulated {} of {} intervals + tail: {} of {} cycles ({:.1}% coverage)\n",
            self.intervals_simulated,
            self.intervals_total,
            self.cycles_simulated,
            self.cycles_full,
            100.0 * self.coverage()
        ));
        let mut t = Table::new("estimate", &["stat", "value", "±", "rel ±"]);
        for (k, e) in &self.stats {
            let rel = if e.value.abs() > 1e-12 {
                format!("{:.2}%", 100.0 * e.half_width / e.value.abs())
            } else {
                "-".to_string()
            };
            t.row_owned(vec![
                k.clone(),
                format!("{:.3}", e.value),
                format!("{:.3}", e.half_width),
                rel,
            ]);
        }
        out.push_str(&t.to_string());
        out
    }
}

/// Squared Euclidean distance between two BBVs.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// One Lloyd's-algorithm run at fixed `k`. Returns `(assignment, rss)`.
/// Deterministic: seeded initialization, lowest-index tie-breaks, empty
/// clusters re-seeded with the globally farthest point.
fn kmeans(bbvs: &[Vec<f64>], k: usize, iters: usize, rng: &mut Xoshiro256ss) -> (Vec<usize>, f64) {
    let n = bbvs.len();
    debug_assert!(k >= 1 && k <= n);
    let dim = bbvs[0].len();
    // Farthest-point (k-means++-style) initialization: a seeded random
    // first center, then each next center is the point farthest from the
    // chosen set (lowest index on ties). Random init can drop both seeds
    // of a 2-means run into the same dense blob and never escape — the
    // elbow rule then sees no gain and under-clusters.
    let mut centers: Vec<Vec<f64>> = vec![bbvs[rng.range(n as u64) as usize].clone()];
    while centers.len() < k {
        let far = (0..n)
            .max_by(|&a, &b| {
                let da = centers
                    .iter()
                    .map(|c| dist2(&bbvs[a], c))
                    .fold(f64::INFINITY, f64::min);
                let db = centers
                    .iter()
                    .map(|c| dist2(&bbvs[b], c))
                    .fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db).unwrap().then(b.cmp(&a))
            })
            .unwrap();
        centers.push(bbvs[far].clone());
    }
    let mut assign = vec![0usize; n];
    for _ in 0..iters {
        // Assign: nearest center, lowest index on ties.
        let mut changed = false;
        for (i, v) in bbvs.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let d = dist2(v, center);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        // Update: centroid of members; an empty cluster steals the point
        // farthest from its current center (deterministic max).
        let mut counts = vec![0usize; k];
        let mut sums = vec![vec![0.0; dim]; k];
        for (i, v) in bbvs.iter().enumerate() {
            counts[assign[i]] += 1;
            for (s, x) in sums[assign[i]].iter_mut().zip(v) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = dist2(&bbvs[a], &centers[assign[a]]);
                        let db = dist2(&bbvs[b], &centers[assign[b]]);
                        da.partial_cmp(&db).unwrap().then(b.cmp(&a))
                    })
                    .unwrap();
                centers[c] = bbvs[far].clone();
            } else {
                for (s, sum) in centers[c].iter_mut().zip(&sums[c]) {
                    *s = sum / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let rss: f64 = bbvs
        .iter()
        .enumerate()
        .map(|(i, v)| dist2(v, &centers[assign[i]]))
        .sum();
    (assign, rss)
}

/// Clusters interval BBVs into phases: grows `k` from 1 toward
/// `max_phases` and stops at the elbow — the first `k` whose refinement
/// recovers less than 5% of the total (`k = 1`) dispersion. Distinct
/// phases collapse the residual almost entirely, so they are always worth
/// a cluster; near-duplicate BBVs never justify a split, so a single-
/// phase workload stays one phase. Mild over-clustering is benign (more
/// samples, tighter bars); under-clustering inflates in-phase variance,
/// which the error bars then report honestly.
fn cluster_phases(bbvs: &[Vec<f64>], cfg: &SampleConfig) -> Vec<Vec<usize>> {
    let n = bbvs.len();
    if n == 0 {
        return Vec::new();
    }
    let kmax = cfg.max_phases.max(1).min(n);
    // A fresh stream per k: scoring k=3 must not perturb k=4's picks.
    let run = |k: usize| {
        let mut rng = Xoshiro256ss::new(cfg.seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        kmeans(bbvs, k, cfg.kmeans_iters, &mut rng)
    };
    let (mut assign, mut rss) = run(1);
    let total = rss;
    let min_gain = 0.05 * total;
    for k in 2..=kmax {
        if rss <= 1e-12 {
            break;
        }
        let (next_assign, next_rss) = run(k);
        if rss - next_rss < min_gain {
            break;
        }
        assign = next_assign;
        rss = next_rss;
    }
    // Group members per cluster, drop empties, order phases by first
    // member so phase identity is stable run to run.
    let k = assign.iter().max().unwrap() + 1;
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &c) in assign.iter().enumerate() {
        groups[c].push(i);
    }
    groups.retain(|g| !g.is_empty());

    // Outlier post-pass: an interval far from its phase centroid is a
    // one-off event (a stall whose counter signature matches neither
    // neighbor cluster) that the elbow rule won't spend a whole cluster
    // on. Left in place it poisons the stratum mean, so promote the
    // worst offenders to singleton phases — singletons are simulated
    // exactly and contribute zero variance. Cost dims are z-scored, so
    // a squared distance of 2 is a ~1.4-sigma departure on one axis.
    const OUTLIER_DIST2: f64 = 2.0;
    const OUTLIER_CAP: usize = 8;
    let dim = bbvs.first().map_or(0, Vec::len);
    let mut outliers: Vec<(f64, usize)> = Vec::new();
    for g in &groups {
        if g.len() < 2 {
            continue;
        }
        let mut centroid = vec![0.0; dim];
        for &i in g {
            for (c, x) in centroid.iter_mut().zip(&bbvs[i]) {
                *c += x;
            }
        }
        for c in &mut centroid {
            *c /= g.len() as f64;
        }
        for &i in g {
            let d = dist2(&bbvs[i], &centroid);
            if d > OUTLIER_DIST2 {
                outliers.push((d, i));
            }
        }
    }
    outliers.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    outliers.truncate(OUTLIER_CAP);
    for &(_, i) in &outliers {
        for g in &mut groups {
            g.retain(|&m| m != i);
        }
        groups.push(vec![i]);
    }

    groups.retain(|g| !g.is_empty());
    groups.sort_by_key(|g| g[0]);
    groups
}

/// Elects each phase's representatives: the medoid (member closest to the
/// phase centroid, lowest index on ties) plus seeded-random extras up to
/// `min(max(samples_per_phase, 2), population)`.
fn elect_representatives(
    bbvs: &[Vec<f64>],
    groups: Vec<Vec<usize>>,
    cfg: &SampleConfig,
) -> Vec<SamplePhase> {
    let dim = bbvs.first().map_or(0, Vec::len);
    groups
        .into_iter()
        .map(|members| {
            let mut centroid = vec![0.0; dim];
            for &i in &members {
                for (c, x) in centroid.iter_mut().zip(&bbvs[i]) {
                    *c += x;
                }
            }
            for c in &mut centroid {
                *c /= members.len() as f64;
            }
            let medoid = members
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    dist2(&bbvs[a], &centroid)
                        .partial_cmp(&dist2(&bbvs[b], &centroid))
                        .unwrap()
                        .then(a.cmp(&b))
                })
                .unwrap();
            // Representatives at the midpoints of `want` equal strata
            // across the phase, plus the medoid. Midpoints track
            // monotone cost drift (e.g. fabric occupancy ramping while
            // the code signature stays flat) like endpoint-spread picks
            // do, but skip the phase edges, where transition intervals
            // are systematically atypical of the stratum.
            let want = cfg.samples_per_phase.max(2).min(members.len());
            let mut sampled: Vec<usize> = (0..want)
                .map(|j| members[(2 * j + 1) * members.len() / (2 * want)])
                .collect();
            if !sampled.contains(&medoid) {
                // The medoid rides along as an extra sample rather than
                // displacing a spread pick — displacement can collapse
                // the picks onto one side of a periodic alternation.
                sampled.push(medoid);
            }
            sampled.sort_unstable();
            sampled.dedup();
            SamplePhase { members, sampled }
        })
        .collect()
}

/// The sampled-simulation driver: profiles once, then estimates from
/// sampled windows.
pub struct SampledRun<'d> {
    design: &'d SystemDesign,
    cfg: SimConfig,
}

impl<'d> SampledRun<'d> {
    /// A driver over `design` with base simulation options `cfg`
    /// (`checkpoint_every` is overridden internally by the interval
    /// length).
    pub fn new(design: &'d SystemDesign, cfg: &SimConfig) -> Self {
        SampledRun { design, cfg: *cfg }
    }

    fn run_cfg(&self, scfg: &SampleConfig) -> SimConfig {
        SimConfig {
            checkpoint_every: scfg.interval_events.max(1),
            ..self.cfg
        }
    }

    /// The profiling pass: one instrumented full run collecting per-
    /// interval BBVs and boundary checkpoints, then clustering and
    /// representative election. Returns the profile *and* the profiled
    /// run's outcome — pausing never perturbs the event sequence, so the
    /// outcome doubles as free ground truth for validation.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] of the underlying full run.
    pub fn profile(&self, scfg: &SampleConfig) -> Result<(SampleProfile, SimOutcome), SimError> {
        let run_cfg = self.run_cfg(scfg);
        let mut sim = Sim::new(self.design, &run_cfg)?;
        sim.enable_block_profile();
        // The counters (by name) that join the clustering features: the
        // dims whose phases the BBV cannot see (stall cost, memory
        // overlap, reclaim storms). Deltas of *all* counters are
        // recorded per interval regardless — the estimator's error bars
        // use the measured within-phase variances.
        const FEATURE_KEYS: &[&str] = &[
            "makespan",
            "vm.walks",
            "fabric.inflight_cycles",
            "fabric.data_busy_cycles",
            "memif.hit_under_miss",
            "memif.miss_overlap_cycles",
            "pressure.reclaims",
        ];
        let feature_idx: Vec<usize> = FEATURE_KEYS
            .iter()
            .map(|k| {
                COUNTER_KEYS
                    .iter()
                    .position(|c| c == k)
                    .expect("feature key is a counter")
            })
            .collect();
        let mut prev_bbv = sim.bbv_snapshot();
        let mut prev_events = 0u64;
        let mut prev_cost = sim.live_stats();
        let mut bbvs: Vec<Vec<f64>> = Vec::new();
        let mut costs: Vec<Vec<f64>> = Vec::new();
        let mut boundary_cps: Vec<Checkpoint> = Vec::new();
        while let RunProgress::Paused(cp) = sim.run()? {
            let bbv = sim.bbv_snapshot();
            let mut delta: Vec<f64> = bbv
                .iter()
                .zip(&prev_bbv)
                .map(|(a, b)| (a - b) as f64)
                .collect();
            let norm: f64 = delta.iter().sum();
            if norm > 0.0 {
                for d in &mut delta {
                    *d /= norm;
                }
            }
            bbvs.push(delta);
            let cost = sim.live_stats();
            costs.push(
                COUNTER_KEYS
                    .iter()
                    .map(|k| cost.get(k).unwrap_or(0.0) - prev_cost.get(k).unwrap_or(0.0))
                    .collect(),
            );
            boundary_cps.push(cp);
            prev_bbv = bbv;
            prev_events = sim.events_fired();
            prev_cost = cost;
        }
        let profiled_events = sim.events_fired();
        let tail_events = profiled_events - prev_events;
        let outcome = sim.finish()?;
        let intervals = bbvs.len();

        // Clustering features: the normalized BBV plus (optionally) each
        // cost-signature dimension z-scored across intervals — equal-code
        // intervals that cost very differently must not share a phase,
        // and z-scoring keeps one spiky counter from drowning the rest.
        let nf = intervals.max(1) as f64;
        let mut mean_cost = vec![0.0; feature_idx.len()];
        for c in &costs {
            for (m, &kx) in mean_cost.iter_mut().zip(&feature_idx) {
                *m += c[kx] / nf;
            }
        }
        let mut sd_cost = vec![0.0; feature_idx.len()];
        for c in &costs {
            for ((s, &kx), m) in sd_cost.iter_mut().zip(&feature_idx).zip(&mean_cost) {
                *s += (c[kx] - m) * (c[kx] - m) / nf;
            }
        }
        for s in &mut sd_cost {
            *s = s.sqrt();
        }
        let features: Vec<Vec<f64>> = bbvs
            .iter()
            .zip(&costs)
            .map(|(bbv, cost)| {
                let mut f = bbv.clone();
                if scfg.duration_weight > 0.0 {
                    for ((&kx, &m), &s) in feature_idx.iter().zip(&mean_cost).zip(&sd_cost) {
                        if s > 0.0 {
                            f.push(scfg.duration_weight * (cost[kx] - m) / s);
                        }
                    }
                }
                f
            })
            .collect();

        // Interval 0 is warmup — first-touch faults, cold TLBs, cold
        // caches — and never representative of anything later, so it is
        // pinned as its own exactly-simulated phase and excluded from
        // clustering. The rest cluster normally (indices shifted by 1).
        let mut phases: Vec<SamplePhase> = Vec::new();
        if intervals > 0 {
            phases.push(SamplePhase {
                members: vec![0],
                sampled: vec![0],
            });
            let rest = &features[1..];
            let groups = cluster_phases(rest, scfg);
            let mut elected = elect_representatives(rest, groups, scfg);
            for p in &mut elected {
                for i in &mut p.members {
                    *i += 1;
                }
                for i in &mut p.sampled {
                    *i += 1;
                }
            }
            phases.extend(elected);
        }

        // Within-phase variance of every counter, measured over *all*
        // phase members (n−1 divisor; singletons get zero). The
        // estimator's stratified error bars use these in place of the
        // sample variance of 3–4 windows, whose own noise — a plateau
        // phase whose picks happen to agree exactly — would otherwise
        // certify false zero-width bars.
        let phase_var: Vec<Vec<f64>> = phases
            .iter()
            .map(|p| {
                let n = p.members.len() as f64;
                (0..COUNTER_KEYS.len())
                    .map(|kx| {
                        if p.members.len() < 2 {
                            return 0.0;
                        }
                        let mean = p.members.iter().map(|&i| costs[i][kx]).sum::<f64>() / n;
                        p.members
                            .iter()
                            .map(|&i| {
                                let d = costs[i][kx] - mean;
                                d * d
                            })
                            .sum::<f64>()
                            / (n - 1.0)
                    })
                    .collect()
            })
            .collect();

        // Keep only the checkpoints the plan needs: start-of-interval for
        // each sampled interval (boundary i-1), plus the tail start.
        let mut checkpoints = BTreeMap::new();
        let mut needed: Vec<usize> = phases
            .iter()
            .flat_map(|p| p.sampled.iter().copied())
            .filter(|&i| i > 0)
            .collect();
        if intervals > 0 {
            needed.push(intervals);
        }
        needed.sort_unstable();
        needed.dedup();
        // Consume from the back so each checkpoint moves, not clones.
        for i in needed.into_iter().rev() {
            checkpoints.insert(i, boundary_cps.remove(i - 1));
        }

        Ok((
            SampleProfile {
                cfg: *scfg,
                intervals,
                tail_events,
                phases,
                profiled_makespan: outcome.makespan.0,
                profiled_events,
                phase_var,
                checkpoints,
            },
            outcome,
        ))
    }

    /// The estimation pass: simulates only the sampled windows (restoring
    /// each from its boundary checkpoint) plus the exact tail, and
    /// extrapolates full-run stats with stratified error bars.
    ///
    /// For each counter, `total = Σ_p N_p · mean_p + tail` with `mean_p`
    /// measured from the replayed windows, and
    /// `Var = Σ_p N_p² · (σ_p²/m_p) · (1 − m_p/N_p)` (finite-population
    /// corrected) with `σ_p²` the within-phase variance recorded by the
    /// profiling pass ([`SampleProfile::phase_var`]); the bar is
    /// `± z·√Var`. Fully-enumerated phases and the tail contribute zero
    /// variance — a short run degrades to an exact replay with
    /// zero-width bars.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised while replaying a window.
    pub fn estimate(&self, profile: &SampleProfile) -> Result<SampledEstimate, SimError> {
        let scfg = &profile.cfg;
        let run_cfg = self.run_cfg(scfg);
        let mut cycles_simulated = 0u64;

        // Measure each sampled window: restore its boundary, run exactly
        // one interval (the checkpoint_every pause), diff live stats.
        let sampled = profile.sampled_intervals();
        let mut deltas: BTreeMap<usize, BTreeMap<&'static str, f64>> = BTreeMap::new();
        for &i in &sampled {
            let mut sim = if i == 0 {
                Sim::new(self.design, &run_cfg)?
            } else {
                Sim::restore(self.design, &run_cfg, &profile.checkpoints[&i])?
            };
            let before = sim.live_stats();
            let c0 = sim.now().0;
            // Determinism makes this pause exactly interval i's end; a
            // Complete here means the design diverged from its profile.
            let progress = sim.run()?;
            debug_assert!(
                matches!(progress, RunProgress::Paused(_)),
                "sampled window {i} completed early: profile is stale"
            );
            let after = sim.live_stats();
            cycles_simulated += sim.now().0.saturating_sub(c0);
            deltas.insert(i, stat_deltas(&before, &after));
        }

        // The tail is simulated exactly from the last boundary.
        let mut sim = if profile.intervals == 0 {
            Sim::new(self.design, &run_cfg)?
        } else {
            Sim::restore(
                self.design,
                &run_cfg,
                &profile.checkpoints[&profile.intervals],
            )?
        };
        let before = sim.live_stats();
        let c0 = sim.now().0;
        loop {
            // By construction the tail holds fewer events than one
            // interval, so the first run() completes; the loop guards
            // against a stale profile.
            if let RunProgress::Complete = sim.run()? {
                break;
            }
        }
        let outcome = sim.finish()?;
        let tail = stat_deltas(&before, outcome.stats());
        cycles_simulated += outcome.makespan.0.saturating_sub(c0);

        // Stratified extrapolation per counter.
        let z = scfg.confidence_z;
        let extrapolated = profile
            .phases
            .iter()
            .any(|p| p.sampled.len() < p.members.len());
        let mut stats: BTreeMap<String, StatEstimate> = BTreeMap::new();
        for (kx, &key) in COUNTER_KEYS.iter().enumerate() {
            let mut total = tail[key];
            let mut var = 0.0;
            for (pi, phase) in profile.phases.iter().enumerate() {
                let n_p = phase.members.len() as f64;
                let xs: Vec<f64> = phase.sampled.iter().map(|&i| deltas[&i][key]).collect();
                let m = xs.len() as f64;
                let mean = xs.iter().sum::<f64>() / m;
                total += n_p * mean;
                if phase.members.len() > xs.len() {
                    let s2 = profile.phase_var[pi][kx];
                    var += n_p * n_p * (s2 / m) * (1.0 - m / n_p);
                }
            }
            let mut half_width = z * var.sqrt();
            if extrapolated {
                // A zero or tiny sample variance does not certify zero
                // error: a phase whose 3 samples agree exactly can still
                // hide a few-cycle wobble — or a handful of discrete
                // faults — in its unsampled members. Whenever any phase
                // was genuinely extrapolated, the bar keeps a Poisson-
                // style resolution floor of z·√total: sampling cannot
                // resolve sub-√N structure in a counting process. For
                // large counters this stays well under 1% (√N/N), so the
                // bars remain tight; fully-enumerated runs keep their
                // exact zero width.
                half_width = half_width.max(z * total.abs().sqrt());
            }
            stats.insert(
                key.to_string(),
                StatEstimate {
                    value: total,
                    half_width,
                },
            );
        }

        // Ratios from counter estimates, with interval-quotient bars.
        for &(key, num_key, den_key) in RATIO_KEYS {
            let num = stats[num_key];
            let den = stats[den_key];
            let clamp = key == "fabric.data_utilization";
            stats.insert(key.to_string(), ratio_estimate(num, den, clamp));
        }

        Ok(SampledEstimate {
            stats,
            cycles_simulated,
            cycles_full: profile.profiled_makespan,
            intervals_simulated: sampled.len(),
            intervals_total: profile.intervals,
            phases: profile.phases.len(),
            seed: scfg.seed,
            interval_events: scfg.interval_events,
        })
    }
}

/// Per-interval counter deltas `after - before` over [`COUNTER_KEYS`].
fn stat_deltas(before: &StatSet, after: &StatSet) -> BTreeMap<&'static str, f64> {
    COUNTER_KEYS
        .iter()
        .map(|&k| {
            (
                k,
                after.get(k).unwrap_or(0.0) - before.get(k).unwrap_or(0.0),
            )
        })
        .collect()
}

/// `num/den` with the conservative interval quotient `[lo/hi', hi/lo']`
/// folded into a symmetric bar. A zero denominator estimate yields 0 (the
/// same convention as the ground-truth rates); a denominator bar crossing
/// zero yields a bar as wide as the value itself (no information).
fn ratio_estimate(num: StatEstimate, den: StatEstimate, clamp_to_one: bool) -> StatEstimate {
    if den.value <= 0.0 {
        return StatEstimate {
            value: 0.0,
            half_width: 0.0,
        };
    }
    let mut value = num.value / den.value;
    if clamp_to_one {
        value = value.min(1.0);
    }
    let d_lo = den.lo();
    if d_lo <= 0.0 {
        return StatEstimate {
            value,
            half_width: value.abs().max(1.0),
        };
    }
    let mut lo = num.lo().max(0.0) / den.hi();
    let mut hi = num.hi() / d_lo;
    if clamp_to_one {
        lo = lo.min(1.0);
        hi = hi.min(1.0);
    }
    let half_width = (value - lo).max(hi - value).max(0.0);
    StatEstimate { value, half_width }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_is_deterministic_and_groups_obvious_clusters() {
        let mut bbvs = Vec::new();
        for i in 0..8 {
            let jitter = i as f64 * 1e-3;
            bbvs.push(vec![1.0 - jitter, jitter, 0.0]);
        }
        for i in 0..8 {
            let jitter = i as f64 * 1e-3;
            bbvs.push(vec![0.0, jitter, 1.0 - jitter]);
        }
        let cfg = SampleConfig::default();
        let a = cluster_phases(&bbvs, &cfg);
        let b = cluster_phases(&bbvs, &cfg);
        assert_eq!(a, b, "clustering must be deterministic");
        assert_eq!(a.len(), 2, "two well-separated clusters: {a:?}");
        assert_eq!(a[0], (0..8).collect::<Vec<_>>());
        assert_eq!(a[1], (8..16).collect::<Vec<_>>());
    }

    #[test]
    fn single_phase_collapses_to_one_cluster() {
        let bbvs = vec![vec![0.5, 0.5]; 10];
        let groups = cluster_phases(&bbvs, &SampleConfig::default());
        assert_eq!(groups.len(), 1, "identical BBVs are one phase: {groups:?}");
    }

    #[test]
    fn representatives_start_with_medoid_and_respect_population() {
        let bbvs = vec![vec![1.0, 0.0]; 5];
        let phases = elect_representatives(
            &bbvs,
            vec![vec![0, 1, 2, 3, 4]],
            &SampleConfig {
                samples_per_phase: 3,
                ..SampleConfig::default()
            },
        );
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].sampled.len(), 3);
        for s in &phases[0].sampled {
            assert!(phases[0].members.contains(s));
        }
        // Singleton phase: exactly one representative.
        let phases = elect_representatives(&bbvs, vec![vec![2]], &SampleConfig::default());
        assert_eq!(phases[0].sampled, vec![2]);
    }

    #[test]
    fn ratio_bars_are_conservative() {
        let num = StatEstimate {
            value: 50.0,
            half_width: 5.0,
        };
        let den = StatEstimate {
            value: 100.0,
            half_width: 10.0,
        };
        let r = ratio_estimate(num, den, false);
        assert!((r.value - 0.5).abs() < 1e-12);
        // True ratio from any contained num/den must be inside the bar.
        assert!(r.contains(45.0 / 110.0));
        assert!(r.contains(55.0 / 90.0));
        // Zero denominator: the ground-truth convention.
        let z = ratio_estimate(
            num,
            StatEstimate {
                value: 0.0,
                half_width: 0.0,
            },
            false,
        );
        assert_eq!(z.value, 0.0);
        // Clamped utilization's point estimate never exceeds 1, and a
        // saturated ground truth stays inside the bar.
        let u = ratio_estimate(
            StatEstimate {
                value: 120.0,
                half_width: 30.0,
            },
            StatEstimate {
                value: 100.0,
                half_width: 1.0,
            },
            true,
        );
        assert!(u.value <= 1.0);
        assert!(u.contains(1.0));
    }
}
