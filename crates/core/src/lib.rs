//! # svmsyn — system-level synthesis for virtual-memory-enabled hardware threads
//!
//! The paper's contribution, reproduced on simulated substrates: a toolflow
//! that takes a *multithreaded application* (threads + shared buffers +
//! synchronization), decides which threads become FPGA hardware threads
//! under a fabric budget, equips every hardware thread with shared-virtual-
//! memory infrastructure (private MMU + burst engine + OS interface), and
//! produces a complete system that is then evaluated by full-system
//! simulation.
//!
//! * [`app`] — the application model and its builder.
//! * [`platform`] — the target SoC description (fabric budget, clocks,
//!   memory, OS).
//! * [`flow`] — [`flow::synthesize`]: HLS per hardware thread, VM
//!   infrastructure sizing, budget/clock closure.
//! * [`sim`] — [`sim::simulate`]: boots the OS, shares one virtual address
//!   space between software and hardware threads, and runs the system to
//!   completion on the deterministic event scheduler.
//! * [`dse`] — [`dse::explore`]: HW/SW partitioning (exhaustive, greedy,
//!   annealing) with simulation-in-the-loop evaluation.
//! * [`checkpoint`] — versioned, checksummed snapshot images
//!   ([`checkpoint::Checkpoint`]), snapshot-fork pressure sweeps, and the
//!   divergence bisector.
//! * [`baseline`] — the copy-based DMA accelerator flow the SVM approach is
//!   compared against (Figure 4).
//! * [`fingerprint`] — canonical content hashes of applications and
//!   platforms: the key material of the content-addressed result store.
//! * [`report`] — text tables for the experiment harnesses.
//! * [`sample`] — SimPoint-style sampled simulation: BBV phase profiling,
//!   deterministic k-means clustering, and checkpoint-fast-forwarded
//!   window simulation with per-stat confidence intervals.
//!
//! # Example
//!
//! ```
//! use svmsyn::app::{ApplicationBuilder, ArgSpec};
//! use svmsyn::flow::{synthesize, Placement};
//! use svmsyn::platform::Platform;
//! use svmsyn::sim::{simulate, SimConfig};
//! use svmsyn_hls::builder::KernelBuilder;
//! use svmsyn_hls::ir::{BinOp, Width};
//!
//! // A tiny kernel: *out = arg * 2.
//! let mut kb = KernelBuilder::new("dbl", 2);
//! let out = kb.arg(0);
//! let x = kb.arg(1);
//! let y = kb.bin(BinOp::Add, x, x);
//! kb.store(out, y, Width::W32);
//! kb.ret(None);
//!
//! let app = ApplicationBuilder::new("demo")
//!     .buffer("out", 4096, vec![], false)
//!     .thread("t0", kb.finish().unwrap(),
//!             vec![ArgSpec::Buffer(0, 0), ArgSpec::Value(21)], true)
//!     .build()
//!     .unwrap();
//!
//! let design = synthesize(&app, &Platform::default(), &[Placement::Hardware]).unwrap();
//! let outcome = simulate(&design, &SimConfig::default()).unwrap();
//! let mut result = [0u8; 4];
//! outcome.read_buffer(0, &mut result);
//! assert_eq!(u32::from_le_bytes(result), 42);
//! ```

pub mod app;
pub mod baseline;
pub mod budget;
pub mod checkpoint;
pub mod dse;
pub mod fingerprint;
pub mod flow;
pub mod platform;
pub mod report;
pub mod sample;
pub mod shard;
pub mod sim;

pub use app::{Application, ApplicationBuilder, ArgSpec, SyncAction, SyncSpec};
pub use budget::{host_cores, worker_budget};
pub use checkpoint::{
    bisect_divergence, digest_at, fork_swap_sweep, BisectSide, Checkpoint, Divergence, ForkArm,
    ForkError,
};
pub use dse::{explore, explore_with_store, DseConfig, DseError, DseMethod, DsePanic, DseResult};
pub use fingerprint::{app_fingerprint, platform_fingerprint};
pub use flow::{synthesize, Placement, SynthesisError, SystemDesign};
pub use platform::{Platform, PressurePoint};
pub use sample::{SampleConfig, SampleProfile, SampledEstimate, SampledRun, StatEstimate};
pub use shard::{planned_shards, simulate_sharded, ExecMode, ShardedSim};
pub use sim::{
    simulate, RunProgress, ShardSyncStats, Sim, SimConfig, SimError, SimOutcome, SNAPSHOT_VERSION,
};
