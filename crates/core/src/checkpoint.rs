//! Deterministic checkpoint artifacts and the tools built on them: the
//! on-disk snapshot container ([`Checkpoint`]), the design fingerprint that
//! guards restores, the snapshot-fork pressure sweep ([`fork_swap_sweep`]),
//! and the divergence bisector ([`bisect_divergence`]).
//!
//! The snapshot payload itself is assembled and parsed by [`Sim::snapshot`]
//! and [`Sim::restore`] in [`crate::sim`] — the only module that can see the
//! simulator's private state. This module owns everything *around* the
//! payload: container I/O, identity, and the higher-level workflows.

use std::fmt;
use std::io;
use std::path::Path;

use svmsyn_sim::Cycle;

use crate::app::Application;
use crate::flow::{synthesize, Placement, SynthesisError, SystemDesign};
use crate::platform::{Platform, PressurePoint};
use crate::sim::{simulate, RunProgress, Sim, SimConfig, SimError, SimOutcome, SNAPSHOT_VERSION};

/// A serialized simulator snapshot: the complete on-disk image (magic,
/// version, design fingerprint, payload, checksum trailer).
///
/// A `Checkpoint` is opaque bytes until [`Sim::restore`] validates it;
/// constructing one from arbitrary bytes is safe — corrupt or mismatched
/// images are rejected there with a typed [`svmsyn_snap::SnapError`], never
/// a panic or a silent misparse.
#[derive(Clone, PartialEq, Eq)]
pub struct Checkpoint {
    image: Vec<u8>,
}

impl Checkpoint {
    /// Wraps raw image bytes. No validation happens here — restore does it.
    pub fn from_bytes(image: Vec<u8>) -> Checkpoint {
        Checkpoint { image }
    }

    /// The full image: header, payload, and checksum trailer.
    pub fn as_bytes(&self) -> &[u8] {
        &self.image
    }

    /// Image size in bytes.
    pub fn len(&self) -> usize {
        self.image.len()
    }

    /// Whether the image is empty (never true for a real snapshot).
    pub fn is_empty(&self) -> bool {
        self.image.is_empty()
    }

    /// Writes the image to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, &self.image)
    }

    /// Reads an image from `path`. The contents are validated at restore,
    /// not here, so a truncated file still loads — and is then rejected
    /// with a typed error.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn read_from(path: &Path) -> io::Result<Checkpoint> {
        Ok(Checkpoint {
            image: std::fs::read(path)?,
        })
    }
}

impl fmt::Debug for Checkpoint {
    /// Length only: dumping megabytes of image bytes into assertion output
    /// would bury the interesting part of every failure message.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Checkpoint({} bytes)", self.image.len())
    }
}

/// Fingerprint of everything a snapshot's bytes depend on: the application,
/// the placement vector, and the timing-relevant platform axes (fabric,
/// memory system, HLS, MEMIF). The OS config is deliberately *excluded* —
/// its costs and policies are re-read from the design at restore, which is
/// exactly what lets [`fork_swap_sweep`] resume one warmed snapshot under
/// many pressure variants. `synthesis_seconds` (host wall time) and the
/// platform name are cosmetic and excluded too.
pub(crate) fn design_fingerprint(design: &SystemDesign) -> u64 {
    use std::fmt::Write as _;
    let p = &design.platform;
    let mut s = String::new();
    let _ = write!(
        s,
        "{:?}|{:?}|{:?}|{}|{:?}|{:?}|{:?}|{}",
        design.app,
        design.placements,
        p.fabric,
        p.fabric_mhz,
        p.mem,
        p.hls,
        p.memif,
        p.max_hw_threads
    );
    svmsyn_snap::fnv1a(s.as_bytes())
}

/// Why a snapshot-forked sweep failed.
#[derive(Debug)]
pub enum ForkError {
    /// A variant platform failed synthesis.
    Synthesis(SynthesisError),
    /// The warmup run or a forked arm failed.
    Sim(SimError),
}

impl fmt::Display for ForkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForkError::Synthesis(e) => write!(f, "variant synthesis failed: {e}"),
            ForkError::Sim(e) => write!(f, "forked simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ForkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ForkError::Synthesis(e) => Some(e),
            ForkError::Sim(e) => Some(e),
        }
    }
}

impl From<SynthesisError> for ForkError {
    fn from(e: SynthesisError) -> Self {
        ForkError::Synthesis(e)
    }
}

impl From<SimError> for ForkError {
    fn from(e: SimError) -> Self {
        ForkError::Sim(e)
    }
}

/// One arm of a snapshot-forked pressure sweep.
#[derive(Debug)]
pub struct ForkArm {
    /// The swap latency this arm ran under.
    pub swap_latency: u64,
    /// The arm's final outcome.
    pub outcome: SimOutcome,
}

/// Snapshot-fork DSE warmup: simulate the design once under `base` until
/// `warmup_events` scheduler events, snapshot, then fork one resumed run
/// per swap-latency variant — the same operating points a
/// [`crate::dse::DseConfig::pressure_axis`] sweep would cold-start, minus
/// the shared prefix each would re-simulate.
///
/// Soundness: swap-in/swap-out costs are config-side and re-read from the
/// design at restore, so a shared prefix is valid only while it contains no
/// reclaim activity (the first swap would have been timed differently per
/// arm). If reclaim starts before the warmup pause — or the run completes
/// during warmup — every arm silently cold-starts instead; forked and cold
/// arms produce bit-identical outcomes either way, so callers cannot tell
/// except by speed.
///
/// # Errors
///
/// Returns [`ForkError`] when a variant fails synthesis or any run fails.
pub fn fork_swap_sweep(
    app: &Application,
    base: &Platform,
    placements: &[Placement],
    swap_latencies: &[u64],
    cfg: &SimConfig,
    warmup_events: u64,
) -> Result<Vec<ForkArm>, ForkError> {
    let base_design = synthesize(app, base, placements)?;
    let warm_cfg = SimConfig {
        checkpoint_every: warmup_events.max(1),
        ..*cfg
    };
    let mut warm_sim = Sim::new(&base_design, &warm_cfg)?;
    let warm = match warm_sim.run()? {
        RunProgress::Paused(cp) if warm_sim.os().reclaims() == 0 => Some(cp),
        _ => None,
    };

    let mut arms = Vec::with_capacity(swap_latencies.len());
    for &lat in swap_latencies {
        let variant = base.with_pressure(PressurePoint {
            swap_latency: lat,
            ..base.pressure_point()
        });
        let design = synthesize(app, &variant, placements)?;
        let outcome = match &warm {
            Some(cp) => {
                let run_cfg = SimConfig {
                    checkpoint_every: 0,
                    ..*cfg
                };
                let mut fork = Sim::restore(&design, &run_cfg, cp)?;
                while !matches!(fork.run()?, RunProgress::Complete) {}
                fork.finish()?
            }
            None => simulate(&design, cfg)?,
        };
        arms.push(ForkArm {
            swap_latency: lat,
            outcome,
        });
    }
    Ok(arms)
}

/// One side of a divergence bisection: a checkpoint plus the design and
/// config its execution resumes under. The two sides of a bisection may
/// differ in config or in fingerprint-compatible platform variants (e.g.
/// two swap latencies) — that asymmetry is usually the divergence under
/// investigation.
#[derive(Clone, Copy)]
pub struct BisectSide<'a> {
    /// The design the checkpoint restores into.
    pub design: &'a SystemDesign,
    /// The simulation config the resumed execution runs under.
    pub cfg: &'a SimConfig,
    /// The starting snapshot.
    pub checkpoint: &'a Checkpoint,
}

/// The first divergence located by [`bisect_divergence`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Last probed cycle at which the two executions' state digests agreed
    /// (equal to `first_diverge` when the checkpoints differ on arrival).
    pub last_agree: Cycle,
    /// First probed cycle at which the digests differed.
    pub first_diverge: Cycle,
    /// Side A's state digest at `first_diverge`.
    pub digest_a: u64,
    /// Side B's state digest at `first_diverge`.
    pub digest_b: u64,
}

/// State digest of `side`'s execution advanced to `cycle`: restore, run
/// until the next event would pass `cycle`, re-snapshot, and hash the
/// snapshot *payload* (container header excluded, so fingerprint-compatible
/// design variants compare by state alone).
///
/// # Errors
///
/// Returns [`SimError`] when the restore is rejected or the run fails.
pub fn digest_at(side: BisectSide<'_>, cycle: Cycle) -> Result<u64, SimError> {
    let mut sim = Sim::restore(side.design, side.cfg, side.checkpoint)?;
    sim.run_until(cycle)?;
    let cp = sim.snapshot();
    let (_, payload) = svmsyn_snap::read_image(cp.as_bytes(), SNAPSHOT_VERSION)
        .expect("a freshly taken snapshot is a valid image");
    Ok(svmsyn_snap::fnv1a(payload))
}

/// Binary-searches the first cycle window in which two executions diverge.
///
/// Both sides restore from their checkpoints and advance deterministically,
/// so "state at cycle `t`" is well-defined and repeatable; each probe is a
/// fresh restore-and-run to the probed cycle. If the digests still agree at
/// `horizon` the executions are identical over the whole range and `None`
/// is returned. Otherwise the result brackets the divergence: digests agree
/// at `last_agree`, differ at `first_diverge`, and no event fires between
/// the two (adjacent probe points under bisection).
///
/// # Errors
///
/// Returns [`SimError`] when a restore is rejected or a probe run fails.
pub fn bisect_divergence(
    a: BisectSide<'_>,
    b: BisectSide<'_>,
    horizon: Cycle,
) -> Result<Option<Divergence>, SimError> {
    if digest_at(a, horizon)? == digest_at(b, horizon)? {
        return Ok(None);
    }
    let start = Sim::restore(a.design, a.cfg, a.checkpoint)?.now();
    if digest_at(a, start)? != digest_at(b, start)? {
        // Diverged on arrival: the checkpoints themselves disagree.
        return Ok(Some(Divergence {
            last_agree: start,
            first_diverge: start,
            digest_a: digest_at(a, start)?,
            digest_b: digest_at(b, start)?,
        }));
    }
    // Invariant: digests agree at `lo`, differ at `hi`.
    let (mut lo, mut hi) = (start, horizon);
    while hi - lo > Cycle(1) {
        let mid = Cycle(lo.0 + (hi.0 - lo.0) / 2);
        if digest_at(a, mid)? == digest_at(b, mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(Divergence {
        last_agree: lo,
        first_diverge: hi,
        digest_a: digest_at(a, hi)?,
        digest_b: digest_at(b, hi)?,
    }))
}
