//! The target platform description.

use svmsyn_hls::fsmd::HlsConfig;
use svmsyn_hwt::memif::MemifConfig;
use svmsyn_mem::MemConfig;
use svmsyn_os::os::OsConfig;
use svmsyn_os::AllocPolicy;
use svmsyn_sim::FabricResources;

/// One memory-pressure operating point — the DSE pressure axis: how many
/// physical frames the OS manages, when anonymous pages get them, and how
/// fast the swap device moves a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PressurePoint {
    /// Frame-pool cap (`None` = all of DRAM beyond the reservation).
    pub frame_budget: Option<u64>,
    /// Eager vs. lazy anonymous allocation.
    pub policy: AllocPolicy,
    /// Swap-device page transfer latency in fabric cycles, charged in each
    /// direction.
    pub swap_latency: u64,
}

impl Default for PressurePoint {
    /// Unconstrained frames, demand paging, the default swap device.
    fn default() -> Self {
        let costs = OsConfig::default().costs;
        PressurePoint {
            frame_budget: None,
            policy: AllocPolicy::default(),
            swap_latency: costs.swap_in,
        }
    }
}

/// Everything the toolflow needs to know about the target SoC.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Diagnostic name.
    pub name: String,
    /// FPGA fabric budget available to hardware threads.
    pub fabric: FabricResources,
    /// System (fabric) clock in MHz; kernels whose estimated Fmax falls
    /// below it derate the whole design.
    pub fabric_mhz: f64,
    /// Memory-system parameters.
    pub mem: MemConfig,
    /// OS parameters (cores, cost model).
    pub os: OsConfig,
    /// HLS options for kernel compilation.
    pub hls: HlsConfig,
    /// Default VM-infrastructure geometry per hardware thread.
    pub memif: MemifConfig,
    /// Hard cap on concurrent hardware threads (interconnect ports).
    pub max_hw_threads: usize,
}

impl Default for Platform {
    /// A Zynq-7020-class platform: 53 200 LUT / 106 400 FF / 220 DSP /
    /// 140 BRAM36, 100 MHz fabric, 2 CPU cores, 8 fabric master ports.
    fn default() -> Self {
        Platform {
            name: "zynq7020-class".into(),
            fabric: FabricResources {
                lut: 53_200,
                ff: 106_400,
                dsp: 220,
                bram36: 140,
            },
            fabric_mhz: 100.0,
            mem: MemConfig::default(),
            os: OsConfig::default(),
            hls: HlsConfig::default(),
            memif: MemifConfig::default(),
            max_hw_threads: 8,
        }
    }
}

impl Platform {
    /// The same platform with the per-thread page-table-walker geometry
    /// replaced — the variant constructor behind the DSE walk-cache axis.
    pub fn with_walker(&self, walker: svmsyn_vm::walker::WalkerConfig) -> Self {
        let mut p = self.clone();
        p.memif.mmu.walker = walker;
        p
    }

    /// The same platform with the memory-fabric parameters (outstanding
    /// window depth, MSHR count, …) replaced — the variant constructor
    /// behind the DSE fabric axis.
    pub fn with_fabric(&self, fabric: svmsyn_mem::FabricConfig) -> Self {
        let mut p = self.clone();
        p.mem.fabric = fabric;
        p
    }

    /// The same platform with the per-thread MEMIF outstanding-miss depth
    /// replaced — the variant constructor behind the DSE hit-under-miss
    /// axis (`1` = blocking interface, `>1` = non-blocking with that many
    /// fills in flight).
    pub fn with_miss_depth(&self, depth: u32) -> Self {
        let mut p = self.clone();
        p.memif.miss_depth = depth;
        p
    }

    /// The same platform at a different memory-pressure operating point —
    /// the variant constructor behind the DSE pressure axis.
    pub fn with_pressure(&self, point: PressurePoint) -> Self {
        let mut p = self.clone();
        p.os.frame_budget = point.frame_budget;
        p.os.alloc_policy = point.policy;
        p.os.costs.swap_in = point.swap_latency;
        p.os.costs.swap_out = point.swap_latency;
        p
    }

    /// The memory-pressure operating point this platform is configured at
    /// (swap latency reads the swap-in cost; `with_pressure` sets both
    /// directions from it).
    pub fn pressure_point(&self) -> PressurePoint {
        PressurePoint {
            frame_budget: self.os.frame_budget,
            policy: self.os.alloc_policy,
            swap_latency: self.os.costs.swap_in,
        }
    }

    /// A smaller Zynq-7010-class budget, useful to make the DSE budget
    /// binding in experiments.
    pub fn small() -> Self {
        Platform {
            name: "zynq7010-class".into(),
            fabric: FabricResources {
                lut: 17_600,
                ff: 35_200,
                dsp: 80,
                bram36: 60,
            },
            max_hw_threads: 4,
            ..Platform::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_platform_is_plausible() {
        let p = Platform::default();
        assert!(p.fabric.lut > 10_000);
        assert!(p.fabric_mhz > 0.0);
        assert!(p.max_hw_threads >= 1);
        assert!(p.os.cores >= 1);
    }

    #[test]
    fn small_platform_is_smaller() {
        let s = Platform::small();
        let d = Platform::default();
        assert!(s.fabric.lut < d.fabric.lut);
        assert!(s.max_hw_threads < d.max_hw_threads);
    }
}
