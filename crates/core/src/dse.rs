//! Design-space exploration: HW/SW partitioning under a fabric budget.
//!
//! Each candidate placement is evaluated *by simulation* (synthesize, then
//! run) — the DATE-style toolflow loop. Exhaustive search is exact for
//! small thread counts; greedy and simulated-annealing searches scale to
//! larger applications. Figure 7 plots the resulting area/makespan Pareto
//! front; integration tests assert that the heuristics match the exhaustive
//! optimum on small instances.
//!
//! Evaluation is the cost center — every point is a full-system simulation —
//! so the sweep engine batches independent candidates across worker threads
//! (`std::thread::scope` with an atomic work-stealing claim index; the build
//! environment has no crates.io access, so no rayon) and memoizes results by
//! placement vector: a configuration the search revisits is never
//! re-simulated. Simulation is deterministic, so the parallel sweep returns
//! bit-identical results to the serial one.
//!
//! Below the in-process memo sits an optional **second-level cache**: a
//! persistent content-addressed [`ResultStore`] ([`DseConfig::store`] or
//! [`explore_with_store`]). A memo miss probes the store before simulating,
//! and every fresh evaluation is published back, so identical evaluation
//! requests — across processes, sweeps, and tenants — pay the simulation
//! cost once. Store keys are canonical snap encodings of
//! `(app fingerprint, platform fingerprint, variant, placements)` hashed
//! with fnv1a-64 (see [`crate::fingerprint`]); panicking candidates are
//! never published, so a transient environment failure cannot poison the
//! shared store.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use svmsyn_mem::FabricConfig;
use svmsyn_sim::{Cycle, FabricResources, Xoshiro256ss};
use svmsyn_snap::{SnapError, SnapReader, SnapWriter};
use svmsyn_store::ResultStore;
use svmsyn_vm::walker::WalkerConfig;

use crate::app::Application;
use crate::fingerprint::{app_fingerprint, platform_fingerprint};
use crate::flow::{synthesize, Placement};
use crate::platform::{Platform, PressurePoint};
use crate::sim::{simulate, SimConfig};

/// The search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DseMethod {
    /// Try every subset of hardware-eligible threads (≤ 12 eligible).
    Exhaustive,
    /// Start all-software; greedily move the best thread to hardware until
    /// no move improves the makespan.
    Greedy,
    /// Simulated annealing over placement bit-flips (deterministic seed).
    Anneal {
        /// Annealing iterations.
        iters: u32,
        /// PRNG seed.
        seed: u64,
    },
}

/// DSE options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DseConfig {
    /// Search strategy.
    pub method: DseMethod,
    /// Simulation options used for every evaluation.
    pub sim: SimConfig,
    /// Worker threads for batch candidate evaluation; `0` means one per
    /// available core. `1` forces the serial sweep.
    pub threads: usize,
    /// Walk-cache geometries to sweep as an extra design axis: the placement
    /// search runs once per variant (each pays its own fabric cost and walks
    /// with its own cache). Empty means the platform's configured walker
    /// only.
    pub walker_axis: Vec<WalkerConfig>,
    /// Memory-fabric configurations (outstanding window depth, MSHR count)
    /// to sweep as a design axis, crossed with `walker_axis`. Empty means
    /// the platform's configured fabric only.
    pub fabric_axis: Vec<FabricConfig>,
    /// MEMIF outstanding-miss depths (hit-under-miss windows) to sweep as
    /// a design axis, crossed with `fabric_axis` and `walker_axis` — depth
    /// `1` is the blocking interface, deeper windows let a hardware thread
    /// run past its misses. Empty means the platform's configured depth
    /// only.
    pub memif_axis: Vec<u32>,
    /// Memory-pressure operating points (frame budget, allocation policy,
    /// swap latency) to sweep as a design axis, crossed with every other
    /// axis. Empty means the platform's configured pressure point only.
    pub pressure_axis: Vec<PressurePoint>,
    /// Root directory of a persistent content-addressed result store to
    /// consult below the in-process memo (memo miss → store probe →
    /// simulate → publish). `None` disables persistence. To share one open
    /// store handle across many explorations, use [`explore_with_store`]
    /// instead.
    pub store: Option<PathBuf>,
}

impl Default for DseConfig {
    /// Greedy search with default simulation options, auto-parallel, no
    /// walk-cache sweep.
    fn default() -> Self {
        DseConfig {
            method: DseMethod::Greedy,
            sim: SimConfig::default(),
            threads: 0,
            walker_axis: Vec::new(),
            fabric_axis: Vec::new(),
            memif_axis: Vec::new(),
            pressure_axis: Vec::new(),
            store: None,
        }
    }
}

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsePoint {
    /// The placement vector.
    pub placements: Vec<Placement>,
    /// The per-thread walk-cache geometry this point was evaluated with.
    pub walker: WalkerConfig,
    /// The memory-fabric configuration this point was evaluated with.
    pub fabric: FabricConfig,
    /// The MEMIF outstanding-miss depth this point was evaluated with.
    pub miss_depth: u32,
    /// The memory-pressure operating point this point was evaluated with.
    pub pressure: PressurePoint,
    /// Fabric usage of the design.
    pub resources: FabricResources,
    /// Simulated makespan.
    pub makespan: Cycle,
}

/// The exploration result.
#[derive(Debug, Clone)]
pub struct DseResult {
    /// The best (lowest-makespan) feasible point.
    pub best: DsePoint,
    /// Number of candidate placements evaluated (including infeasible and
    /// memoized re-requests).
    pub evaluated: usize,
    /// Of `evaluated`, how many were served from the memo table without a
    /// simulation.
    pub cache_hits: usize,
    /// Memo misses served from the persistent result store without a
    /// simulation (always 0 when no store is configured).
    pub store_hits: usize,
    /// Memo misses the store could not answer — each one cost a real
    /// simulation, then was published back (always 0 when no store is
    /// configured).
    pub store_misses: usize,
    /// All feasible evaluated points.
    pub feasible: Vec<DsePoint>,
    /// The non-dominated (LUT, makespan) front, sorted by LUT.
    pub pareto: Vec<DsePoint>,
    /// Candidates whose evaluation panicked. The panic is caught, the
    /// candidate is treated as infeasible, and the rest of the sweep
    /// completes — one broken design point cannot abort hours of search.
    pub panics: Vec<DsePanic>,
}

/// One candidate evaluation that panicked during a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsePanic {
    /// The placement vector whose evaluation panicked (empty if the panic
    /// escaped candidate evaluation entirely, e.g. a worker-thread bug).
    pub placements: Vec<Placement>,
    /// The panic payload, stringified (`<non-string panic>` when the
    /// payload is not a string).
    pub message: String,
}

/// Why exploration failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DseError {
    /// No feasible placement simulated successfully.
    NoFeasiblePoint,
    /// Exhaustive search over too many eligible threads.
    TooManyEligible {
        /// Eligible thread count.
        eligible: usize,
    },
    /// The configured result store could not be opened (the message is the
    /// underlying store error, stringified to keep this type `Clone + Eq`).
    Store(String),
}

impl std::fmt::Display for DseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DseError::NoFeasiblePoint => write!(f, "no feasible placement found"),
            DseError::TooManyEligible { eligible } => {
                write!(
                    f,
                    "{eligible} eligible threads is too many for exhaustive search"
                )
            }
            DseError::Store(msg) => write!(f, "result store unavailable: {msg}"),
        }
    }
}

impl std::error::Error for DseError {}

fn evaluate(
    app: &Application,
    platform: &Platform,
    placements: &[Placement],
    sim: &SimConfig,
) -> Option<DsePoint> {
    let design = synthesize(app, platform, placements).ok()?;
    let outcome = simulate(&design, sim).ok()?;
    Some(DsePoint {
        placements: placements.to_vec(),
        walker: platform.memif.mmu.walker,
        fabric: platform.mem.fabric.clone(),
        miss_depth: platform.memif.miss_depth,
        pressure: platform.pressure_point(),
        resources: design.total_resources,
        makespan: outcome.makespan,
    })
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic>".to_string())
}

/// [`evaluate`] behind a panic boundary: a panicking candidate becomes
/// `Err(message)` instead of unwinding through the sweep. `AssertUnwindSafe`
/// is sound because all inputs are borrowed immutably — an unwound
/// evaluation leaves no state the sweep observes afterwards.
fn evaluate_guarded(
    app: &Application,
    platform: &Platform,
    placements: &[Placement],
    sim: &SimConfig,
) -> Result<Option<DsePoint>, String> {
    catch_unwind(AssertUnwindSafe(|| {
        evaluate(app, platform, placements, sim)
    }))
    .map_err(panic_message)
}

/// Version tag of the store key layout. Bumped whenever the key encoding
/// below changes shape, so old records simply stop matching instead of
/// being misinterpreted.
const STORE_KEY_VERSION: u32 = 2;

/// The canonical store-key prefix for one `(app, platform variant, sim)`
/// combination: everything but the placement vector. Appending the
/// placements (one byte each) completes a key.
///
/// The platform fingerprint already covers the walker/fabric/memif/pressure
/// variant (variants are materialized as whole platforms), but the variant
/// axes are also encoded explicitly so the key is self-describing — the key
/// layout is `(app, platform, variant, placements)` exactly as the store
/// contract states, not an implementation coincidence of the fingerprint.
///
/// `SimConfig::checkpoint_every` is deliberately excluded: periodic
/// checkpoint pauses are transparent to results (`simulate` resumes
/// bit-identically — the checkpoint/restore suite proves it), so two runs
/// differing only in pause cadence must share records.
fn store_key_prefix(app_fp: u64, variant: &Platform, sim: &SimConfig) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.put_u32(STORE_KEY_VERSION);
    w.put_u64(app_fp);
    w.put_u64(platform_fingerprint(variant));
    // Variant axes, explicit.
    w.put_usize(variant.memif.mmu.walker.l1_entries);
    w.put_usize(variant.memif.mmu.walker.l2_entries);
    w.put_u64(variant.mem.fabric.width_bytes);
    w.put_u64(variant.mem.fabric.arb_cycles);
    w.put_u32(variant.mem.fabric.window);
    w.put_u32(variant.mem.fabric.mshrs);
    w.put_u64(variant.mem.fabric.mshr_line_bytes);
    w.put_u32(variant.memif.miss_depth);
    let pressure = variant.pressure_point();
    match pressure.frame_budget {
        None => w.put_u8(0),
        Some(n) => {
            w.put_u8(1);
            w.put_u64(n);
        }
    }
    w.put_u8(match pressure.policy {
        svmsyn_os::AllocPolicy::Lazy => 0,
        svmsyn_os::AllocPolicy::Eager => 1,
    });
    w.put_u64(pressure.swap_latency);
    // Simulation options that can change results.
    w.put_u64(sim.quantum);
    w.put_u64(sim.max_events);
    w.put_u32(sim.fault_retry_budget);
    w.put_u64(sim.thrash_window);
    w.put_u32(sim.thrash_fault_limit);
    // The sharded engine produces identical makespans (the conformance
    // suite proves it), but error-path edges — event-limit trip points,
    // thrash attribution — depend on the shard plan, so records are keyed
    // per plan rather than risking a stale infeasibility verdict.
    w.put_u32(sim.shards);
    w.put_u64(sim.shard_window);
    w.into_bytes()
}

/// Encodes an evaluation outcome for the store. Only what the key does not
/// already determine is stored: feasibility, resource usage, makespan. The
/// full [`DsePoint`] is reconstructed from the key's context on read.
fn encode_store_value(point: &Option<DsePoint>) -> Vec<u8> {
    let mut w = SnapWriter::new();
    match point {
        None => w.put_u8(0),
        Some(p) => {
            w.put_u8(1);
            w.put_u64(p.resources.lut);
            w.put_u64(p.resources.ff);
            w.put_u64(p.resources.dsp);
            w.put_u64(p.resources.bram36);
            w.put_u64(p.makespan.0);
        }
    }
    w.into_bytes()
}

/// Decodes a store value back into an evaluation outcome, reattaching the
/// variant context the key encodes. A malformed value yields `Err` and the
/// caller treats the probe as a miss (re-simulate + republish heals it).
fn decode_store_value(
    bytes: &[u8],
    variant: &Platform,
    placements: &[Placement],
) -> Result<Option<DsePoint>, SnapError> {
    let mut r = SnapReader::new(bytes);
    match r.take_u8()? {
        0 => Ok(None),
        1 => Ok(Some(DsePoint {
            placements: placements.to_vec(),
            walker: variant.memif.mmu.walker,
            fabric: variant.mem.fabric.clone(),
            miss_depth: variant.memif.miss_depth,
            pressure: variant.pressure_point(),
            resources: FabricResources {
                lut: r.take_u64()?,
                ff: r.take_u64()?,
                dsp: r.take_u64()?,
                bram36: r.take_u64()?,
            },
            makespan: Cycle(r.take_u64()?),
        })),
        _ => Err(SnapError::Corrupt("store value tag")),
    }
}

fn placements_from_mask(app: &Application, eligible: &[usize], mask: u64) -> Vec<Placement> {
    let mut p = vec![Placement::Software; app.threads.len()];
    for (bit, &t) in eligible.iter().enumerate() {
        if mask >> bit & 1 == 1 {
            p[t] = Placement::Hardware;
        }
    }
    p
}

fn pareto_front(mut feasible: Vec<DsePoint>) -> Vec<DsePoint> {
    feasible.sort_by_key(|p| (p.resources.lut, p.makespan));
    let mut front: Vec<DsePoint> = Vec::new();
    let mut best_makespan = Cycle::MAX;
    for p in feasible {
        if p.makespan < best_makespan {
            best_makespan = p.makespan;
            front.push(p);
        }
    }
    front
}

/// The memoizing, batching evaluation engine behind every search method.
///
/// The walk-cache axis adds a second memo dimension: one memo table per
/// variant, so revisits of a placement under the same walker geometry never
/// re-simulate while distinct geometries stay distinct points — and probes
/// still borrow the placement slice (no per-lookup allocation).
struct Evaluator<'a> {
    app: &'a Application,
    /// One platform per walk-cache variant, in axis order.
    variants: Vec<Platform>,
    /// Index into `variants` the search is currently exploring.
    current: usize,
    sim: SimConfig,
    workers: usize,
    /// One memo table per walk-cache variant, keyed by placement vector.
    memo: Vec<HashMap<Vec<Placement>, Option<DsePoint>>>,
    /// The persistent second-level cache, if configured.
    store: Option<&'a ResultStore>,
    /// Per-variant canonical key prefix (empty when no store): key =
    /// prefix ++ one byte per placement.
    key_prefix: Vec<Vec<u8>>,
    evaluated: usize,
    cache_hits: usize,
    store_hits: usize,
    store_misses: usize,
    /// Candidates whose evaluation panicked (memoized as infeasible).
    panics: Vec<DsePanic>,
}

impl<'a> Evaluator<'a> {
    fn new(
        app: &'a Application,
        platform: &'a Platform,
        cfg: &DseConfig,
        store: Option<&'a ResultStore>,
    ) -> Self {
        // Each candidate evaluation occupies `sim.shards` host threads
        // while a window executes, so the worker pool shrinks to keep
        // `workers × shards` within the host budget.
        let workers = crate::budget::worker_budget(cfg.threads, cfg.sim.shards as usize);
        // The variant list is the cross product of the walk-cache and
        // fabric axes; an empty axis contributes the platform's own value.
        let walker_variants: Vec<Platform> = if cfg.walker_axis.is_empty() {
            vec![platform.clone()]
        } else {
            cfg.walker_axis
                .iter()
                .map(|w| platform.with_walker(*w))
                .collect()
        };
        let fabric_variants: Vec<Platform> = if cfg.fabric_axis.is_empty() {
            walker_variants
        } else {
            walker_variants
                .iter()
                .flat_map(|p| cfg.fabric_axis.iter().map(|f| p.with_fabric(f.clone())))
                .collect()
        };
        let memif_variants: Vec<Platform> = if cfg.memif_axis.is_empty() {
            fabric_variants
        } else {
            fabric_variants
                .iter()
                .flat_map(|p| cfg.memif_axis.iter().map(|&d| p.with_miss_depth(d)))
                .collect()
        };
        let variants: Vec<Platform> = if cfg.pressure_axis.is_empty() {
            memif_variants
        } else {
            memif_variants
                .iter()
                .flat_map(|p| cfg.pressure_axis.iter().map(|&pt| p.with_pressure(pt)))
                .collect()
        };
        let memo = vec![HashMap::new(); variants.len()];
        let key_prefix = if store.is_some() {
            let app_fp = app_fingerprint(app);
            variants
                .iter()
                .map(|v| store_key_prefix(app_fp, v, &cfg.sim))
                .collect()
        } else {
            Vec::new()
        };
        Evaluator {
            app,
            variants,
            current: 0,
            sim: cfg.sim,
            workers,
            memo,
            store,
            key_prefix,
            evaluated: 0,
            cache_hits: 0,
            store_hits: 0,
            store_misses: 0,
            panics: Vec::new(),
        }
    }

    /// The full store key for one candidate under one variant.
    fn store_key(&self, variant: usize, placements: &[Placement]) -> Vec<u8> {
        let mut key = self.key_prefix[variant].clone();
        for p in placements {
            key.push(match p {
                Placement::Software => 0,
                Placement::Hardware => 1,
            });
        }
        key
    }

    /// Probes the store for a memo-missed candidate. `Some(outcome)` is a
    /// store hit (outcome may still be "infeasible"); `None` means the
    /// caller must simulate. Malformed values read back as misses.
    fn store_probe(
        &mut self,
        variant: usize,
        placements: &[Placement],
    ) -> Option<Option<DsePoint>> {
        let store = self.store?;
        let key = self.store_key(variant, placements);
        let outcome = store
            .get(&key)
            .and_then(|v| decode_store_value(&v, &self.variants[variant], placements).ok());
        match outcome {
            Some(point) => {
                self.store_hits += 1;
                Some(point)
            }
            None => {
                self.store_misses += 1;
                None
            }
        }
    }

    /// Publishes a freshly simulated outcome. Best-effort: a full disk or
    /// permission error costs persistence, not the sweep. Panicked
    /// candidates never reach here — a transient crash must not be
    /// republished to every future consumer as "infeasible".
    fn store_publish(&self, variant: usize, placements: &[Placement], point: &Option<DsePoint>) {
        if let Some(store) = self.store {
            let key = self.store_key(variant, placements);
            let _ = store.put(&key, &encode_store_value(point));
        }
    }

    fn platform(&self) -> &Platform {
        &self.variants[self.current]
    }

    /// Evaluates one candidate, consulting the memo table first. A
    /// panicking evaluation is recorded and memoized as infeasible.
    fn eval_one(&mut self, placements: &[Placement]) -> Option<DsePoint> {
        self.evaluated += 1;
        if let Some(cached) = self.memo[self.current].get(placements) {
            self.cache_hits += 1;
            return cached.clone();
        }
        if let Some(stored) = self.store_probe(self.current, placements) {
            self.memo[self.current].insert(placements.to_vec(), stored.clone());
            return stored;
        }
        let point = match evaluate_guarded(self.app, self.platform(), placements, &self.sim) {
            Ok(point) => {
                self.store_publish(self.current, placements, &point);
                point
            }
            Err(message) => {
                self.panics.push(DsePanic {
                    placements: placements.to_vec(),
                    message,
                });
                None
            }
        };
        self.memo[self.current].insert(placements.to_vec(), point.clone());
        point
    }

    /// Evaluates a batch of independent candidates, fanning uncached ones
    /// out across worker threads. Results come back in candidate order, so
    /// callers observe exactly the serial sweep's sequence.
    fn eval_batch(&mut self, candidates: &[Vec<Placement>]) -> Vec<Option<DsePoint>> {
        self.evaluated += candidates.len();
        let variant = self.current;
        let mut memo_misses: Vec<&Vec<Placement>> = Vec::new();
        let mut seen: HashSet<&Vec<Placement>> = HashSet::new();
        for c in candidates {
            if !self.memo[variant].contains_key(c) && seen.insert(c) {
                memo_misses.push(c);
            }
        }
        self.cache_hits += candidates.len() - memo_misses.len();

        // Second-level cache: probe the persistent store for every memo
        // miss before spending a simulation on it. Probes are cheap disk
        // reads, so they stay on this thread; only real simulations fan
        // out to the worker pool below.
        let mut misses: Vec<&Vec<Placement>> = Vec::new();
        if self.store.is_some() {
            for c in memo_misses {
                match self.store_probe(variant, c) {
                    Some(stored) => {
                        self.memo[variant].insert(c.clone(), stored);
                    }
                    None => misses.push(c),
                }
            }
        } else {
            misses = memo_misses;
        }

        if misses.len() <= 1 || self.workers <= 1 {
            for c in misses {
                let point = match evaluate_guarded(self.app, &self.variants[variant], c, &self.sim)
                {
                    Ok(point) => {
                        self.store_publish(variant, c, &point);
                        point
                    }
                    Err(message) => {
                        self.panics.push(DsePanic {
                            placements: c.clone(),
                            message,
                        });
                        None
                    }
                };
                self.memo[variant].insert(c.clone(), point);
            }
        } else {
            // Work stealing via a shared atomic claim index: per-candidate
            // evaluation times are skewed (all-hardware points simulate much
            // faster than all-software ones), so fixed chunks leave workers
            // idle while one chews the expensive tail. Each worker claims
            // the next unevaluated candidate as it frees up. Evaluation is
            // deterministic per candidate and the results land in the memo
            // table keyed by placement, so claim order cannot change any
            // observable result — the parallel sweep stays bit-identical to
            // the serial one.
            let workers = self.workers.min(misses.len());
            let (app, platform, sim) = (self.app, &self.variants[variant], &self.sim);
            let misses = &misses;
            let next = AtomicUsize::new(0);
            // A candidate's evaluation outcome: its placement vector plus
            // either a point (None = infeasible) or a caught panic message.
            type Evaluated = (Vec<Placement>, Result<Option<DsePoint>, String>);
            let results: Vec<Evaluated> = thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut done = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(c) = misses.get(i) else { break };
                                done.push(((*c).clone(), evaluate_guarded(app, platform, c, sim)));
                            }
                            done
                        })
                    })
                    .collect();
                // Candidate panics are caught inside `evaluate_guarded`,
                // so a worker can only die to a bug outside evaluation;
                // record even that instead of aborting the sweep (its
                // claimed-but-unreported candidates re-run next batch).
                handles
                    .into_iter()
                    .flat_map(|h| match h.join() {
                        Ok(done) => done,
                        Err(payload) => {
                            vec![(Vec::new(), Err(panic_message(payload)))]
                        }
                    })
                    .collect()
            });
            for (placements, outcome) in results {
                let point = match outcome {
                    Ok(point) => {
                        // Publish on the coordinating thread after the join:
                        // the store handle is shared, and panicked outcomes
                        // (the Err arm) must never be persisted.
                        self.store_publish(variant, &placements, &point);
                        point
                    }
                    Err(message) => {
                        self.panics.push(DsePanic {
                            placements: placements.clone(),
                            message,
                        });
                        None
                    }
                };
                if !placements.is_empty() {
                    self.memo[variant].insert(placements, point);
                }
            }
        }

        // A candidate can be missing only if its worker died outside
        // evaluation; report it infeasible for this batch (it stays
        // unmemoized, so a later request re-evaluates it).
        candidates
            .iter()
            .map(|c| self.memo[variant].get(c).cloned().flatten())
            .collect()
    }
}

/// Explores the placement space and returns the best feasible design point.
///
/// When [`DseConfig::store`] is set, a private [`ResultStore`] handle is
/// opened for the duration of the call; to share one open handle across
/// many explorations (the sweep-service pattern) use [`explore_with_store`].
///
/// # Errors
///
/// Returns [`DseError`] when no feasible point exists, the exhaustive
/// space is too large, or the configured store cannot be opened.
pub fn explore(
    app: &Application,
    platform: &Platform,
    cfg: &DseConfig,
) -> Result<DseResult, DseError> {
    match &cfg.store {
        None => explore_with_store(app, platform, cfg, None),
        Some(root) => {
            let store = ResultStore::open(root).map_err(|e| DseError::Store(e.to_string()))?;
            explore_with_store(app, platform, cfg, Some(&store))
        }
    }
}

/// [`explore`] against a caller-owned [`ResultStore`] handle (pass `None`
/// to run purely in-memory; `cfg.store` is ignored here). The handle is
/// internally synchronized, so one store can serve many concurrent
/// explorations.
///
/// # Errors
///
/// Returns [`DseError`] when no feasible point exists or the exhaustive
/// space is too large.
pub fn explore_with_store(
    app: &Application,
    platform: &Platform,
    cfg: &DseConfig,
    store: Option<&ResultStore>,
) -> Result<DseResult, DseError> {
    let eligible = app.hw_eligible();
    let mut ev = Evaluator::new(app, platform, cfg, store);
    let mut feasible: Vec<DsePoint> = Vec::new();

    // The walk-cache axis: run the placement search once per walker
    // geometry. Each variant pays its own fabric cost and simulates with
    // its own walk caches, so its points land on the shared Pareto front.
    for variant in 0..ev.variants.len() {
        ev.current = variant;
        match cfg.method {
            DseMethod::Exhaustive => {
                if eligible.len() > 12 {
                    return Err(DseError::TooManyEligible {
                        eligible: eligible.len(),
                    });
                }
                let candidates: Vec<Vec<Placement>> = (0..(1u64 << eligible.len()))
                    .map(|mask| placements_from_mask(app, &eligible, mask))
                    .collect();
                for point in ev.eval_batch(&candidates).into_iter().flatten() {
                    feasible.push(point);
                }
            }
            DseMethod::Greedy => {
                let mut current = placements_from_mask(app, &eligible, 0);
                let mut best = ev.eval_one(&current);
                if let Some(p) = &best {
                    feasible.push(p.clone());
                }
                loop {
                    // One greedy round: all single-thread promotions are
                    // independent, so evaluate them as one parallel batch.
                    let moves: Vec<usize> = eligible
                        .iter()
                        .copied()
                        .filter(|&t| current[t] != Placement::Hardware)
                        .collect();
                    let candidates: Vec<Vec<Placement>> = moves
                        .iter()
                        .map(|&t| {
                            let mut cand = current.clone();
                            cand[t] = Placement::Hardware;
                            cand
                        })
                        .collect();
                    let mut improvement: Option<(usize, DsePoint)> = None;
                    for (&t, point) in moves.iter().zip(ev.eval_batch(&candidates)) {
                        if let Some(point) = point {
                            feasible.push(point.clone());
                            let better = match (&best, &improvement) {
                                (Some(b), Some((_, cur))) => {
                                    point.makespan < b.makespan && point.makespan < cur.makespan
                                }
                                (Some(b), None) => point.makespan < b.makespan,
                                (None, Some((_, cur))) => point.makespan < cur.makespan,
                                (None, None) => true,
                            };
                            if better {
                                improvement = Some((t, point));
                            }
                        }
                    }
                    match improvement {
                        Some((t, point)) => {
                            current[t] = Placement::Hardware;
                            best = Some(point);
                        }
                        None => break,
                    }
                }
            }
            DseMethod::Anneal { iters, seed } => {
                // Annealing is inherently sequential (each step depends on the
                // previous acceptance), but the memo table still removes every
                // revisit of an already-simulated placement.
                let mut rng = Xoshiro256ss::new(seed);
                let mut current = placements_from_mask(app, &eligible, 0);
                let mut current_point = ev.eval_one(&current);
                if let Some(p) = &current_point {
                    feasible.push(p.clone());
                }
                for step in 0..iters {
                    if eligible.is_empty() {
                        break;
                    }
                    let t = eligible[rng.range(eligible.len() as u64) as usize];
                    let mut cand = current.clone();
                    cand[t] = match cand[t] {
                        Placement::Hardware => Placement::Software,
                        Placement::Software => Placement::Hardware,
                    };
                    if let Some(point) = ev.eval_one(&cand) {
                        feasible.push(point.clone());
                        let temperature = 1.0 - (step as f64 / iters.max(1) as f64);
                        let accept = match &current_point {
                            None => true,
                            Some(cur) => {
                                if point.makespan <= cur.makespan {
                                    true
                                } else {
                                    let delta = (point.makespan.0 - cur.makespan.0) as f64
                                        / cur.makespan.0.max(1) as f64;
                                    rng.chance((-delta / temperature.max(1e-3)).exp() * 0.5)
                                }
                            }
                        };
                        if accept {
                            current = cand;
                            current_point = Some(point);
                        }
                    }
                }
            }
        }
    }

    let best = feasible
        .iter()
        .min_by_key(|p| p.makespan)
        .cloned()
        .ok_or(DseError::NoFeasiblePoint)?;
    // Dedup identical design points before the front (heuristics revisit);
    // the same placement under a different walk-cache geometry, fabric
    // configuration, miss depth, or pressure point is a distinct point.
    let mut unique: Vec<DsePoint> = Vec::new();
    for p in feasible {
        if !unique.iter().any(|q| {
            q.placements == p.placements
                && q.walker == p.walker
                && q.fabric == p.fabric
                && q.miss_depth == p.miss_depth
                && q.pressure == p.pressure
        }) {
            unique.push(p);
        }
    }
    let pareto = pareto_front(unique.clone());
    Ok(DseResult {
        best,
        evaluated: ev.evaluated,
        cache_hits: ev.cache_hits,
        store_hits: ev.store_hits,
        store_misses: ev.store_misses,
        feasible: unique,
        pareto,
        panics: ev.panics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{ApplicationBuilder, ArgSpec};
    use svmsyn_hls::builder::KernelBuilder;
    use svmsyn_hls::ir::{BinOp, CmpOp, Width};

    /// A loop kernel with enough work to benefit from hardware.
    fn work_kernel(name: &str) -> svmsyn_hls::ir::Kernel {
        let mut b = KernelBuilder::new(name, 3);
        let entry = b.current_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let src = b.arg(0);
        let dst = b.arg(1);
        let n = b.arg(2);
        let zero = b.constant(0);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi();
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let four = b.constant(4);
        let off = b.bin(BinOp::Mul, i, four);
        let sa = b.bin(BinOp::Add, src, off);
        let da = b.bin(BinOp::Add, dst, off);
        let v = b.load(sa, Width::W32);
        let sq = b.bin(BinOp::Mul, v, v);
        b.store(da, sq, Width::W32);
        let one = b.constant(1);
        let i2 = b.bin(BinOp::Add, i, one);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        b.set_phi_incoming(i, &[(entry, zero), (body, i2)]);
        b.finish().unwrap()
    }

    fn app(threads: usize, n: u64) -> Application {
        let init: Vec<u8> = (0..n as u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut builder = ApplicationBuilder::new("dse").buffer("in", n * 4, init, false);
        for i in 0..threads {
            builder = builder.buffer(format!("out{i}"), n * 4, vec![], false);
        }
        for i in 0..threads {
            builder = builder.thread(
                format!("t{i}"),
                work_kernel(&format!("k{i}")),
                vec![
                    ArgSpec::Buffer(0, 0),
                    ArgSpec::Buffer(i + 1, 0),
                    ArgSpec::Value(n as i64),
                ],
                true,
            );
        }
        builder.build().unwrap()
    }

    fn fast_sim() -> SimConfig {
        SimConfig {
            quantum: 50_000,
            ..SimConfig::default()
        }
    }

    #[test]
    fn exhaustive_finds_all_hw_for_ample_budget() {
        let a = app(2, 128);
        let r = explore(
            &a,
            &Platform::default(),
            &DseConfig {
                method: DseMethod::Exhaustive,
                sim: fast_sim(),
                ..DseConfig::default()
            },
        )
        .unwrap();
        assert_eq!(r.evaluated, 4);
        // With 2 CPUs and 2 threads, hardware should win or tie; the best
        // point must be feasible and strictly better than the worst.
        let worst = r.feasible.iter().map(|p| p.makespan).max().unwrap();
        assert!(r.best.makespan <= worst);
        assert!(!r.pareto.is_empty());
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_instance() {
        let a = app(2, 128);
        let platform = Platform::default();
        let ex = explore(
            &a,
            &platform,
            &DseConfig {
                method: DseMethod::Exhaustive,
                sim: fast_sim(),
                ..DseConfig::default()
            },
        )
        .unwrap();
        let gr = explore(
            &a,
            &platform,
            &DseConfig {
                method: DseMethod::Greedy,
                sim: fast_sim(),
                ..DseConfig::default()
            },
        )
        .unwrap();
        assert_eq!(gr.best.makespan, ex.best.makespan);
    }

    #[test]
    fn parallel_sweep_matches_serial_exactly() {
        let a = app(3, 64);
        let platform = Platform::default();
        let serial = explore(
            &a,
            &platform,
            &DseConfig {
                method: DseMethod::Exhaustive,
                sim: fast_sim(),
                threads: 1,
                ..DseConfig::default()
            },
        )
        .unwrap();
        let parallel = explore(
            &a,
            &platform,
            &DseConfig {
                method: DseMethod::Exhaustive,
                sim: fast_sim(),
                threads: 4,
                ..DseConfig::default()
            },
        )
        .unwrap();
        assert_eq!(serial.best, parallel.best);
        assert_eq!(serial.evaluated, parallel.evaluated);
        assert_eq!(serial.feasible, parallel.feasible);
        assert_eq!(serial.pareto, parallel.pareto);
    }

    #[test]
    fn anneal_is_deterministic_and_feasible() {
        let a = app(2, 64);
        let cfg = DseConfig {
            method: DseMethod::Anneal { iters: 8, seed: 42 },
            sim: fast_sim(),
            ..DseConfig::default()
        };
        let r1 = explore(&a, &Platform::default(), &cfg).unwrap();
        let r2 = explore(&a, &Platform::default(), &cfg).unwrap();
        assert_eq!(r1.best.makespan, r2.best.makespan);
        assert_eq!(r1.evaluated, r2.evaluated);
    }

    #[test]
    fn anneal_memoizes_revisited_placements() {
        // 2 eligible threads => 4 distinct placements; 24 annealing steps
        // must revisit, and every revisit must be a cache hit.
        let a = app(2, 64);
        let r = explore(
            &a,
            &Platform::default(),
            &DseConfig {
                method: DseMethod::Anneal { iters: 24, seed: 7 },
                sim: fast_sim(),
                ..DseConfig::default()
            },
        )
        .unwrap();
        assert!(r.evaluated >= 25);
        assert!(
            r.cache_hits >= r.evaluated - 4,
            "only 4 distinct placements exist, the rest must hit the memo \
             ({} evaluated, {} cache hits)",
            r.evaluated,
            r.cache_hits
        );
    }

    #[test]
    fn pareto_front_is_monotone() {
        let a = app(3, 64);
        let r = explore(
            &a,
            &Platform::default(),
            &DseConfig {
                method: DseMethod::Exhaustive,
                sim: fast_sim(),
                ..DseConfig::default()
            },
        )
        .unwrap();
        for w in r.pareto.windows(2) {
            assert!(w[0].resources.lut <= w[1].resources.lut);
            assert!(w[0].makespan > w[1].makespan, "front must strictly improve");
        }
    }

    #[test]
    fn walk_cache_axis_explores_every_variant() {
        use svmsyn_vm::walker::WalkerConfig;
        let a = app(2, 64);
        let axis = vec![
            WalkerConfig::disabled(),
            WalkerConfig::l1_only(4),
            WalkerConfig::two_level(4, 16),
        ];
        let r = explore(
            &a,
            &Platform::default(),
            &DseConfig {
                method: DseMethod::Exhaustive,
                sim: fast_sim(),
                walker_axis: axis.clone(),
                ..DseConfig::default()
            },
        )
        .unwrap();
        // 4 placements x 3 walker variants, every variant represented.
        assert_eq!(r.evaluated, 12);
        for w in &axis {
            assert!(
                r.feasible.iter().any(|p| p.walker == *w),
                "axis variant {w:?} missing from feasible set"
            );
        }
        assert!(axis.contains(&r.best.walker));
        // Same placement, different walker => distinct design points with
        // different fabric cost for any point that has hardware threads.
        let all_hw: Vec<_> = r
            .feasible
            .iter()
            .filter(|p| p.placements.iter().all(|pl| *pl == Placement::Hardware))
            .collect();
        assert_eq!(all_hw.len(), 3);
        assert!(all_hw[0].resources.lut < all_hw[2].resources.lut);
    }

    #[test]
    fn walk_cache_axis_memoizes_per_variant() {
        use svmsyn_vm::walker::WalkerConfig;
        let a = app(2, 64);
        let r = explore(
            &a,
            &Platform::default(),
            &DseConfig {
                method: DseMethod::Anneal { iters: 12, seed: 3 },
                sim: fast_sim(),
                walker_axis: vec![WalkerConfig::disabled(), WalkerConfig::two_level(4, 8)],
                ..DseConfig::default()
            },
        )
        .unwrap();
        // 2 variants x 4 distinct placements: everything beyond 8 unique
        // simulations must come from the memo table.
        assert!(r.evaluated > 8);
        assert!(
            r.cache_hits >= r.evaluated - 8,
            "revisits must hit the per-variant memo ({} evaluated, {} hits)",
            r.evaluated,
            r.cache_hits
        );
    }

    #[test]
    fn fabric_axis_explores_outstanding_depths() {
        use svmsyn_mem::FabricConfig;
        let a = app(2, 64);
        let axis = vec![FabricConfig::blocking(), FabricConfig::default()];
        let r = explore(
            &a,
            &Platform::default(),
            &DseConfig {
                method: DseMethod::Exhaustive,
                sim: fast_sim(),
                fabric_axis: axis.clone(),
                ..DseConfig::default()
            },
        )
        .unwrap();
        // 4 placements x 2 fabric variants, every variant represented.
        assert_eq!(r.evaluated, 8);
        for f in &axis {
            assert!(
                r.feasible.iter().any(|p| p.fabric == *f),
                "axis variant {f:?} missing from feasible set"
            );
        }
        assert!(axis.contains(&r.best.fabric));
        // On the all-hardware placement the windowed fabric must not lose
        // to the blocking one: outstanding transactions only add overlap.
        let all_hw_makespan = |f: &FabricConfig| {
            r.feasible
                .iter()
                .filter(|p| {
                    p.fabric == *f && p.placements.iter().all(|pl| *pl == Placement::Hardware)
                })
                .map(|p| p.makespan)
                .min()
                .expect("all-hw point per variant")
        };
        assert!(all_hw_makespan(&axis[1]) <= all_hw_makespan(&axis[0]));
    }

    #[test]
    fn fabric_axis_crosses_with_walker_axis() {
        use svmsyn_mem::FabricConfig;
        let a = app(2, 64);
        let r = explore(
            &a,
            &Platform::default(),
            &DseConfig {
                method: DseMethod::Exhaustive,
                sim: fast_sim(),
                walker_axis: vec![WalkerConfig::disabled(), WalkerConfig::default()],
                fabric_axis: vec![FabricConfig::blocking(), FabricConfig::default()],
                ..DseConfig::default()
            },
        )
        .unwrap();
        // 4 placements x 2 walkers x 2 fabrics.
        assert_eq!(r.evaluated, 16);
        let distinct: std::collections::HashSet<_> = r
            .feasible
            .iter()
            .map(|p| (p.walker, p.fabric.clone()))
            .collect();
        assert_eq!(distinct.len(), 4, "every (walker, fabric) combination");
    }

    #[test]
    fn memif_axis_explores_outstanding_miss_depths() {
        let a = app(2, 64);
        let axis = vec![1u32, 4];
        let r = explore(
            &a,
            &Platform::default(),
            &DseConfig {
                method: DseMethod::Exhaustive,
                sim: fast_sim(),
                memif_axis: axis.clone(),
                ..DseConfig::default()
            },
        )
        .unwrap();
        // 4 placements x 2 miss depths, every depth represented.
        assert_eq!(r.evaluated, 8);
        for &d in &axis {
            assert!(
                r.feasible.iter().any(|p| p.miss_depth == d),
                "axis depth {d} missing from feasible set"
            );
        }
        assert!(axis.contains(&r.best.miss_depth));
        // On the all-hardware placement the non-blocking interface must not
        // lose to the blocking one: hit-under-miss only adds overlap.
        let all_hw_makespan = |d: u32| {
            r.feasible
                .iter()
                .filter(|p| {
                    p.miss_depth == d && p.placements.iter().all(|pl| *pl == Placement::Hardware)
                })
                .map(|p| p.makespan)
                .min()
                .expect("all-hw point per depth")
        };
        assert!(all_hw_makespan(4) <= all_hw_makespan(1));
    }

    #[test]
    fn memif_axis_crosses_with_fabric_axis() {
        use svmsyn_mem::FabricConfig;
        let a = app(2, 64);
        let r = explore(
            &a,
            &Platform::default(),
            &DseConfig {
                method: DseMethod::Exhaustive,
                sim: fast_sim(),
                fabric_axis: vec![FabricConfig::blocking(), FabricConfig::default()],
                memif_axis: vec![1, 8],
                ..DseConfig::default()
            },
        )
        .unwrap();
        // 4 placements x 2 fabrics x 2 depths.
        assert_eq!(r.evaluated, 16);
        let distinct: std::collections::HashSet<_> = r
            .feasible
            .iter()
            .map(|p| (p.fabric.clone(), p.miss_depth))
            .collect();
        assert_eq!(distinct.len(), 4, "every (fabric, miss depth) combination");
    }

    #[test]
    fn pressure_axis_explores_operating_points() {
        let a = app(2, 64);
        let axis = vec![
            PressurePoint::default(),
            PressurePoint {
                frame_budget: Some(4),
                ..PressurePoint::default()
            },
        ];
        let r = explore(
            &a,
            &Platform::default(),
            &DseConfig {
                method: DseMethod::Exhaustive,
                sim: fast_sim(),
                pressure_axis: axis.clone(),
                ..DseConfig::default()
            },
        )
        .unwrap();
        // 4 placements x 2 pressure points, every point represented.
        assert_eq!(r.evaluated, 8);
        for pt in &axis {
            assert!(
                r.feasible.iter().any(|p| p.pressure == *pt),
                "axis point {pt:?} missing from feasible set"
            );
        }
        assert!(axis.contains(&r.best.pressure));
        // Starving the frame pool costs time: under the tight budget the
        // all-hardware point cannot beat its unconstrained twin.
        let all_hw_makespan = |pt: &PressurePoint| {
            r.feasible
                .iter()
                .filter(|p| {
                    p.pressure == *pt && p.placements.iter().all(|pl| *pl == Placement::Hardware)
                })
                .map(|p| p.makespan)
                .min()
                .expect("all-hw point per pressure point")
        };
        assert!(all_hw_makespan(&axis[1]) >= all_hw_makespan(&axis[0]));
    }

    #[test]
    fn panicking_candidate_does_not_abort_sweep() {
        let a = app(2, 64);
        // line_bytes below the widest access trips `Memif::new`'s assert,
        // so every candidate with a hardware thread panics mid-evaluation;
        // the all-software point survives and wins.
        let mut platform = Platform::default();
        platform.memif.line_bytes = 4;
        for threads in [1, 4] {
            let r = explore(
                &a,
                &platform,
                &DseConfig {
                    method: DseMethod::Exhaustive,
                    sim: fast_sim(),
                    threads,
                    ..DseConfig::default()
                },
            )
            .unwrap();
            assert_eq!(r.evaluated, 4, "threads={threads}");
            assert!(r.best.placements.iter().all(|p| *p == Placement::Software));
            assert_eq!(r.panics.len(), 3, "threads={threads}");
            for p in &r.panics {
                assert!(p.placements.contains(&Placement::Hardware));
                assert!(
                    p.message.contains("line_bytes"),
                    "panic payload captured: {}",
                    p.message
                );
            }
        }
    }

    fn store_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "svmsyn-dse-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn warm_store_serves_repeat_exploration_from_disk() {
        let a = app(2, 64);
        let root = store_root("warm");
        let cfg = DseConfig {
            method: DseMethod::Exhaustive,
            sim: fast_sim(),
            store: Some(root.clone()),
            ..DseConfig::default()
        };
        let cold = explore(&a, &Platform::default(), &cfg).unwrap();
        assert_eq!(cold.store_hits, 0);
        assert_eq!(
            cold.store_misses, 4,
            "every candidate missed the empty store"
        );

        // Fresh process simulation: a new explore (new memo) over the same
        // store must answer everything from disk, bit-identically.
        let warm = explore(&a, &Platform::default(), &cfg).unwrap();
        assert_eq!(warm.store_hits, 4);
        assert_eq!(warm.store_misses, 0);
        assert_eq!(warm.best, cold.best);
        assert_eq!(warm.feasible, cold.feasible);
        assert_eq!(warm.pareto, cold.pareto);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn store_distinguishes_sim_and_platform_but_not_checkpoint_cadence() {
        let a = app(1, 64);
        let root = store_root("keys");
        let store = svmsyn_store::ResultStore::open(&root).unwrap();
        let cfg = DseConfig {
            method: DseMethod::Exhaustive,
            sim: fast_sim(),
            ..DseConfig::default()
        };
        let platform = Platform::default();
        explore_with_store(&a, &platform, &cfg, Some(&store)).unwrap();

        // A different quantum changes event interleaving: distinct keys.
        let other_sim = DseConfig {
            sim: SimConfig {
                quantum: fast_sim().quantum / 2,
                ..fast_sim()
            },
            ..cfg.clone()
        };
        let r = explore_with_store(&a, &platform, &other_sim, Some(&store)).unwrap();
        assert_eq!(r.store_hits, 0, "different sim options must not collide");

        // A different platform variant: distinct keys.
        let r = explore_with_store(&a, &platform.with_miss_depth(1), &cfg, Some(&store)).unwrap();
        assert_eq!(r.store_hits, 0, "different platform must not collide");

        // checkpoint_every is result-transparent (simulate resumes
        // bit-identically), so it is excluded from the key: full hits.
        let paused = DseConfig {
            sim: SimConfig {
                checkpoint_every: 10_000,
                ..fast_sim()
            },
            ..cfg
        };
        let r = explore_with_store(&a, &platform, &paused, Some(&store)).unwrap();
        assert_eq!(r.store_misses, 0, "pause cadence must share records");
        assert_eq!(r.store_hits, r.evaluated - r.cache_hits);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn panicking_candidates_are_not_published() {
        let a = app(1, 64);
        let root = store_root("panic");
        let mut platform = Platform::default();
        platform.memif.line_bytes = 4; // HW candidates panic in Memif::new
        let cfg = DseConfig {
            method: DseMethod::Exhaustive,
            sim: fast_sim(),
            store: Some(root.clone()),
            ..DseConfig::default()
        };
        let first = explore(&a, &platform, &cfg).unwrap();
        assert_eq!(first.panics.len(), 1);
        // Only the surviving all-software evaluation was persisted; the
        // panicked candidate must stay unpublished and re-run next time.
        let second = explore(&a, &platform, &cfg).unwrap();
        assert_eq!(second.store_hits, 1);
        assert_eq!(second.store_misses, 1);
        assert_eq!(second.panics.len(), 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn too_many_eligible_rejected() {
        let a = app(13, 16);
        let err = explore(
            &a,
            &Platform::default(),
            &DseConfig {
                method: DseMethod::Exhaustive,
                sim: fast_sim(),
                ..DseConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, DseError::TooManyEligible { eligible: 13 }));
    }

    #[test]
    fn tight_budget_forces_partial_hw() {
        let a = app(3, 64);
        // Budget that fits roughly one hardware thread.
        let one_thread = {
            let d = synthesize(
                &a,
                &Platform::default(),
                &[
                    Placement::Hardware,
                    Placement::Software,
                    Placement::Software,
                ],
            )
            .unwrap();
            d.total_resources
        };
        let platform = Platform {
            fabric: one_thread + FabricResources::new(500, 500, 2, 1),
            ..Platform::default()
        };
        let r = explore(
            &a,
            &platform,
            &DseConfig {
                method: DseMethod::Exhaustive,
                sim: fast_sim(),
                ..DseConfig::default()
            },
        )
        .unwrap();
        let hw_count = r
            .best
            .placements
            .iter()
            .filter(|p| **p == Placement::Hardware)
            .count();
        assert!(hw_count <= 1, "budget only fits one HW thread");
    }
}
