//! Plain-text table rendering for the experiment harnesses.
//!
//! Every bench binary prints its table/figure data through [`Table`] so the
//! output format (and `EXPERIMENTS.md` transcripts) stay uniform.

use std::fmt;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use svmsyn::report::Table;
/// let mut t = Table::new("Demo", &["kernel", "cycles"]);
/// t.row(&["matmul", "123456"]);
/// let s = t.to_string();
/// assert!(s.contains("matmul"));
/// assert!(s.contains("Demo"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        let mut row: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        let mut row = cells;
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::with_capacity(ncols);
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                parts.push(format!("{cell:<width$}", width = widths[i]));
            }
            writeln!(f, "| {} |", parts.join(" | "))
        };
        line(f, &self.headers)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", sep.join("-|-"))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a cycle count with thousands separators for readability.
pub fn fmt_cycles(c: u64) -> String {
    let s = c.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(ch);
    }
    out
}

/// Formats a ratio like `3.42x`.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("T", &["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["long-name", "22"]);
        let s = t.to_string();
        assert!(s.contains("== T =="));
        let lines: Vec<&str> = s.lines().collect();
        // All data/header lines have equal width.
        let widths: Vec<usize> = lines[1..].iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new("T", &["a", "b", "c"]);
        t.row(&["only-one"]);
        assert!(t.to_string().contains("only-one"));
    }

    #[test]
    fn row_owned_works() {
        let mut t = Table::new("T", &["x"]);
        t.row_owned(vec!["y".to_string()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn cycle_formatting() {
        assert_eq!(fmt_cycles(0), "0");
        assert_eq!(fmt_cycles(999), "999");
        assert_eq!(fmt_cycles(1000), "1_000");
        assert_eq!(fmt_cycles(1234567), "1_234_567");
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(3.417), "3.42x");
        assert_eq!(fmt_ratio(0.5), "0.50x");
    }
}
