//! Sharded parallel simulation: per-shard event wheels advanced in
//! conservative lookahead windows, proven cycle-identical to a sequential
//! single-wheel oracle.
//!
//! # Architecture
//!
//! The serial engine in [`crate::sim`] runs every thread on one timing
//! wheel. This module partitions the threads across *shards*, each owning
//! its own wheel and a private replica of the memory system, and advances
//! all shards in lock-step **windows** of `W` cycles:
//!
//! 1. **Plan** — [`planned_shards`] assigns software threads to shard 0
//!    (they share the OS scheduler) and round-robins hardware threads
//!    across the rest. Designs where software threads run under a frame
//!    budget are forced serial: an inline software fault can reclaim a
//!    frame another shard is touching mid-window.
//! 2. **Window** — each shard fires its wheel's events with timestamps in
//!    `[T, T+W)` against its own memory replica. `W` is at least the
//!    fabric's minimum issue-to-complete latency
//!    ([`MemorySystem::min_issue_to_complete`]), so nothing a shard does
//!    inside a window can affect another shard *within the same window* —
//!    the classic conservative-lookahead argument.
//! 3. **Barrier** — between windows the coordinator: folds every replica's
//!    store writes and resource calendars back into the canonical memory
//!    ([`svmsyn_mem::merge`]), services cross-shard interactions (page
//!    faults, kernel completions, sync-object operations, shootdown
//!    broadcasts) at their exact recorded cycles through a deterministic
//!    `(time, seq)`-ordered control queue, and re-broadcasts the canonical
//!    state to all replicas.
//!
//! Because shards touch disjoint state inside a window and every
//! cross-shard effect is processed in a deterministic order at barriers,
//! the parallel execution ([`ExecMode::Parallel`]) is **bit-identical** to
//! running the same shards sequentially on one host thread
//! ([`ExecMode::SingleWheel`], the oracle): same makespan, same stats,
//! same memory bytes, same snapshot images. `tests/shard_equivalence.rs`
//! proves this across workloads, placements, and shard counts.
//!
//! Snapshots taken at barriers use the same image format as the serial
//! engine (`crate::sim::write_snapshot`), so checkpoints restore across
//! engines and shard counts.

use std::cell::OnceCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use svmsyn_hwt::thread::HwStep;
use svmsyn_mem::merge::{
    calendar_base, counter_base, fold_and_refresh_calendars, fold_stores, merged_memory,
    refresh_stores, CalendarBase, CounterBase,
};
use svmsyn_mem::{MemorySystem, VirtAddr};
use svmsyn_os::cpu::SliceEnd;
use svmsyn_os::os::Os;
use svmsyn_os::sync::{SyncResult, ThreadId};
use svmsyn_sim::{Cycle, Scheduler};
use svmsyn_vm::mmu::Access;
use svmsyn_vm::tlb::Asid;

use crate::app::SyncAction;
use crate::checkpoint::Checkpoint;
use crate::flow::{Placement, SystemDesign};
use crate::sim::{
    boot_system, read_snapshot, write_snapshot, Body, Phase, RunProgress, ShardSyncStats,
    SimConfig, SimError, SimOutcome, SnapshotView, SystemState, ThreadMetrics, ThreadRt,
};

/// Hard ceiling on shards: the fabric's transaction-id lanes need a
/// power-of-two stride dividing its record ring, and no host this targets
/// has more cores anyway.
const MAX_SHARDS: usize = 64;

/// How the shards of one window execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One host thread per shard (`std::thread::scope`); shard 0 runs
    /// inline on the coordinator thread.
    Parallel,
    /// All shards sequentially on the coordinator thread, in shard order —
    /// the single-wheel oracle the conformance suite compares against.
    SingleWheel,
}

/// The shard assignment for a design under a config.
struct ShardPlan {
    shards: usize,
    /// `owner[i]` = shard of application thread `i`.
    owner: Vec<usize>,
}

fn plan(design: &SystemDesign, cfg: &SimConfig) -> ShardPlan {
    let n = design.placements.len();
    let requested = (cfg.shards.max(1) as usize).min(n.max(1)).min(MAX_SHARDS);
    let has_sw = design.placements.contains(&Placement::Software);
    // A software thread faulting under a frame budget reclaims frames
    // inline, mid-window, invisible to the other shards until the barrier
    // — force those designs serial rather than approximate them.
    let shards = if has_sw && design.platform.os.frame_budget.is_some() {
        1
    } else {
        requested
    };
    if shards <= 1 {
        return ShardPlan {
            shards: 1,
            owner: vec![0; n],
        };
    }
    let mut owner = vec![0usize; n];
    let mut hw = 0usize;
    for (i, p) in design.placements.iter().enumerate() {
        owner[i] = match p {
            // Software threads share the OS CPU scheduler: they all live
            // on shard 0, where the OS resides during a window.
            Placement::Software => 0,
            Placement::Hardware => {
                let s = if has_sw {
                    (1 + hw) % shards
                } else {
                    hw % shards
                };
                hw += 1;
                s
            }
        };
    }
    ShardPlan { shards, owner }
}

/// The effective shard count the planner grants `design` under `cfg`:
/// `cfg.shards` clamped to the thread count (and [`MAX_SHARDS`]), forced
/// to 1 for software-under-pressure designs. [`crate::sim::simulate`]
/// dispatches to the sharded engine exactly when this exceeds 1.
pub fn planned_shards(design: &SystemDesign, cfg: &SimConfig) -> usize {
    plan(design, cfg).shards
}

/// A cross-shard interaction recorded by a shard mid-window, exchanged at
/// the next barrier.
#[derive(Debug, Clone, Copy)]
enum Crossing {
    /// A hardware thread page-faulted and parked; the OS services the
    /// fault at the barrier at the recorded cycle.
    Fault {
        thread: u32,
        at: Cycle,
        va: VirtAddr,
        write: bool,
    },
    /// A kernel finished; its post-sync script runs on the coordinator.
    Finish { thread: u32, at: Cycle },
}

/// A coordinator control-queue entry, totally ordered by `(at, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CtrlItem {
    at: Cycle,
    seq: u64,
    thread: u32,
    kind: CtrlKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtrlKind {
    /// Advance the thread's pre/post sync script (or deliver it into its
    /// shard if it reached the run phase).
    Step,
    /// Service a hardware page fault against the canonical memory.
    FaultService { va: VirtAddr, write: bool },
}

impl Ord for CtrlItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for CtrlItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Mutable state one shard owns during a window. Thread slots are indexed
/// by *application* thread id; only the slots this shard owns are `Some`.
struct ShardState {
    mem: MemorySystem,
    /// The OS lives on shard 0 while a window executes (software threads
    /// and their inline minor faults need it) and on the coordinator
    /// between windows. `None` on every other shard, always.
    os: Option<Os>,
    threads: Vec<Option<ThreadRt>>,
    quantum: u64,
    retry_budget: u32,
    /// Full-size mirror of the global fault-streak table; only the slots
    /// of owned threads are ever written here.
    fault_streaks: Vec<Option<(u64, u32, Cycle)>>,
    /// Mirror of this wheel's pending step events `(at, seq, thread)`,
    /// with globally-unique seqs (see `next_seq`).
    pending_steps: Vec<(Cycle, u64, u32)>,
    /// Seq lane: shard `s` of `N` draws `base + s, base + s + N, ...` so
    /// seqs stay globally unique without cross-shard coordination, and
    /// wheel insertion order equals `(at, seq)` order (snapshots depend
    /// on that to reproduce same-cycle FIFO order on restore).
    next_seq: u64,
    seq_stride: u64,
    /// Outbox: cross-shard interactions recorded this window.
    crossings: Vec<Crossing>,
    /// First error this shard hit (stops its window immediately; the
    /// coordinator picks the globally-first one at the barrier).
    error: Option<(Cycle, SimError)>,
    /// Events this shard may still fire this window before flagging
    /// `cap_hit` (its deterministic share of `max_events`).
    window_fired: u64,
    window_budget: u64,
    cap_hit: bool,
    /// Shootdowns applied to local threads mid-window (shard 0's inline
    /// software faults only).
    local_shootdowns: u64,
    /// Those same invalidations, queued for remote application at the
    /// barrier.
    shootdown_out: Vec<(Asid, VirtAddr)>,
}

type ShardSched = Scheduler<ShardState>;

struct Shard {
    state: ShardState,
    wheel: ShardSched,
}

fn shard_unregister(st: &mut ShardState, seq: u64) {
    if let Some(idx) = st.pending_steps.iter().position(|&(_, s, _)| s == seq) {
        st.pending_steps.swap_remove(idx);
    }
}

/// Schedules a step with an explicit seq (barrier deliveries and restore,
/// where the coordinator assigns seqs below the window lanes).
fn shard_schedule_at(st: &mut ShardState, wh: &mut ShardSched, at: Cycle, seq: u64, i: usize) {
    st.pending_steps.push((at, seq, i as u32));
    wh.schedule_at(at, move |st: &mut ShardState, wh: &mut ShardSched| {
        shard_unregister(st, seq);
        shard_step_thread(st, wh, i);
    });
}

/// Schedules a step with the next seq from this shard's window lane.
fn shard_schedule_lane(st: &mut ShardState, wh: &mut ShardSched, at: Cycle, i: usize) {
    let seq = st.next_seq;
    st.next_seq += st.seq_stride;
    shard_schedule_at(st, wh, at, seq, i);
}

/// Wake-path variant of [`shard_schedule_lane`]: the wheel clamps a stale
/// completion to `now`, and the mirror must record the clamped time (it is
/// the cycle the wheel actually holds).
fn shard_schedule_wake(st: &mut ShardState, wh: &mut ShardSched, wake: Cycle, i: usize) {
    let seq = st.next_seq;
    st.next_seq += st.seq_stride;
    st.pending_steps.push((wake.max(wh.now()), seq, i as u32));
    wh.schedule_wake(wake, move |st: &mut ShardState, wh: &mut ShardSched| {
        shard_unregister(st, seq);
        shard_step_thread(st, wh, i);
    });
}

/// Applies shootdowns queued by an inline software fault to this shard's
/// own threads immediately (matching the serial engine's every-event
/// drain) and queues them for the other shards at the barrier.
fn drain_local_shootdowns(st: &mut ShardState) {
    let pending = match st.os.as_mut() {
        Some(os) => os.take_shootdowns(),
        None => return,
    };
    for (asid, va) in pending {
        for t in st.threads.iter_mut().flatten() {
            match &mut t.body {
                Body::Hw(hw) => hw.memif_mut().mmu_mut().invalidate_page(asid, va),
                Body::Sw(sw) => sw.shootdown(asid, va),
            }
            st.local_shootdowns += 1;
        }
        st.shootdown_out.push((asid, va));
    }
}

enum LocalOutcome {
    Reschedule(Cycle),
    Wake(Cycle),
    Finished(Option<i64>, Cycle),
    /// A hardware fault parks the thread until the barrier services it.
    FaultCrossing {
        at: Cycle,
        va: VirtAddr,
        write: bool,
    },
    Segv(svmsyn_os::addrspace::Sigsegv),
    Thrash {
        faults: u64,
        window: u64,
    },
}

fn shard_step_thread(st: &mut ShardState, wh: &mut ShardSched, i: usize) {
    if st.error.is_some() {
        return;
    }
    // Only run-phase bodies live on shard wheels; pre/post sync scripts
    // execute on the coordinator's control queue.
    match st.threads[i].as_ref().map(|t| t.phase) {
        Some(Phase::Run) => {}
        _ => return,
    }
    let now = wh.now();
    let quantum = st.quantum;
    let outcome = {
        let ShardState {
            mem,
            os,
            threads,
            fault_streaks,
            retry_budget,
            ..
        } = &mut *st;
        let rt = threads[i].as_mut().expect("step for unowned thread");
        match &mut rt.body {
            Body::Hw(hw) => match hw.advance(mem, now, quantum) {
                HwStep::Yielded { now } => {
                    fault_streaks[i] = None;
                    LocalOutcome::Reschedule(now)
                }
                HwStep::Parked { wake } => {
                    fault_streaks[i] = None;
                    LocalOutcome::Wake(wake)
                }
                HwStep::PageFault { fault, now } => {
                    // Same streak accounting as the serial engine: a fault
                    // with no memory op issued since the last one is a
                    // retry that lost its frames again.
                    let issued = hw.mem_ops_issued();
                    let (count, first) = match &mut fault_streaks[i] {
                        Some((at, c, f)) if *at == issued => {
                            *c += 1;
                            (*c, *f)
                        }
                        s => {
                            *s = Some((issued, 1, now));
                            (1, now)
                        }
                    };
                    if *retry_budget > 0 && count > *retry_budget {
                        LocalOutcome::Thrash {
                            faults: count as u64,
                            window: (now - first).0,
                        }
                    } else {
                        LocalOutcome::FaultCrossing {
                            at: now,
                            va: fault.va(),
                            write: fault.access() == Access::Write,
                        }
                    }
                }
                HwStep::Finished { ret, now } => {
                    fault_streaks[i] = None;
                    LocalOutcome::Finished(ret, now)
                }
            },
            Body::Sw(sw) => {
                let os = os
                    .as_mut()
                    .expect("software threads are pinned to the OS shard");
                let (start, _) = os.cpus.run_slice(ThreadId(i as u32), now, quantum);
                match sw.run_slice(os, mem, start, quantum) {
                    Ok((end, SliceEnd::Finished { ret })) => LocalOutcome::Finished(ret, end),
                    Ok((end, SliceEnd::BudgetExhausted)) => LocalOutcome::Reschedule(end),
                    Err(segv) => LocalOutcome::Segv(segv),
                }
            }
        }
    };
    // Inline software faults may have queued reclaim shootdowns.
    drain_local_shootdowns(st);
    match outcome {
        LocalOutcome::Reschedule(at) => shard_schedule_lane(st, wh, at, i),
        LocalOutcome::Wake(wake) => shard_schedule_wake(st, wh, wake, i),
        LocalOutcome::Finished(ret, at) => {
            let rt = st.threads[i].as_mut().unwrap();
            rt.ret = ret;
            rt.phase = Phase::Post(0);
            st.crossings.push(Crossing::Finish {
                thread: i as u32,
                at,
            });
        }
        LocalOutcome::FaultCrossing { at, va, write } => st.crossings.push(Crossing::Fault {
            thread: i as u32,
            at,
            va,
            write,
        }),
        LocalOutcome::Segv(fault) => {
            let name = st.threads[i].as_ref().unwrap().name.clone();
            st.error = Some((
                now,
                SimError::Segv {
                    thread: name,
                    fault,
                },
            ));
        }
        LocalOutcome::Thrash { faults, window } => {
            // Re-arm before flagging, exactly like the serial engine: the
            // checkpoint attached at the barrier then has a runnable
            // thread, so a resume under a raised budget retries.
            shard_schedule_lane(st, wh, now, i);
            let name = st.threads[i].as_ref().unwrap().name.clone();
            st.error = Some((
                now,
                SimError::Thrashing {
                    thread: name,
                    faults,
                    window,
                    checkpoint: None,
                },
            ));
        }
    }
}

/// Fires one shard's wheel through the window `[.., end)`. Stops early on
/// a shard-local error or when the shard's deterministic event budget for
/// this window runs out.
fn run_window(sh: &mut Shard, end: Cycle) {
    loop {
        if sh.state.error.is_some() || sh.state.cap_hit {
            return;
        }
        match sh.wheel.peek_time() {
            Some(at) if at < end => {
                sh.wheel.step(&mut sh.state);
                sh.state.window_fired += 1;
                if sh.state.window_fired >= sh.state.window_budget {
                    sh.state.cap_hit = true;
                }
            }
            _ => return,
        }
    }
}

/// The first error of a run, ordered by `(cycle, shard)` so the pick is
/// independent of host-thread interleaving (`usize::MAX` = coordinator).
struct PendingError {
    at: Cycle,
    shard: usize,
    error: SimError,
}

/// A sharded full-system simulation: the coordinator plus its shards.
///
/// Mirrors the [`crate::sim::Sim`] driver API (`new` / `run` / `finish` /
/// `snapshot` / `restore`), produces the same [`SimOutcome`] (plus
/// [`ShardSyncStats`]), and reads/writes the same checkpoint format.
pub struct ShardedSim<'d> {
    design: &'d SystemDesign,
    cfg: SimConfig,
    mode: ExecMode,
    owner: Vec<usize>,
    /// `master_owner[m]` = shard owning fabric master `m` (master `i + 1`
    /// belongs to thread `i`; master 0 to shard 0).
    master_owner: Vec<usize>,
    n_shards: usize,
    shards: Vec<Shard>,
    /// The canonical memory: ground truth between windows, written only by
    /// the coordinator (barrier fault services and store folds).
    canon: MemorySystem,
    os: Option<Os>,
    asid: Asid,
    sync_ids: Vec<u32>,
    buffer_vas: Vec<VirtAddr>,
    /// Barrier control queue, processed in `(at, seq)` order.
    heap: BinaryHeap<Reverse<CtrlItem>>,
    /// Run-phase activations staged during control processing, delivered
    /// into shard wheels (clamped to the window start) before dispatch.
    deliveries: Vec<(Cycle, u32)>,
    finished: usize,
    error: Option<PendingError>,
    shootdowns: u64,
    /// Global seq floor: heap items and barrier deliveries draw from it
    /// directly; window lanes start above it and it absorbs their maximum
    /// after every window.
    next_seq: u64,
    /// End of the last executed window; windows never re-open earlier
    /// time.
    clock: Cycle,
    /// The lookahead window length `W`.
    window: u64,
    /// Control-queue items processed (they count as events, as they do on
    /// the serial wheel).
    ctrl_fired: u64,
    /// Events fired before this instance existed (restore carry-over).
    base_fired: u64,
    window_start: Cycle,
    window_base_faults: u64,
    last_pause_events: u64,
    cal_bases: Vec<CalendarBase>,
    ctr_bases: Vec<CounterBase>,
    sync_stats: ShardSyncStats,
}

fn align_up(x: u64, stride: u64) -> u64 {
    x.div_ceil(stride) * stride
}

/// Clones the canonical memory into one replica per shard, with store
/// journaling on and disjoint fabric transaction-id lanes, and captures
/// the calendar/counter bases the barrier folds diff against.
fn build_replicas(
    canon: &MemorySystem,
    n_shards: usize,
) -> (Vec<MemorySystem>, Vec<CalendarBase>, Vec<CounterBase>) {
    let stride = (n_shards.next_power_of_two() as u64).max(1);
    let start = align_up(canon.fabric_next_txn_id(), stride);
    let mut mems = Vec::with_capacity(n_shards);
    let mut cals = Vec::with_capacity(n_shards);
    let mut ctrs = Vec::with_capacity(n_shards);
    for s in 0..n_shards {
        let mut m = canon.clone();
        m.enable_store_journal();
        m.set_fabric_id_lane(start + s as u64, stride);
        cals.push(calendar_base(&m));
        ctrs.push(counter_base(&m));
        mems.push(m);
    }
    (mems, cals, ctrs)
}

impl<'d> ShardedSim<'d> {
    /// Boots the system (same elaboration as [`crate::sim::Sim::new`]) and
    /// partitions it across the planned shards.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Os`] when setup fails.
    pub fn new(
        design: &'d SystemDesign,
        cfg: &SimConfig,
        mode: ExecMode,
    ) -> Result<ShardedSim<'d>, SimError> {
        let p = plan(design, cfg);
        let (state, buffer_vas) = boot_system(design, cfg)?;
        let SystemState {
            mut mem,
            os,
            asid,
            threads,
            sync_ids,
            finished,
            fault_streaks,
            shootdowns,
            ..
        } = state;
        mem.enable_store_journal();
        let n = threads.len();

        // Boot control items: every thread starts in its pre-sync phase,
        // which runs on the coordinator.
        let mut heap = BinaryHeap::new();
        let mut next_seq = 0u64;
        for (i, t) in threads.iter().enumerate() {
            heap.push(Reverse(CtrlItem {
                at: t.start,
                seq: next_seq,
                thread: i as u32,
                kind: CtrlKind::Step,
            }));
            next_seq += 1;
        }

        let shards = Self::build_shards(&mem, &p, threads, fault_streaks, cfg);
        let (shards, cal_bases, ctr_bases) = shards;

        let mut master_owner = vec![0usize; n + 1];
        master_owner[1..=n].copy_from_slice(&p.owner[..n]);

        let window = Self::window_len(cfg, &mem);
        Ok(ShardedSim {
            design,
            cfg: *cfg,
            mode,
            owner: p.owner,
            master_owner,
            n_shards: p.shards,
            shards,
            canon: mem,
            os: Some(os),
            asid,
            sync_ids,
            buffer_vas,
            heap,
            deliveries: Vec::new(),
            finished,
            error: None,
            shootdowns,
            next_seq,
            clock: Cycle::ZERO,
            window,
            ctrl_fired: 0,
            base_fired: 0,
            window_start: Cycle::ZERO,
            window_base_faults: 0,
            last_pause_events: 0,
            cal_bases,
            ctr_bases,
            sync_stats: ShardSyncStats {
                shards: p.shards as u64,
                window_len: window,
                ..ShardSyncStats::default()
            },
        })
    }

    /// The conservative lookahead window: an override when configured,
    /// otherwise the larger of the quantum (threads re-book the wheel at
    /// most once per quantum) and the fabric's minimum issue-to-complete
    /// latency (nothing crosses shards faster than one transaction).
    fn window_len(cfg: &SimConfig, mem: &MemorySystem) -> u64 {
        if cfg.shard_window > 0 {
            cfg.shard_window
        } else {
            cfg.quantum.max(mem.min_issue_to_complete()).max(1)
        }
    }

    #[allow(clippy::type_complexity)]
    fn build_shards(
        canon: &MemorySystem,
        p: &ShardPlan,
        threads: Vec<ThreadRt>,
        fault_streaks: Vec<Option<(u64, u32, Cycle)>>,
        cfg: &SimConfig,
    ) -> (Vec<Shard>, Vec<CalendarBase>, Vec<CounterBase>) {
        let n = threads.len();
        let (mems, cal_bases, ctr_bases) = build_replicas(canon, p.shards);
        let mut slots: Vec<Vec<Option<ThreadRt>>> = (0..p.shards)
            .map(|_| (0..n).map(|_| None).collect())
            .collect();
        for (i, t) in threads.into_iter().enumerate() {
            slots[p.owner[i]][i] = Some(t);
        }
        let shards = mems
            .into_iter()
            .zip(slots)
            .map(|(mem, threads)| Shard {
                state: ShardState {
                    mem,
                    os: None,
                    threads,
                    quantum: cfg.quantum,
                    retry_budget: cfg.fault_retry_budget,
                    fault_streaks: fault_streaks.clone(),
                    pending_steps: Vec::new(),
                    next_seq: 0,
                    seq_stride: p.shards as u64,
                    crossings: Vec::new(),
                    error: None,
                    window_fired: 0,
                    window_budget: u64::MAX,
                    cap_hit: false,
                    local_shootdowns: 0,
                    shootdown_out: Vec::new(),
                },
                wheel: Scheduler::with_capacity(n * 2 + 8),
            })
            .collect();
        (shards, cal_bases, ctr_bases)
    }

    fn thread(&self, i: usize) -> &ThreadRt {
        self.shards[self.owner[i]].state.threads[i]
            .as_ref()
            .expect("thread home")
    }

    fn thread_mut(&mut self, i: usize) -> &mut ThreadRt {
        let s = self.owner[i];
        self.shards[s].state.threads[i]
            .as_mut()
            .expect("thread home")
    }

    fn total_fired(&self) -> u64 {
        self.base_fired
            + self.ctrl_fired
            + self
                .shards
                .iter()
                .map(|s| s.wheel.events_fired())
                .sum::<u64>()
    }

    /// The end of the last executed window (the barrier the coordinator is
    /// at).
    pub fn now(&self) -> Cycle {
        self.clock
    }

    /// Total events fired across all shard wheels and the control queue.
    pub fn events_fired(&self) -> u64 {
        self.total_fired()
    }

    fn note_error(&mut self, at: Cycle, shard: usize, error: SimError) {
        let better = match &self.error {
            None => true,
            Some(e) => (at, shard) < (e.at, e.shard),
        };
        if better {
            self.error = Some(PendingError { at, shard, error });
        }
    }

    fn take_error(&mut self) -> Option<SimError> {
        let e = self.error.take()?;
        Some(match e.error {
            SimError::Thrashing {
                thread,
                faults,
                window,
                checkpoint: None,
            } => SimError::Thrashing {
                thread,
                faults,
                window,
                checkpoint: Some(self.snapshot()),
            },
            other => other,
        })
    }

    fn push_ctrl(&mut self, at: Cycle, thread: u32, kind: CtrlKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(CtrlItem {
            at,
            seq,
            thread,
            kind,
        }));
    }

    /// Broadcasts shootdowns queued by a barrier-time fault service to
    /// every thread on every shard (the serial engine's per-event drain,
    /// at barrier granularity).
    fn drain_coordinator_shootdowns(&mut self) {
        let pending = self.os.as_mut().expect("os home").take_shootdowns();
        for (asid, va) in pending {
            for sh in &mut self.shards {
                for t in sh.state.threads.iter_mut().flatten() {
                    match &mut t.body {
                        Body::Hw(hw) => hw.memif_mut().mmu_mut().invalidate_page(asid, va),
                        Body::Sw(sw) => sw.shootdown(asid, va),
                    }
                    self.shootdowns += 1;
                }
            }
        }
    }

    /// Mirror of the serial engine's `handle_sync`, with run-phase
    /// transitions staged as deliveries and wheel bookings replaced by
    /// control-queue pushes.
    fn ctrl_sync(&mut self, now: Cycle, i: usize, k: usize, is_pre: bool) {
        let rt = self.thread(i);
        let actions = if is_pre {
            rt.pre.clone()
        } else {
            rt.post.clone()
        };
        if k >= actions.len() {
            if is_pre {
                self.thread_mut(i).phase = Phase::Run;
                self.deliveries.push((now, i as u32));
            } else {
                let rt = self.thread_mut(i);
                rt.phase = Phase::Done;
                rt.end = Some(now);
                self.finished += 1;
            }
            return;
        }
        let action = actions[k];
        let placement = self.thread(i).placement;
        let oid = self.sync_ids[action.object()];
        let tid = ThreadId(i as u32);
        let os = self.os.as_mut().expect("os home");
        let cost = match placement {
            Placement::Hardware => os.costs.osif_call_total(),
            Placement::Software => os.costs.syscall,
        };
        let t = now + cost;
        let (result, wakes) = match action {
            SyncAction::MutexLock(_) => (os.sync.mutex_lock(tid, oid), vec![]),
            SyncAction::MutexUnlock(_) => (
                SyncResult::Proceed { value: None },
                os.sync.mutex_unlock(tid, oid),
            ),
            SyncAction::SemWait(_) => (os.sync.sem_wait(tid, oid), vec![]),
            SyncAction::SemPost(_) => (SyncResult::Proceed { value: None }, os.sync.sem_post(oid)),
            SyncAction::BarrierWait(_) => os.sync.barrier_wait(tid, oid),
            SyncAction::MboxPut(_, v) => os.sync.mbox_put(tid, oid, v),
            SyncAction::MboxGet(_) => os.sync.mbox_get(tid, oid),
        };
        let wake_costs: Vec<(u32, u64)> = wakes
            .iter()
            .map(|w| {
                let j = w.thread().0 as usize;
                let costs = &self.os.as_ref().expect("os home").costs;
                let c = match self.thread(j).placement {
                    Placement::Software => costs.context_switch,
                    Placement::Hardware => costs.delegate_wakeup + costs.osif_transfer,
                };
                (j as u32, c)
            })
            .collect();
        // A blocked action completes upon wakeup (FIFO handoff), so the
        // phase index always advances.
        self.thread_mut(i).phase = if is_pre {
            Phase::Pre(k + 1)
        } else {
            Phase::Post(k + 1)
        };
        for (j, c) in wake_costs {
            self.push_ctrl(t + c, j, CtrlKind::Step);
        }
        match result {
            SyncResult::Proceed { .. } => self.push_ctrl(t, i as u32, CtrlKind::Step),
            SyncResult::Block => { /* the waker re-enqueues us */ }
        }
    }

    fn ctrl_step(&mut self, item: CtrlItem) {
        let i = item.thread as usize;
        match item.kind {
            CtrlKind::FaultService { va, write } => {
                let asid = self.asid;
                let os = self.os.as_mut().expect("os home");
                match os.service_fault(asid, va, write, true, &mut self.canon, item.at) {
                    Ok(done) => self.deliveries.push((done, item.thread)),
                    Err(fault) => {
                        let name = self.thread(i).name.clone();
                        self.note_error(
                            item.at,
                            usize::MAX,
                            SimError::Segv {
                                thread: name,
                                fault,
                            },
                        );
                    }
                }
            }
            CtrlKind::Step => match self.thread(i).phase {
                Phase::Pre(k) => self.ctrl_sync(item.at, i, k, true),
                Phase::Post(k) => self.ctrl_sync(item.at, i, k, false),
                // A step for a run-phase thread is an activation (restore
                // routing, wake handoffs): deliver it into its shard.
                Phase::Run => self.deliveries.push((item.at, item.thread)),
                Phase::Done => {}
            },
        }
    }

    /// Processes every control item strictly before `end`, at its exact
    /// recorded cycle, in deterministic `(at, seq)` order.
    fn process_control(&mut self, end: Cycle) {
        while self.error.is_none() {
            match self.heap.peek() {
                Some(&Reverse(item)) if item.at < end => {
                    self.heap.pop();
                    self.ctrl_fired += 1;
                    self.ctrl_step(item);
                    self.drain_coordinator_shootdowns();
                }
                _ => break,
            }
        }
    }

    /// Delivers staged run-phase activations into their shards' wheels,
    /// clamped to the window start `t` (conservative-exact: a completion
    /// computed in a past window cannot re-open closed time).
    fn flush_deliveries(&mut self, t: Cycle) {
        let deliveries = std::mem::take(&mut self.deliveries);
        for (at, thread) in deliveries {
            let i = thread as usize;
            let s = self.owner[i];
            let seq = self.next_seq;
            self.next_seq += 1;
            let sh = &mut self.shards[s];
            shard_schedule_at(&mut sh.state, &mut sh.wheel, at.max(t), seq, i);
        }
    }

    /// Executes one window `[t, e)` on every shard, in the configured
    /// mode. The OS migrates to shard 0 for the window's duration.
    fn run_windows(&mut self, e: Cycle) {
        let fired_base = self.total_fired();
        let lane_base = self.next_seq;
        let stride = self.n_shards as u64;
        // Each shard gets the full remaining event budget as its
        // deterministic cap: the authoritative total check happens at the
        // barrier, this only bounds a runaway single window.
        let budget = (self.cfg.max_events + 1).saturating_sub(fired_base).max(1);
        for (s, sh) in self.shards.iter_mut().enumerate() {
            sh.state.next_seq = lane_base + s as u64;
            sh.state.seq_stride = stride;
            sh.state.window_fired = 0;
            sh.state.window_budget = budget;
            sh.state.cap_hit = false;
        }
        self.shards[0].state.os = self.os.take();
        match self.mode {
            ExecMode::SingleWheel => {
                for sh in &mut self.shards {
                    run_window(sh, e);
                }
            }
            ExecMode::Parallel => {
                let (first, rest) = self.shards.split_at_mut(1);
                std::thread::scope(|scope| {
                    for sh in rest.iter_mut() {
                        scope.spawn(move || run_window(sh, e));
                    }
                    run_window(&mut first[0], e);
                });
            }
        }
        self.os = self.shards[0].state.os.take();
        let lane_max = self
            .shards
            .iter()
            .map(|sh| sh.state.next_seq)
            .max()
            .unwrap_or(lane_base);
        self.next_seq = self.next_seq.max(lane_max);
    }

    /// Collects every shard's outbox into the control queue (shard order,
    /// then emission order — deterministic) and accounts the barrier-wait
    /// cost of the window `[t, e)`.
    fn collect_crossings(&mut self, t: Cycle, e: Cycle) {
        self.sync_stats.windows += 1;
        for s in 0..self.n_shards {
            let wheel_now = self.shards[s].wheel.now();
            let reached = wheel_now.max(t).min(e);
            self.sync_stats.barrier_wait_cycles += (e - reached).0;
            let crossings = std::mem::take(&mut self.shards[s].state.crossings);
            self.sync_stats.crossings += crossings.len() as u64;
            for c in crossings {
                match c {
                    Crossing::Fault {
                        thread,
                        at,
                        va,
                        write,
                    } => self.push_ctrl(at, thread, CtrlKind::FaultService { va, write }),
                    Crossing::Finish { thread, at } => self.push_ctrl(at, thread, CtrlKind::Step),
                }
            }
        }
    }

    /// Applies shootdowns a shard broadcast locally mid-window to the
    /// *other* shards' threads, and folds the local counts into the global
    /// one — every thread sees each invalidation exactly once.
    fn apply_remote_shootdowns(&mut self) {
        for s in 0..self.n_shards {
            self.shootdowns += self.shards[s].state.local_shootdowns;
            self.shards[s].state.local_shootdowns = 0;
            let out = std::mem::take(&mut self.shards[s].state.shootdown_out);
            for (asid, va) in out {
                for (r, sh) in self.shards.iter_mut().enumerate() {
                    if r == s {
                        continue;
                    }
                    for t in sh.state.threads.iter_mut().flatten() {
                        match &mut t.body {
                            Body::Hw(hw) => hw.memif_mut().mmu_mut().invalidate_page(asid, va),
                            Body::Sw(sw) => sw.shootdown(asid, va),
                        }
                        self.shootdowns += 1;
                    }
                }
            }
        }
    }

    /// Runs windows until completion, an error, or (with
    /// `checkpoint_every` set) a periodic barrier pause.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::sim::Sim::run`]: [`SimError::EventLimit`]
    /// and [`SimError::Thrashing`] carry a resumable barrier checkpoint.
    pub fn run(&mut self) -> Result<RunProgress, SimError> {
        loop {
            // 1. The earliest pending activity anywhere decides the next
            //    window; silence means the run is over.
            let mut mn: Option<Cycle> = self.heap.peek().map(|&Reverse(it)| it.at);
            for sh in &self.shards {
                if let Some(t) = sh.wheel.peek_time() {
                    mn = Some(mn.map_or(t, |m| m.min(t)));
                }
            }
            let Some(mn) = mn else {
                return Ok(RunProgress::Complete);
            };
            // 2. Window bounds: align down to the W grid, never behind the
            //    clock (closed time stays closed).
            let t = self.clock.max(Cycle(mn.0 / self.window * self.window));
            let e = t + self.window;
            // 3. Barrier control: sync scripts, fault services, wake
            //    handoffs — at exact cycles, in (time, seq) order.
            self.process_control(e);
            if let Some(err) = self.take_error() {
                return Err(err);
            }
            // 4. Deliver activations, then broadcast the canonical store
            //    writes (including the PTEs the fault services just
            //    wrote — a stale PTE would make the retry refault
            //    forever).
            self.flush_deliveries(t);
            {
                let mut mems: Vec<&mut MemorySystem> =
                    self.shards.iter_mut().map(|s| &mut s.state.mem).collect();
                refresh_stores(&mut self.canon, &mut mems);
            }
            // 5. The window itself.
            self.run_windows(e);
            self.clock = e;
            // 6. Exchange: crossings into the control queue, replica
            //    stores and calendars folded back into the canon, deferred
            //    shootdowns applied.
            self.collect_crossings(t, e);
            {
                let mut mems: Vec<&mut MemorySystem> =
                    self.shards.iter_mut().map(|s| &mut s.state.mem).collect();
                fold_and_refresh_calendars(&mut self.canon, &mut mems, &mut self.cal_bases);
                fold_stores(&mut self.canon, &mut mems);
            }
            self.apply_remote_shootdowns();
            // 7. Errors and watchdogs, on post-fold (snapshot-consistent)
            //    state.
            for s in 0..self.n_shards {
                if let Some((at, error)) = self.shards[s].state.error.take() {
                    self.note_error(at, s, error);
                }
            }
            if let Some(err) = self.take_error() {
                return Err(err);
            }
            let fired = self.total_fired();
            if fired > self.cfg.max_events {
                let checkpoint = self.snapshot();
                let n = self.owner.len();
                return Err(SimError::EventLimit {
                    cycle: self.clock.0,
                    events: fired,
                    runnable: (0..n)
                        .filter(|&i| self.thread(i).phase != Phase::Done)
                        .map(|i| self.thread(i).name.clone())
                        .collect(),
                    checkpoint: Some(checkpoint),
                });
            }
            if self.cfg.thrash_fault_limit > 0 {
                let os = self.os.as_ref().expect("os home");
                let faults = os.hw_faults() + os.sw_faults();
                if (self.clock - self.window_start).0 >= self.cfg.thrash_window {
                    self.window_start = self.clock;
                    self.window_base_faults = faults;
                } else if faults - self.window_base_faults > self.cfg.thrash_fault_limit as u64 {
                    let checkpoint = self.snapshot();
                    return Err(SimError::Thrashing {
                        thread: "system".to_string(),
                        faults: faults - self.window_base_faults,
                        window: self.cfg.thrash_window,
                        checkpoint: Some(checkpoint),
                    });
                }
            }
            if self.cfg.checkpoint_every > 0
                && self.total_fired() - self.last_pause_events >= self.cfg.checkpoint_every
            {
                self.last_pause_events = self.total_fired();
                return Ok(RunProgress::Paused(self.snapshot()));
            }
        }
    }

    /// Serializes the run at the current barrier into the engine-shared
    /// checkpoint format: the canonical memory with every replica's
    /// progress merged in, threads in application order, and all pending
    /// activity (shard wheels + control queue) as the pending-step set.
    ///
    /// The image is deterministic and identical between
    /// [`ExecMode::Parallel`] and [`ExecMode::SingleWheel`]; it restores
    /// into either engine at any shard count.
    pub fn snapshot(&self) -> Checkpoint {
        let mut steps: Vec<(Cycle, u64, u32)> = Vec::new();
        for sh in &self.shards {
            steps.extend_from_slice(&sh.state.pending_steps);
        }
        for &Reverse(it) in self.heap.iter() {
            steps.push((it.at, it.seq, it.thread));
        }
        let now = steps
            .iter()
            .map(|&(at, _, _)| at)
            .min()
            .unwrap_or(self.clock);
        let fired = self.total_fired();
        let n = self.owner.len();
        let fault_streaks: Vec<Option<(u64, u32, Cycle)>> = (0..n)
            .map(|i| self.shards[self.owner[i]].state.fault_streaks[i])
            .collect();
        let threads: Vec<&ThreadRt> = (0..n).map(|i| self.thread(i)).collect();
        let mems: Vec<&MemorySystem> = self.shards.iter().map(|s| &s.state.mem).collect();
        let mem = merged_memory(&self.canon, &mems, &self.ctr_bases, &self.master_owner);
        write_snapshot(
            self.design,
            SnapshotView {
                now,
                fired,
                // The serial invariant `scheduled == fired + pending`
                // holds here too: neither engine cancels events.
                scheduled: fired + steps.len() as u64,
                window_start: self.window_start,
                window_base_faults: self.window_base_faults,
                buffer_vas: &self.buffer_vas,
                mem: &mem,
                os: self.os.as_ref().expect("os home"),
                asid: self.asid,
                sync_ids: &self.sync_ids,
                finished: self.finished,
                fault_streaks,
                shootdowns: self.shootdowns,
                threads,
                next_step_seq: self.next_seq,
                steps,
            },
        )
    }

    /// Rebuilds a sharded simulation from a checkpoint image — one taken
    /// by this engine at any shard count *or* by the serial engine
    /// (pending steps route by thread phase: run-phase bodies onto their
    /// shard's wheel, sync-phase scripts onto the control queue).
    ///
    /// A resumed run completes with the same outputs and final memory
    /// bytes as the uninterrupted one; exact event-count parity across a
    /// resume is only guaranteed when the shard plan matches the writer's.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Snapshot`] describing exactly what was
    /// rejected.
    pub fn restore(
        design: &'d SystemDesign,
        cfg: &SimConfig,
        mode: ExecMode,
        checkpoint: &Checkpoint,
    ) -> Result<ShardedSim<'d>, SimError> {
        let parts = read_snapshot(design, checkpoint).map_err(SimError::Snapshot)?;
        let p = plan(design, cfg);
        let n = parts.threads.len();
        let mut canon = parts.mem;
        canon.enable_store_journal();

        let mut heap = BinaryHeap::new();
        let mut wheel_steps: Vec<(Cycle, u64, u32)> = Vec::new();
        for &(at, seq, th) in &parts.steps {
            match parts.threads[th as usize].phase {
                Phase::Run => wheel_steps.push((at, seq, th)),
                _ => heap.push(Reverse(CtrlItem {
                    at,
                    seq,
                    thread: th,
                    kind: CtrlKind::Step,
                })),
            }
        }

        let (mut shards, cal_bases, ctr_bases) =
            Self::build_shards(&canon, &p, parts.threads, parts.fault_streaks, cfg);
        for sh in &mut shards {
            sh.wheel.restore_meta(parts.now, 0, 0);
        }
        // Re-schedule in (time, seq) order so per-wheel insertion order
        // matches seq order — the invariant snapshots rely on.
        wheel_steps.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        for (at, seq, th) in wheel_steps {
            let i = th as usize;
            let sh = &mut shards[p.owner[i]];
            shard_schedule_at(&mut sh.state, &mut sh.wheel, at, seq, i);
        }

        let mut master_owner = vec![0usize; n + 1];
        master_owner[1..=n].copy_from_slice(&p.owner[..n]);
        let window = Self::window_len(cfg, &canon);
        Ok(ShardedSim {
            design,
            cfg: *cfg,
            mode,
            owner: p.owner,
            master_owner,
            n_shards: p.shards,
            shards,
            canon,
            os: Some(parts.os),
            asid: parts.asid,
            sync_ids: parts.sync_ids,
            buffer_vas: parts.buffer_vas,
            heap,
            deliveries: Vec::new(),
            finished: parts.finished,
            error: None,
            shootdowns: parts.shootdowns,
            next_seq: parts.next_step_seq,
            clock: parts.now,
            window,
            ctrl_fired: 0,
            base_fired: parts.fired,
            window_start: parts.window_start,
            window_base_faults: parts.window_base_faults,
            last_pause_events: parts.fired,
            cal_bases,
            ctr_bases,
            sync_stats: ShardSyncStats {
                shards: p.shards as u64,
                window_len: window,
                ..ShardSyncStats::default()
            },
        })
    }

    /// Consumes the simulation and assembles the outcome (with
    /// [`SimOutcome::sync`] filled in). Call after [`run`](Self::run)
    /// returns [`RunProgress::Complete`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] when threads remain blocked.
    pub fn finish(mut self) -> Result<SimOutcome, SimError> {
        if let Some(err) = self.take_error() {
            return Err(err);
        }
        let n = self.owner.len();
        if self.finished < n {
            return Err(SimError::Deadlock {
                blocked: (0..n)
                    .filter(|&i| self.thread(i).phase != Phase::Done)
                    .map(|i| self.thread(i).name.clone())
                    .collect(),
            });
        }
        let mems: Vec<&MemorySystem> = self.shards.iter().map(|s| &s.state.mem).collect();
        let mem = merged_memory(&self.canon, &mems, &self.ctr_bases, &self.master_owner);
        let mut rts: Vec<ThreadRt> = Vec::with_capacity(n);
        for i in 0..n {
            let s = self.owner[i];
            rts.push(self.shards[s].state.threads[i].take().expect("thread home"));
        }
        let makespan = rts
            .iter()
            .filter_map(|t| t.end)
            .max()
            .unwrap_or(Cycle::ZERO);
        let threads = rts
            .into_iter()
            .map(|t| ThreadMetrics {
                name: t.name,
                placement: t.placement,
                start: t.start,
                end: t.end.expect("all threads finished"),
                ret: t.ret,
                body: t.body,
                stats: OnceCell::new(),
            })
            .collect();
        Ok(SimOutcome {
            makespan,
            threads,
            stats: OnceCell::new(),
            buffer_vas: self.buffer_vas,
            mem,
            os: self.os.take().expect("os home"),
            asid: self.asid,
            shootdowns: self.shootdowns,
            sync: Some(self.sync_stats),
        })
    }
}

/// Simulates a design on the sharded engine to completion (resuming
/// transparently through `checkpoint_every` pauses), regardless of the
/// planner outcome — a 1-shard plan still runs through the coordinator
/// (useful as its own degenerate oracle).
///
/// # Errors
///
/// Same contract as [`crate::sim::simulate`].
pub fn simulate_sharded(
    design: &SystemDesign,
    cfg: &SimConfig,
    mode: ExecMode,
) -> Result<SimOutcome, SimError> {
    let mut sim = ShardedSim::new(design, cfg, mode)?;
    while !matches!(sim.run()?, RunProgress::Complete) {}
    sim.finish()
}
