//! The multiprocessor CPU pool.
//!
//! Cores are FCFS calendars: a software-thread slice (or a delegate-thread
//! service) books the least-loaded core, paying a context-switch penalty
//! when the core last ran a different thread. This captures what the
//! evaluation needs — CPU serialization when threads outnumber cores, and
//! delegate work competing with application software threads.

use svmsyn_sim::{Cycle, FcfsResource, StatSet};

use crate::sync::ThreadId;

/// The pool of CPU cores.
///
/// # Example
///
/// ```
/// use svmsyn_os::sched::CpuPool;
/// use svmsyn_os::sync::ThreadId;
/// use svmsyn_sim::Cycle;
/// let mut pool = CpuPool::new(2, 800);
/// let (_, d1) = pool.run_slice(ThreadId(1), Cycle(0), 1000);
/// let (_, d2) = pool.run_slice(ThreadId(2), Cycle(0), 1000);
/// // Two cores: both slices run concurrently.
/// assert_eq!(d1, d2);
/// let (s3, _) = pool.run_slice(ThreadId(3), Cycle(0), 1000);
/// assert!(s3 > Cycle(0), "third thread waits for a core");
/// ```
#[derive(Debug, Clone)]
pub struct CpuPool {
    cores: Vec<FcfsResource>,
    last_thread: Vec<Option<ThreadId>>,
    context_switch: u64,
    switches: u64,
    slices: u64,
}

impl CpuPool {
    /// Creates a pool of `cores` cores with the given context-switch cost.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize, context_switch: u64) -> Self {
        assert!(cores > 0, "need at least one core");
        CpuPool {
            cores: (0..cores)
                .map(|i| FcfsResource::new(format!("cpu{i}")))
                .collect(),
            last_thread: vec![None; cores],
            context_switch,
            switches: 0,
            slices: 0,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Books `len` cycles of CPU time for `tid` arriving at `now` on the
    /// least-loaded core. Returns `(start, done)`; a context switch is
    /// prepended when the core last ran a different thread.
    pub fn run_slice(&mut self, tid: ThreadId, now: Cycle, len: u64) -> (Cycle, Cycle) {
        self.slices += 1;
        let core = (0..self.cores.len())
            .min_by_key(|&i| self.cores[i].next_free().max(now))
            .expect("at least one core");
        let switch = if self.last_thread[core] == Some(tid) {
            0
        } else {
            self.switches += u64::from(self.last_thread[core].is_some());
            self.context_switch
        };
        self.last_thread[core] = Some(tid);
        let (start, done) = self.cores[core].acquire(now, switch + len);
        (start + switch, done)
    }

    /// Aggregate core utilization over `elapsed`.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if self.cores.is_empty() {
            return 0.0;
        }
        self.cores
            .iter()
            .map(|c| c.utilization(elapsed))
            .sum::<f64>()
            / self.cores.len() as f64
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("cores", self.cores.len() as f64);
        s.put("slices", self.slices as f64);
        s.put("context_switches", self.switches as f64);
        s.put(
            "busy_cycles",
            self.cores.iter().map(|c| c.busy_cycles()).sum::<u64>() as f64,
        );
        s
    }
}

// ----------------------------------------------------------------------
// Checkpoint serialization.
// ----------------------------------------------------------------------

impl CpuPool {
    /// Serializes per-core calendars and thread affinities plus the
    /// counters. Core count and context-switch cost are config-side and
    /// re-supplied at restore.
    pub fn save_state(&self, w: &mut svmsyn_snap::SnapWriter) {
        use svmsyn_snap::Snap;
        self.cores.save(w);
        self.last_thread.save(w);
        w.put_u64(self.switches);
        w.put_u64(self.slices);
    }

    /// Rebuilds a pool captured by [`save_state`](Self::save_state) under
    /// the design's core count and context-switch cost.
    pub fn restore_state(
        cores: usize,
        context_switch: u64,
        r: &mut svmsyn_snap::SnapReader<'_>,
    ) -> Result<Self, svmsyn_snap::SnapError> {
        use svmsyn_snap::{Snap, SnapError};
        let mut p = CpuPool::new(cores, context_switch);
        p.cores = Vec::load(r)?;
        p.last_thread = Vec::load(r)?;
        if p.cores.len() != cores || p.last_thread.len() != cores {
            return Err(SnapError::Corrupt("cpu pool core count"));
        }
        p.switches = r.take_u64()?;
        p.slices = r.take_u64()?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_thread_back_to_back_pays_no_switch() {
        let mut p = CpuPool::new(1, 800);
        let (_, d1) = p.run_slice(ThreadId(1), Cycle(0), 100);
        let (s2, d2) = p.run_slice(ThreadId(1), d1, 100);
        assert_eq!(s2, d1);
        assert_eq!(d2 - s2, Cycle(100));
        assert_eq!(p.stats().get("context_switches"), Some(0.0));
    }

    #[test]
    fn different_thread_pays_switch() {
        let mut p = CpuPool::new(1, 800);
        let (_, d1) = p.run_slice(ThreadId(1), Cycle(0), 100);
        let (s2, _) = p.run_slice(ThreadId(2), d1, 100);
        assert_eq!(s2 - d1, Cycle(800));
        assert_eq!(p.stats().get("context_switches"), Some(1.0));
    }

    #[test]
    fn cores_load_balance() {
        let mut p = CpuPool::new(2, 0);
        let (s1, _) = p.run_slice(ThreadId(1), Cycle(0), 1000);
        let (s2, _) = p.run_slice(ThreadId(2), Cycle(0), 1000);
        let (s3, _) = p.run_slice(ThreadId(3), Cycle(0), 1000);
        assert_eq!(s1, Cycle(0));
        assert_eq!(s2, Cycle(0));
        assert_eq!(s3, Cycle(1000));
        assert!(p.utilization(Cycle(2000)) > 0.7);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        CpuPool::new(0, 0);
    }
}
