//! # svmsyn-os — the simulated operating system
//!
//! The software half of the paper's execution model:
//!
//! * [`frame`] — the physical frame allocator (singles + contiguous runs for
//!   pinned DMA buffers).
//! * [`addrspace`] — VMAs, real page-table maintenance in simulated DRAM,
//!   demand paging, pinned mappings.
//! * [`costs`] — the OS cost model in fabric cycles (interrupt, delegate,
//!   fault service — the numbers behind Table 3).
//! * [`swap`] — the swap device holding reclaimed page contents.
//! * [`reclaim`] — the resident-page registry walked by the second-chance
//!   (clock) evictor.
//! * [`sync`] — mutexes, semaphores, barriers, mailboxes with wait queues,
//!   shared by software and hardware threads.
//! * [`sched`] — the multiprocessor CPU pool (FCFS calendars per core).
//! * [`cpu`] — the in-order CPU execution model used for software baselines:
//!   same kernel IR, CPI table + L1 cache + CPU TLB.
//! * [`os`] — the [`Os`] façade tying it all together.
//!
//! # Example
//!
//! ```
//! use svmsyn_mem::{MemConfig, MemorySystem};
//! use svmsyn_os::{Os, OsConfig};
//! use svmsyn_sim::Cycle;
//!
//! let mut mem = MemorySystem::new(MemConfig::default());
//! let mut os = Os::new(&OsConfig::default(), &mem);
//! let asid = os.create_space(&mut mem).unwrap();
//! let va = os.mmap(asid, 4096, true, false, &mut mem).unwrap();
//! // A hardware thread faulting on the fresh page gets it serviced:
//! let done = os.service_fault(asid, va, true, true, &mut mem, Cycle(0)).unwrap();
//! assert!(done.0 >= os.costs.hw_fault_total());
//! ```

pub mod addrspace;
pub mod costs;
pub mod cpu;
pub mod frame;
pub mod os;
pub mod reclaim;
pub mod sched;
pub mod swap;
pub mod sync;

pub use addrspace::{AddressSpace, Backing, FaultResolution, OsError, Sigsegv, Vma};
pub use costs::OsCosts;
pub use cpu::{CacheConfig, CpuCosts, L1Cache, SliceEnd, SwExec, SwExecConfig};
pub use frame::{FrameAllocator, FrameError};
pub use os::{AllocPolicy, Os, OsConfig};
pub use sched::CpuPool;
pub use swap::SwapDevice;
pub use sync::{SyncResult, SyncTable, ThreadId, Wake};
