//! The resident-page registry behind frame reclaim.
//!
//! [`ResidentSet`] is the OS's reverse map: every reclaimable data page
//! (anonymous, not pinned, never a page-table frame) is recorded as
//! `frame → (asid, va)` when it is mapped. A clock hand walks the set in
//! insertion order; the second-chance policy itself (checking and clearing
//! the PTE accessed bit) lives in [`Os`](crate::os::Os), which owns the
//! address spaces the PTEs belong to — this module only provides the
//! mechanical registry operations.

use svmsyn_mem::VirtAddr;
use svmsyn_vm::tlb::Asid;

/// One reclaimable resident page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resident {
    /// Physical frame holding the page.
    pub frame: u64,
    /// Owning address space.
    pub asid: Asid,
    /// Page-aligned virtual address within that space.
    pub va: VirtAddr,
}

/// The registry of reclaimable pages with a clock hand.
#[derive(Debug, Clone, Default)]
pub struct ResidentSet {
    pages: Vec<Resident>,
    hand: usize,
}

impl ResidentSet {
    /// An empty registry.
    pub fn new() -> ResidentSet {
        ResidentSet::default()
    }

    /// Number of registered pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Registers a freshly mapped page.
    pub fn insert(&mut self, r: Resident) {
        self.pages.push(r);
    }

    /// The page under the clock hand, if any.
    pub fn current(&self) -> Option<Resident> {
        self.pages.get(self.hand).copied()
    }

    /// Advances the clock hand one position (wrapping).
    pub fn advance(&mut self) {
        if !self.pages.is_empty() {
            self.hand = (self.hand + 1) % self.pages.len();
        }
    }

    /// Removes and returns the page under the hand.
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty.
    pub fn remove_current(&mut self) -> Resident {
        let r = self.pages.swap_remove(self.hand);
        if self.hand >= self.pages.len() {
            self.hand = 0;
        }
        r
    }
}

// ----------------------------------------------------------------------
// Checkpoint serialization.
// ----------------------------------------------------------------------

impl svmsyn_snap::Snap for Resident {
    fn save(&self, w: &mut svmsyn_snap::SnapWriter) {
        w.put_u64(self.frame);
        self.asid.save(w);
        w.put_u64(self.va.0);
    }

    fn load(r: &mut svmsyn_snap::SnapReader<'_>) -> Result<Self, svmsyn_snap::SnapError> {
        Ok(Resident {
            frame: r.take_u64()?,
            asid: Asid::load(r)?,
            va: VirtAddr(r.take_u64()?),
        })
    }
}

impl svmsyn_snap::Snap for ResidentSet {
    fn save(&self, w: &mut svmsyn_snap::SnapWriter) {
        self.pages.save(w);
        w.put_usize(self.hand);
    }

    fn load(r: &mut svmsyn_snap::SnapReader<'_>) -> Result<Self, svmsyn_snap::SnapError> {
        let pages: Vec<Resident> = Vec::load(r)?;
        let hand = r.take_usize()?;
        if hand >= pages.len().max(1) {
            return Err(svmsyn_snap::SnapError::Corrupt("resident-set clock hand"));
        }
        Ok(ResidentSet { pages, hand })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(frame: u64) -> Resident {
        Resident {
            frame,
            asid: Asid(1),
            va: VirtAddr(frame << 12),
        }
    }

    #[test]
    fn hand_wraps_and_removal_keeps_hand_valid() {
        let mut s = ResidentSet::new();
        for f in 0..3 {
            s.insert(page(f));
        }
        assert_eq!(s.current().unwrap().frame, 0);
        s.advance();
        s.advance();
        assert_eq!(s.current().unwrap().frame, 2);
        // Removing the last element must wrap the hand back to 0.
        let r = s.remove_current();
        assert_eq!(r.frame, 2);
        assert_eq!(s.current().unwrap().frame, 0);
        s.advance();
        assert_eq!(s.current().unwrap().frame, 1);
        s.remove_current();
        s.remove_current();
        assert!(s.is_empty());
        assert_eq!(s.current(), None);
        s.advance(); // no-op on empty
    }
}
