//! The physical frame allocator.
//!
//! A free-list allocator for single frames (page tables, demand-paged
//! anonymous pages) plus a bump region for physically *contiguous*
//! allocations — the pinned DMA buffers that the copy-based baseline needs.

use svmsyn_mem::{PhysAddr, PAGE_SIZE};

/// Why a frame allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// No free frames remain.
    OutOfFrames,
    /// No contiguous run of the requested length remains.
    NoContiguousRun {
        /// Frames requested.
        requested: u64,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::OutOfFrames => write!(f, "out of physical frames"),
            FrameError::NoContiguousRun { requested } => {
                write!(f, "no contiguous run of {requested} frames")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Allocates physical frames from `[base_frame, base_frame + frames)`.
///
/// Singles come from a LIFO free list fed by a bump pointer from the low
/// end; contiguous runs bump from the high end downward, so the two kinds
/// do not fragment each other.
///
/// # Example
///
/// ```
/// use svmsyn_os::frame::FrameAllocator;
/// let mut fa = FrameAllocator::new(16, 1024);
/// let f = fa.alloc().unwrap();
/// assert!(f >= 16);
/// fa.free(f);
/// let run = fa.alloc_contiguous(8).unwrap();
/// assert!(run.is_page_aligned());
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    low_next: u64,
    high_next: u64, // exclusive upper bound for contiguous bump
    free_list: Vec<u64>,
    allocated: u64,
    high_water: u64,
    total: u64,
}

impl FrameAllocator {
    /// Creates an allocator over `frames` frames starting at `base_frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    pub fn new(base_frame: u64, frames: u64) -> Self {
        assert!(frames > 0, "need at least one frame");
        FrameAllocator {
            low_next: base_frame,
            high_next: base_frame + frames,
            free_list: Vec::new(),
            allocated: 0,
            high_water: 0,
            total: frames,
        }
    }

    /// Allocates one frame.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::OutOfFrames`] when exhausted.
    pub fn alloc(&mut self) -> Result<u64, FrameError> {
        let frame = match self.free_list.pop() {
            Some(f) => f,
            None => {
                if self.low_next >= self.high_next {
                    return Err(FrameError::OutOfFrames);
                }
                let f = self.low_next;
                self.low_next += 1;
                f
            }
        };
        self.allocated += 1;
        self.high_water = self.high_water.max(self.allocated);
        Ok(frame)
    }

    /// Returns a frame to the free list.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if nothing is allocated — a double free.
    pub fn free(&mut self, frame: u64) {
        debug_assert!(self.allocated > 0, "free with nothing allocated");
        debug_assert!(
            !self.free_list.contains(&frame),
            "double free of frame {frame}"
        );
        self.allocated -= 1;
        self.free_list.push(frame);
    }

    /// Allocates `count` physically contiguous frames and returns the base
    /// address of the run (for pinned DMA buffers).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::NoContiguousRun`] when the bump regions would
    /// collide.
    pub fn alloc_contiguous(&mut self, count: u64) -> Result<PhysAddr, FrameError> {
        if count == 0 || self.high_next.saturating_sub(count) < self.low_next {
            return Err(FrameError::NoContiguousRun { requested: count });
        }
        self.high_next -= count;
        self.allocated += count;
        self.high_water = self.high_water.max(self.allocated);
        Ok(PhysAddr(self.high_next * PAGE_SIZE))
    }

    /// Frames currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Peak simultaneous allocation.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Frames still available (free list + both bump regions).
    pub fn available(&self) -> u64 {
        self.free_list.len() as u64 + (self.high_next - self.low_next)
    }

    /// Total managed frames.
    pub fn total(&self) -> u64 {
        self.total
    }
}

// ----------------------------------------------------------------------
// Checkpoint serialization.
// ----------------------------------------------------------------------

impl svmsyn_snap::Snap for FrameAllocator {
    fn save(&self, w: &mut svmsyn_snap::SnapWriter) {
        w.put_u64(self.low_next);
        w.put_u64(self.high_next);
        self.free_list.save(w);
        w.put_u64(self.allocated);
        w.put_u64(self.high_water);
        w.put_u64(self.total);
    }

    fn load(r: &mut svmsyn_snap::SnapReader<'_>) -> Result<Self, svmsyn_snap::SnapError> {
        let fa = FrameAllocator {
            low_next: r.take_u64()?,
            high_next: r.take_u64()?,
            free_list: Vec::load(r)?,
            allocated: r.take_u64()?,
            high_water: r.take_u64()?,
            total: r.take_u64()?,
        };
        if fa.low_next > fa.high_next || fa.total == 0 {
            return Err(svmsyn_snap::SnapError::Corrupt("frame allocator bounds"));
        }
        Ok(fa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut fa = FrameAllocator::new(10, 4);
        let a = fa.alloc().unwrap();
        let b = fa.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(fa.allocated(), 2);
        fa.free(a);
        assert_eq!(fa.allocated(), 1);
        let c = fa.alloc().unwrap();
        assert_eq!(c, a, "LIFO reuse");
        assert_eq!(fa.high_water(), 2);
    }

    #[test]
    fn exhaustion() {
        let mut fa = FrameAllocator::new(0, 2);
        fa.alloc().unwrap();
        fa.alloc().unwrap();
        assert_eq!(fa.alloc(), Err(FrameError::OutOfFrames));
        assert_eq!(fa.available(), 0);
    }

    #[test]
    fn contiguous_comes_from_the_top() {
        let mut fa = FrameAllocator::new(0, 100);
        let run = fa.alloc_contiguous(10).unwrap();
        assert_eq!(run, PhysAddr(90 * PAGE_SIZE));
        let single = fa.alloc().unwrap();
        assert_eq!(single, 0, "singles bump from the bottom");
        assert_eq!(fa.allocated(), 11);
    }

    #[test]
    fn contiguous_collision_detected() {
        let mut fa = FrameAllocator::new(0, 8);
        for _ in 0..6 {
            fa.alloc().unwrap();
        }
        assert!(matches!(
            fa.alloc_contiguous(4),
            Err(FrameError::NoContiguousRun { requested: 4 })
        ));
        assert!(fa.alloc_contiguous(2).is_ok());
    }

    #[test]
    fn never_hands_out_same_frame_twice() {
        let mut fa = FrameAllocator::new(0, 64);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            assert!(seen.insert(fa.alloc().unwrap()));
        }
    }

    #[test]
    fn errors_display() {
        assert!(FrameError::OutOfFrames.to_string().contains("out of"));
        assert!(FrameError::NoContiguousRun { requested: 3 }
            .to_string()
            .contains("contiguous"));
    }
}
