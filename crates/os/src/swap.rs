//! The swap device: a slot-addressed page store backing reclaimed frames.
//!
//! Functionally the device is a map from slot index to the 4 KiB of page
//! contents captured at swap-out; timing is charged by the caller from
//! [`OsCosts`](crate::costs::OsCosts) (`swap_out` / `swap_in`) and recorded
//! here as device busy time. Slots are recycled on swap-in, so the live
//! footprint tracks the number of pages currently parked on the device.

use svmsyn_mem::{MemorySystem, PhysAddr, PAGE_SIZE};
use svmsyn_sim::StatSet;

/// A simulated swap device holding evicted page contents.
#[derive(Debug, Clone, Default)]
pub struct SwapDevice {
    slots: Vec<Option<Vec<u8>>>,
    free: Vec<u64>,
    swap_outs: u64,
    swap_ins: u64,
    busy_cycles: u64,
}

impl SwapDevice {
    /// An empty device.
    pub fn new() -> SwapDevice {
        SwapDevice::default()
    }

    /// Captures the page at `pa` into a fresh slot and returns the slot
    /// index. `cost` is the device busy time charged for the transfer.
    ///
    /// # Panics
    ///
    /// Panics if more than 2^20 slots are simultaneously live (the swapped
    /// PTE encoding carries a 20-bit slot index).
    pub fn store(&mut self, mem: &MemorySystem, pa: PhysAddr, cost: u64) -> u64 {
        let mut page = vec![0u8; PAGE_SIZE as usize];
        mem.dump(pa, &mut page);
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(page);
                s
            }
            None => {
                self.slots.push(Some(page));
                (self.slots.len() - 1) as u64
            }
        };
        assert!(slot < (1 << 20), "swap device exceeded 2^20 live slots");
        self.swap_outs += 1;
        self.busy_cycles += cost;
        slot
    }

    /// Restores slot `slot` into the page at `pa` and recycles the slot.
    /// `cost` is the device busy time charged for the transfer.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not live (a swapped PTE referencing a recycled
    /// slot would be an OS bookkeeping bug).
    pub fn fetch(&mut self, mem: &mut MemorySystem, slot: u64, pa: PhysAddr, cost: u64) {
        let page = self.slots[slot as usize]
            .take()
            .expect("swap-in from a slot that is not live");
        mem.load(pa, &page);
        self.free.push(slot);
        self.swap_ins += 1;
        self.busy_cycles += cost;
    }

    /// Read-only view of a live slot's page contents — post-run data
    /// extraction without forcing a swap-in.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not live.
    pub fn peek(&self, slot: u64) -> &[u8] {
        self.slots[slot as usize]
            .as_deref()
            .expect("peek of a slot that is not live")
    }

    /// Pages written out so far.
    pub fn swap_outs(&self) -> u64 {
        self.swap_outs
    }

    /// Pages read back so far.
    pub fn swap_ins(&self) -> u64 {
        self.swap_ins
    }

    /// Total device busy time in fabric cycles.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Slots currently holding a page.
    pub fn live_slots(&self) -> u64 {
        (self.slots.len() - self.free.len()) as u64
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("swap_outs", self.swap_outs as f64);
        s.put("swap_ins", self.swap_ins as f64);
        s.put("busy_cycles", self.busy_cycles as f64);
        s.put("live_slots", self.live_slots() as f64);
        s
    }
}

// ----------------------------------------------------------------------
// Checkpoint serialization.
// ----------------------------------------------------------------------

impl SwapDevice {
    /// Serializes every slot (live page contents or a tombstone), the free
    /// list and the counters. Slot indices are positional, so the encoding
    /// preserves them exactly.
    pub fn save_state(&self, w: &mut svmsyn_snap::SnapWriter) {
        use svmsyn_snap::Snap;
        w.put_usize(self.slots.len());
        for s in &self.slots {
            match s {
                None => w.put_bool(false),
                Some(page) => {
                    w.put_bool(true);
                    w.put_raw(page);
                }
            }
        }
        self.free.save(w);
        w.put_u64(self.swap_outs);
        w.put_u64(self.swap_ins);
        w.put_u64(self.busy_cycles);
    }

    /// Rebuilds a device captured by [`save_state`](Self::save_state).
    pub fn restore_state(
        r: &mut svmsyn_snap::SnapReader<'_>,
    ) -> Result<Self, svmsyn_snap::SnapError> {
        use svmsyn_snap::{Snap, SnapError};
        let n = r.take_len()?;
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            slots.push(if r.take_bool()? {
                Some(r.take_raw(PAGE_SIZE as usize)?.to_vec())
            } else {
                None
            });
        }
        let free: Vec<u64> = Vec::load(r)?;
        for &f in &free {
            if f as usize >= slots.len() || slots[f as usize].is_some() {
                return Err(SnapError::Corrupt("swap free list"));
            }
        }
        Ok(SwapDevice {
            slots,
            free,
            swap_outs: r.take_u64()?,
            swap_ins: r.take_u64()?,
            busy_cycles: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svmsyn_mem::MemConfig;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemConfig {
            size_bytes: 1 << 20,
            ..MemConfig::default()
        })
    }

    #[test]
    fn store_fetch_roundtrips_contents() {
        let mut m = mem();
        let mut dev = SwapDevice::new();
        let src = PhysAddr(3 * PAGE_SIZE);
        let data: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 251) as u8).collect();
        m.load(src, &data);
        let slot = dev.store(&m, src, 100);
        // Clobber the frame, then restore elsewhere.
        m.zero(src, PAGE_SIZE);
        let dst = PhysAddr(5 * PAGE_SIZE);
        dev.fetch(&mut m, slot, dst, 150);
        let mut back = vec![0u8; PAGE_SIZE as usize];
        m.dump(dst, &mut back);
        assert_eq!(back, data);
        assert_eq!(dev.swap_outs(), 1);
        assert_eq!(dev.swap_ins(), 1);
        assert_eq!(dev.busy_cycles(), 250);
        assert_eq!(dev.live_slots(), 0);
    }

    #[test]
    fn slots_are_recycled() {
        let mut m = mem();
        let mut dev = SwapDevice::new();
        let pa = PhysAddr(PAGE_SIZE);
        let a = dev.store(&m, pa, 1);
        dev.fetch(&mut m, a, pa, 1);
        let b = dev.store(&m, pa, 1);
        assert_eq!(a, b, "freed slot is reused");
        assert_eq!(dev.live_slots(), 1);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn double_fetch_panics() {
        let mut m = mem();
        let mut dev = SwapDevice::new();
        let pa = PhysAddr(PAGE_SIZE);
        let s = dev.store(&m, pa, 1);
        dev.fetch(&mut m, s, pa, 1);
        dev.fetch(&mut m, s, pa, 1);
    }
}
