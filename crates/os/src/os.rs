//! The OS façade: address spaces, frames, sync, CPUs, fault service.

use svmsyn_mem::{MemorySystem, PhysAddr, VirtAddr, PAGE_SIZE};
use svmsyn_sim::{Cycle, StatSet};
use svmsyn_vm::tlb::Asid;

use crate::addrspace::{AddressSpace, FaultResolution, OsError, Sigsegv};
use crate::costs::OsCosts;
use crate::frame::FrameAllocator;
use crate::sched::CpuPool;
use crate::sync::SyncTable;

/// OS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsConfig {
    /// CPU cores available to software threads and delegates.
    pub cores: usize,
    /// The cost model.
    pub costs: OsCosts,
    /// Low physical frames reserved (boot firmware, kernel image).
    pub reserved_frames: u64,
}

impl Default for OsConfig {
    /// Two cores (Zynq-7000 shape), default costs, 16 reserved frames.
    fn default() -> Self {
        OsConfig {
            cores: 2,
            costs: OsCosts::default(),
            reserved_frames: 16,
        }
    }
}

/// The simulated operating system.
///
/// # Example
///
/// ```
/// use svmsyn_mem::{MemConfig, MemorySystem};
/// use svmsyn_os::{Os, OsConfig};
/// let mut mem = MemorySystem::new(MemConfig::default());
/// let mut os = Os::new(&OsConfig::default(), &mem);
/// let asid = os.create_space(&mut mem).unwrap();
/// let va = os.mmap(asid, 8192, true, false, &mut mem).unwrap();
/// assert!(va.0 > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Os {
    /// The cost model (public: the simulation loop charges from it).
    pub costs: OsCosts,
    /// Physical frame allocator.
    pub frames: FrameAllocator,
    /// Synchronization objects.
    pub sync: SyncTable,
    /// CPU cores.
    pub cpus: CpuPool,
    spaces: Vec<AddressSpace>,
    hw_faults: u64,
    sw_faults: u64,
    segv: u64,
}

impl Os {
    /// Boots the OS over the given memory system.
    pub fn new(cfg: &OsConfig, mem: &MemorySystem) -> Os {
        let total_frames = mem.size() / PAGE_SIZE;
        Os {
            costs: cfg.costs,
            frames: FrameAllocator::new(cfg.reserved_frames, total_frames - cfg.reserved_frames),
            sync: SyncTable::new(),
            cpus: CpuPool::new(cfg.cores, cfg.costs.context_switch),
            spaces: Vec::new(),
            hw_faults: 0,
            sw_faults: 0,
            segv: 0,
        }
    }

    /// Creates a process address space.
    ///
    /// # Errors
    ///
    /// Returns [`OsError`] on frame exhaustion.
    pub fn create_space(&mut self, mem: &mut MemorySystem) -> Result<Asid, OsError> {
        let asid = Asid(self.spaces.len() as u16 + 1);
        let space = AddressSpace::new(asid, &mut self.frames, mem)?;
        self.spaces.push(space);
        Ok(asid)
    }

    /// The address space for `asid`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown ASID.
    pub fn space(&self, asid: Asid) -> &AddressSpace {
        &self.spaces[(asid.0 - 1) as usize]
    }

    /// Mutable address-space access.
    ///
    /// # Panics
    ///
    /// Panics on an unknown ASID.
    pub fn space_mut(&mut self, asid: Asid) -> &mut AddressSpace {
        &mut self.spaces[(asid.0 - 1) as usize]
    }

    /// `mmap` into the given space.
    ///
    /// # Errors
    ///
    /// See [`AddressSpace::mmap`].
    pub fn mmap(
        &mut self,
        asid: Asid,
        len: u64,
        write: bool,
        populate: bool,
        mem: &mut MemorySystem,
    ) -> Result<VirtAddr, OsError> {
        let idx = (asid.0 - 1) as usize;
        self.spaces[idx].mmap(len, write, populate, &mut self.frames, mem)
    }

    /// Pinned, physically contiguous `mmap` (DMA buffers for the copy-based
    /// baseline). Returns `(virtual base, physical base)`.
    ///
    /// # Errors
    ///
    /// See [`AddressSpace::mmap_pinned`].
    pub fn mmap_pinned(
        &mut self,
        asid: Asid,
        len: u64,
        write: bool,
        mem: &mut MemorySystem,
    ) -> Result<(VirtAddr, PhysAddr), OsError> {
        let idx = (asid.0 - 1) as usize;
        self.spaces[idx].mmap_pinned(len, write, &mut self.frames, mem)
    }

    /// Loads input bytes into a space (functional, pre-timing).
    pub fn copy_in(&mut self, asid: Asid, va: VirtAddr, data: &[u8], mem: &mut MemorySystem) {
        let idx = (asid.0 - 1) as usize;
        self.spaces[idx].copy_in(va, data, &mut self.frames, mem);
    }

    /// Reads result bytes out of a space (functional, post-timing).
    pub fn copy_out(&self, asid: Asid, va: VirtAddr, buf: &mut [u8], mem: &MemorySystem) {
        self.space(asid).copy_out(va, buf, mem);
    }

    /// Services a page fault raised at `now`, charging the hardware-thread
    /// path (interrupt → delegate → service) or the software path.
    /// Returns the completion time of the service.
    ///
    /// # Errors
    ///
    /// Returns [`Sigsegv`] for unservicable faults.
    pub fn service_fault(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        write: bool,
        from_hw: bool,
        mem: &mut MemorySystem,
        now: Cycle,
    ) -> Result<Cycle, Sigsegv> {
        let idx = (asid.0 - 1) as usize;
        let resolution = match self.spaces[idx].handle_fault(va, write, &mut self.frames, mem) {
            Ok(r) => r,
            Err(e) => {
                self.segv += 1;
                return Err(e);
            }
        };
        if from_hw {
            self.hw_faults += 1;
        } else {
            self.sw_faults += 1;
        }
        let base = if from_hw {
            self.costs.hw_fault_total()
        } else {
            self.costs.sw_fault_total()
        };
        let cost = match resolution {
            FaultResolution::MappedFresh => base,
            // Already present (stale TLB): no zeroing needed.
            FaultResolution::AlreadyPresent => base - self.costs.page_zero,
        };
        // The fault handler runs on a CPU core (competing with SW threads).
        let (_, done) = self
            .cpus
            .run_slice(crate::sync::ThreadId(u32::MAX), now, cost);
        Ok(done)
    }

    /// Page faults serviced for hardware threads.
    pub fn hw_faults(&self) -> u64 {
        self.hw_faults
    }

    /// Page faults serviced for software threads.
    pub fn sw_faults(&self) -> u64 {
        self.sw_faults
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("hw_faults", self.hw_faults as f64);
        s.put("sw_faults", self.sw_faults as f64);
        s.put("sigsegv", self.segv as f64);
        s.put("frames_allocated", self.frames.allocated() as f64);
        s.put("frames_high_water", self.frames.high_water() as f64);
        s.put("sync_ops", self.sync.operations() as f64);
        s.put("sync_contended", self.sync.contended() as f64);
        s.absorb("cpus", self.cpus.stats());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svmsyn_mem::MemConfig;

    fn boot() -> (MemorySystem, Os) {
        let mem = MemorySystem::new(MemConfig {
            size_bytes: 64 << 20,
            ..MemConfig::default()
        });
        let os = Os::new(&OsConfig::default(), &mem);
        (mem, os)
    }

    #[test]
    fn spaces_get_distinct_asids_and_roots() {
        let (mut mem, mut os) = boot();
        let a = os.create_space(&mut mem).unwrap();
        let b = os.create_space(&mut mem).unwrap();
        assert_ne!(a, b);
        assert_ne!(os.space(a).root(), os.space(b).root());
    }

    #[test]
    fn fault_service_charges_hw_more_than_sw() {
        let (mut mem, mut os) = boot();
        let asid = os.create_space(&mut mem).unwrap();
        let va = os.mmap(asid, 2 * PAGE_SIZE, true, false, &mut mem).unwrap();
        let hw_done = os
            .service_fault(asid, va, true, true, &mut mem, Cycle(0))
            .unwrap();
        let sw_done = os
            .service_fault(
                asid,
                VirtAddr(va.0 + PAGE_SIZE),
                true,
                false,
                &mut mem,
                hw_done,
            )
            .unwrap();
        assert!(hw_done.0 >= os.costs.hw_fault_total());
        assert!((sw_done - hw_done).0 < hw_done.0, "sw path is cheaper");
        assert_eq!(os.hw_faults(), 1);
        assert_eq!(os.sw_faults(), 1);
    }

    #[test]
    fn refault_on_present_page_skips_zeroing() {
        let (mut mem, mut os) = boot();
        let asid = os.create_space(&mut mem).unwrap();
        let va = os.mmap(asid, PAGE_SIZE, true, false, &mut mem).unwrap();
        let d1 = os
            .service_fault(asid, va, true, true, &mut mem, Cycle(0))
            .unwrap();
        let d2 = os
            .service_fault(asid, va, true, true, &mut mem, d1)
            .unwrap();
        assert!((d2 - d1).0 < (d1 - Cycle(0)).0);
    }

    #[test]
    fn segv_reported_and_counted() {
        let (mut mem, mut os) = boot();
        let asid = os.create_space(&mut mem).unwrap();
        let err = os
            .service_fault(asid, VirtAddr(0xBBBB_0000), false, true, &mut mem, Cycle(0))
            .unwrap_err();
        assert_eq!(err.va, VirtAddr(0xBBBB_0000));
        assert_eq!(os.stats().get("sigsegv"), Some(1.0));
    }

    #[test]
    fn copy_in_out_through_os() {
        let (mut mem, mut os) = boot();
        let asid = os.create_space(&mut mem).unwrap();
        let va = os.mmap(asid, PAGE_SIZE, true, false, &mut mem).unwrap();
        os.copy_in(asid, va, b"payload", &mut mem);
        let mut buf = [0u8; 7];
        os.copy_out(asid, va, &mut buf, &mem);
        assert_eq!(&buf, b"payload");
    }

    #[test]
    fn stats_snapshot_has_cpu_substats() {
        let (mut mem, mut os) = boot();
        let _ = os.create_space(&mut mem).unwrap();
        let s = os.stats();
        assert_eq!(s.get("cpus.cores"), Some(2.0));
        assert!(s.get("frames_allocated").unwrap() >= 1.0);
    }
}
