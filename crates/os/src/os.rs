//! The OS façade: address spaces, frames, sync, CPUs, fault service.

use svmsyn_mem::{MemorySystem, PhysAddr, VirtAddr, PAGE_SIZE};
use svmsyn_sim::{Cycle, StatSet};
use svmsyn_vm::tlb::Asid;

use crate::addrspace::{AddressSpace, OsError, Sigsegv};
use crate::costs::OsCosts;
use crate::frame::{FrameAllocator, FrameError};
use crate::reclaim::{Resident, ResidentSet};
use crate::sched::CpuPool;
use crate::swap::SwapDevice;
use crate::sync::SyncTable;

/// When anonymous VMAs get their physical frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocPolicy {
    /// Demand paging: pages are faulted in on first touch.
    #[default]
    Lazy,
    /// Every `mmap` is populated up front (as if `populate` were always
    /// set) — fewer runtime faults, more pressure at setup.
    Eager,
}

/// OS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsConfig {
    /// CPU cores available to software threads and delegates.
    pub cores: usize,
    /// The cost model.
    pub costs: OsCosts,
    /// Low physical frames reserved (boot firmware, kernel image).
    pub reserved_frames: u64,
    /// Cap on the frames managed by the allocator (`None` = all of DRAM
    /// beyond the reservation). The memory-pressure knob: working sets
    /// beyond the budget survive via reclaim + swap.
    pub frame_budget: Option<u64>,
    /// Eager vs. lazy anonymous allocation.
    pub alloc_policy: AllocPolicy,
}

impl Default for OsConfig {
    /// Two cores (Zynq-7000 shape), default costs, 16 reserved frames,
    /// unconstrained frame budget, lazy allocation.
    fn default() -> Self {
        OsConfig {
            cores: 2,
            costs: OsCosts::default(),
            reserved_frames: 16,
            frame_budget: None,
            alloc_policy: AllocPolicy::Lazy,
        }
    }
}

/// The simulated operating system.
///
/// # Example
///
/// ```
/// use svmsyn_mem::{MemConfig, MemorySystem};
/// use svmsyn_os::{Os, OsConfig};
/// let mut mem = MemorySystem::new(MemConfig::default());
/// let mut os = Os::new(&OsConfig::default(), &mem);
/// let asid = os.create_space(&mut mem).unwrap();
/// let va = os.mmap(asid, 8192, true, false, &mut mem).unwrap();
/// assert!(va.0 > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Os {
    /// The cost model (public: the simulation loop charges from it).
    pub costs: OsCosts,
    /// Physical frame allocator.
    pub frames: FrameAllocator,
    /// Synchronization objects.
    pub sync: SyncTable,
    /// CPU cores.
    pub cpus: CpuPool,
    /// The swap device holding reclaimed page contents.
    pub swap: SwapDevice,
    spaces: Vec<AddressSpace>,
    residents: ResidentSet,
    alloc_policy: AllocPolicy,
    pending_shootdowns: Vec<(Asid, VirtAddr)>,
    hw_faults: u64,
    sw_faults: u64,
    major_faults: u64,
    reclaims: u64,
    clean_evictions: u64,
    segv: u64,
}

/// How a serviced fault was resolved (drives the cost model).
enum FaultKind {
    /// Fresh zeroed page mapped (minor fault).
    Fresh,
    /// Already present (stale TLB); no page work.
    Present,
    /// Swapped page read back from the device (major fault).
    Major,
}

impl Os {
    /// Boots the OS over the given memory system.
    pub fn new(cfg: &OsConfig, mem: &MemorySystem) -> Os {
        let total_frames = mem.size() / PAGE_SIZE;
        let pool = total_frames - cfg.reserved_frames;
        let pool = cfg.frame_budget.map_or(pool, |b| b.min(pool)).max(1);
        Os {
            costs: cfg.costs,
            frames: FrameAllocator::new(cfg.reserved_frames, pool),
            sync: SyncTable::new(),
            cpus: CpuPool::new(cfg.cores, cfg.costs.context_switch),
            swap: SwapDevice::new(),
            spaces: Vec::new(),
            residents: ResidentSet::new(),
            alloc_policy: cfg.alloc_policy,
            pending_shootdowns: Vec::new(),
            hw_faults: 0,
            sw_faults: 0,
            major_faults: 0,
            reclaims: 0,
            clean_evictions: 0,
            segv: 0,
        }
    }

    /// Creates a process address space.
    ///
    /// # Errors
    ///
    /// Returns [`OsError`] on frame exhaustion.
    pub fn create_space(&mut self, mem: &mut MemorySystem) -> Result<Asid, OsError> {
        let asid = Asid(self.spaces.len() as u16 + 1);
        let space = AddressSpace::new(asid, &mut self.frames, mem)?;
        self.spaces.push(space);
        Ok(asid)
    }

    /// The address space for `asid`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown ASID.
    pub fn space(&self, asid: Asid) -> &AddressSpace {
        &self.spaces[(asid.0 - 1) as usize]
    }

    /// Mutable address-space access.
    ///
    /// # Panics
    ///
    /// Panics on an unknown ASID.
    pub fn space_mut(&mut self, asid: Asid) -> &mut AddressSpace {
        &mut self.spaces[(asid.0 - 1) as usize]
    }

    /// `mmap` into the given space. Population (explicit `populate`, or
    /// every call under [`AllocPolicy::Eager`]) routes through the
    /// reclaim-capable fault path, so over-committed populates evict
    /// rather than fail while any victim page exists.
    ///
    /// # Errors
    ///
    /// See [`AddressSpace::mmap`]; additionally [`OsError::Frames`] when
    /// population exhausts physical memory even after reclaim.
    pub fn mmap(
        &mut self,
        asid: Asid,
        len: u64,
        write: bool,
        populate: bool,
        mem: &mut MemorySystem,
    ) -> Result<VirtAddr, OsError> {
        let idx = (asid.0 - 1) as usize;
        let va = self.spaces[idx].mmap(len, write, false, &mut self.frames, mem)?;
        if populate || self.alloc_policy == AllocPolicy::Eager {
            let aligned = VirtAddr(len).page_align_up().0;
            for off in (0..aligned).step_by(PAGE_SIZE as usize) {
                self.fault_page(idx, VirtAddr(va.0 + off), write, mem)
                    .map_err(|_| OsError::Frames(FrameError::OutOfFrames))?;
            }
        }
        Ok(va)
    }

    /// Pinned, physically contiguous `mmap` (DMA buffers for the copy-based
    /// baseline). Returns `(virtual base, physical base)`.
    ///
    /// # Errors
    ///
    /// See [`AddressSpace::mmap_pinned`].
    pub fn mmap_pinned(
        &mut self,
        asid: Asid,
        len: u64,
        write: bool,
        mem: &mut MemorySystem,
    ) -> Result<(VirtAddr, PhysAddr), OsError> {
        let idx = (asid.0 - 1) as usize;
        self.spaces[idx].mmap_pinned(len, write, &mut self.frames, mem)
    }

    /// Loads input bytes into a space (functional, pre-timing), faulting
    /// pages in through the reclaim-capable path.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::Frames`] if a page cannot be provided even after
    /// reclaim, or if the range violates its VMA permissions.
    pub fn copy_in(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        data: &[u8],
        mem: &mut MemorySystem,
    ) -> Result<(), OsError> {
        let idx = (asid.0 - 1) as usize;
        let mut off = 0usize;
        while off < data.len() {
            let cur = VirtAddr(va.0 + off as u64);
            self.fault_page(idx, cur, true, mem)
                .map_err(|_| OsError::Frames(FrameError::OutOfFrames))?;
            let (pa, _) = self.spaces[idx].translate(mem, cur).expect("just mapped");
            let n = ((PAGE_SIZE - cur.page_offset()) as usize).min(data.len() - off);
            mem.load(pa, &data[off..off + n]);
            off += n;
        }
        Ok(())
    }

    /// Reads result bytes out of a space (functional, post-timing). Pages
    /// parked on the swap device at read time are served from their slots
    /// — results survive ending the run under memory pressure.
    pub fn copy_out(&self, asid: Asid, va: VirtAddr, buf: &mut [u8], mem: &MemorySystem) {
        let space = self.space(asid);
        let mut off = 0usize;
        while off < buf.len() {
            let cur = VirtAddr(va.0 + off as u64);
            let n = ((PAGE_SIZE - cur.page_offset()) as usize).min(buf.len() - off);
            let pte = space.leaf_pte(mem, cur);
            if pte.is_swapped() {
                let s = cur.page_offset() as usize;
                buf[off..off + n].copy_from_slice(&self.swap.peek(pte.swap_slot())[s..s + n]);
            } else {
                match space.translate(mem, cur) {
                    Some((pa, _)) => mem.dump(pa, &mut buf[off..off + n]),
                    None => buf[off..off + n].fill(0),
                }
            }
            off += n;
        }
    }

    /// Services a page fault raised at `now`, charging the hardware-thread
    /// path (interrupt → delegate → service) or the software path, plus
    /// swap-device time for major faults and reclaim work under pressure.
    /// Returns the completion time of the service.
    ///
    /// Reclaims performed while servicing queue TLB shootdowns; the
    /// simulation loop drains them into every MMU via
    /// [`take_shootdowns`](Self::take_shootdowns).
    ///
    /// # Errors
    ///
    /// Returns [`Sigsegv`] for unservicable faults — including true OOM,
    /// where even reclaim cannot produce a frame.
    pub fn service_fault(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        write: bool,
        from_hw: bool,
        mem: &mut MemorySystem,
        now: Cycle,
    ) -> Result<Cycle, Sigsegv> {
        let idx = (asid.0 - 1) as usize;
        let (kind, reclaim_cost) = match self.fault_page(idx, va, write, mem) {
            Ok(r) => r,
            Err(e) => {
                self.segv += 1;
                return Err(e);
            }
        };
        if from_hw {
            self.hw_faults += 1;
        } else {
            self.sw_faults += 1;
        }
        let base = if from_hw {
            self.costs.hw_fault_total()
        } else {
            self.costs.sw_fault_total()
        };
        let cost = match kind {
            FaultKind::Fresh => base,
            // Already present (stale TLB): no zeroing needed.
            FaultKind::Present => base - self.costs.page_zero,
            // Swap-in replaces zeroing: contents come from the device.
            FaultKind::Major => base - self.costs.page_zero + self.costs.swap_in,
        } + reclaim_cost;
        // The fault handler runs on a CPU core (competing with SW threads).
        let (_, done) = self
            .cpus
            .run_slice(crate::sync::ThreadId(u32::MAX), now, cost);
        Ok(done)
    }

    /// The reclaim-capable page-provision path shared by fault service,
    /// populate, and `copy_in`: classifies the fault (present / fresh /
    /// major), evicts victims as needed, and registers fresh residents.
    /// Returns the resolution kind and the cycles of reclaim + swap-out
    /// work performed on the way.
    fn fault_page(
        &mut self,
        idx: usize,
        va: VirtAddr,
        write: bool,
        mem: &mut MemorySystem,
    ) -> Result<(FaultKind, u64), Sigsegv> {
        let asid = self.spaces[idx].asid();
        let pte = self.spaces[idx].leaf_pte(mem, va);
        if pte.is_swapped() {
            // Major fault. Check permissions before touching the device so
            // a doomed access does not evict anyone.
            self.spaces[idx].check_access(va, write)?;
            let reclaim_cost = self.ensure_frames(1, mem).ok_or(Sigsegv { va, write })?;
            let frame = self.frames.alloc().map_err(|_| Sigsegv { va, write })?;
            self.swap.fetch(
                mem,
                pte.swap_slot(),
                PhysAddr::from_frame(frame),
                self.costs.swap_in,
            );
            self.spaces[idx]
                .swap_in_page(mem, va, frame, write)
                .expect("permissions pre-checked");
            self.residents.insert(Resident {
                frame,
                asid,
                va: va.page_base(),
            });
            self.major_faults += 1;
            return Ok((FaultKind::Major, reclaim_cost));
        }
        if self.spaces[idx].translate(mem, va).is_some() {
            let r = self.spaces[idx].handle_fault(va, write, &mut self.frames, mem)?;
            debug_assert!(matches!(
                r,
                crate::addrspace::FaultResolution::AlreadyPresent
            ));
            return Ok((FaultKind::Present, 0));
        }
        // Minor fault: permissions first (see above), then make room for
        // the page plus a possible L2 table.
        self.spaces[idx].check_access(va, write)?;
        let needed = if self.spaces[idx].has_l2(mem, va) {
            1
        } else {
            2
        };
        let reclaim_cost = self
            .ensure_frames(needed, mem)
            .ok_or(Sigsegv { va, write })?;
        self.spaces[idx].handle_fault(va, write, &mut self.frames, mem)?;
        let (pa, flags) = self.spaces[idx]
            .translate(mem, va)
            .expect("fault_in just mapped");
        if !flags.pinned {
            self.residents.insert(Resident {
                frame: pa.frame(),
                asid,
                va: va.page_base(),
            });
        }
        Ok((FaultKind::Fresh, reclaim_cost))
    }

    /// Reclaims until at least `needed` frames are free. Returns the total
    /// reclaim cost, or `None` when no victim remains (true OOM).
    fn ensure_frames(&mut self, needed: u64, mem: &mut MemorySystem) -> Option<u64> {
        let mut cost = 0u64;
        while self.frames.available() < needed {
            cost += self.reclaim_one(mem)?;
        }
        Some(cost)
    }

    /// Runs the second-chance clock until one victim is evicted: referenced
    /// pages lose their accessed bit and survive, the first unreferenced
    /// page is written out (dirty) or dropped (clean), its PTE downgraded,
    /// and a TLB shootdown queued. Returns the reclaim cost, or `None`
    /// when nothing is reclaimable.
    fn reclaim_one(&mut self, mem: &mut MemorySystem) -> Option<u64> {
        // Two full passes bound the scan: the first pass at worst clears
        // every accessed bit, the second must then find a victim.
        let mut scans = 2 * self.residents.len() + 1;
        while scans > 0 {
            scans -= 1;
            let r = self.residents.current()?;
            let idx = (r.asid.0 - 1) as usize;
            let pte = self.spaces[idx].leaf_pte(mem, r.va);
            if !pte.is_valid() || pte.pfn() != r.frame || pte.flags().pinned {
                // Stale registry entry (page already evicted or remapped).
                self.residents.remove_current();
                continue;
            }
            if pte.flags().accessed {
                self.spaces[idx].clear_accessed(mem, r.va);
                self.residents.advance();
                continue;
            }
            let r = self.residents.remove_current();
            // Writable pages may have been stored to through the MEMIF
            // without a trap, so treat them as dirty conservatively.
            let dirty = pte.flags().dirty || pte.flags().writable;
            if dirty {
                let slot = self
                    .swap
                    .store(mem, PhysAddr::from_frame(r.frame), self.costs.swap_out);
                self.spaces[idx].swap_out_page(mem, r.va, slot);
            } else {
                self.spaces[idx].evict_page(mem, r.va);
                self.clean_evictions += 1;
            }
            self.frames.free(r.frame);
            self.pending_shootdowns.push((r.asid, r.va));
            self.reclaims += 1;
            return Some(self.costs.reclaim_total(dirty));
        }
        None
    }

    /// Drains the queued TLB shootdowns (one per reclaimed page). The
    /// simulation loop broadcasts each to every MMU and CPU TLB.
    pub fn take_shootdowns(&mut self) -> Vec<(Asid, VirtAddr)> {
        std::mem::take(&mut self.pending_shootdowns)
    }

    /// Queued, not-yet-broadcast shootdowns (peeked by the software CPU
    /// model mid-slice to keep its own TLB coherent).
    pub fn pending_shootdowns(&self) -> &[(Asid, VirtAddr)] {
        &self.pending_shootdowns
    }

    /// Page faults serviced for hardware threads.
    pub fn hw_faults(&self) -> u64 {
        self.hw_faults
    }

    /// Page faults serviced for software threads.
    pub fn sw_faults(&self) -> u64 {
        self.sw_faults
    }

    /// Major faults (swap-ins) serviced so far.
    pub fn major_faults(&self) -> u64 {
        self.major_faults
    }

    /// Pages reclaimed so far (`swap_outs + clean_evictions`).
    pub fn reclaims(&self) -> u64 {
        self.reclaims
    }

    /// Reclaimed pages dropped without a swap-out (clean).
    pub fn clean_evictions(&self) -> u64 {
        self.clean_evictions
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("hw_faults", self.hw_faults as f64);
        s.put("sw_faults", self.sw_faults as f64);
        s.put("major_faults", self.major_faults as f64);
        s.put("reclaims", self.reclaims as f64);
        s.put("clean_evictions", self.clean_evictions as f64);
        s.put("sigsegv", self.segv as f64);
        s.put("frames_allocated", self.frames.allocated() as f64);
        s.put("frames_high_water", self.frames.high_water() as f64);
        s.put("sync_ops", self.sync.operations() as f64);
        s.put("sync_contended", self.sync.contended() as f64);
        s.absorb("cpus", self.cpus.stats());
        s.absorb("swap", self.swap.stats());
        s
    }

    // ------------------------------------------------------------------
    // Checkpoint serialization.
    // ------------------------------------------------------------------

    /// Serializes the OS's full runtime state: allocator, sync objects,
    /// CPU calendars, swap contents, address spaces, resident registry,
    /// queued shootdowns and counters. The cost model and policies are
    /// config-side and re-read from the design at restore — which is what
    /// lets a restored run continue under adjusted pressure parameters.
    pub fn save_state(&self, w: &mut svmsyn_snap::SnapWriter) {
        use svmsyn_snap::Snap;
        self.frames.save(w);
        self.sync.save_state(w);
        self.cpus.save_state(w);
        self.swap.save_state(w);
        w.put_usize(self.spaces.len());
        for s in &self.spaces {
            s.save_state(w);
        }
        self.residents.save(w);
        w.put_usize(self.pending_shootdowns.len());
        for &(asid, va) in &self.pending_shootdowns {
            asid.save(w);
            w.put_u64(va.0);
        }
        w.put_u64(self.hw_faults);
        w.put_u64(self.sw_faults);
        w.put_u64(self.major_faults);
        w.put_u64(self.reclaims);
        w.put_u64(self.clean_evictions);
        w.put_u64(self.segv);
    }

    /// Rebuilds an OS captured by [`save_state`](Self::save_state) under
    /// the design's `cfg`. The memory image (page tables, page contents)
    /// must already have been restored into `mem`'s store.
    pub fn restore_state(
        cfg: &OsConfig,
        r: &mut svmsyn_snap::SnapReader<'_>,
    ) -> Result<Os, svmsyn_snap::SnapError> {
        use svmsyn_snap::Snap;
        let mut os = Os {
            costs: cfg.costs,
            frames: FrameAllocator::load(r)?,
            sync: SyncTable::restore_state(r)?,
            cpus: CpuPool::restore_state(cfg.cores, cfg.costs.context_switch, r)?,
            swap: SwapDevice::restore_state(r)?,
            spaces: Vec::new(),
            residents: ResidentSet::new(),
            alloc_policy: cfg.alloc_policy,
            pending_shootdowns: Vec::new(),
            hw_faults: 0,
            sw_faults: 0,
            major_faults: 0,
            reclaims: 0,
            clean_evictions: 0,
            segv: 0,
        };
        for _ in 0..r.take_len()? {
            os.spaces.push(AddressSpace::restore_state(r)?);
        }
        os.residents = ResidentSet::load(r)?;
        for _ in 0..r.take_len()? {
            let asid = Asid::load(r)?;
            os.pending_shootdowns.push((asid, VirtAddr(r.take_u64()?)));
        }
        os.hw_faults = r.take_u64()?;
        os.sw_faults = r.take_u64()?;
        os.major_faults = r.take_u64()?;
        os.reclaims = r.take_u64()?;
        os.clean_evictions = r.take_u64()?;
        os.segv = r.take_u64()?;
        Ok(os)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svmsyn_mem::MemConfig;

    fn boot() -> (MemorySystem, Os) {
        let mem = MemorySystem::new(MemConfig {
            size_bytes: 64 << 20,
            ..MemConfig::default()
        });
        let os = Os::new(&OsConfig::default(), &mem);
        (mem, os)
    }

    #[test]
    fn spaces_get_distinct_asids_and_roots() {
        let (mut mem, mut os) = boot();
        let a = os.create_space(&mut mem).unwrap();
        let b = os.create_space(&mut mem).unwrap();
        assert_ne!(a, b);
        assert_ne!(os.space(a).root(), os.space(b).root());
    }

    #[test]
    fn fault_service_charges_hw_more_than_sw() {
        let (mut mem, mut os) = boot();
        let asid = os.create_space(&mut mem).unwrap();
        let va = os.mmap(asid, 2 * PAGE_SIZE, true, false, &mut mem).unwrap();
        let hw_done = os
            .service_fault(asid, va, true, true, &mut mem, Cycle(0))
            .unwrap();
        let sw_done = os
            .service_fault(
                asid,
                VirtAddr(va.0 + PAGE_SIZE),
                true,
                false,
                &mut mem,
                hw_done,
            )
            .unwrap();
        assert!(hw_done.0 >= os.costs.hw_fault_total());
        assert!((sw_done - hw_done).0 < hw_done.0, "sw path is cheaper");
        assert_eq!(os.hw_faults(), 1);
        assert_eq!(os.sw_faults(), 1);
    }

    #[test]
    fn refault_on_present_page_skips_zeroing() {
        let (mut mem, mut os) = boot();
        let asid = os.create_space(&mut mem).unwrap();
        let va = os.mmap(asid, PAGE_SIZE, true, false, &mut mem).unwrap();
        let d1 = os
            .service_fault(asid, va, true, true, &mut mem, Cycle(0))
            .unwrap();
        let d2 = os
            .service_fault(asid, va, true, true, &mut mem, d1)
            .unwrap();
        assert!((d2 - d1).0 < (d1 - Cycle(0)).0);
    }

    #[test]
    fn segv_reported_and_counted() {
        let (mut mem, mut os) = boot();
        let asid = os.create_space(&mut mem).unwrap();
        let err = os
            .service_fault(asid, VirtAddr(0xBBBB_0000), false, true, &mut mem, Cycle(0))
            .unwrap_err();
        assert_eq!(err.va, VirtAddr(0xBBBB_0000));
        assert_eq!(os.stats().get("sigsegv"), Some(1.0));
    }

    #[test]
    fn copy_in_out_through_os() {
        let (mut mem, mut os) = boot();
        let asid = os.create_space(&mut mem).unwrap();
        let va = os.mmap(asid, PAGE_SIZE, true, false, &mut mem).unwrap();
        os.copy_in(asid, va, b"payload", &mut mem).unwrap();
        let mut buf = [0u8; 7];
        os.copy_out(asid, va, &mut buf, &mem);
        assert_eq!(&buf, b"payload");
    }

    /// Boot with room for exactly `budget` frames beyond the reservation.
    fn boot_pressured(budget: u64) -> (MemorySystem, Os) {
        let mem = MemorySystem::new(MemConfig {
            size_bytes: 64 << 20,
            ..MemConfig::default()
        });
        let os = Os::new(
            &OsConfig {
                frame_budget: Some(budget),
                ..OsConfig::default()
            },
            &mem,
        );
        (mem, os)
    }

    #[test]
    fn overcommit_survives_via_reclaim_and_swap_preserves_contents() {
        // Budget: 1 root + 1 L2 + 3 data frames. Touch 8 data pages with
        // distinct contents, then read them all back.
        let (mut mem, mut os) = boot_pressured(5);
        let asid = os.create_space(&mut mem).unwrap();
        let va = os.mmap(asid, 8 * PAGE_SIZE, true, false, &mut mem).unwrap();
        for p in 0..8u64 {
            let payload = [p as u8 + 1; 16];
            os.copy_in(asid, VirtAddr(va.0 + p * PAGE_SIZE), &payload, &mut mem)
                .unwrap();
        }
        assert!(os.reclaims() > 0, "over-commit must evict");
        assert!(os.swap.swap_outs() > 0, "dirty pages go to swap");
        // Faulting the early pages back is a major fault and restores data.
        let majors_before = os.major_faults();
        for p in 0..8u64 {
            let mut back = [0u8; 16];
            let page_va = VirtAddr(va.0 + p * PAGE_SIZE);
            if os.space(asid).translate(&mem, page_va).is_none() {
                os.service_fault(asid, page_va, false, true, &mut mem, Cycle(0))
                    .unwrap();
            }
            os.copy_out(asid, page_va, &mut back, &mem);
            assert_eq!(back, [p as u8 + 1; 16], "page {p} contents survive swap");
        }
        assert!(os.major_faults() > majors_before);
        assert_eq!(
            os.reclaims(),
            os.swap.swap_outs() + os.clean_evictions(),
            "every reclaim is a swap-out or a clean eviction"
        );
        assert!(
            !os.pending_shootdowns().is_empty(),
            "reclaims queue shootdowns"
        );
        let n = os.pending_shootdowns().len();
        assert_eq!(os.take_shootdowns().len(), n);
        assert!(os.pending_shootdowns().is_empty());
    }

    #[test]
    fn clean_pages_evict_without_swap() {
        // Read-only pages are always zero, so reclaim drops them for free.
        let (mut mem, mut os) = boot_pressured(4); // root + L2 + 2 data
        let asid = os.create_space(&mut mem).unwrap();
        let va = os
            .mmap(asid, 6 * PAGE_SIZE, false, false, &mut mem)
            .unwrap();
        for p in 0..6u64 {
            os.service_fault(
                asid,
                VirtAddr(va.0 + p * PAGE_SIZE),
                false,
                false,
                &mut mem,
                Cycle(0),
            )
            .unwrap();
        }
        assert!(os.clean_evictions() > 0);
        assert_eq!(os.swap.swap_outs(), 0, "read-only pages never swap out");
        assert_eq!(os.reclaims(), os.clean_evictions());
    }

    #[test]
    fn major_fault_costs_more_than_minor() {
        let (mut mem, mut os) = boot_pressured(4); // root + L2 + 2 data
        let asid = os.create_space(&mut mem).unwrap();
        let va = os.mmap(asid, 4 * PAGE_SIZE, true, false, &mut mem).unwrap();
        let minor_done = os
            .service_fault(asid, va, true, true, &mut mem, Cycle(0))
            .unwrap();
        let minor_cost = minor_done.0;
        // Touch the rest to force page 0 out, then fault it back in.
        for p in 1..4u64 {
            os.service_fault(
                asid,
                VirtAddr(va.0 + p * PAGE_SIZE),
                true,
                true,
                &mut mem,
                Cycle(0),
            )
            .unwrap();
        }
        assert!(os.space(asid).leaf_pte(&mem, va).is_swapped());
        let t0 = Cycle(1_000_000);
        let major_done = os
            .service_fault(asid, va, true, true, &mut mem, t0)
            .unwrap();
        assert!(
            (major_done - t0).0 > minor_cost,
            "swap-in latency must show up in the fault cost"
        );
        assert_eq!(os.major_faults(), 1);
        assert!(os.swap.busy_cycles() > 0);
    }

    #[test]
    fn true_oom_still_segfaults() {
        // Budget of 2: root + L2; no data frame and nothing reclaimable.
        let (mut mem, mut os) = boot_pressured(2);
        let asid = os.create_space(&mut mem).unwrap();
        let va = os.mmap(asid, PAGE_SIZE, true, false, &mut mem).unwrap();
        let err = os
            .service_fault(asid, va, true, true, &mut mem, Cycle(0))
            .unwrap_err();
        assert_eq!(err.va, va);
        assert_eq!(os.stats().get("sigsegv"), Some(1.0));
    }

    #[test]
    fn eager_policy_populates_at_mmap() {
        let mem0 = MemorySystem::new(MemConfig {
            size_bytes: 64 << 20,
            ..MemConfig::default()
        });
        let mut mem = mem0;
        let mut os = Os::new(
            &OsConfig {
                alloc_policy: AllocPolicy::Eager,
                ..OsConfig::default()
            },
            &mem,
        );
        let asid = os.create_space(&mut mem).unwrap();
        let va = os.mmap(asid, 3 * PAGE_SIZE, true, false, &mut mem).unwrap();
        for p in 0..3u64 {
            assert!(
                os.space(asid)
                    .translate(&mem, VirtAddr(va.0 + p * PAGE_SIZE))
                    .is_some(),
                "eager policy maps everything up front"
            );
        }
    }

    #[test]
    fn stats_snapshot_has_cpu_substats() {
        let (mut mem, mut os) = boot();
        let _ = os.create_space(&mut mem).unwrap();
        let s = os.stats();
        assert_eq!(s.get("cpus.cores"), Some(2.0));
        assert!(s.get("frames_allocated").unwrap() >= 1.0);
    }
}
