//! Address spaces: VMAs, page-table maintenance, demand paging.
//!
//! An [`AddressSpace`] owns a first-level page table in simulated DRAM and a
//! list of VMAs. Pages are mapped by writing real PTEs through the
//! [`svmsyn_vm::pte`] codec — the same bytes the hardware walker reads back
//! over the bus. Anonymous VMAs fault pages in on demand; pinned VMAs are
//! backed by physically contiguous, pre-populated frames (the copy-based
//! baseline's DMA buffers).

use svmsyn_mem::{MemorySystem, PhysAddr, VirtAddr, PAGE_SIZE};
use svmsyn_vm::pte::{DirEntry, Pte, PteFlags};
use svmsyn_vm::tlb::Asid;

use crate::frame::{FrameAllocator, FrameError};

/// Lowest mmap virtual address (leaves the null/text area unmapped).
pub const MMAP_BASE: u64 = 0x1000_0000;
/// Exclusive upper bound of the user virtual space.
pub const USER_TOP: u64 = 0xC000_0000;

/// How a VMA is backed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backing {
    /// Demand-paged anonymous memory.
    Anonymous,
    /// Pinned, physically contiguous memory starting at the given base.
    Pinned {
        /// Physical base of the contiguous run.
        base: PhysAddr,
    },
}

/// A virtual memory area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    /// Page-aligned start address.
    pub start: VirtAddr,
    /// Length in bytes (page-aligned).
    pub len: u64,
    /// Whether stores are allowed.
    pub write: bool,
    /// Backing policy.
    pub backing: Backing,
}

impl Vma {
    /// Whether `va` falls inside this area.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va.0 >= self.start.0 && va.0 < self.start.0 + self.len
    }
}

/// Errors from address-space operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OsError {
    /// Physical memory exhausted.
    Frames(FrameError),
    /// The mmap region is exhausted.
    OutOfVirtualSpace,
    /// A zero-length mapping was requested.
    BadLength,
}

impl From<FrameError> for OsError {
    fn from(e: FrameError) -> Self {
        OsError::Frames(e)
    }
}

impl std::fmt::Display for OsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsError::Frames(e) => write!(f, "frame allocation failed: {e}"),
            OsError::OutOfVirtualSpace => write!(f, "mmap region exhausted"),
            OsError::BadLength => write!(f, "zero-length mapping"),
        }
    }
}

impl std::error::Error for OsError {}

/// A fault that cannot be serviced: access outside any VMA or a write to a
/// read-only area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sigsegv {
    /// The faulting address.
    pub va: VirtAddr,
    /// Whether the faulting access was a write.
    pub write: bool,
}

impl std::fmt::Display for Sigsegv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "segmentation fault: {} at {}",
            if self.write { "write" } else { "read" },
            self.va
        )
    }
}

impl std::error::Error for Sigsegv {}

/// Outcome of servicing a page fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultResolution {
    /// A fresh zeroed page was mapped (minor fault).
    MappedFresh,
    /// The page was already present (benign race / stale TLB); nothing to do
    /// beyond a TLB refill.
    AlreadyPresent,
}

/// One simulated process address space.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    asid: Asid,
    root: PhysAddr,
    vmas: Vec<Vma>,
    next_mmap: u64,
    minor_faults: u64,
    mapped_pages: u64,
}

impl AddressSpace {
    /// Creates an empty space: allocates and zeroes the L1 table.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::Frames`] if no frame is available for the root.
    pub fn new(
        asid: Asid,
        frames: &mut FrameAllocator,
        mem: &mut MemorySystem,
    ) -> Result<Self, OsError> {
        let root_frame = frames.alloc()?;
        let root = PhysAddr::from_frame(root_frame);
        mem.zero(root, PAGE_SIZE);
        Ok(AddressSpace {
            asid,
            root,
            vmas: Vec::new(),
            next_mmap: MMAP_BASE,
            minor_faults: 0,
            mapped_pages: 0,
        })
    }

    /// The ASID of this space.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Physical address of the first-level table (what MMUs bind to).
    pub fn root(&self) -> PhysAddr {
        self.root
    }

    /// The VMAs, in creation order.
    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    /// Minor faults serviced so far.
    pub fn minor_faults(&self) -> u64 {
        self.minor_faults
    }

    /// Pages currently mapped.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    fn vma_of(&self, va: VirtAddr) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.contains(va))
    }

    /// Reserves a demand-paged anonymous area of at least `len` bytes.
    /// With `populate`, all pages are faulted in immediately.
    ///
    /// # Errors
    ///
    /// Returns [`OsError`] on zero length, virtual-space exhaustion, or (with
    /// `populate`) frame exhaustion.
    pub fn mmap(
        &mut self,
        len: u64,
        write: bool,
        populate: bool,
        frames: &mut FrameAllocator,
        mem: &mut MemorySystem,
    ) -> Result<VirtAddr, OsError> {
        if len == 0 {
            return Err(OsError::BadLength);
        }
        let len = VirtAddr(len).page_align_up().0;
        if self.next_mmap + len + PAGE_SIZE > USER_TOP {
            return Err(OsError::OutOfVirtualSpace);
        }
        let start = VirtAddr(self.next_mmap);
        self.next_mmap += len + PAGE_SIZE; // guard page between areas
        self.vmas.push(Vma {
            start,
            len,
            write,
            backing: Backing::Anonymous,
        });
        if populate {
            for off in (0..len).step_by(PAGE_SIZE as usize) {
                self.fault_in(VirtAddr(start.0 + off), write, frames, mem)
                    .map_err(|_| OsError::OutOfVirtualSpace)
                    .and(Ok(()))?;
            }
        }
        Ok(start)
    }

    /// Reserves a pinned, physically contiguous, pre-populated area and
    /// returns `(virtual base, physical base)` — the classical DMA buffer.
    ///
    /// # Errors
    ///
    /// Returns [`OsError`] on zero length or exhaustion.
    pub fn mmap_pinned(
        &mut self,
        len: u64,
        write: bool,
        frames: &mut FrameAllocator,
        mem: &mut MemorySystem,
    ) -> Result<(VirtAddr, PhysAddr), OsError> {
        if len == 0 {
            return Err(OsError::BadLength);
        }
        let len = VirtAddr(len).page_align_up().0;
        if self.next_mmap + len + PAGE_SIZE > USER_TOP {
            return Err(OsError::OutOfVirtualSpace);
        }
        let base = frames.alloc_contiguous(len / PAGE_SIZE)?;
        let start = VirtAddr(self.next_mmap);
        self.next_mmap += len + PAGE_SIZE;
        self.vmas.push(Vma {
            start,
            len,
            write,
            backing: Backing::Pinned { base },
        });
        for off in (0..len).step_by(PAGE_SIZE as usize) {
            let pfn = (base.0 + off) / PAGE_SIZE;
            self.install_pte(
                VirtAddr(start.0 + off),
                pfn,
                PteFlags {
                    writable: write,
                    user: true,
                    pinned: true,
                    ..PteFlags::default()
                },
                frames,
                mem,
            )?;
            mem.zero(PhysAddr(base.0 + off), PAGE_SIZE);
        }
        Ok((start, base))
    }

    /// Installs a leaf PTE, allocating the L2 table if needed. Functional
    /// memory writes; callers charge time via the OS cost model.
    fn install_pte(
        &mut self,
        va: VirtAddr,
        pfn: u64,
        flags: PteFlags,
        frames: &mut FrameAllocator,
        mem: &mut MemorySystem,
    ) -> Result<(), OsError> {
        let l1_addr = self.root.offset(4 * va.l1_index() as u64);
        let dir = DirEntry::decode(mem.peek_u32(l1_addr));
        let table = if dir.is_valid() {
            PhysAddr::from_frame(dir.table_pfn())
        } else {
            let tf = frames.alloc()?;
            let table = PhysAddr::from_frame(tf);
            mem.zero(table, PAGE_SIZE);
            mem.poke_u32(l1_addr, DirEntry::table(tf).encode());
            table
        };
        mem.poke_u32(
            table.offset(4 * va.l2_index() as u64),
            Pte::leaf(pfn, flags).encode(),
        );
        self.mapped_pages += 1;
        Ok(())
    }

    /// Whether `va` is covered by a VMA permitting the access (the check
    /// [`handle_fault`](Self::handle_fault) performs before any page work).
    pub(crate) fn check_access(&self, va: VirtAddr, write: bool) -> Result<(), Sigsegv> {
        let vma = self.vma_of(va).ok_or(Sigsegv { va, write })?;
        if write && !vma.write {
            return Err(Sigsegv { va, write });
        }
        Ok(())
    }

    /// Whether an L2 table already covers `va` (capacity planning: a minor
    /// fault without one needs a second frame).
    pub(crate) fn has_l2(&self, mem: &MemorySystem, va: VirtAddr) -> bool {
        self.l2_table(mem, va).is_some()
    }

    /// Physical address of the L2 table covering `va`, if one exists.
    fn l2_table(&self, mem: &MemorySystem, va: VirtAddr) -> Option<PhysAddr> {
        let dir = DirEntry::decode(mem.peek_u32(self.root.offset(4 * va.l1_index() as u64)));
        dir.is_valid()
            .then(|| PhysAddr::from_frame(dir.table_pfn()))
    }

    /// Physical address of the leaf PTE slot for `va`, if its L2 exists.
    fn leaf_slot(&self, mem: &MemorySystem, va: VirtAddr) -> Option<PhysAddr> {
        self.l2_table(mem, va)
            .map(|t| t.offset(4 * va.l2_index() as u64))
    }

    /// The decoded leaf PTE for `va` ([`Pte::INVALID`] if no L2 table is
    /// present). Unlike [`translate`](Self::translate) this exposes
    /// not-present states — the fault handler uses it to tell a swapped
    /// page from a never-mapped one.
    pub fn leaf_pte(&self, mem: &MemorySystem, va: VirtAddr) -> Pte {
        match self.leaf_slot(mem, va) {
            Some(slot) => Pte::decode(mem.peek_u32(slot)),
            None => Pte::INVALID,
        }
    }

    /// Clears the accessed bit of the (present) leaf PTE for `va` — the
    /// clock hand's second-chance pass.
    pub(crate) fn clear_accessed(&mut self, mem: &mut MemorySystem, va: VirtAddr) {
        if let Some(slot) = self.leaf_slot(mem, va) {
            let pte = Pte::decode(mem.peek_u32(slot));
            if pte.is_valid() {
                let flags = PteFlags {
                    accessed: false,
                    ..pte.flags()
                };
                mem.poke_u32(slot, Pte::leaf(pte.pfn(), flags).encode());
            }
        }
    }

    /// Downgrades the present page at `va` to the swapped encoding
    /// recording `slot`. The frame itself is released by the caller.
    ///
    /// # Panics
    ///
    /// Panics if `va` has no L2 table (the page was never mapped).
    pub(crate) fn swap_out_page(&mut self, mem: &mut MemorySystem, va: VirtAddr, slot: u64) {
        let leaf = self.leaf_slot(mem, va).expect("swap-out of unmapped page");
        mem.poke_u32(leaf, Pte::swapped(slot).encode());
        self.mapped_pages -= 1;
    }

    /// Drops the present clean page at `va` back to not-present (its
    /// contents are reproducible by re-zeroing on the next minor fault).
    ///
    /// # Panics
    ///
    /// Panics if `va` has no L2 table.
    pub(crate) fn evict_page(&mut self, mem: &mut MemorySystem, va: VirtAddr) {
        let leaf = self.leaf_slot(mem, va).expect("eviction of unmapped page");
        mem.poke_u32(leaf, Pte::INVALID.encode());
        self.mapped_pages -= 1;
    }

    /// Re-installs the leaf for a swapped-in page at `va` in frame `pfn`,
    /// with the owning VMA's permissions. `write` marks the faulting
    /// access, setting the dirty bit so a later reclaim writes the page
    /// back out.
    ///
    /// # Errors
    ///
    /// Returns [`Sigsegv`] if `va` left every VMA or the access violates
    /// the VMA's permissions (the swap slot is then leaked deliberately —
    /// the process is being killed).
    pub(crate) fn swap_in_page(
        &mut self,
        mem: &mut MemorySystem,
        va: VirtAddr,
        pfn: u64,
        write: bool,
    ) -> Result<(), Sigsegv> {
        let vma = *self.vma_of(va).ok_or(Sigsegv { va, write })?;
        if write && !vma.write {
            return Err(Sigsegv { va, write });
        }
        let leaf = self.leaf_slot(mem, va).expect("swap-in without L2 table");
        let flags = PteFlags {
            writable: vma.write,
            user: true,
            accessed: true,
            dirty: write,
            ..PteFlags::default()
        };
        mem.poke_u32(leaf, Pte::leaf(pfn, flags).encode());
        self.mapped_pages += 1;
        Ok(())
    }

    /// Functional page-table walk (no timing): the mapping for `va`.
    pub fn translate(&self, mem: &MemorySystem, va: VirtAddr) -> Option<(PhysAddr, PteFlags)> {
        let dir = DirEntry::decode(mem.peek_u32(self.root.offset(4 * va.l1_index() as u64)));
        if !dir.is_valid() {
            return None;
        }
        let pte = Pte::decode(
            mem.peek_u32(PhysAddr::from_frame(dir.table_pfn()).offset(4 * va.l2_index() as u64)),
        );
        if !pte.is_valid() {
            return None;
        }
        Some((
            PhysAddr::from_frame(pte.pfn()).offset(va.page_offset()),
            pte.flags(),
        ))
    }

    fn fault_in(
        &mut self,
        va: VirtAddr,
        write: bool,
        frames: &mut FrameAllocator,
        mem: &mut MemorySystem,
    ) -> Result<FaultResolution, Sigsegv> {
        let vma = *self.vma_of(va).ok_or(Sigsegv { va, write })?;
        if write && !vma.write {
            return Err(Sigsegv { va, write });
        }
        if self.translate(mem, va).is_some() {
            return Ok(FaultResolution::AlreadyPresent);
        }
        // Swapped pages must be routed through the major-fault path (the
        // swap device lives on `Os`); zeroing over the entry here would
        // silently drop the page's contents and leak its slot.
        debug_assert!(
            !self.leaf_pte(mem, va).is_swapped(),
            "minor-fault path reached a swapped page"
        );
        let frame = match frames.alloc() {
            Ok(f) => f,
            Err(_) => return Err(Sigsegv { va, write }), // OOM-kill, simplified
        };
        let pa = PhysAddr::from_frame(frame);
        mem.zero(pa, PAGE_SIZE);
        self.install_pte(
            va.page_base(),
            frame,
            PteFlags {
                writable: vma.write,
                user: true,
                // Referenced bit: set on fault service (this simulator's
                // walker does not update it in hardware), cleared by the
                // reclaim clock hand — every fresh page gets one pass of
                // second chance. A write fault dirties the page up front.
                accessed: true,
                dirty: write,
                ..PteFlags::default()
            },
            frames,
            mem,
        )
        .map_err(|_| Sigsegv { va, write })?;
        self.minor_faults += 1;
        Ok(FaultResolution::MappedFresh)
    }

    /// Services a page fault at `va`. Timing is charged by the caller via
    /// [`OsCosts`](crate::costs::OsCosts).
    ///
    /// # Errors
    ///
    /// Returns [`Sigsegv`] for accesses outside any VMA, writes to read-only
    /// areas, or frame exhaustion.
    pub fn handle_fault(
        &mut self,
        va: VirtAddr,
        write: bool,
        frames: &mut FrameAllocator,
        mem: &mut MemorySystem,
    ) -> Result<FaultResolution, Sigsegv> {
        self.fault_in(va, write, frames, mem)
    }

    /// Copies `data` into the space at `va`, faulting pages in as needed
    /// (functional: used to load inputs before timing starts).
    ///
    /// # Panics
    ///
    /// Panics if the range is not covered by writable VMAs.
    pub fn copy_in(
        &mut self,
        va: VirtAddr,
        data: &[u8],
        frames: &mut FrameAllocator,
        mem: &mut MemorySystem,
    ) {
        let mut off = 0usize;
        while off < data.len() {
            let cur = VirtAddr(va.0 + off as u64);
            self.fault_in(cur, true, frames, mem)
                .unwrap_or_else(|e| panic!("copy_in failed: {e}"));
            let (pa, _) = self.translate(mem, cur).expect("just mapped");
            let n = ((PAGE_SIZE - cur.page_offset()) as usize).min(data.len() - off);
            mem.load(pa, &data[off..off + n]);
            off += n;
        }
    }

    /// Copies bytes out of the space into `buf` (functional: used by result
    /// checkers). Unmapped pages read as zero.
    pub fn copy_out(&self, va: VirtAddr, buf: &mut [u8], mem: &MemorySystem) {
        let mut off = 0usize;
        while off < buf.len() {
            let cur = VirtAddr(va.0 + off as u64);
            let n = ((PAGE_SIZE - cur.page_offset()) as usize).min(buf.len() - off);
            match self.translate(mem, cur) {
                Some((pa, _)) => mem.dump(pa, &mut buf[off..off + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
        }
    }
}

// ----------------------------------------------------------------------
// Checkpoint serialization.
// ----------------------------------------------------------------------

impl svmsyn_snap::Snap for Vma {
    fn save(&self, w: &mut svmsyn_snap::SnapWriter) {
        w.put_u64(self.start.0);
        w.put_u64(self.len);
        w.put_bool(self.write);
        match self.backing {
            Backing::Anonymous => w.put_u8(0),
            Backing::Pinned { base } => {
                w.put_u8(1);
                w.put_u64(base.0);
            }
        }
    }

    fn load(r: &mut svmsyn_snap::SnapReader<'_>) -> Result<Self, svmsyn_snap::SnapError> {
        let start = VirtAddr(r.take_u64()?);
        let len = r.take_u64()?;
        let write = r.take_bool()?;
        let backing = match r.take_u8()? {
            0 => Backing::Anonymous,
            1 => Backing::Pinned {
                base: PhysAddr(r.take_u64()?),
            },
            _ => return Err(svmsyn_snap::SnapError::Corrupt("vma backing tag")),
        };
        Ok(Vma {
            start,
            len,
            write,
            backing,
        })
    }
}

impl AddressSpace {
    /// Serializes the space's metadata. The page tables themselves live in
    /// simulated DRAM and travel with the memory image, so only the root
    /// pointer is recorded here.
    pub fn save_state(&self, w: &mut svmsyn_snap::SnapWriter) {
        use svmsyn_snap::Snap;
        self.asid.save(w);
        w.put_u64(self.root.0);
        self.vmas.save(w);
        w.put_u64(self.next_mmap);
        w.put_u64(self.minor_faults);
        w.put_u64(self.mapped_pages);
    }

    /// Rebuilds a space captured by [`save_state`](Self::save_state). No
    /// frames are allocated: the root table already exists in the restored
    /// memory image.
    pub fn restore_state(
        r: &mut svmsyn_snap::SnapReader<'_>,
    ) -> Result<Self, svmsyn_snap::SnapError> {
        use svmsyn_snap::Snap;
        Ok(AddressSpace {
            asid: Asid::load(r)?,
            root: PhysAddr(r.take_u64()?),
            vmas: Vec::load(r)?,
            next_mmap: r.take_u64()?,
            minor_faults: r.take_u64()?,
            mapped_pages: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svmsyn_mem::MemConfig;

    fn setup() -> (MemorySystem, FrameAllocator, AddressSpace) {
        let mut mem = MemorySystem::new(MemConfig {
            size_bytes: 64 << 20,
            ..MemConfig::default()
        });
        let mut fa = FrameAllocator::new(16, 4096);
        let asp = AddressSpace::new(Asid(1), &mut fa, &mut mem).unwrap();
        (mem, fa, asp)
    }

    #[test]
    fn mmap_reserves_but_does_not_map() {
        let (mut mem, mut fa, mut asp) = setup();
        let va = asp
            .mmap(3 * PAGE_SIZE, true, false, &mut fa, &mut mem)
            .unwrap();
        assert_eq!(va.0, MMAP_BASE);
        assert!(asp.translate(&mem, va).is_none());
        assert_eq!(asp.mapped_pages(), 0);
    }

    #[test]
    fn fault_in_maps_zeroed_page() {
        let (mut mem, mut fa, mut asp) = setup();
        let va = asp.mmap(PAGE_SIZE, true, false, &mut fa, &mut mem).unwrap();
        let r = asp.handle_fault(va, true, &mut fa, &mut mem).unwrap();
        assert_eq!(r, FaultResolution::MappedFresh);
        let (pa, flags) = asp.translate(&mem, va).unwrap();
        assert!(flags.writable && flags.user);
        assert_eq!(mem.peek_u32(pa), 0);
        assert_eq!(asp.minor_faults(), 1);
        // Second fault on the same page: already present.
        let r2 = asp.handle_fault(va, false, &mut fa, &mut mem).unwrap();
        assert_eq!(r2, FaultResolution::AlreadyPresent);
        assert_eq!(asp.minor_faults(), 1);
    }

    #[test]
    fn populate_maps_everything_up_front() {
        let (mut mem, mut fa, mut asp) = setup();
        let va = asp
            .mmap(4 * PAGE_SIZE, true, true, &mut fa, &mut mem)
            .unwrap();
        for p in 0..4u64 {
            assert!(asp
                .translate(&mem, VirtAddr(va.0 + p * PAGE_SIZE))
                .is_some());
        }
        assert_eq!(asp.mapped_pages(), 4);
    }

    #[test]
    fn sigsegv_outside_vma_and_on_readonly_write() {
        let (mut mem, mut fa, mut asp) = setup();
        let va = asp
            .mmap(PAGE_SIZE, false, false, &mut fa, &mut mem)
            .unwrap();
        let err = asp
            .handle_fault(VirtAddr(0xB000_0000), false, &mut fa, &mut mem)
            .unwrap_err();
        assert!(!err.write);
        let err = asp.handle_fault(va, true, &mut fa, &mut mem).unwrap_err();
        assert!(err.write);
        assert!(err.to_string().contains("write"));
        // Read fault on the read-only VMA is fine.
        assert!(asp.handle_fault(va, false, &mut fa, &mut mem).is_ok());
    }

    #[test]
    fn pinned_mapping_is_contiguous_and_present() {
        let (mut mem, mut fa, mut asp) = setup();
        let (va, pa) = asp
            .mmap_pinned(4 * PAGE_SIZE, true, &mut fa, &mut mem)
            .unwrap();
        for p in 0..4u64 {
            let (got, flags) = asp.translate(&mem, VirtAddr(va.0 + p * PAGE_SIZE)).unwrap();
            assert_eq!(got, PhysAddr(pa.0 + p * PAGE_SIZE), "physically contiguous");
            assert!(flags.pinned);
        }
    }

    #[test]
    fn copy_in_out_roundtrip() {
        let (mut mem, mut fa, mut asp) = setup();
        let va = asp
            .mmap(3 * PAGE_SIZE, true, false, &mut fa, &mut mem)
            .unwrap();
        // Deliberately unaligned, page-crossing range.
        let data: Vec<u8> = (0..9000u32).map(|i| (i % 251) as u8).collect();
        let target = VirtAddr(va.0 + 100);
        asp.copy_in(target, &data, &mut fa, &mut mem);
        let mut back = vec![0u8; data.len()];
        asp.copy_out(target, &mut back, &mem);
        assert_eq!(back, data);
    }

    #[test]
    fn guard_pages_separate_vmas() {
        let (mut mem, mut fa, mut asp) = setup();
        let a = asp.mmap(PAGE_SIZE, true, false, &mut fa, &mut mem).unwrap();
        let b = asp.mmap(PAGE_SIZE, true, false, &mut fa, &mut mem).unwrap();
        assert!(b.0 >= a.0 + 2 * PAGE_SIZE, "guard page between areas");
        // The guard page itself segfaults.
        assert!(asp
            .handle_fault(VirtAddr(a.0 + PAGE_SIZE), false, &mut fa, &mut mem)
            .is_err());
    }

    #[test]
    fn zero_length_rejected() {
        let (mut mem, mut fa, mut asp) = setup();
        assert_eq!(
            asp.mmap(0, true, false, &mut fa, &mut mem),
            Err(OsError::BadLength)
        );
        assert!(matches!(
            asp.mmap_pinned(0, true, &mut fa, &mut mem),
            Err(OsError::BadLength)
        ));
    }

    #[test]
    fn translations_readable_by_hardware_walker() {
        // The bytes written by install_pte must decode identically through
        // the svmsyn-vm walker (shared codec, shared memory).
        use svmsyn_mem::{FabricPort, MasterId};
        use svmsyn_sim::Cycle;
        use svmsyn_vm::walker::{PageTableWalker, WalkerConfig};
        let (mut mem, mut fa, mut asp) = setup();
        let va = asp.mmap(PAGE_SIZE, true, false, &mut fa, &mut mem).unwrap();
        asp.handle_fault(va, true, &mut fa, &mut mem).unwrap();
        let mut w = PageTableWalker::new(WalkerConfig::default());
        let r = w.walk(
            &mut mem,
            FabricPort::new(MasterId(0)),
            asp.root(),
            asp.asid(),
            va,
            Cycle(0),
        );
        let out = r.outcome.unwrap();
        let (pa, _) = asp.translate(&mem, va).unwrap();
        assert_eq!(PhysAddr::from_frame(out.pte.pfn()), pa.page_base());
    }
}
