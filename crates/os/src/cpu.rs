//! The in-order CPU execution model for software-thread baselines.
//!
//! A software thread interprets the *same kernel IR* as a hardware thread,
//! but is costed with a CPI table, an L1 data cache, and a CPU TLB. The CPU
//! runs at twice the fabric clock (`DESIGN.md` §4), so CPI values are
//! charged in half-fabric-cycles. The cache is a *timing* cache: data always
//! moves through the shared [`MemorySystem`] functionally, so software and
//! hardware threads stay coherent by construction, and the cache model only
//! decides whether a bus transaction is charged.

use std::sync::Arc;

use svmsyn_hls::decode::DecodedKernel;
use svmsyn_hls::interp::{Interp, InterpEvent};
use svmsyn_hls::ir::Width;
use svmsyn_mem::{FabricPort, MasterId, MemorySystem, PhysAddr, TxnKind, VirtAddr};

pub use svmsyn_mem::cache::{CacheConfig, CacheOutcome, L1Cache};
use svmsyn_sim::{Cycle, StatSet};
use svmsyn_vm::tlb::{Asid, Tlb, TlbConfig};

use crate::addrspace::Sigsegv;
use crate::os::Os;
use crate::sync::ThreadId;

/// CPI table in CPU cycles (CPU clock = 2× fabric clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuCosts {
    /// ALU / compare / select.
    pub alu: u64,
    /// Multiply.
    pub mul: u64,
    /// Divide.
    pub div: u64,
    /// Taken-branch average (includes misprediction mix).
    pub branch: u64,
    /// Load/store issue (cache time comes on top).
    pub mem_issue: u64,
    /// CPU TLB refill by the CPU's hardware walker (mostly cache-resident
    /// page tables, so a fixed cost rather than bus transactions).
    pub tlb_refill: u64,
}

impl Default for CpuCosts {
    /// A Cortex-A9-class in-order approximation.
    fn default() -> Self {
        CpuCosts {
            alu: 1,
            mul: 3,
            div: 20,
            branch: 2,
            mem_issue: 2,
            tlb_refill: 60,
        }
    }
}

/// Configuration of one software-thread execution context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwExecConfig {
    /// CPI table.
    pub costs: CpuCosts,
    /// L1 data cache.
    pub cache: CacheConfig,
    /// CPU TLB geometry.
    pub tlb: TlbConfig,
    /// Bus master id used for this thread's cache fills.
    pub master: MasterId,
}

impl SwExecConfig {
    /// Defaults with the given bus master id.
    pub fn with_master(master: MasterId) -> Self {
        SwExecConfig {
            costs: CpuCosts::default(),
            cache: CacheConfig::default(),
            tlb: TlbConfig {
                entries: 32,
                ways: 32,
                ..TlbConfig::default()
            },
            master,
        }
    }
}

/// Store-buffer depth of the CPU model: outstanding fire-and-forget
/// store-miss fills beyond which a new store miss waits for the oldest.
const STORE_BUFFER_DEPTH: usize = 4;

/// How a slice of software execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceEnd {
    /// The kernel returned.
    Finished {
        /// Return value, if any.
        ret: Option<i64>,
    },
    /// The cycle budget ran out; call again to continue.
    BudgetExhausted,
}

/// A software thread executing a kernel on the CPU model.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use svmsyn_hls::builder::KernelBuilder;
/// use svmsyn_hls::decode::DecodedKernel;
/// use svmsyn_hls::ir::BinOp;
/// use svmsyn_mem::{MasterId, MemConfig, MemorySystem};
/// use svmsyn_os::cpu::{SliceEnd, SwExec, SwExecConfig};
/// use svmsyn_os::sync::ThreadId;
/// use svmsyn_os::{Os, OsConfig};
/// use svmsyn_sim::Cycle;
///
/// let mut b = KernelBuilder::new("add", 2);
/// let x = b.arg(0);
/// let y = b.arg(1);
/// let s = b.bin(BinOp::Add, x, y);
/// b.ret(Some(s));
/// let k = Arc::new(DecodedKernel::decode(&b.finish().unwrap()));
///
/// let mut mem = MemorySystem::new(MemConfig::default());
/// let mut os = Os::new(&OsConfig::default(), &mem);
/// let asid = os.create_space(&mut mem).unwrap();
/// let mut t = SwExec::new(ThreadId(1), asid, k, &[20, 22], SwExecConfig::with_master(MasterId(0)));
/// let (end, kind) = t.run_slice(&mut os, &mut mem, Cycle(0), u64::MAX).unwrap();
/// assert_eq!(kind, SliceEnd::Finished { ret: Some(42) });
/// assert!(end >= Cycle(0)); // one ALU op costs half a fabric cycle
/// ```
#[derive(Debug, Clone)]
pub struct SwExec {
    tid: ThreadId,
    asid: Asid,
    interp: Interp,
    cfg: SwExecConfig,
    port: FabricPort,
    tlb: Tlb,
    cache: L1Cache,
    cpu_half_cycles: u64, // CPU cycles pending conversion (2 per fabric cycle)
    /// Outstanding store-miss line fills `(line base, completion)`: a store
    /// miss's write-allocate fill is fire-and-forget (the store buffer
    /// hides it), bounded by [`STORE_BUFFER_DEPTH`]. A later *load* to a
    /// line still being filled waits for the data — the same wake
    /// accounting the hardware threads' non-blocking MEMIF uses.
    store_fills: Vec<(u64, Cycle)>,
    /// Σ fire-and-forget fill latency.
    store_fill_latency: u64,
    /// Of that, cycles later accesses actually waited for.
    store_fill_stall: u64,
    /// Precomputed per-block compute CPI (CPU cycles) and op counts, indexed
    /// by `BlockId`: the whole block's compute time is charged once at block
    /// entry instead of per yielded op (see `run_slice`).
    block_cpi: Vec<u64>,
    block_ops: Vec<u64>,
    entry_charged: bool,
    instrs: u64,
    faults: u64,
}

impl SwExec {
    /// Creates a software thread over the pre-decoded `kernel` with launch
    /// `args`. Callers decode once per kernel ([`DecodedKernel::decode`])
    /// and share the `Arc` across every run.
    pub fn new(
        tid: ThreadId,
        asid: Asid,
        kernel: Arc<DecodedKernel>,
        args: &[i64],
        cfg: SwExecConfig,
    ) -> Self {
        // Per-block CPI sums: blocks are straight-line, so their compute
        // cost per entry is a decode-time constant.
        let nblocks = kernel.num_blocks();
        let mut block_cpi = Vec::with_capacity(nblocks);
        let mut block_ops = Vec::with_capacity(nblocks);
        for b in 0..nblocks {
            let mix = kernel.block_mix(svmsyn_hls::ir::BlockId(b as u32));
            block_cpi.push(
                mix.alu as u64 * cfg.costs.alu
                    + mix.mul as u64 * cfg.costs.mul
                    + mix.div as u64 * cfg.costs.div,
            );
            block_ops.push(mix.ops());
        }
        SwExec {
            tid,
            asid,
            interp: Interp::from_decoded(kernel, args),
            cfg,
            port: FabricPort::new(cfg.master),
            tlb: Tlb::new(cfg.tlb),
            cache: L1Cache::new(cfg.cache),
            cpu_half_cycles: 0,
            store_fills: Vec::new(),
            store_fill_latency: 0,
            store_fill_stall: 0,
            block_cpi,
            block_ops,
            entry_charged: false,
            instrs: 0,
            faults: 0,
        }
    }

    /// This thread's id.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// The address space the thread runs in.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Instructions retired so far.
    pub fn instrs(&self) -> u64 {
        self.instrs
    }

    /// Turns on the interpreter's per-block entry counting (BBV phase
    /// profiling). Instrumentation only — snapshot images are unaffected.
    pub fn enable_block_profile(&mut self) {
        self.interp.enable_block_profile();
    }

    /// Per-block entry counters (empty unless profiling is enabled).
    pub fn block_visits(&self) -> &[u64] {
        self.interp.block_visits()
    }

    fn charge_cpu(&mut self, t: &mut Cycle, cpu_cycles: u64) {
        self.cpu_half_cycles += cpu_cycles;
        let fabric = self.cpu_half_cycles / 2;
        self.cpu_half_cycles %= 2;
        *t += fabric;
    }

    /// Translates through the CPU TLB (+ fixed refill cost), servicing page
    /// faults through the OS.
    fn translate(
        &mut self,
        os: &mut Os,
        mem: &mut MemorySystem,
        va: VirtAddr,
        write: bool,
        t: &mut Cycle,
    ) -> Result<PhysAddr, Sigsegv> {
        loop {
            if let Some(hit) = self.tlb.lookup(self.asid, va.vpn()) {
                if !write || hit.flags.writable {
                    return Ok(PhysAddr::from_frame(hit.pfn).offset(va.page_offset()));
                }
                // Permission miss on cached entry: drop and re-resolve.
                self.tlb.invalidate_page(self.asid, va.vpn());
            }
            let refill = self.cfg.costs.tlb_refill;
            self.charge_cpu(t, refill);
            match os.space(self.asid).translate(mem, va) {
                Some((pa, flags)) if !write || flags.writable => {
                    self.tlb.insert(self.asid, va.vpn(), pa.frame(), flags);
                    return Ok(pa);
                }
                _ => {
                    self.faults += 1;
                    let done = os.service_fault(self.asid, va, write, false, mem, *t)?;
                    *t = done;
                    // Fault service may have reclaimed frames. The queued
                    // shootdowns are broadcast to every thread by the
                    // simulation loop after this slice; this thread's own
                    // TLB must drop them *now*, before the slice continues
                    // translating through stale entries.
                    for &(asid, sva) in os.pending_shootdowns() {
                        self.tlb.invalidate_page(asid, sva.vpn());
                    }
                }
            }
        }
    }

    /// Applies a TLB shootdown for one page (the broadcast half of frame
    /// reclaim; idempotent with the mid-slice drop above).
    pub fn shootdown(&mut self, asid: Asid, va: VirtAddr) {
        self.tlb.invalidate_page(asid, va.vpn());
    }

    /// Performs a timed, cached data access; returns the physical address.
    fn data_access(
        &mut self,
        os: &mut Os,
        mem: &mut MemorySystem,
        va: VirtAddr,
        write: bool,
        t: &mut Cycle,
    ) -> Result<PhysAddr, Sigsegv> {
        let pa = self.translate(os, mem, va, write, t)?;
        self.charge_cpu(t, self.cfg.costs.mem_issue);
        let line = self.cache.line_bytes();
        let base = pa.0 & !(line - 1);
        // Retire landed store fills, draining their registered fabric
        // waiters with them so the waiter list stays bounded.
        mem.drain_woken(self.port.master(), *t);
        self.store_fills.retain(|&(_, done)| done > *t);
        match self.cache.access(pa, write) {
            CacheOutcome::Hit => {
                // An in-order load to a line whose fire-and-forget fill is
                // still in flight waits for the data; stores merge into the
                // store buffer and proceed.
                if !write {
                    if let Some(&(_, done)) = self.store_fills.iter().find(|&&(l, _)| l == base) {
                        self.store_fill_stall += (done - *t).0;
                        *t = done;
                    }
                }
            }
            CacheOutcome::Miss { writeback } => {
                let master = self.port.master();
                let mut issue = *t;
                if write && self.store_fills.len() >= STORE_BUFFER_DEPTH {
                    // Full store buffer: wait for the oldest fill to drain.
                    let earliest = self
                        .store_fills
                        .iter()
                        .map(|&(_, d)| d)
                        .min()
                        .expect("full buffer is non-empty");
                    if earliest > issue {
                        self.store_fill_stall += (earliest - issue).0;
                        issue = earliest;
                    }
                    self.store_fills.retain(|&(_, d)| d > issue);
                }
                if let Some(victim) = writeback {
                    // Writeback-buffer drain: the fill waits only for the
                    // victim's address handshake, not its completion.
                    let (_, next) =
                        mem.transfer_handshake(master, victim, line, TxnKind::Write, issue);
                    issue = next;
                }
                if write {
                    // Store miss: the write-allocate fill is fire-and-
                    // forget behind the store buffer — the CPU moves on at
                    // the address handshake and the completion waiter rides
                    // the same fabric wake hook as the MEMIF's fills.
                    let (done, next) =
                        mem.transfer_waited(master, PhysAddr(base), line, TxnKind::Read, issue);
                    self.store_fill_latency += (done - *t).0;
                    self.store_fills.push((base, done));
                    *t = next;
                } else {
                    let (done, _) =
                        mem.transfer_handshake(master, PhysAddr(base), line, TxnKind::Read, issue);
                    *t = done;
                }
            }
        }
        Ok(pa)
    }

    /// Charges a whole block's precomputed compute CPI at block entry.
    fn charge_block(&mut self, t: &mut Cycle, block: svmsyn_hls::ir::BlockId) {
        let b = block.0 as usize;
        self.instrs += self.block_ops[b];
        let cpi = self.block_cpi[b];
        self.charge_cpu(t, cpi);
    }

    /// Runs until the kernel finishes or `budget` fabric cycles elapse.
    /// Returns the end time and how the slice ended.
    ///
    /// CPI batching: the interpreter is driven through `next_mem()`, which
    /// executes compute ops silently; each block's compute CPI is the
    /// decode-time sum charged once when the block is entered (entry block
    /// at launch, every other block at its `BlockChange`). For any run
    /// that completes its blocks, totals are identical to per-op charging —
    /// blocks are straight-line — but the slice budget is now checked at
    /// event granularity only, so a slice may overrun `budget` by up to one
    /// block's compute time; loads within a block issue after the block's
    /// compute cost instead of interleaved with it; and a thread killed by
    /// `Sigsegv` mid-block has already been charged (and retired) the ops
    /// after the faulting access — acceptable, since a segfault aborts the
    /// whole simulation. `batched_cpi_shifts_slice_boundaries_only` locks
    /// the boundary shift down.
    ///
    /// # Errors
    ///
    /// Returns [`Sigsegv`] if the thread performs an unservicable access.
    pub fn run_slice(
        &mut self,
        os: &mut Os,
        mem: &mut MemorySystem,
        start: Cycle,
        budget: u64,
    ) -> Result<(Cycle, SliceEnd), Sigsegv> {
        let mut t = start;
        if !self.entry_charged {
            self.entry_charged = true;
            let entry = self.interp.decoded().entry_block();
            self.charge_block(&mut t, entry);
        }
        loop {
            if (t - start).0 >= budget {
                return Ok((t, SliceEnd::BudgetExhausted));
            }
            match self.interp.next_mem() {
                InterpEvent::Op(_) => unreachable!("next_mem never yields Op"),
                InterpEvent::Load { addr, width } => {
                    self.instrs += 1;
                    let pa = self.data_access(os, mem, VirtAddr(addr), false, &mut t)?;
                    let raw = read_raw(mem, pa, width);
                    self.interp.provide_load(raw);
                }
                InterpEvent::Store { addr, width, value } => {
                    self.instrs += 1;
                    let pa = self.data_access(os, mem, VirtAddr(addr), true, &mut t)?;
                    write_raw(mem, pa, width, value);
                }
                InterpEvent::BlockChange { to, .. } => {
                    self.instrs += 1;
                    self.charge_cpu(&mut t, self.cfg.costs.branch);
                    self.charge_block(&mut t, to);
                }
                InterpEvent::Done { ret } => {
                    // Outstanding fire-and-forget fills drain before the
                    // thread counts as finished — their registered fabric
                    // waiters with them (no phantom wakeups survive).
                    let end = self
                        .store_fills
                        .iter()
                        .map(|&(_, d)| d)
                        .max()
                        .map_or(t, |d| d.max(t));
                    self.store_fill_stall += (end - t).0;
                    self.store_fills.clear();
                    mem.drain_woken(self.port.master(), end);
                    return Ok((end, SliceEnd::Finished { ret }));
                }
            }
        }
    }

    /// Counter snapshot (TLB and cache absorbed).
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("instrs", self.instrs as f64);
        s.put("faults", self.faults as f64);
        // Store-miss fill latency hidden behind the store buffer (fire-and-
        // forget fills minus the cycles later accesses waited for them).
        s.put(
            "store_miss_overlap_cycles",
            self.store_fill_latency
                .saturating_sub(self.store_fill_stall) as f64,
        );
        s.absorb("tlb", self.tlb.stats());
        s.absorb("cache", self.cache.stats());
        s
    }
}

// ----------------------------------------------------------------------
// Checkpoint serialization.
// ----------------------------------------------------------------------

impl SwExec {
    /// Serializes the runtime machine: interpreter registers, private TLB
    /// and L1 state, CPU-cycle carry, the store-fill window, and the retire
    /// counters. The decoded kernel, costs, and cache/TLB geometry are
    /// design-side and re-supplied at restore; `block_cpi`/`block_ops` are
    /// decode-time constants of kernel × costs and are recomputed.
    pub fn save_state(&self, w: &mut svmsyn_snap::SnapWriter) {
        use svmsyn_snap::Snap;
        self.tid.save(w);
        self.asid.save(w);
        self.interp.save_state(w);
        self.tlb.save_state(w);
        self.cache.save_state(w);
        w.put_u64(self.cpu_half_cycles);
        self.store_fills.save(w);
        w.put_u64(self.store_fill_latency);
        w.put_u64(self.store_fill_stall);
        w.put_bool(self.entry_charged);
        w.put_u64(self.instrs);
        w.put_u64(self.faults);
    }

    /// Rebuilds a software thread captured by
    /// [`save_state`](Self::save_state) over the design's decoded `kernel`
    /// and execution config.
    pub fn restore_state(
        kernel: Arc<DecodedKernel>,
        cfg: SwExecConfig,
        r: &mut svmsyn_snap::SnapReader<'_>,
    ) -> Result<Self, svmsyn_snap::SnapError> {
        use svmsyn_snap::{Snap, SnapError};
        let tid = ThreadId::load(r)?;
        let asid = Asid::load(r)?;
        let interp = Interp::restore_state(Arc::clone(&kernel), r)?;
        let tlb = Tlb::restore_state(cfg.tlb, r)?;
        let cache = L1Cache::restore_state(cfg.cache, r)?;
        let cpu_half_cycles = r.take_u64()?;
        if cpu_half_cycles >= 2 {
            return Err(SnapError::Corrupt("cpu half-cycle carry"));
        }
        let store_fills: Vec<(u64, Cycle)> = Vec::load(r)?;
        if store_fills.len() > STORE_BUFFER_DEPTH {
            return Err(SnapError::Corrupt("store-fill window depth"));
        }
        let store_fill_latency = r.take_u64()?;
        let store_fill_stall = r.take_u64()?;
        let entry_charged = r.take_bool()?;
        let instrs = r.take_u64()?;
        let faults = r.take_u64()?;
        // Recompute the per-block cost tables exactly as `new` does.
        let nblocks = kernel.num_blocks();
        let mut block_cpi = Vec::with_capacity(nblocks);
        let mut block_ops = Vec::with_capacity(nblocks);
        for b in 0..nblocks {
            let mix = kernel.block_mix(svmsyn_hls::ir::BlockId(b as u32));
            block_cpi.push(
                mix.alu as u64 * cfg.costs.alu
                    + mix.mul as u64 * cfg.costs.mul
                    + mix.div as u64 * cfg.costs.div,
            );
            block_ops.push(mix.ops());
        }
        Ok(SwExec {
            tid,
            asid,
            interp,
            cfg,
            port: FabricPort::new(cfg.master),
            tlb,
            cache,
            cpu_half_cycles,
            store_fills,
            store_fill_latency,
            store_fill_stall,
            block_cpi,
            block_ops,
            entry_charged,
            instrs,
            faults,
        })
    }
}

fn read_raw(mem: &MemorySystem, pa: PhysAddr, width: Width) -> u64 {
    let mut b = [0u8; 8];
    mem.dump(pa, &mut b[..width.bytes() as usize]);
    u64::from_le_bytes(b)
}

fn write_raw(mem: &mut MemorySystem, pa: PhysAddr, width: Width, value: u64) {
    mem.load(pa, &value.to_le_bytes()[..width.bytes() as usize]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::OsConfig;
    use svmsyn_hls::builder::KernelBuilder;
    use svmsyn_hls::ir::{BinOp, CmpOp};
    use svmsyn_mem::{MemConfig, PAGE_SIZE};

    fn boot() -> (MemorySystem, Os) {
        let mem = MemorySystem::new(MemConfig {
            size_bytes: 64 << 20,
            ..MemConfig::default()
        });
        let os = Os::new(&OsConfig::default(), &mem);
        (mem, os)
    }

    /// store i at base+4i for i in 0..n, return sum of loads back.
    fn touch_kernel() -> Arc<DecodedKernel> {
        let mut b = KernelBuilder::new("touch", 2);
        let entry = b.current_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let base = b.arg(0);
        let n = b.arg(1);
        let zero = b.constant(0);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi();
        let acc = b.phi();
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let four = b.constant(4);
        let off = b.bin(BinOp::Mul, i, four);
        let addr = b.bin(BinOp::Add, base, off);
        b.store(addr, i, Width::W32);
        let back = b.load(addr, Width::W32);
        let acc2 = b.bin(BinOp::Add, acc, back);
        let one = b.constant(1);
        let i2 = b.bin(BinOp::Add, i, one);
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(acc));
        b.set_phi_incoming(i, &[(entry, zero), (body, i2)]);
        b.set_phi_incoming(acc, &[(entry, zero), (body, acc2)]);
        Arc::new(DecodedKernel::decode(&b.finish().unwrap()))
    }

    #[test]
    fn faults_in_pages_and_computes() {
        let (mut mem, mut os) = boot();
        let asid = os.create_space(&mut mem).unwrap();
        let n = 256u64; // 1 KiB of i32: one page
        let va = os.mmap(asid, n * 4, true, false, &mut mem).unwrap();
        let mut t = SwExec::new(
            ThreadId(1),
            asid,
            touch_kernel(),
            &[va.0 as i64, n as i64],
            SwExecConfig::with_master(MasterId(0)),
        );
        let (end, kind) = t.run_slice(&mut os, &mut mem, Cycle(0), u64::MAX).unwrap();
        assert_eq!(
            kind,
            SliceEnd::Finished {
                ret: Some((0..n as i64).sum())
            }
        );
        assert!(end > Cycle(1000));
        assert_eq!(os.sw_faults(), 1, "one page: one minor fault");
        // Data must be visible in the shared memory (write-through data path).
        let mut buf = [0u8; 4];
        os.copy_out(asid, VirtAddr(va.0 + 40), &mut buf, &mem);
        assert_eq!(i32::from_le_bytes(buf), 10);
    }

    #[test]
    fn budget_exhaustion_resumes_cleanly() {
        let (mut mem, mut os) = boot();
        let asid = os.create_space(&mut mem).unwrap();
        let n = 2048u64;
        let va = os.mmap(asid, n * 4, true, false, &mut mem).unwrap();
        let mut t = SwExec::new(
            ThreadId(1),
            asid,
            touch_kernel(),
            &[va.0 as i64, n as i64],
            SwExecConfig::with_master(MasterId(0)),
        );
        let mut now = Cycle(0);
        let mut slices = 0;
        loop {
            let (end, kind) = t.run_slice(&mut os, &mut mem, now, 500).unwrap();
            now = end;
            slices += 1;
            match kind {
                SliceEnd::Finished { ret } => {
                    assert_eq!(ret, Some((0..n as i64).sum()));
                    break;
                }
                SliceEnd::BudgetExhausted => assert!(slices < 100_000),
            }
        }
        assert!(slices > 1, "must have yielded at least once");
    }

    #[test]
    fn cache_hits_make_reuse_cheap() {
        let (mut mem, mut os) = boot();
        let asid = os.create_space(&mut mem).unwrap();
        let va = os.mmap(asid, PAGE_SIZE, true, true, &mut mem).unwrap();
        // Two identical passes over one page: second pass should be much
        // faster thanks to the L1.
        let k = touch_kernel();
        let n = 64i64;
        let mut t1 = SwExec::new(
            ThreadId(1),
            asid,
            Arc::clone(&k),
            &[va.0 as i64, n],
            SwExecConfig::with_master(MasterId(0)),
        );
        let (e1, _) = t1.run_slice(&mut os, &mut mem, Cycle(0), u64::MAX).unwrap();
        let cold = (e1 - Cycle(0)).0;
        // Reuse the same exec's warm cache state via a fresh interp run.
        let mut t2 = SwExec {
            interp: Interp::from_decoded(k, &[va.0 as i64, n]),
            ..t1.clone()
        };
        let (e2, _) = t2.run_slice(&mut os, &mut mem, e1, u64::MAX).unwrap();
        let warm = (e2 - e1).0;
        assert!(warm < cold, "warm {warm} must beat cold {cold}");
        assert!(t2.stats().get("cache.hit_rate").unwrap() > 0.5);
    }

    #[test]
    fn segv_propagates() {
        let (mut mem, mut os) = boot();
        let asid = os.create_space(&mut mem).unwrap();
        let mut t = SwExec::new(
            ThreadId(1),
            asid,
            touch_kernel(),
            &[0x7000_0000, 4],
            SwExecConfig::with_master(MasterId(0)),
        );
        let err = t
            .run_slice(&mut os, &mut mem, Cycle(0), u64::MAX)
            .unwrap_err();
        assert_eq!(err.va.page_base(), VirtAddr(0x7000_0000));
    }

    #[test]
    fn batched_cpi_shifts_slice_boundaries_only() {
        // One straight-line block of 200 ALU ops (100 CPU cycles = 50
        // fabric cycles of compute). With per-block CPI batching the whole
        // block charges at entry, so a 10-cycle slice budget overruns to
        // the block boundary — but the total time and retired-instruction
        // count are exactly what per-op charging would produce.
        let (mut mem, mut os) = boot();
        let asid = os.create_space(&mut mem).unwrap();
        let mut b = KernelBuilder::new("blockalu", 1);
        let x = b.arg(0);
        let mut v = x;
        for _ in 0..200 {
            v = b.bin(BinOp::Add, v, x);
        }
        b.ret(Some(v));
        let k = Arc::new(DecodedKernel::decode(&b.finish().unwrap()));
        let mut t = SwExec::new(
            ThreadId(1),
            asid,
            k,
            &[1],
            SwExecConfig::with_master(MasterId(0)),
        );
        let (end, kind) = t.run_slice(&mut os, &mut mem, Cycle(0), 10).unwrap();
        // The slice boundary shifted past the budget to the block boundary:
        // all 200 ALU CPU-cycles landed in one charge.
        assert_eq!(kind, SliceEnd::BudgetExhausted);
        assert_eq!((end - Cycle(0)).0, 100, "whole block charged at entry");
        let (end2, kind2) = t.run_slice(&mut os, &mut mem, end, u64::MAX).unwrap();
        assert_eq!(kind2, SliceEnd::Finished { ret: Some(201) });
        assert_eq!(end2, end, "no compute left after the batched charge");
        assert_eq!(t.instrs(), 200, "batched charging retires every op");
    }

    #[test]
    fn cpu_clock_is_twice_fabric() {
        // 100 ALU CPU-cycles must cost 50 fabric cycles.
        let (mut mem, mut os) = boot();
        let asid = os.create_space(&mut mem).unwrap();
        let mut b = KernelBuilder::new("alu", 1);
        let x = b.arg(0);
        let mut v = x;
        for _ in 0..100 {
            v = b.bin(BinOp::Add, v, x);
        }
        b.ret(Some(v));
        let k = Arc::new(DecodedKernel::decode(&b.finish().unwrap()));
        let mut t = SwExec::new(
            ThreadId(1),
            asid,
            k,
            &[1],
            SwExecConfig::with_master(MasterId(0)),
        );
        let (end, _) = t.run_slice(&mut os, &mut mem, Cycle(0), u64::MAX).unwrap();
        assert_eq!((end - Cycle(0)).0, 50);
    }
}
