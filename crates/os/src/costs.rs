//! The OS cost model (all values in fabric cycles).
//!
//! These constants are the software half of the paper's system: how long the
//! interrupt path, the delegate thread, and the page-fault service take.
//! They follow the `DESIGN.md` §4 platform (CPU at 2× the 100 MHz fabric
//! clock): e.g. 400 fabric cycles ≈ 4 µs for interrupt entry + dispatch,
//! the right order for a Zynq-era embedded Linux. Table 3 prints the
//! breakdown measured through this model.

/// Fixed OS path costs, in fabric cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsCosts {
    /// Interrupt entry + dispatch to the handler.
    pub interrupt_entry: u64,
    /// Waking the delegate thread and scheduling it on a core.
    pub delegate_wakeup: u64,
    /// One syscall round trip (delegate → kernel → delegate).
    pub syscall: u64,
    /// Page-fault service excluding zeroing: vma lookup, frame allocation,
    /// PTE installation, TLB maintenance bookkeeping.
    pub fault_service: u64,
    /// Zeroing a fresh 4 KiB anonymous page.
    pub page_zero: u64,
    /// One context switch (register save/restore + scheduler).
    pub context_switch: u64,
    /// Round-robin timeslice length for software threads.
    pub timeslice: u64,
    /// OSIF FIFO transfer of one call/response word pair (hardware side).
    pub osif_transfer: u64,
    /// Writing one dirty 4 KiB page out to the swap device (device busy
    /// time; charged to the reclaiming fault).
    pub swap_out: u64,
    /// Reading one 4 KiB page back in from the swap device (device busy
    /// time; charged to the major fault).
    pub swap_in: u64,
    /// CPU-side reclaim overhead per evicted page: clock-hand scan, reverse
    /// map lookup, PTE downgrade, shootdown issue.
    pub reclaim_scan: u64,
}

impl Default for OsCosts {
    /// The `DESIGN.md` §4 defaults.
    fn default() -> Self {
        OsCosts {
            interrupt_entry: 400,
            delegate_wakeup: 600,
            syscall: 250,
            fault_service: 2_000,
            page_zero: 1_024,
            context_switch: 800,
            timeslice: 100_000,
            osif_transfer: 20,
            // Flash-class swap device: ~200 µs per 4 KiB page at the
            // 100 MHz fabric clock. Slow enough that thrashing hurts,
            // fast enough that a handful of major faults is survivable.
            swap_out: 20_000,
            swap_in: 20_000,
            reclaim_scan: 500,
        }
    }
}

impl OsCosts {
    /// Total cost of servicing one demand-paging (minor) fault raised by a
    /// hardware thread: interrupt, delegate wakeup, service, zeroing.
    pub fn hw_fault_total(&self) -> u64 {
        self.interrupt_entry + self.delegate_wakeup + self.fault_service + self.page_zero
    }

    /// Total cost of a software-thread fault (no delegate involved).
    pub fn sw_fault_total(&self) -> u64 {
        self.interrupt_entry + self.fault_service + self.page_zero
    }

    /// Cost of one OSIF call handled by the delegate (sync primitives).
    pub fn osif_call_total(&self) -> u64 {
        self.osif_transfer + self.delegate_wakeup + self.syscall
    }

    /// Extra cost a *major* fault adds on top of the minor-fault total:
    /// the swap-in transfer replaces page zeroing (the page's contents
    /// come back from the device, they are not re-zeroed).
    pub fn major_fault_extra(&self) -> u64 {
        self.swap_in.saturating_sub(self.page_zero)
    }

    /// Cost of reclaiming one victim page: the clock scan plus, for dirty
    /// victims, the swap-out transfer.
    pub fn reclaim_total(&self, dirty: bool) -> u64 {
        self.reclaim_scan + if dirty { self.swap_out } else { 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive_and_ordered() {
        let c = OsCosts::default();
        assert!(c.interrupt_entry > 0);
        assert!(c.hw_fault_total() > c.sw_fault_total());
        assert!(c.hw_fault_total() > c.fault_service);
        assert!(c.osif_call_total() > c.syscall);
    }

    #[test]
    fn totals_are_sums() {
        let c = OsCosts::default();
        assert_eq!(
            c.hw_fault_total(),
            c.interrupt_entry + c.delegate_wakeup + c.fault_service + c.page_zero
        );
        assert_eq!(
            c.sw_fault_total(),
            c.interrupt_entry + c.fault_service + c.page_zero
        );
        assert_eq!(
            c.osif_call_total(),
            c.osif_transfer + c.delegate_wakeup + c.syscall
        );
    }

    #[test]
    fn swap_costs_are_plausible() {
        let c = OsCosts::default();
        assert!(c.swap_in > c.page_zero, "swap-in dominates zeroing");
        assert_eq!(c.major_fault_extra(), c.swap_in - c.page_zero);
        assert_eq!(c.reclaim_total(false), c.reclaim_scan);
        assert_eq!(c.reclaim_total(true), c.reclaim_scan + c.swap_out);
    }
}
