//! Synchronization objects shared by software and hardware threads.
//!
//! The paper's execution model gives hardware threads the *same* primitives
//! as software threads — mutexes, counting semaphores, barriers, and
//! mailboxes — serviced through their delegate. The [`SyncTable`] implements
//! the state machines; blocking/wakeup timing is the simulation loop's job.

use std::collections::VecDeque;

/// Identifies a (software or hardware) thread for wait queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u32);

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The immediate outcome of a synchronization call for the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncResult {
    /// The caller proceeds, optionally with a received value (mailbox get).
    Proceed {
        /// The received mailbox value, if any.
        value: Option<u64>,
    },
    /// The caller blocks until woken.
    Block,
}

/// A wakeup produced by a synchronization call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// The thread becomes runnable.
    Ready(ThreadId),
    /// The thread becomes runnable and receives a value (mailbox get).
    ReadyWithValue(ThreadId, u64),
}

impl Wake {
    /// The woken thread.
    pub fn thread(&self) -> ThreadId {
        match self {
            Wake::Ready(t) | Wake::ReadyWithValue(t, _) => *t,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct MutexState {
    owner: Option<ThreadId>,
    waiters: VecDeque<ThreadId>,
}

#[derive(Debug, Clone)]
struct SemState {
    count: i64,
    waiters: VecDeque<ThreadId>,
}

#[derive(Debug, Clone)]
struct BarrierState {
    needed: u32,
    waiting: Vec<ThreadId>,
}

#[derive(Debug, Clone)]
struct MboxState {
    capacity: usize,
    queue: VecDeque<u64>,
    getters: VecDeque<ThreadId>,
    putters: VecDeque<(ThreadId, u64)>,
}

/// All synchronization objects of the simulated system.
///
/// # Example
///
/// ```
/// use svmsyn_os::sync::{SyncResult, SyncTable, ThreadId, Wake};
/// let mut s = SyncTable::new();
/// let m = s.create_mutex();
/// assert_eq!(s.mutex_lock(ThreadId(1), m), SyncResult::Proceed { value: None });
/// assert_eq!(s.mutex_lock(ThreadId(2), m), SyncResult::Block);
/// let woken = s.mutex_unlock(ThreadId(1), m);
/// assert_eq!(woken, vec![Wake::Ready(ThreadId(2))]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SyncTable {
    mutexes: Vec<MutexState>,
    sems: Vec<SemState>,
    barriers: Vec<BarrierState>,
    mboxes: Vec<MboxState>,
    contended_acquires: u64,
    operations: u64,
}

impl SyncTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SyncTable::default()
    }

    /// Creates a mutex; returns its id.
    pub fn create_mutex(&mut self) -> u32 {
        self.mutexes.push(MutexState::default());
        self.mutexes.len() as u32 - 1
    }

    /// Creates a counting semaphore with an initial count.
    pub fn create_sem(&mut self, initial: i64) -> u32 {
        self.sems.push(SemState {
            count: initial,
            waiters: VecDeque::new(),
        });
        self.sems.len() as u32 - 1
    }

    /// Creates a barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn create_barrier(&mut self, parties: u32) -> u32 {
        assert!(parties > 0, "barrier needs at least one party");
        self.barriers.push(BarrierState {
            needed: parties,
            waiting: Vec::new(),
        });
        self.barriers.len() as u32 - 1
    }

    /// Creates a bounded mailbox with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn create_mbox(&mut self, capacity: usize) -> u32 {
        assert!(capacity > 0, "mailbox needs capacity");
        self.mboxes.push(MboxState {
            capacity,
            queue: VecDeque::new(),
            getters: VecDeque::new(),
            putters: VecDeque::new(),
        });
        self.mboxes.len() as u32 - 1
    }

    /// Attempts to take the mutex.
    pub fn mutex_lock(&mut self, tid: ThreadId, id: u32) -> SyncResult {
        self.operations += 1;
        let m = &mut self.mutexes[id as usize];
        match m.owner {
            None => {
                m.owner = Some(tid);
                SyncResult::Proceed { value: None }
            }
            Some(_) => {
                self.contended_acquires += 1;
                m.waiters.push_back(tid);
                SyncResult::Block
            }
        }
    }

    /// Releases the mutex, handing it to the next waiter if any.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is not the owner (a lock-discipline bug in the
    /// simulated application).
    pub fn mutex_unlock(&mut self, tid: ThreadId, id: u32) -> Vec<Wake> {
        self.operations += 1;
        let m = &mut self.mutexes[id as usize];
        assert_eq!(m.owner, Some(tid), "unlock by non-owner {tid}");
        match m.waiters.pop_front() {
            Some(next) => {
                m.owner = Some(next);
                vec![Wake::Ready(next)]
            }
            None => {
                m.owner = None;
                vec![]
            }
        }
    }

    /// Semaphore wait (P).
    pub fn sem_wait(&mut self, tid: ThreadId, id: u32) -> SyncResult {
        self.operations += 1;
        let s = &mut self.sems[id as usize];
        if s.count > 0 {
            s.count -= 1;
            SyncResult::Proceed { value: None }
        } else {
            self.contended_acquires += 1;
            s.waiters.push_back(tid);
            SyncResult::Block
        }
    }

    /// Semaphore post (V).
    pub fn sem_post(&mut self, id: u32) -> Vec<Wake> {
        self.operations += 1;
        let s = &mut self.sems[id as usize];
        match s.waiters.pop_front() {
            Some(t) => vec![Wake::Ready(t)],
            None => {
                s.count += 1;
                vec![]
            }
        }
    }

    /// Barrier wait: blocks until all parties arrive; the last arrival
    /// releases everyone (itself included, signalled by `Proceed`).
    pub fn barrier_wait(&mut self, tid: ThreadId, id: u32) -> (SyncResult, Vec<Wake>) {
        self.operations += 1;
        let b = &mut self.barriers[id as usize];
        b.waiting.push(tid);
        if b.waiting.len() as u32 == b.needed {
            let woken = b
                .waiting
                .drain(..)
                .filter(|&t| t != tid)
                .map(Wake::Ready)
                .collect();
            (SyncResult::Proceed { value: None }, woken)
        } else {
            (SyncResult::Block, vec![])
        }
    }

    /// Mailbox put: delivers directly to a blocked getter, queues if there
    /// is room, blocks otherwise.
    pub fn mbox_put(&mut self, tid: ThreadId, id: u32, value: u64) -> (SyncResult, Vec<Wake>) {
        self.operations += 1;
        let m = &mut self.mboxes[id as usize];
        if let Some(getter) = m.getters.pop_front() {
            return (
                SyncResult::Proceed { value: None },
                vec![Wake::ReadyWithValue(getter, value)],
            );
        }
        if m.queue.len() < m.capacity {
            m.queue.push_back(value);
            (SyncResult::Proceed { value: None }, vec![])
        } else {
            self.contended_acquires += 1;
            m.putters.push_back((tid, value));
            (SyncResult::Block, vec![])
        }
    }

    /// Mailbox get: takes a queued value (possibly unblocking a putter), or
    /// blocks until one arrives.
    pub fn mbox_get(&mut self, tid: ThreadId, id: u32) -> (SyncResult, Vec<Wake>) {
        self.operations += 1;
        let m = &mut self.mboxes[id as usize];
        if let Some(v) = m.queue.pop_front() {
            let mut woken = vec![];
            if let Some((putter, pv)) = m.putters.pop_front() {
                m.queue.push_back(pv);
                woken.push(Wake::Ready(putter));
            }
            return (SyncResult::Proceed { value: Some(v) }, woken);
        }
        if let Some((putter, pv)) = m.putters.pop_front() {
            // Empty queue but a blocked putter: take its value directly.
            return (
                SyncResult::Proceed { value: Some(pv) },
                vec![Wake::Ready(putter)],
            );
        }
        self.contended_acquires += 1;
        m.getters.push_back(tid);
        (SyncResult::Block, vec![])
    }

    /// Total operations performed.
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Operations that had to block.
    pub fn contended(&self) -> u64 {
        self.contended_acquires
    }
}

// ----------------------------------------------------------------------
// Checkpoint serialization.
// ----------------------------------------------------------------------

impl svmsyn_snap::Snap for ThreadId {
    fn save(&self, w: &mut svmsyn_snap::SnapWriter) {
        w.put_u32(self.0);
    }

    fn load(r: &mut svmsyn_snap::SnapReader<'_>) -> Result<Self, svmsyn_snap::SnapError> {
        Ok(ThreadId(r.take_u32()?))
    }
}

impl SyncTable {
    /// Serializes every object's full state machine — owners, counts, queued
    /// values, and wait queues in FIFO order — plus the counters.
    pub fn save_state(&self, w: &mut svmsyn_snap::SnapWriter) {
        use svmsyn_snap::Snap;
        w.put_usize(self.mutexes.len());
        for m in &self.mutexes {
            m.owner.save(w);
            m.waiters.save(w);
        }
        w.put_usize(self.sems.len());
        for s in &self.sems {
            w.put_i64(s.count);
            s.waiters.save(w);
        }
        w.put_usize(self.barriers.len());
        for b in &self.barriers {
            w.put_u32(b.needed);
            b.waiting.save(w);
        }
        w.put_usize(self.mboxes.len());
        for m in &self.mboxes {
            w.put_usize(m.capacity);
            m.queue.save(w);
            m.getters.save(w);
            m.putters.save(w);
        }
        w.put_u64(self.contended_acquires);
        w.put_u64(self.operations);
    }

    /// Rebuilds a table captured by [`save_state`](Self::save_state).
    pub fn restore_state(
        r: &mut svmsyn_snap::SnapReader<'_>,
    ) -> Result<Self, svmsyn_snap::SnapError> {
        use svmsyn_snap::{Snap, SnapError};
        let mut t = SyncTable::new();
        for _ in 0..r.take_len()? {
            t.mutexes.push(MutexState {
                owner: Option::load(r)?,
                waiters: VecDeque::load(r)?,
            });
        }
        for _ in 0..r.take_len()? {
            t.sems.push(SemState {
                count: r.take_i64()?,
                waiters: VecDeque::load(r)?,
            });
        }
        for _ in 0..r.take_len()? {
            let needed = r.take_u32()?;
            if needed == 0 {
                return Err(SnapError::Corrupt("zero-party barrier"));
            }
            t.barriers.push(BarrierState {
                needed,
                waiting: Vec::load(r)?,
            });
        }
        for _ in 0..r.take_len()? {
            let capacity = r.take_usize()?;
            if capacity == 0 {
                return Err(SnapError::Corrupt("zero-capacity mailbox"));
            }
            let mbox = MboxState {
                capacity,
                queue: VecDeque::load(r)?,
                getters: VecDeque::load(r)?,
                putters: VecDeque::load(r)?,
            };
            if mbox.queue.len() > mbox.capacity {
                return Err(SnapError::Corrupt("overfull mailbox"));
            }
            t.mboxes.push(mbox);
        }
        t.contended_acquires = r.take_u64()?;
        t.operations = r.take_u64()?;
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_handoff_is_fifo() {
        let mut s = SyncTable::new();
        let m = s.create_mutex();
        assert!(matches!(
            s.mutex_lock(ThreadId(1), m),
            SyncResult::Proceed { .. }
        ));
        assert_eq!(s.mutex_lock(ThreadId(2), m), SyncResult::Block);
        assert_eq!(s.mutex_lock(ThreadId(3), m), SyncResult::Block);
        assert_eq!(
            s.mutex_unlock(ThreadId(1), m),
            vec![Wake::Ready(ThreadId(2))]
        );
        assert_eq!(
            s.mutex_unlock(ThreadId(2), m),
            vec![Wake::Ready(ThreadId(3))]
        );
        assert_eq!(s.mutex_unlock(ThreadId(3), m), vec![]);
        assert_eq!(s.contended(), 2);
    }

    #[test]
    #[should_panic(expected = "non-owner")]
    fn unlock_by_stranger_panics() {
        let mut s = SyncTable::new();
        let m = s.create_mutex();
        s.mutex_lock(ThreadId(1), m);
        s.mutex_unlock(ThreadId(2), m);
    }

    #[test]
    fn semaphore_counts() {
        let mut s = SyncTable::new();
        let sem = s.create_sem(2);
        assert!(matches!(
            s.sem_wait(ThreadId(1), sem),
            SyncResult::Proceed { .. }
        ));
        assert!(matches!(
            s.sem_wait(ThreadId(2), sem),
            SyncResult::Proceed { .. }
        ));
        assert_eq!(s.sem_wait(ThreadId(3), sem), SyncResult::Block);
        assert_eq!(s.sem_post(sem), vec![Wake::Ready(ThreadId(3))]);
        // No waiter: count increments.
        assert_eq!(s.sem_post(sem), vec![]);
        assert!(matches!(
            s.sem_wait(ThreadId(4), sem),
            SyncResult::Proceed { .. }
        ));
    }

    #[test]
    fn barrier_releases_all_at_once() {
        let mut s = SyncTable::new();
        let b = s.create_barrier(3);
        assert_eq!(s.barrier_wait(ThreadId(1), b).0, SyncResult::Block);
        assert_eq!(s.barrier_wait(ThreadId(2), b).0, SyncResult::Block);
        let (r, woken) = s.barrier_wait(ThreadId(3), b);
        assert!(matches!(r, SyncResult::Proceed { .. }));
        let mut ids: Vec<u32> = woken.iter().map(|w| w.thread().0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        // Barrier is reusable.
        assert_eq!(s.barrier_wait(ThreadId(1), b).0, SyncResult::Block);
    }

    #[test]
    fn mbox_queue_then_block() {
        let mut s = SyncTable::new();
        let mb = s.create_mbox(2);
        assert!(matches!(
            s.mbox_put(ThreadId(1), mb, 10).0,
            SyncResult::Proceed { .. }
        ));
        assert!(matches!(
            s.mbox_put(ThreadId(1), mb, 20).0,
            SyncResult::Proceed { .. }
        ));
        // Full: the third put blocks.
        assert_eq!(s.mbox_put(ThreadId(1), mb, 30).0, SyncResult::Block);
        // A get drains one, unblocking the putter whose value lands in queue.
        let (r, woken) = s.mbox_get(ThreadId(2), mb);
        assert_eq!(r, SyncResult::Proceed { value: Some(10) });
        assert_eq!(woken, vec![Wake::Ready(ThreadId(1))]);
        let (r, _) = s.mbox_get(ThreadId(2), mb);
        assert_eq!(r, SyncResult::Proceed { value: Some(20) });
        let (r, _) = s.mbox_get(ThreadId(2), mb);
        assert_eq!(r, SyncResult::Proceed { value: Some(30) });
    }

    #[test]
    fn mbox_direct_handoff_to_blocked_getter() {
        let mut s = SyncTable::new();
        let mb = s.create_mbox(1);
        assert_eq!(s.mbox_get(ThreadId(5), mb).0, SyncResult::Block);
        let (r, woken) = s.mbox_put(ThreadId(6), mb, 99);
        assert!(matches!(r, SyncResult::Proceed { .. }));
        assert_eq!(woken, vec![Wake::ReadyWithValue(ThreadId(5), 99)]);
    }

    #[test]
    fn ids_are_dense_and_display_works() {
        let mut s = SyncTable::new();
        assert_eq!(s.create_mutex(), 0);
        assert_eq!(s.create_mutex(), 1);
        assert_eq!(s.create_sem(0), 0);
        assert_eq!(s.create_barrier(2), 0);
        assert_eq!(s.create_mbox(4), 0);
        assert_eq!(ThreadId(7).to_string(), "t7");
        assert!(s.operations() == 0);
    }
}
