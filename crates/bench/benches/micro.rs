//! Micro-benchmarks over the hot paths of the stack, self-hosted (the build
//! environment has no crates.io access, so no criterion): scheduler
//! event-throughput (timing wheel vs. the retained heap reference), TLB
//! lookups, page-table walks, HLS compilation, a full-system run, and the
//! serial-vs-parallel DSE sweep.
//!
//! Run with `cargo bench --bench micro`. Results are printed as a table and
//! written to `BENCH_baseline.json` at the workspace root so future changes
//! have a perf trajectory to compare against.
//!
//! `cargo bench --bench micro -- --smoke` runs every benchmark at a fraction
//! of the iteration count and does *not* write the baseline: a CI-friendly
//! "does the harness still run" check, not a measurement.

use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use svmsyn::dse::{explore, explore_with_store, DseConfig, DseMethod};
use svmsyn::platform::Platform;
use svmsyn::sim::{simulate, Sim, SimConfig};
use svmsyn_bench::{hw_design, run_checked};
use svmsyn_hls::decode::DecodedKernel;
use svmsyn_hls::fsmd::{compile, HlsConfig};
use svmsyn_hls::ir::Width;
use svmsyn_hls::resource::FuBudget;
use svmsyn_hls::sched::list_schedule;
use svmsyn_hwt::memif::{Memif, MemifConfig};
use svmsyn_hwt::thread::{HwStep, HwThread, HwThreadConfig};
use svmsyn_mem::fabric::two_master_stream_cycles;
use svmsyn_mem::{FabricConfig, FabricPort, MasterId, MemConfig, MemorySystem, PhysAddr, VirtAddr};
use svmsyn_sim::{Cycle, HeapScheduler, Scheduler, Xoshiro256ss};
use svmsyn_store::ResultStore;
use svmsyn_vm::pte::{DirEntry, Pte, PteFlags};
use svmsyn_vm::tlb::{Asid, Replacement, Tlb, TlbConfig};
use svmsyn_vm::walker::{PageTableWalker, WalkerConfig};
use svmsyn_workloads::streaming::vecadd;
use svmsyn_workloads::Workload;

/// One benchmark result destined for the JSON baseline.
struct Result {
    name: &'static str,
    value: f64,
    unit: &'static str,
}

fn time<F: FnMut()>(mut f: F) -> f64 {
    // One untimed warm-up pass, then the measured pass.
    f();
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

// ---------------------------------------------------------------------------
// Scheduler throughput: the tentpole comparison.
//
// Identical workload on both engines: K events stay in flight; each event,
// when fired, advances a shared LCG and reschedules itself at a pseudo-random
// near-future delay, until N total events have fired. Every closure captures
// nothing (fn items), so the wheel runs fully inline/slab-resident while the
// heap pays its per-event Box + sift — exactly the retired engine's cost.
// ---------------------------------------------------------------------------

struct SchedModel {
    fired: u64,
    limit: u64,
    lcg: u64,
}

impl SchedModel {
    fn next_delay(&mut self) -> u64 {
        self.lcg = self
            .lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.lcg >> 33) % 1000
    }
}

const SCHED_DEPTH: u64 = 4096;

fn wheel_tick(m: &mut SchedModel, s: &mut Scheduler<SchedModel>) {
    m.fired += 1;
    if m.fired + SCHED_DEPTH <= m.limit {
        let d = m.next_delay();
        s.schedule_in(Cycle(d), wheel_tick);
    }
}

fn heap_tick(m: &mut SchedModel, s: &mut HeapScheduler<SchedModel>) {
    m.fired += 1;
    if m.fired + SCHED_DEPTH <= m.limit {
        let d = m.next_delay();
        s.schedule_in(Cycle(d), heap_tick);
    }
}

fn bench_scheduler_wheel(events: u64) -> f64 {
    let secs = time(|| {
        let mut model = SchedModel {
            fired: 0,
            limit: events,
            lcg: 0x1234_5678,
        };
        let mut s: Scheduler<SchedModel> = Scheduler::with_capacity(SCHED_DEPTH as usize);
        for i in 0..SCHED_DEPTH {
            s.schedule_at(Cycle(i % 997), wheel_tick);
        }
        s.run(&mut model);
        assert_eq!(model.fired, events);
        black_box(s.now());
    });
    events as f64 / secs
}

fn bench_scheduler_heap(events: u64) -> f64 {
    let secs = time(|| {
        let mut model = SchedModel {
            fired: 0,
            limit: events,
            lcg: 0x1234_5678,
        };
        let mut s: HeapScheduler<SchedModel> = HeapScheduler::new();
        for i in 0..SCHED_DEPTH {
            s.schedule_at(Cycle(i % 997), heap_tick);
        }
        s.run(&mut model);
        assert_eq!(model.fired, events);
        black_box(s.now());
    });
    events as f64 / secs
}

// ---------------------------------------------------------------------------
// TLB lookup throughput (flat-array path), mixed hits and misses.
// ---------------------------------------------------------------------------

fn bench_tlb(policy: Replacement, lookups: u64) -> f64 {
    let secs = time(|| {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 64,
            ways: 4,
            replacement: policy,
            hit_cycles: 1,
        });
        for vpn in 0..64u64 {
            tlb.insert(Asid(1), vpn, vpn + 100, PteFlags::default());
        }
        let mut vpn = 0u64;
        for _ in 0..lookups {
            vpn = (vpn + 7) % 96; // mix of hits and misses
            black_box(tlb.lookup(Asid(1), vpn));
        }
        black_box(tlb.occupancy());
    });
    lookups as f64 / secs
}

// ---------------------------------------------------------------------------
// L1 cache access throughput (flat set-major array path): a strided sweep
// larger than the cache, mixing hits within lines, misses, and dirty
// evictions.
// ---------------------------------------------------------------------------

fn bench_cache_access(accesses: u64) -> f64 {
    use svmsyn_mem::cache::{CacheConfig, L1Cache};
    let secs = time(|| {
        let mut cache = L1Cache::new(CacheConfig::default());
        let mut addr = 0u64;
        for i in 0..accesses {
            // 20-byte stride wraps a 64 KiB window (2x the cache) so reuse
            // and eviction both happen; every 4th access dirties the line.
            addr = (addr + 20) & 0xFFFF;
            black_box(cache.access(PhysAddr(addr), i % 4 == 0));
        }
        black_box(cache.hit_rate());
    });
    accesses as f64 / secs
}

// ---------------------------------------------------------------------------
// Page-table walks (two dependent timed bus reads + ring walk cache).
// ---------------------------------------------------------------------------

fn setup_mapped_memory() -> (MemorySystem, PhysAddr) {
    let mut mem = MemorySystem::new(MemConfig::default());
    let root = PhysAddr::from_frame(5);
    mem.poke_u32(root, DirEntry::table(6).encode());
    let flags = PteFlags {
        writable: true,
        user: true,
        ..PteFlags::default()
    };
    for p in 0..64u64 {
        mem.poke_u32(
            PhysAddr::from_frame(6).offset(4 * p),
            Pte::leaf(100 + p, flags).encode(),
        );
    }
    (mem, root)
}

fn bench_walker(walks: u64) -> f64 {
    let secs = time(|| {
        let (mut mem, root) = setup_mapped_memory();
        let mut walker = PageTableWalker::new(WalkerConfig::l1_only(4));
        let mut now = Cycle(0);
        let mut page = 0u64;
        for _ in 0..walks {
            page = (page + 1) % 64;
            let r = walker.walk(
                &mut mem,
                FabricPort::new(MasterId(0)),
                root,
                Asid(1),
                VirtAddr(page << 12),
                now,
            );
            now = r.done;
            black_box(r.outcome.unwrap().pte);
        }
    });
    walks as f64 / secs
}

// ---------------------------------------------------------------------------
// Walk-heavy pointer chase through the walker: an LCG hops pseudo-randomly
// across a 64-page working set (far larger than the 16-entry TLB, so in a
// full system every hop is a walk). The two-level walker serves the leaf
// from its L2 walk cache with zero bus reads; the pre-PR L1-only walker
// pays a leaf bus read on every single hop.
// ---------------------------------------------------------------------------

fn bench_walker_chase(cfg: WalkerConfig, walks: u64) -> f64 {
    let secs = time(|| {
        let (mut mem, root) = setup_mapped_memory();
        let mut walker = PageTableWalker::new(cfg);
        let mut now = Cycle(0);
        let mut lcg = 0xDEAD_BEEFu64;
        for _ in 0..walks {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = (lcg >> 33) % 64;
            let r = walker.walk(
                &mut mem,
                FabricPort::new(MasterId(0)),
                root,
                Asid(1),
                VirtAddr(page << 12),
                now,
            );
            now = r.done;
            black_box(r.outcome.unwrap().pte);
        }
    });
    walks as f64 / secs
}

// ---------------------------------------------------------------------------
// Batched walks: bursts of 8 concurrent misses in one epoch, all inside one
// directory line, through the coalescing walk_many entry point (caches
// disabled so every burst actually exercises the batch path).
// ---------------------------------------------------------------------------

fn bench_walker_batched(walks: u64) -> f64 {
    let secs = time(|| {
        let (mut mem, root) = setup_mapped_memory();
        let mut walker = PageTableWalker::new(WalkerConfig::disabled());
        let mut now = Cycle(0);
        let mut base = 0u64;
        let mut vas = [VirtAddr(0); 8];
        for _ in 0..walks / 8 {
            for (i, va) in vas.iter_mut().enumerate() {
                *va = VirtAddr(((base + i as u64) % 64) << 12);
            }
            base = (base + 8) % 64;
            let rs = walker.walk_many(
                &mut mem,
                FabricPort::new(MasterId(0)),
                root,
                Asid(1),
                &vas,
                now,
            );
            now = rs.last().expect("batch").done;
            black_box(rs.len());
        }
    });
    walks as f64 / secs
}

// ---------------------------------------------------------------------------
// MEMIF streaming reads (burst-length ablation): sequential word reads
// through the MMU + burst cache, exercising the single-line fast path.
// ---------------------------------------------------------------------------

fn bench_memif_stream(line_bytes: u64, reads: u64) -> f64 {
    let secs = time(|| {
        let (mut mem, root) = setup_mapped_memory();
        let mut memif = Memif::new(
            MemifConfig {
                line_bytes,
                ..MemifConfig::default()
            },
            MasterId(1),
        );
        memif.set_context(Asid(1), root);
        let mut addr = 0u64;
        let mut now = Cycle(0);
        for _ in 0..reads {
            let (v, t) = memif
                .read(&mut mem, VirtAddr(addr), Width::W32, now)
                .expect("mapped");
            addr = (addr + 4) % (64 * 4096);
            now = t;
            black_box(v);
        }
    });
    reads as f64 / secs
}

// ---------------------------------------------------------------------------
// Split-transaction fabric: two independent masters streaming bank-strided
// 64 B reads through the issue/complete API. The windowed configuration
// keeps several transactions outstanding per master (DRAM latencies
// overlap); the `window=1` blocking configuration round-trips each read —
// the ratio of their *simulated* end times is the overlap speedup the
// redesign exists for (CI asserts > 1.3x in tests/fabric_conformance.rs).
// ---------------------------------------------------------------------------

/// Host-side throughput of the overlapped two-master stream (the hot
/// issue/poll path of the fabric), plus the simulated overlap speedup.
fn bench_fabric_overlap(reads: u64) -> (f64, f64) {
    let secs = time(|| {
        black_box(two_master_stream_cycles(FabricConfig::default(), reads));
    });
    let overlapped = two_master_stream_cycles(FabricConfig::default(), 4096);
    let serial = two_master_stream_cycles(FabricConfig::blocking(), 4096);
    ((2 * reads) as f64 / secs, serial as f64 / overlapped as f64)
}

// ---------------------------------------------------------------------------
// Hit-under-miss MEMIF: a mixed pointer-chase + streaming kernel on a real
// hardware thread. The chase hop's fill parks only the next (dependent)
// hop; the streaming vecadd element retires under the outstanding miss. The
// ratio of the blocking (`miss_depth = 1`) configuration's simulated cycles
// to the non-blocking (`miss_depth = 4`) one is the hit-under-miss speedup
// — deterministic, host-load-independent, asserted ≥ 1.15x in smoke mode
// (the PR's acceptance bar).
// ---------------------------------------------------------------------------

/// Simulated cycles of the chase+stream kernel at the given miss depth
/// (`hops <= 1024`: the stream arrays live in one page each).
fn chase_stream_cycles(hops: u64, miss_depth: u32) -> u64 {
    assert!(hops <= 1024, "stream arrays are single-page");
    let (mut mem, root) = setup_mapped_memory();
    // 2048-node permutation cycle at VA 0 (16 KiB: 4x the burst cache, so
    // hops keep missing); stream arrays at VA 0x8000 / 0x9000 / 0xA000.
    let mut rng = Xoshiro256ss::new(0xC0FFEE);
    let (words, _) = svmsyn_workloads::chase::chase_data(2048, hops, &mut rng);
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    mem.load(PhysAddr::from_frame(100), &bytes);
    for i in 0..hops {
        mem.poke_u32(PhysAddr::from_frame(108).offset(4 * i), i as u32);
        mem.poke_u32(PhysAddr::from_frame(109).offset(4 * i), 2 * i as u32);
    }
    let ck = Arc::new(compile(
        &svmsyn_workloads::chase::chase_stream_kernel(),
        &HlsConfig::default(),
    ));
    let cfg = HwThreadConfig {
        memif: MemifConfig {
            miss_depth,
            ..MemifConfig::default()
        },
    };
    let mut t = HwThread::new(
        ck,
        &[0, 0x8000, 0x9000, 0xA000, hops as i64],
        &cfg,
        MasterId(2),
    );
    t.set_context(Asid(1), root);
    let mut now = Cycle(0);
    loop {
        match t.advance(&mut mem, now, 100_000) {
            HwStep::Yielded { now: n } => now = n,
            HwStep::Parked { wake } => now = wake,
            HwStep::Finished { now: end, .. } => return end.0,
            HwStep::PageFault { fault, .. } => panic!("chase_stream faulted: {fault}"),
        }
    }
}

/// Host-side throughput of the non-blocking run, plus the simulated
/// blocking/non-blocking speedup.
fn bench_hit_under_miss(reps: u64) -> (f64, f64) {
    const HOPS: u64 = 1024;
    let secs = time(|| {
        for _ in 0..reps.max(1) {
            black_box(chase_stream_cycles(HOPS, 4));
        }
    });
    let blocking = chase_stream_cycles(HOPS, 1);
    let overlapped = chase_stream_cycles(HOPS, 4);
    (
        (reps.max(1) * HOPS) as f64 / secs,
        blocking as f64 / overlapped as f64,
    )
}

// ---------------------------------------------------------------------------
// HLS compilation of the matmul kernel, plus block-level list scheduling.
// ---------------------------------------------------------------------------

fn bench_hls_compile(compiles: u64) -> f64 {
    let kernel = svmsyn_workloads::matmul::matmul_kernel();
    let secs = time(|| {
        for _ in 0..compiles {
            black_box(compile(&kernel, &HlsConfig::default()));
        }
    });
    compiles as f64 / secs
}

fn bench_list_schedule(rounds: u64) -> f64 {
    let kernel = svmsyn_workloads::matmul::matmul_kernel();
    let budget = FuBudget::default();
    let secs = time(|| {
        for _ in 0..rounds {
            for blk in kernel.block_ids() {
                black_box(list_schedule(&kernel, blk, &budget));
            }
        }
    });
    rounds as f64 / secs
}

// ---------------------------------------------------------------------------
// Kernel pre-decoding: IR -> flat micro-op program (the cached step the
// interpreter rework added; cheap, but it sits on every cold kernel path).
// ---------------------------------------------------------------------------

fn bench_interp_decode(decodes: u64) -> f64 {
    let kernel = svmsyn_workloads::matmul::matmul_kernel();
    let secs = time(|| {
        for _ in 0..decodes {
            black_box(DecodedKernel::decode(&kernel));
        }
    });
    decodes as f64 / secs
}

// ---------------------------------------------------------------------------
// Full-system simulation (vecadd on a hardware thread, verified output).
// ---------------------------------------------------------------------------

fn bench_full_system(runs: u64) -> f64 {
    let w = vecadd(1024, 5);
    let platform = Platform::default();
    let design = hw_design(&w, &platform);
    let secs = time(|| {
        for _ in 0..runs {
            black_box(run_checked(&w, &design).makespan);
        }
    });
    runs as f64 / secs
}

// ---------------------------------------------------------------------------
// Memory-pressure path: the same full-system vecadd over-committed against a
// 4-frame budget, so every run finishes only through reclaim (clock scan),
// swap-out, shootdown broadcast, and major-fault swap-in — the whole
// fault-service lifecycle on the hot path, output still verified exact.
// ---------------------------------------------------------------------------

fn bench_pressure_reclaim(runs: u64) -> f64 {
    let w = vecadd(2048, 5);
    let mut platform = Platform::default();
    platform.os.frame_budget = Some(4);
    let design = hw_design(&w, &platform);
    let secs = time(|| {
        for _ in 0..runs {
            let o = run_checked(&w, &design);
            // The number is meaningless unless the budget actually bit.
            assert!(o.shootdowns > 0, "pressure bench ran unpressured");
            black_box(o.makespan);
        }
    });
    runs as f64 / secs
}

// ---------------------------------------------------------------------------
// Checkpoint serialization: full snapshot + validated restore round-trips of
// a mid-run pressured system (warmed caches, TLBs, swap state, pending
// events all in the image) — the cost a `checkpoint_every` pause or a chaos
// kill-and-resume pays per checkpoint.
// ---------------------------------------------------------------------------

fn bench_snapshot_roundtrip(rounds: u64) -> f64 {
    let w = vecadd(2048, 5);
    let mut platform = Platform::default();
    platform.os.frame_budget = Some(4);
    let design = hw_design(&w, &platform);
    let cfg = SimConfig::default();
    let mut sim = Sim::new(&design, &cfg).expect("bench setup");
    // Park mid-run, deep in reclaim/swap territory, so the image carries a
    // fully warmed system rather than a near-empty boot state.
    sim.run_until(Cycle(100_000)).expect("bench warmup");
    // Sanity once, outside the timed loop: the round-trip must be exact.
    let cp = sim.snapshot();
    let restored = Sim::restore(&design, &cfg, &cp).expect("bench restore");
    assert_eq!(
        restored.snapshot().as_bytes(),
        cp.as_bytes(),
        "snapshot bench round-trip is not bit-exact"
    );
    let secs = time(|| {
        for _ in 0..rounds {
            let cp = sim.snapshot();
            let restored = Sim::restore(&design, &cfg, &cp).expect("bench restore");
            black_box(restored.now());
        }
    });
    rounds as f64 / secs
}

// ---------------------------------------------------------------------------
// SimPoint-style sampled simulation on the longest suite workload (the
// pointer chase): the profile (BBV collection + clustering + checkpoint
// retention) is prepared outside the timed region, then `estimate()` —
// restore-and-replay of only the sampled windows — is timed against the
// full run. The *simulated-cycle* speedup (full cycles / cycles actually
// simulated) is deterministic and host-load-independent; the PR's
// acceptance bar pins it ≥ 3x.
// ---------------------------------------------------------------------------

fn bench_sampled_vs_full(runs: u64) -> (f64, f64) {
    use svmsyn::{SampleConfig, SampledRun};
    let w = &svmsyn_workloads::default_suite(2024)[6]; // chase
    let platform = Platform::default();
    let design = hw_design(w, &platform);
    let sim_cfg = SimConfig::default();
    let run = SampledRun::new(&design, &sim_cfg);
    let scfg = SampleConfig {
        interval_events: 100,
        ..SampleConfig::default()
    };
    let (profile, _) = run.profile(&scfg).expect("sampling bench profiles");
    let secs = time(|| {
        for _ in 0..runs.max(1) {
            black_box(run.estimate(&profile).expect("sampling bench estimates"));
        }
    });
    let est = run.estimate(&profile).expect("sampling bench estimates");
    assert!(
        est.cycles_simulated > 0 && est.cycles_simulated < est.cycles_full,
        "sampling bench degenerated to a full replay"
    );
    (
        runs.max(1) as f64 / secs,
        est.cycles_full as f64 / est.cycles_simulated as f64,
    )
}

// ---------------------------------------------------------------------------
// Sharded simulation: the same multi-thread chase+stream system run on the
// serial single-wheel engine and on the 2-shard parallel engine. The
// workload is latency-bound (dependent pointer hops) with a streaming
// side-channel, so each shard has real work between barriers. Outputs are
// conformance-checked once, untimed — the equivalence suite owns the full
// bit-identity proof; the bench owns the economics.
// ---------------------------------------------------------------------------

/// Two independent chase+stream threads over disjoint buffers: thread `t`
/// chases its own `nodes_t` ring while streaming `c_t[i] = a_t[i] + b_t[i]`.
fn sharded_bench_workload(nodes: usize, n: u64) -> Workload {
    use svmsyn::app::{ApplicationBuilder, ArgSpec};
    use svmsyn_workloads::chase::{chase_data, chase_stream_kernel};
    use svmsyn_workloads::common::u32s_to_bytes;

    let mut rng = Xoshiro256ss::new(0x5AAD);
    let mut builder = ApplicationBuilder::new("chase-stream-x2");
    let mut expected = Vec::new();
    for t in 0..2u64 {
        let (words, _) = chase_data(nodes, n, &mut rng);
        let a: Vec<u32> = (0..n).map(|_| rng.next_u32() >> 8).collect();
        let b: Vec<u32> = (0..n).map(|_| rng.next_u32() >> 8).collect();
        let c: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x.wrapping_add(*y)).collect();
        builder = builder
            .buffer(
                format!("nodes{t}"),
                nodes as u64 * 8,
                u32s_to_bytes(&words),
                false,
            )
            .buffer(format!("a{t}"), n * 4, u32s_to_bytes(&a), false)
            .buffer(format!("b{t}"), n * 4, u32s_to_bytes(&b), false)
            .buffer(format!("c{t}"), n * 4, vec![], false);
        let base = (t * 4) as usize;
        builder = builder.thread(
            format!("t{t}"),
            chase_stream_kernel(),
            vec![
                ArgSpec::Buffer(base, 0),
                ArgSpec::Buffer(base + 1, 0),
                ArgSpec::Buffer(base + 2, 0),
                ArgSpec::Buffer(base + 3, 0),
                ArgSpec::Value(n as i64),
            ],
            true,
        );
        expected.push((base + 3, u32s_to_bytes(&c)));
    }
    Workload {
        name: "chase-stream-x2".into(),
        app: builder.build().expect("bench app"),
        expected,
    }
}

fn bench_sharded_sim(runs: u64) -> f64 {
    let w = sharded_bench_workload(2048, 8192);
    let design = hw_design(&w, &Platform::default());
    let serial = SimConfig {
        max_events: 50_000_000,
        ..SimConfig::default()
    };
    let sharded = SimConfig {
        shards: 2,
        ..serial
    };
    // Conformance teeth, once and untimed: identical verified outputs, and
    // the barrier-wait health check surfaced when lookahead starves shards.
    let so = simulate(&design, &serial).expect("serial bench run");
    let po = simulate(&design, &sharded).expect("sharded bench run");
    w.verify(&so).expect("serial bench output");
    w.verify(&po).expect("sharded bench output");
    for warning in po.summary_warnings() {
        eprintln!("WARNING ({}): {warning}", w.name);
    }
    let serial_secs = time(|| {
        for _ in 0..runs {
            black_box(
                simulate(&design, &serial)
                    .expect("serial bench run")
                    .makespan,
            );
        }
    });
    let sharded_secs = time(|| {
        for _ in 0..runs {
            black_box(
                simulate(&design, &sharded)
                    .expect("sharded bench run")
                    .makespan,
            );
        }
    });
    serial_secs / sharded_secs
}

// ---------------------------------------------------------------------------
// DSE sweep: serial vs. parallel exhaustive search (simulation in the loop).
// ---------------------------------------------------------------------------

/// A 3-thread application (8 exhaustive design points) assembled from
/// vecadd kernels over shared inputs. The vectors are sized so a single
/// evaluation costs milliseconds — the regime both the parallel sweep and
/// the persistent result store target.
fn dse_bench_app() -> svmsyn::Application {
    use svmsyn::app::{ApplicationBuilder, ArgSpec};
    let n = 8192u64;
    let a_init: Vec<u8> = (0..n as u32).flat_map(|i| i.to_le_bytes()).collect();
    let b_init: Vec<u8> = (0..n as u32).flat_map(|i| (2 * i).to_le_bytes()).collect();
    let mut builder = ApplicationBuilder::new("dse-bench")
        .buffer("a", n * 4, a_init, false)
        .buffer("b", n * 4, b_init, false);
    for i in 0..3 {
        builder = builder.buffer(format!("dst{i}"), n * 4, vec![], false);
    }
    for i in 0..3usize {
        builder = builder.thread(
            format!("t{i}"),
            svmsyn_workloads::streaming::vecadd_kernel(),
            vec![
                ArgSpec::Buffer(0, 0),
                ArgSpec::Buffer(1, 0),
                ArgSpec::Buffer(2 + i, 0),
                ArgSpec::Value(n as i64),
            ],
            true,
        );
    }
    builder.build().expect("bench app")
}

fn dse_bench_cfg(threads: usize) -> DseConfig {
    DseConfig {
        method: DseMethod::Exhaustive,
        sim: SimConfig {
            quantum: 50_000,
            ..SimConfig::default()
        },
        threads,
        ..DseConfig::default()
    }
}

fn dse_sweep_secs(threads: usize) -> f64 {
    let app = dse_bench_app();
    let platform = Platform::default();
    let cfg = dse_bench_cfg(threads);
    time(|| {
        let r = explore(&app, &platform, &cfg).expect("bench DSE");
        black_box(r.best.makespan);
    })
}

// ---------------------------------------------------------------------------
// Persistent result store: the identical exhaustive sweep against a fresh
// store (cold: every point simulated and published to disk) and again over
// the same root (warm: every point served from disk). The single-pass
// `Instant` timing is deliberate — `time()`'s warm-up pass would populate
// the store and erase the cold leg. The wall ratio is the price of a
// simulation vs. a record read; the store tests pin the semantics
// (bit-identical results), this pins the economics.
// ---------------------------------------------------------------------------

fn bench_dse_store_warm_vs_cold() -> (f64, f64) {
    let app = dse_bench_app();
    let platform = Platform::default();
    let cfg = dse_bench_cfg(1);
    let root = std::env::temp_dir().join(format!("svmsyn-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let store = ResultStore::open(&root).expect("bench store");
    let start = Instant::now();
    let cold = explore_with_store(&app, &platform, &cfg, Some(&store)).expect("cold sweep");
    let cold_secs = start.elapsed().as_secs_f64();
    assert_eq!(cold.store_hits, 0, "cold store bench started warm");

    // Fresh handle: the warm leg must come from disk, not the old handle's
    // in-memory state (the index holds digests either way — records are
    // read back per probe).
    let store = ResultStore::open(&root).expect("bench store reopen");
    let start = Instant::now();
    let warm = explore_with_store(&app, &platform, &cfg, Some(&store)).expect("warm sweep");
    let warm_secs = start.elapsed().as_secs_f64();
    assert_eq!(warm.store_misses, 0, "warm store bench re-simulated");
    assert_eq!(
        warm.best, cold.best,
        "store round-trip changed the sweep result"
    );

    let _ = std::fs::remove_dir_all(&root);
    (cold_secs, warm_secs)
}

fn write_baseline(results: &[Result], path: &Path) {
    let mut json = String::from("{\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "  \"{}\": {{ \"value\": {:.3}, \"unit\": \"{}\" }}{}\n",
            r.name,
            r.value,
            r.unit,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("}\n");
    std::fs::write(path, json).expect("write BENCH_baseline.json");
}

fn main() {
    // `--smoke`: scaled-down pass for CI — exercises every harness, writes
    // no baseline, applies no perf expectations.
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale: u64 = if smoke { 40 } else { 1 };
    let mut results: Vec<Result> = Vec::new();

    let wheel = bench_scheduler_wheel(2_000_000 / scale);
    let heap = bench_scheduler_heap(2_000_000 / scale);
    let ratio = wheel / heap;
    results.push(Result {
        name: "scheduler_wheel_events_per_sec",
        value: wheel,
        unit: "events/s",
    });
    results.push(Result {
        name: "scheduler_heap_events_per_sec",
        value: heap,
        unit: "events/s",
    });
    results.push(Result {
        name: "scheduler_wheel_vs_heap_speedup",
        value: ratio,
        unit: "x",
    });

    for (name, policy) in [
        ("tlb_lookup_lru_per_sec", Replacement::Lru),
        ("tlb_lookup_fifo_per_sec", Replacement::Fifo),
        ("tlb_lookup_random_per_sec", Replacement::Random),
    ] {
        results.push(Result {
            name,
            value: bench_tlb(policy, 4_000_000 / scale),
            unit: "lookups/s",
        });
    }

    results.push(Result {
        name: "cache_access_per_sec",
        value: bench_cache_access(4_000_000 / scale),
        unit: "accesses/s",
    });

    results.push(Result {
        name: "page_table_walks_per_sec",
        value: bench_walker(1_000_000 / scale),
        unit: "walks/s",
    });

    let two_level = bench_walker_chase(WalkerConfig::two_level(4, 64), 2_000_000 / scale);
    let l1_only = bench_walker_chase(WalkerConfig::l1_only(4), 1_000_000 / scale);
    results.push(Result {
        name: "walker_walks_per_sec",
        value: two_level,
        unit: "walks/s",
    });
    results.push(Result {
        name: "walker_l1_only_walks_per_sec",
        value: l1_only,
        unit: "walks/s",
    });
    results.push(Result {
        name: "walker_two_level_speedup",
        value: two_level / l1_only,
        unit: "x",
    });
    results.push(Result {
        name: "walker_batched_walks_per_sec",
        value: bench_walker_batched(1_000_000 / scale),
        unit: "walks/s",
    });

    for (name, line) in [
        ("memif_stream_read_line32_per_sec", 32u64),
        ("memif_stream_read_line64_per_sec", 64),
        ("memif_stream_read_line128_per_sec", 128),
        ("memif_stream_read_line256_per_sec", 256),
    ] {
        results.push(Result {
            name,
            value: bench_memif_stream(line, 1_000_000 / scale),
            unit: "reads/s",
        });
    }

    let (fabric_reads, fabric_speedup) = bench_fabric_overlap(1_000_000 / scale);
    results.push(Result {
        name: "fabric_overlapped_reads_per_sec",
        value: fabric_reads,
        unit: "reads/s",
    });
    results.push(Result {
        name: "fabric_overlap_speedup",
        value: fabric_speedup,
        unit: "x",
    });

    let (hum_hops, hum_speedup) = bench_hit_under_miss(40 / scale.min(40));
    results.push(Result {
        name: "memif_chase_stream_hops_per_sec",
        value: hum_hops,
        unit: "hops/s",
    });
    results.push(Result {
        name: "memif_hit_under_miss_speedup",
        value: hum_speedup,
        unit: "x",
    });

    results.push(Result {
        name: "hls_compile_matmul_per_sec",
        value: bench_hls_compile(if smoke { 5 } else { 200 }),
        unit: "compiles/s",
    });
    results.push(Result {
        name: "hls_list_schedule_matmul_per_sec",
        value: bench_list_schedule(2_000 / scale),
        unit: "rounds/s",
    });
    results.push(Result {
        name: "interp_decode_matmul_per_sec",
        value: bench_interp_decode(20_000 / scale),
        unit: "decodes/s",
    });
    results.push(Result {
        name: "full_system_vecadd1k_runs_per_sec",
        value: bench_full_system(if smoke { 2 } else { 20 }),
        unit: "runs/s",
    });
    results.push(Result {
        name: "pressure_reclaim_runs_per_sec",
        value: bench_pressure_reclaim(if smoke { 2 } else { 20 }),
        unit: "runs/s",
    });
    results.push(Result {
        name: "snapshot_roundtrip_per_sec",
        value: bench_snapshot_roundtrip(if smoke { 5 } else { 200 }),
        unit: "roundtrips/s",
    });

    let (est_runs, sampled_speedup) = bench_sampled_vs_full(if smoke { 2 } else { 20 });
    results.push(Result {
        name: "sampled_estimate_runs_per_sec",
        value: est_runs,
        unit: "runs/s",
    });
    results.push(Result {
        name: "sampled_vs_full_speedup",
        value: sampled_speedup,
        unit: "x",
    });

    results.push(Result {
        name: "sharded_sim_speedup",
        value: bench_sharded_sim(if smoke { 1 } else { 5 }),
        unit: "x",
    });

    let serial = dse_sweep_secs(1);
    let parallel = dse_sweep_secs(0);
    results.push(Result {
        name: "dse_exhaustive8_serial_secs",
        value: serial,
        unit: "s",
    });
    results.push(Result {
        name: "dse_exhaustive8_parallel_secs",
        value: parallel,
        unit: "s",
    });
    results.push(Result {
        name: "dse_parallel_speedup",
        value: serial / parallel,
        unit: "x",
    });

    let (store_cold, store_warm) = bench_dse_store_warm_vs_cold();
    results.push(Result {
        name: "dse_store_cold_secs",
        value: store_cold,
        unit: "s",
    });
    results.push(Result {
        name: "dse_store_warm_secs",
        value: store_warm,
        unit: "s",
    });
    results.push(Result {
        name: "dse_store_warm_vs_cold_speedup",
        value: store_cold / store_warm,
        unit: "x",
    });

    // Host core count, recorded alongside the numbers: a ~1.0x
    // `dse_parallel_speedup` on a 1-CPU container is expected, not a
    // regression — this entry makes the artifact self-describing.
    results.push(Result {
        name: "host_cores",
        value: std::thread::available_parallelism().map_or(1.0, |n| n.get() as f64),
        unit: "cores",
    });

    println!("{:<44} {:>16}  unit", "benchmark", "value");
    for r in &results {
        println!("{:<44} {:>16.3}  {}", r.name, r.value, r.unit);
    }

    // A 1-core host cannot show any parallel-sweep win: flag the degenerate
    // reading in the summary so a ~1.0x `dse_parallel_speedup` recorded on
    // such a container is not misread as a regression (ROADMAP note).
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if host_cores == 1 {
        println!(
            "WARNING: host_cores == 1 — dse_parallel_speedup ~1.0x is the \
             expected degenerate reading on this host, not a regression; \
             re-record on a multicore machine"
        );
        println!(
            "WARNING: host_cores == 1 — sharded_sim_speedup below 1.0x is \
             likewise expected here: both shards time-slice one core and \
             pay the window-barrier protocol on top; re-record on a \
             multicore machine"
        );
    }

    if smoke {
        // CI contract: the walker throughput entry must exist (the baseline
        // comparison and the conformance story both key off it).
        assert!(
            results.iter().any(|r| r.name == "walker_walks_per_sec"),
            "walker_walks_per_sec missing from the benchmark set"
        );
        // CI contract: the fabric-overlap entry must exist and its
        // *simulated* speedup (deterministic, host-load-independent) must
        // clear the redesign's 1.3x acceptance bar.
        let overlap = results
            .iter()
            .find(|r| r.name == "fabric_overlap_speedup")
            .expect("fabric_overlap_speedup missing from the benchmark set");
        assert!(
            results
                .iter()
                .any(|r| r.name == "fabric_overlapped_reads_per_sec"),
            "fabric_overlapped_reads_per_sec missing from the benchmark set"
        );
        assert!(
            overlap.value > 1.3,
            "fabric overlap speedup {:.2}x below the 1.3x bar",
            overlap.value
        );
        // CI contract: the hit-under-miss entry must exist and its
        // *simulated* speedup (deterministic, host-load-independent) must
        // clear the PR's 1.15x acceptance bar — a blocking-vs-non-blocking
        // MEMIF ratio on the mixed chase+stream workload at depth 4.
        let hum = results
            .iter()
            .find(|r| r.name == "memif_hit_under_miss_speedup")
            .expect("memif_hit_under_miss_speedup missing from the benchmark set");
        assert!(
            hum.value >= 1.15,
            "hit-under-miss speedup {:.3}x below the 1.15x bar",
            hum.value
        );
        // CI contract: the memory-pressure entry must exist — its harness
        // already asserted internally that reclaim/shootdowns fired.
        assert!(
            results
                .iter()
                .any(|r| r.name == "pressure_reclaim_runs_per_sec"),
            "pressure_reclaim_runs_per_sec missing from the benchmark set"
        );
        // CI contract: the checkpoint entry must exist — its harness
        // already asserted internally that the round-trip is bit-exact.
        assert!(
            results
                .iter()
                .any(|r| r.name == "snapshot_roundtrip_per_sec"),
            "snapshot_roundtrip_per_sec missing from the benchmark set"
        );
        // CI contract: the sampled-simulation entry must exist and its
        // *simulated-cycle* speedup (deterministic, host-load-independent)
        // must clear the PR's 3x acceptance bar on the longest workload.
        let sampled = results
            .iter()
            .find(|r| r.name == "sampled_vs_full_speedup")
            .expect("sampled_vs_full_speedup missing from the benchmark set");
        assert!(
            sampled.value >= 3.0,
            "sampled-vs-full speedup {:.2}x below the 3x bar",
            sampled.value
        );
        // CI contract: the warm-vs-cold store entry must exist and a warm
        // sweep (record reads) must beat the cold sweep (simulations) by
        // the PR's 3x acceptance bar — the economics the persistent store
        // exists for. The harness already asserted the semantics: zero
        // warm misses and an identical best point.
        let store = results
            .iter()
            .find(|r| r.name == "dse_store_warm_vs_cold_speedup")
            .expect("dse_store_warm_vs_cold_speedup missing from the benchmark set");
        assert!(
            store.value >= 3.0,
            "store warm-vs-cold speedup {:.2}x below the 3x bar",
            store.value
        );
        // CI contract: the sharded-simulation entry must exist (its
        // harness already conformance-checked outputs against the serial
        // engine), and on a multicore host the 2-shard run must clear the
        // PR's 1.5x bar. On a 1-core host the reading is degenerate —
        // both shards time-slice one core — so it is warned, not asserted.
        let sharded = results
            .iter()
            .find(|r| r.name == "sharded_sim_speedup")
            .expect("sharded_sim_speedup missing from the benchmark set");
        if host_cores > 1 {
            assert!(
                sharded.value > 1.5,
                "sharded simulation speedup {:.2}x below the 1.5x bar on a \
                 {host_cores}-core host",
                sharded.value
            );
        } else {
            println!(
                "WARNING: host_cores == 1 — sharded_sim_speedup {:.2}x not \
                 asserted against the 1.5x bar on this host",
                sharded.value
            );
        }
        // CI contract: on any multicore host the parallel sweep must beat
        // the serial one outright. (On a 1-core host the reading is the
        // degenerate ~1.0x flagged above — nothing to assert.)
        if host_cores > 1 {
            let dse = results
                .iter()
                .find(|r| r.name == "dse_parallel_speedup")
                .expect("dse_parallel_speedup missing from the benchmark set");
            assert!(
                dse.value > 1.0,
                "parallel DSE speedup {:.2}x on a {host_cores}-core host",
                dse.value
            );
        }
        println!("\nsmoke mode: baseline not written");
        return;
    }

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_baseline.json");
    write_baseline(&results, &path);
    println!("\nwrote {}", path.display());

    // Advisory only: a single timed pass is noisy on loaded machines, so a
    // low ratio warns rather than failing the bench run.
    if ratio < 2.0 {
        eprintln!("WARNING: wheel/heap ratio {ratio:.2} below the 2.0 target on this machine");
    }
}
