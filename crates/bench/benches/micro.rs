//! Criterion micro-benchmarks over the hot paths of the stack:
//! TLB lookups, MEMIF streaming (burst-length ablation), page-table walks,
//! HLS scheduling, and a small end-to-end system simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use svmsyn::platform::Platform;
use svmsyn_bench::{hw_design, run_checked};
use svmsyn_hls::fsmd::{compile, HlsConfig};
use svmsyn_hls::ir::Width;
use svmsyn_hls::sched::list_schedule;
use svmsyn_hls::resource::FuBudget;
use svmsyn_hwt::memif::{Memif, MemifConfig};
use svmsyn_mem::{MasterId, MemConfig, MemorySystem, PhysAddr, VirtAddr};
use svmsyn_sim::Cycle;
use svmsyn_vm::pte::{DirEntry, Pte, PteFlags};
use svmsyn_vm::tlb::{Asid, Replacement, Tlb, TlbConfig};
use svmsyn_vm::walker::{PageTableWalker, WalkerConfig};
use svmsyn_workloads::streaming::vecadd;

fn bench_tlb(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb_lookup");
    for policy in [Replacement::Lru, Replacement::Fifo, Replacement::Random] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                let mut tlb = Tlb::new(TlbConfig {
                    entries: 32,
                    ways: 32,
                    replacement: policy,
                    hit_cycles: 1,
                });
                for vpn in 0..32u64 {
                    tlb.insert(Asid(1), vpn, vpn + 100, PteFlags::default());
                }
                let mut vpn = 0u64;
                b.iter(|| {
                    vpn = (vpn + 7) % 48; // mix of hits and misses
                    black_box(tlb.lookup(Asid(1), vpn))
                });
            },
        );
    }
    group.finish();
}

fn setup_mapped_memory() -> (MemorySystem, PhysAddr) {
    let mut mem = MemorySystem::new(MemConfig::default());
    let root = PhysAddr::from_frame(5);
    mem.poke_u32(root, DirEntry::table(6).encode());
    let flags = PteFlags {
        writable: true,
        user: true,
        ..PteFlags::default()
    };
    for p in 0..64u64 {
        mem.poke_u32(
            PhysAddr::from_frame(6).offset(4 * p),
            Pte::leaf(100 + p, flags).encode(),
        );
    }
    (mem, root)
}

fn bench_memif_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("memif_stream_read");
    for line in [32u64, 64, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(line), &line, |b, &line| {
            let (mut mem, root) = setup_mapped_memory();
            let mut memif = Memif::new(
                MemifConfig {
                    line_bytes: line,
                    ..MemifConfig::default()
                },
                MasterId(1),
            );
            memif.set_context(Asid(1), root);
            let mut addr = 0u64;
            let mut now = Cycle(0);
            b.iter(|| {
                let (v, t) = memif
                    .read(&mut mem, VirtAddr(addr), Width::W32, now)
                    .expect("mapped");
                addr = (addr + 4) % (64 * 4096);
                now = t;
                black_box(v)
            });
        });
    }
    group.finish();
}

fn bench_walker(c: &mut Criterion) {
    c.bench_function("page_table_walk", |b| {
        let (mut mem, root) = setup_mapped_memory();
        let mut walker = PageTableWalker::new(WalkerConfig { walk_cache_entries: 0 });
        let mut now = Cycle(0);
        let mut page = 0u64;
        b.iter(|| {
            page = (page + 1) % 64;
            let r = walker.walk(
                &mut mem,
                MasterId(0),
                root,
                Asid(1),
                VirtAddr(page << 12),
                now,
            );
            now = r.done;
            black_box(r.outcome.unwrap().pte)
        });
    });
}

fn bench_hls(c: &mut Criterion) {
    let kernel = svmsyn_workloads::matmul::matmul_kernel();
    c.bench_function("hls_compile_matmul", |b| {
        b.iter(|| black_box(compile(&kernel, &HlsConfig::default())))
    });
    c.bench_function("list_schedule_matmul_body", |b| {
        let budget = FuBudget::default();
        b.iter(|| {
            for blk in kernel.block_ids() {
                black_box(list_schedule(&kernel, blk, &budget));
            }
        })
    });
}

fn bench_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_system");
    group.sample_size(10);
    group.bench_function("vecadd_1k_hw", |b| {
        let w = vecadd(1024, 5);
        let platform = Platform::default();
        let design = hw_design(&w, &platform);
        b.iter(|| black_box(run_checked(&w, &design).makespan));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tlb,
    bench_memif_stream,
    bench_walker,
    bench_hls,
    bench_system
);
criterion_main!(benches);
