//! **Figure 3** — speedup of one SVM hardware thread over one software
//! thread, per kernel (outputs verified against the reference on both
//! sides before any number is printed).
//!
//! Run with `cargo run --release -p svmsyn-bench --bin fig3_speedup`.

use svmsyn::platform::Platform;
use svmsyn::report::{fmt_cycles, fmt_ratio, Table};
use svmsyn_bench::{hw_design, run_checked, sw_design};
use svmsyn_workloads::default_suite;

fn main() {
    let platform = Platform::default();
    let mut t = Table::new(
        "Figure 3: HW (SVM) vs SW runtime per kernel",
        &[
            "kernel",
            "SW cycles",
            "HW cycles",
            "speedup",
            "HW wall us",
            "HW TLB hit%",
            "HW faults",
        ],
    );
    for w in default_suite(42) {
        let sw = run_checked(&w, &sw_design(&w, &platform));
        let hw_d = hw_design(&w, &platform);
        let hw = run_checked(&w, &hw_d);
        // Compare wall time (the HW design may close below the platform
        // clock); SW runs at the full platform clock.
        let sw_us = sw.makespan.as_micros(platform.fabric_mhz);
        let hw_us = hw.wall_micros(&hw_d);
        let tlb_hit = hw.threads[0]
            .stats()
            .get("memif.mmu.tlb.hit_rate")
            .unwrap_or(0.0);
        t.row_owned(vec![
            w.name.clone(),
            fmt_cycles(sw.makespan.0),
            fmt_cycles(hw.makespan.0),
            fmt_ratio(sw_us / hw_us),
            format!("{hw_us:.1}"),
            format!("{:.1}", tlb_hit * 100.0),
            format!("{:.0}", hw.stats().get("os.hw_faults").unwrap_or(0.0)),
        ]);
    }
    println!("{t}");
}
