//! **Figure 6** — scalability: aggregate throughput of 1–8 concurrent
//! hardware threads sharing the bus (vecadd replicas). Streaming saturates
//! the shared bus; the curve's knee is the platform's bandwidth ceiling.
//!
//! Run with `cargo run --release -p svmsyn-bench --bin fig6_scaling`.

use svmsyn::app::{ApplicationBuilder, ArgSpec};
use svmsyn::flow::{synthesize, Placement};
use svmsyn::platform::Platform;
use svmsyn::report::{fmt_cycles, Table};
use svmsyn::sim::{simulate, SimConfig};
use svmsyn_sim::Xoshiro256ss;
use svmsyn_workloads::common::i32s_to_bytes;
use svmsyn_workloads::streaming::vecadd_kernel;

fn main() {
    // A fabric large enough that the bus — not area — is the bottleneck.
    let mut platform = Platform::default();
    platform.fabric = platform.fabric * 4;
    platform.max_hw_threads = 8;

    let n: u64 = 4096;
    let mut rng = Xoshiro256ss::new(6);
    let a: Vec<i32> = (0..n).map(|_| rng.next_u32() as i32 >> 8).collect();
    let b: Vec<i32> = (0..n).map(|_| rng.next_u32() as i32 >> 8).collect();
    let expected: Vec<i32> = a.iter().zip(&b).map(|(x, y)| x.wrapping_add(*y)).collect();
    let expected_bytes = i32s_to_bytes(&expected);

    let mut t = Table::new(
        "Figure 6: aggregate throughput vs concurrent HW threads (vecadd)",
        &[
            "threads",
            "makespan",
            "bytes moved",
            "B/cycle",
            "bus util%",
            "speedup vs 1",
        ],
    );
    let mut base = 0.0f64;
    for k in 1..=8usize {
        let mut builder = ApplicationBuilder::new("scale");
        for i in 0..k {
            builder = builder
                .buffer(format!("a{i}"), n * 4, i32s_to_bytes(&a), false)
                .buffer(format!("b{i}"), n * 4, i32s_to_bytes(&b), false)
                .buffer(format!("d{i}"), n * 4, vec![], false);
        }
        for i in 0..k {
            builder = builder.thread(
                format!("t{i}"),
                vecadd_kernel(),
                vec![
                    ArgSpec::Buffer(3 * i, 0),
                    ArgSpec::Buffer(3 * i + 1, 0),
                    ArgSpec::Buffer(3 * i + 2, 0),
                    ArgSpec::Value(n as i64),
                ],
                true,
            );
        }
        let app = builder.build().expect("scaling app");
        let design = synthesize(&app, &platform, &vec![Placement::Hardware; k]).expect("synthesis");
        let outcome = simulate(&design, &SimConfig::default()).expect("simulation");
        for i in 0..k {
            let mut out = vec![0u8; (n * 4) as usize];
            outcome.read_buffer(3 * i + 2, &mut out);
            assert_eq!(out, expected_bytes, "thread {i} output");
        }
        // Each thread streams 3 arrays of n*4 bytes.
        let bytes = (k as u64) * 3 * n * 4;
        let tput = bytes as f64 / outcome.makespan.0 as f64;
        if k == 1 {
            base = tput;
        }
        let util = outcome.stats().get("mem.fabric.busy_cycles").unwrap_or(0.0)
            / outcome.makespan.0 as f64;
        t.row_owned(vec![
            k.to_string(),
            fmt_cycles(outcome.makespan.0),
            bytes.to_string(),
            format!("{tput:.2}"),
            format!("{:.1}", util.min(1.0) * 100.0),
            format!("{:.2}x", tput / base),
        ]);
    }
    println!("{t}");
}
