//! **Table 3** — page-fault service cost: the model's component breakdown
//! plus the *measured* marginal cost per fault (demand-paged vs pre-faulted
//! runs of the same kernel), which adds the hardware-side detect/retry
//! overhead on top of the software path.
//!
//! Run with `cargo run --release -p svmsyn-bench --bin table3_fault`.

use svmsyn::platform::Platform;
use svmsyn::report::Table;
use svmsyn_bench::{hw_design, run_checked};
use svmsyn_workloads::streaming::vecadd;

fn main() {
    let platform = Platform::default();
    let costs = platform.os.costs;

    let mut t = Table::new(
        "Table 3: page-fault service cost (fabric cycles)",
        &["component", "cycles"],
    );
    t.row_owned(vec![
        "interrupt entry + dispatch".into(),
        costs.interrupt_entry.to_string(),
    ]);
    t.row_owned(vec![
        "delegate thread wakeup".into(),
        costs.delegate_wakeup.to_string(),
    ]);
    t.row_owned(vec![
        "OS fault service (vma, frame, PTE)".into(),
        costs.fault_service.to_string(),
    ]);
    t.row_owned(vec![
        "page zeroing (4 KiB)".into(),
        costs.page_zero.to_string(),
    ]);
    t.row_owned(vec![
        "model total (HW-thread path)".into(),
        costs.hw_fault_total().to_string(),
    ]);
    t.row_owned(vec![
        "model total (SW-thread path)".into(),
        costs.sw_fault_total().to_string(),
    ]);

    // Measured marginal cost: same kernel, demand-paged vs pre-faulted.
    let n = 16384u64;
    let demand = vecadd(n, 77);
    let mut populated = demand.clone();
    for b in &mut populated.app.buffers {
        b.populate = true;
    }
    let d_out = run_checked(&demand, &hw_design(&demand, &platform));
    let p_out = run_checked(&populated, &hw_design(&populated, &platform));
    let faults = d_out.stats().get("os.hw_faults").unwrap_or(0.0);
    let marginal = (d_out.makespan.0 as f64 - p_out.makespan.0 as f64) / faults.max(1.0);
    t.row_owned(vec![
        format!("measured marginal / fault ({faults:.0} faults, vecadd n={n})"),
        format!("{marginal:.0}"),
    ]);
    t.row_owned(vec![
        "  = model total + fault-detect walk + retry + queueing".into(),
        String::new(),
    ]);
    println!("{t}");
    println!(
        "demand-paged makespan {} vs pre-faulted {}",
        d_out.makespan, p_out.makespan
    );
}
