//! **Figure 4** — SVM (zero-copy) vs the classical copy-based DMA flow:
//! end-to-end time vs data size, with the copy breakdown. The crossover is
//! where the O(n) copies overtake the O(n/page) translation overhead.
//!
//! Run with `cargo run --release -p svmsyn-bench --bin fig4_svm_vs_copy`.

use svmsyn::baseline::{run_copy_flow, run_svm_flow};
use svmsyn::platform::Platform;
use svmsyn::report::{fmt_cycles, fmt_ratio, Table};
use svmsyn_sim::Xoshiro256ss;
use svmsyn_workloads::streaming::vecadd_kernel;

fn main() {
    let platform = Platform::default();
    let mut t = Table::new(
        "Figure 4: SVM vs copy-based DMA (vecadd, i32 elements)",
        &[
            "n",
            "copy-in",
            "compute",
            "copy-out",
            "copy total",
            "SVM total",
            "SVM/copy",
        ],
    );
    // vecadd reads two arrays; pack them adjacently in one input payload.
    let kernel = vecadd_kernel();
    for n in [256u64, 1024, 4096, 16384, 65536] {
        let mut rng = Xoshiro256ss::new(n);
        let bytes_per_array = n * 4;
        let input: Vec<u8> = (0..2 * n)
            .flat_map(|_| ((rng.next_u32() >> 8) as i32).to_le_bytes())
            .collect();
        let args = move |in_base: u64, out_base: u64| {
            vec![
                in_base as i64,
                (in_base + bytes_per_array) as i64,
                out_base as i64,
                n as i64,
            ]
        };
        let (ct, copy_out) =
            run_copy_flow(&kernel, &platform, &input, bytes_per_array, &args).expect("copy flow");
        let (svm_time, svm_out) =
            run_svm_flow(&kernel, &platform, &input, bytes_per_array, &args).expect("svm flow");
        assert_eq!(copy_out, svm_out, "flows must agree on every byte");
        t.row_owned(vec![
            n.to_string(),
            fmt_cycles(ct.copy_in.0),
            fmt_cycles(ct.compute.0),
            fmt_cycles(ct.copy_out.0),
            fmt_cycles(ct.total().0),
            fmt_cycles(svm_time.0),
            fmt_ratio(svm_time.0 as f64 / ct.total().0 as f64),
        ]);
    }
    println!("{t}");
    println!("(SVM/copy < 1.00x means the SVM flow wins)");
}
