//! **Figure 5** — TLB-size sensitivity: runtime and hit rate for a
//! streaming kernel (vecadd) vs a pointer-chasing kernel, sweeping the TLB
//! from 2 to 64 entries; plus the walk-cache ablation.
//!
//! Run with `cargo run --release -p svmsyn-bench --bin fig5_tlb`
//! (add `--no-walk-cache` for the ablation series).

use svmsyn::platform::Platform;
use svmsyn::report::{fmt_cycles, Table};
use svmsyn_bench::{hw_design, run_checked};
use svmsyn_vm::tlb::TlbConfig;
use svmsyn_vm::walker::WalkerConfig;
use svmsyn_workloads::{chase::chase, streaming::vecadd, Workload};

fn run_series(w: &Workload, entries: usize, walk_cache: WalkerConfig) -> (u64, f64, f64) {
    let mut platform = Platform::default();
    platform.memif.mmu.tlb = TlbConfig::fully_associative(entries);
    platform.memif.mmu.walker = walk_cache;
    let design = hw_design(w, &platform);
    let outcome = run_checked(w, &design);
    let stats = outcome.threads[0].stats();
    (
        outcome.makespan.0,
        stats.get("memif.mmu.tlb.hit_rate").unwrap_or(0.0),
        stats.get("memif.mmu.walker.walks").unwrap_or(0.0),
    )
}

fn main() {
    let walk_cache = if std::env::args().any(|a| a == "--no-walk-cache") {
        WalkerConfig::disabled()
    } else {
        WalkerConfig::default()
    };
    println!(
        "walk cache entries: l1={} l2={}",
        walk_cache.l1_entries, walk_cache.l2_entries
    );
    let streaming = vecadd(8192, 42);
    let pointer = chase(4096, 8192, 42);
    let mut t = Table::new(
        "Figure 5: runtime & TLB hit rate vs TLB entries (fully assoc.)",
        &[
            "entries",
            "vecadd cycles",
            "vecadd hit%",
            "chase cycles",
            "chase hit%",
            "chase walks",
        ],
    );
    for entries in [2usize, 4, 8, 16, 32, 64] {
        let (vc, vh, _) = run_series(&streaming, entries, walk_cache);
        let (cc, ch, cw) = run_series(&pointer, entries, walk_cache);
        t.row_owned(vec![
            entries.to_string(),
            fmt_cycles(vc),
            format!("{:.1}", vh * 100.0),
            fmt_cycles(cc),
            format!("{:.1}", ch * 100.0),
            format!("{cw:.0}"),
        ]);
    }
    println!("{t}");
}
