//! **Table 1** — fabric cost of the per-thread VM infrastructure vs TLB
//! geometry (MMU = TLB + walker + control; plus burst engine and OSIF).
//!
//! Run with `cargo run -p svmsyn-bench --bin table1_resources`.

use svmsyn::report::Table;
use svmsyn_hwt::cost::{memif_cost, osif_cost, vm_infrastructure_cost};
use svmsyn_hwt::memif::MemifConfig;
use svmsyn_vm::cost::{mmu_cost, mmu_fmax_mhz};
use svmsyn_vm::mmu::MmuConfig;
use svmsyn_vm::tlb::{Replacement, TlbConfig};

fn main() {
    let mut t = Table::new(
        "Table 1: VM infrastructure cost per hardware thread",
        &[
            "TLB geometry",
            "MMU LUT",
            "MMU FF",
            "MMU BRAM",
            "total LUT",
            "total FF",
            "total BRAM",
            "MMU Fmax (MHz)",
        ],
    );
    let geometries: Vec<(String, TlbConfig)> = [4usize, 8, 16, 32, 64]
        .iter()
        .map(|&e| (format!("{e}e fully-assoc"), TlbConfig::fully_associative(e)))
        .chain([16usize, 32, 64].iter().map(|&e| {
            (
                format!("{e}e 4-way"),
                TlbConfig {
                    entries: e,
                    ways: 4,
                    replacement: Replacement::Lru,
                    hit_cycles: 1,
                },
            )
        }))
        .collect();
    for (name, tlb) in geometries {
        let mmu_cfg = MmuConfig {
            tlb,
            ..MmuConfig::default()
        };
        let memif = MemifConfig {
            mmu: mmu_cfg,
            ..MemifConfig::default()
        };
        let mmu = mmu_cost(&mmu_cfg);
        let total = vm_infrastructure_cost(&memif);
        t.row_owned(vec![
            name,
            mmu.lut.to_string(),
            mmu.ff.to_string(),
            mmu.bram36.to_string(),
            total.lut.to_string(),
            total.ff.to_string(),
            total.bram36.to_string(),
            format!("{:.1}", mmu_fmax_mhz(&mmu_cfg)),
        ]);
    }
    println!("{t}");
    let memif = MemifConfig::default();
    println!(
        "fixed parts: burst engine = {}, OSIF = {}",
        memif_cost(&memif),
        osif_cost()
    );
}
