//! **Figure 7** — the HW/SW partitioning Pareto front: fabric area vs
//! application makespan for a six-thread mixed application, with the
//! heuristic searches compared against the exhaustive optimum.
//!
//! Run with `cargo run --release -p svmsyn-bench --bin fig7_dse`.

use svmsyn::app::{Application, ApplicationBuilder, ArgSpec};
use svmsyn::dse::{explore, DseConfig, DseMethod};
use svmsyn::flow::Placement;
use svmsyn::platform::Platform;
use svmsyn::report::{fmt_cycles, Table};
use svmsyn::sim::SimConfig;
use svmsyn_workloads::{
    histogram::histogram, matmul::matmul, oesort::oesort, sobel::sobel, spmv::spmv,
    streaming::vecadd,
};

/// Merges single-thread workload apps into one multi-threaded application
/// (buffer indices shifted per thread).
fn mixed_app() -> Application {
    let parts = vec![
        vecadd(2048, 11).app,
        matmul(16, 12).app,
        sobel(48, 32, 13).app,
        histogram(2048, 14).app,
        spmv(256, 6, 15).app,
        oesort(96, 16).app,
    ];
    let mut builder = ApplicationBuilder::new("mixed");
    let mut buf_base = 0usize;
    let mut threads = Vec::new();
    for app in &parts {
        for b in &app.buffers {
            builder = builder.buffer(b.name.clone(), b.len, b.init.clone(), b.populate);
        }
        for t in &app.threads {
            let args = t
                .args
                .iter()
                .map(|a| match a {
                    ArgSpec::Buffer(i, off) => ArgSpec::Buffer(i + buf_base, *off),
                    ArgSpec::Value(v) => ArgSpec::Value(*v),
                })
                .collect::<Vec<_>>();
            threads.push((t.name.clone(), t.kernel.clone(), args));
        }
        buf_base += app.buffers.len();
    }
    for (i, (_, kernel, args)) in threads.into_iter().enumerate() {
        builder = builder.thread(format!("t{i}"), kernel, args, true);
    }
    builder.build().expect("mixed app")
}

fn placements_str(p: &[Placement]) -> String {
    p.iter()
        .map(|x| match x {
            Placement::Hardware => 'H',
            Placement::Software => 'S',
        })
        .collect()
}

fn main() {
    let app = mixed_app();
    // A budget tight enough that all-hardware does not trivially fit.
    let platform = Platform::small();
    let sim = SimConfig {
        quantum: 50_000,
        ..SimConfig::default()
    };

    let exhaustive = explore(
        &app,
        &platform,
        &DseConfig {
            method: DseMethod::Exhaustive,
            sim,
            ..DseConfig::default()
        },
    )
    .expect("exhaustive DSE");

    let mut t = Table::new(
        "Figure 7: area/makespan Pareto front (6-thread mixed app, small fabric)",
        &["placement", "LUT", "BRAM", "makespan", "vs all-SW"],
    );
    let all_sw = exhaustive
        .feasible
        .iter()
        .find(|p| p.resources.lut == 0)
        .expect("all-SW point");
    for p in &exhaustive.pareto {
        t.row_owned(vec![
            placements_str(&p.placements),
            p.resources.lut.to_string(),
            p.resources.bram36.to_string(),
            fmt_cycles(p.makespan.0),
            format!("{:.2}x", all_sw.makespan.0 as f64 / p.makespan.0 as f64),
        ]);
    }
    println!("{t}");

    let greedy = explore(
        &app,
        &platform,
        &DseConfig {
            method: DseMethod::Greedy,
            sim,
            ..DseConfig::default()
        },
    )
    .expect("greedy DSE");
    let anneal = explore(
        &app,
        &platform,
        &DseConfig {
            method: DseMethod::Anneal { iters: 24, seed: 7 },
            sim,
            ..DseConfig::default()
        },
    )
    .expect("annealing DSE");
    let mut cmp = Table::new(
        "Search-method comparison",
        &["method", "evaluations", "best makespan", "gap to optimum"],
    );
    for (name, r) in [
        ("exhaustive", &exhaustive),
        ("greedy", &greedy),
        ("anneal", &anneal),
    ] {
        cmp.row_owned(vec![
            name.into(),
            r.evaluated.to_string(),
            fmt_cycles(r.best.makespan.0),
            format!(
                "{:.1}%",
                100.0 * (r.best.makespan.0 as f64 / exhaustive.best.makespan.0 as f64 - 1.0)
            ),
        ]);
    }
    println!("{cmp}");
}
