//! **Table 4** — toolflow scalability: synthesis wall time vs thread count
//! (replicated kernels, all mapped to hardware). Per-thread HLS dominates,
//! so growth should be roughly linear.
//!
//! Run with `cargo run --release -p svmsyn-bench --bin table4_toolflow`.

use svmsyn::app::{ApplicationBuilder, ArgSpec};
use svmsyn::flow::{synthesize, Placement};
use svmsyn::platform::Platform;
use svmsyn::report::Table;
use svmsyn_workloads::{matmul::matmul_kernel, sobel::sobel_kernel, streaming::saxpy_kernel};

fn main() {
    let mut t = Table::new(
        "Table 4: toolflow wall time vs thread count (all-HW placement)",
        &["threads", "synthesis ms", "ms/thread", "total LUT"],
    );
    for k in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut builder =
            ApplicationBuilder::new("scalability").buffer("data", 1 << 20, vec![], false);
        for i in 0..k {
            let kernel = match i % 3 {
                0 => saxpy_kernel(),
                1 => matmul_kernel(),
                _ => sobel_kernel(),
            };
            let args = match i % 3 {
                0 => vec![
                    ArgSpec::Buffer(0, 0),
                    ArgSpec::Buffer(0, 4096),
                    ArgSpec::Buffer(0, 8192),
                    ArgSpec::Value(3),
                    ArgSpec::Value(64),
                ],
                1 => vec![
                    ArgSpec::Buffer(0, 0),
                    ArgSpec::Buffer(0, 4096),
                    ArgSpec::Buffer(0, 8192),
                    ArgSpec::Value(8),
                ],
                _ => vec![
                    ArgSpec::Buffer(0, 0),
                    ArgSpec::Buffer(0, 4096),
                    ArgSpec::Value(16),
                    ArgSpec::Value(16),
                ],
            };
            builder = builder.thread(format!("t{i}"), kernel, args, true);
        }
        let app = builder.build().expect("scalability app");
        // Scale the platform so area/ports never reject the placement — the
        // point here is toolflow runtime, not feasibility.
        let mut platform = Platform::default();
        platform.fabric = platform.fabric * (k as u64 + 1);
        platform.max_hw_threads = k;
        let started = std::time::Instant::now();
        let design = synthesize(&app, &platform, &vec![Placement::Hardware; k]).expect("synthesis");
        let ms = started.elapsed().as_secs_f64() * 1e3;
        t.row_owned(vec![
            k.to_string(),
            format!("{ms:.2}"),
            format!("{:.3}", ms / k as f64),
            design.total_resources.lut.to_string(),
        ]);
    }
    println!("{t}");
}
