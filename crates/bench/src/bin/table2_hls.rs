//! **Table 2** — HLS synthesis results per kernel: states, achieved II,
//! binding, fabric resources, estimated Fmax, and the pipelining ablation
//! (II with loop pipelining disabled = per-iteration schedule length).
//!
//! Run with `cargo run -p svmsyn-bench --bin table2_hls`.

use svmsyn::report::Table;
use svmsyn_hls::fsmd::{compile, HlsConfig};
use svmsyn_workloads::small_suite;

fn main() {
    let mut t = Table::new(
        "Table 2: HLS results per kernel (default FU budget)",
        &[
            "kernel",
            "states",
            "inner II",
            "II (no pipe)",
            "ALU/MUL/DIV",
            "regs",
            "LUT",
            "FF",
            "DSP",
            "Fmax (MHz)",
            "opt (fold/cse/dce)",
        ],
    );
    for w in small_suite(1) {
        let kernel = &w.app.threads[0].kernel;
        let piped = compile(kernel, &HlsConfig::default());
        let plain = compile(
            kernel,
            &HlsConfig {
                pipeline_loops: false,
                ..HlsConfig::default()
            },
        );
        let ii = piped
            .pipelines
            .values()
            .map(|p| p.ii)
            .min()
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".into());
        // Without pipelining the per-iteration cost is the loop blocks'
        // summed schedule length; report the innermost loop's.
        let no_pipe = piped
            .pipelines
            .values()
            .map(|p| {
                p.blocks
                    .iter()
                    .map(|b| plain.schedules[b.0 as usize].length)
                    .sum::<u32>()
            })
            .min()
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".into());
        t.row_owned(vec![
            w.name.clone(),
            piped.states.to_string(),
            ii,
            no_pipe,
            format!(
                "{}/{}/{}",
                piped.binding.alu_units, piped.binding.mul_units, piped.binding.div_units
            ),
            piped.binding.registers.to_string(),
            piped.resources.lut.to_string(),
            piped.resources.ff.to_string(),
            piped.resources.dsp.to_string(),
            format!("{:.1}", piped.fmax_mhz),
            format!(
                "{}/{}/{}",
                piped.pass_stats.folded, piped.pass_stats.cse_removed, piped.pass_stats.dce_removed
            ),
        ]);
    }
    println!("{t}");
}
