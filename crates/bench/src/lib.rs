//! # svmsyn-bench — experiment harnesses
//!
//! One binary per reconstructed table/figure (see `DESIGN.md` §5) plus
//! criterion micro-benchmarks. This library holds the shared glue.

use svmsyn::flow::{synthesize, Placement, SystemDesign};
use svmsyn::platform::Platform;
use svmsyn::sim::{simulate, SimConfig, SimOutcome};
use svmsyn_workloads::Workload;

/// Synthesizes a single-thread workload onto hardware.
///
/// # Panics
///
/// Panics on synthesis failure (harness-level error).
pub fn hw_design(w: &Workload, platform: &Platform) -> SystemDesign {
    let placements = vec![Placement::Hardware; w.app.threads.len()];
    synthesize(&w.app, platform, &placements).expect("hardware synthesis")
}

/// Synthesizes a workload as software-only.
///
/// # Panics
///
/// Panics on synthesis failure.
pub fn sw_design(w: &Workload, platform: &Platform) -> SystemDesign {
    let placements = vec![Placement::Software; w.app.threads.len()];
    synthesize(&w.app, platform, &placements).expect("software synthesis")
}

/// Simulates and verifies a workload design; returns the outcome.
///
/// # Panics
///
/// Panics on simulation failure or an output mismatch — a harness must
/// never report numbers from a wrong answer.
pub fn run_checked(w: &Workload, design: &SystemDesign) -> SimOutcome {
    let outcome = simulate(design, &SimConfig::default()).expect("simulation");
    w.verify(&outcome).expect("output verification");
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use svmsyn_workloads::streaming::vecadd;

    #[test]
    fn helpers_run_a_workload_both_ways() {
        let w = vecadd(256, 9);
        let platform = Platform::default();
        let hw = run_checked(&w, &hw_design(&w, &platform));
        let sw = run_checked(&w, &sw_design(&w, &platform));
        assert!(hw.makespan.0 > 0 && sw.makespan.0 > 0);
    }
}
