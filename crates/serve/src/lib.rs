//! # svmsyn-serve — batch multi-tenant DSE sweeps
//!
//! The service front-end over the DSE engine: tenants submit [`SweepJob`]s
//! (one application × a list of platforms × DSE options), a worker pool
//! drains the queue sharing **one** persistent [`ResultStore`] handle, and
//! progress streams to the consumer as [`ProgressEvent`]s over a channel.
//! This is the batch ancestor of a long-running DSE-as-a-service daemon:
//! the job/queue/worker/stats split is already service-shaped, only the
//! transport (in-process channel today, RPC later) would change.
//!
//! ## Job lifecycle
//!
//! ```text
//! submit() ── Enqueued ──▶ queue ── worker claims ──▶ Started
//!      per platform cell:  explore_with_store() ──▶ Evaluated {n, cached}
//!      all cells done:                            ──▶ Done
//! ```
//!
//! [`SweepService::drain`] runs every queued job to completion and returns
//! a [`ServeReport`]: per-cell results in deterministic (job, platform)
//! order, per-tenant aggregate stats, and the shared store's session
//! counters. The [`ServeReport::matrix`] table (best point per app ×
//! platform cell) is a pure function of job content — repeating the same
//! sweep against a warm store renders the bit-identical table, while
//! [`ServeReport::economics`] shows the work moving from "simulated" to
//! "store".

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;

use svmsyn::dse::{explore_with_store, DseConfig, DseError, DseResult};
use svmsyn::report::{fmt_cycles, fmt_ratio, Table};
use svmsyn::{Application, Placement, Platform};
use svmsyn_store::{ResultStore, StoreStats};

/// One sweep request: evaluate `app` on every platform in `platforms`
/// under the same DSE options, on behalf of `tenant`.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The application to partition.
    pub app: Application,
    /// The platform axis: one DSE exploration per entry.
    pub platforms: Vec<Platform>,
    /// Search/simulation options. `dse.store` is ignored by the service —
    /// the shared handle passed to [`SweepService::new`] is used instead,
    /// so every job hits the same cache.
    pub dse: DseConfig,
    /// Accounting identity of the submitter.
    pub tenant: String,
}

/// Queue position of a submitted job (dense, starting at 0).
pub type JobId = usize;

/// Streaming progress, delivered over the channel returned by
/// [`SweepService::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressEvent {
    /// A job entered the queue.
    Enqueued {
        /// The job.
        job: JobId,
        /// Submitting tenant.
        tenant: String,
        /// Application name.
        app: String,
        /// Number of platform cells the job will evaluate.
        platforms: usize,
    },
    /// A worker claimed the job and began evaluating.
    Started {
        /// The job.
        job: JobId,
    },
    /// One platform cell finished: `evaluated` candidates were requested
    /// by the search, of which `cached` never cost a fresh simulation
    /// (in-process memo + persistent store).
    Evaluated {
        /// The job.
        job: JobId,
        /// Index into the job's platform axis.
        platform: usize,
        /// Candidate evaluations requested by the search.
        evaluated: usize,
        /// Of `evaluated`, served without a fresh simulation.
        cached: usize,
    },
    /// Every cell of the job finished.
    Done {
        /// The job.
        job: JobId,
    },
}

/// One (job, platform) cell's outcome.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The job this cell belongs to.
    pub job: JobId,
    /// Submitting tenant.
    pub tenant: String,
    /// Application name.
    pub app: String,
    /// Platform name (display only; cells are keyed by index).
    pub platform: String,
    /// Index into the job's platform axis.
    pub platform_index: usize,
    /// The exploration outcome.
    pub outcome: Result<DseResult, DseError>,
}

/// Aggregate accounting for one tenant across all their jobs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant.
    pub tenant: String,
    /// Jobs submitted.
    pub jobs: usize,
    /// Platform cells evaluated.
    pub cells: usize,
    /// Candidate evaluations across all cells.
    pub evaluated: usize,
    /// Served by the in-process memo tables.
    pub memo_hits: usize,
    /// Served by the persistent store.
    pub store_hits: usize,
    /// Paid for with a fresh simulation.
    pub simulated: usize,
}

/// The consolidated result of one [`SweepService::drain`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Every cell, sorted by (job, platform index) — deterministic
    /// regardless of worker scheduling.
    pub cells: Vec<CellResult>,
    /// Per-tenant aggregates, sorted by tenant name.
    pub tenants: Vec<TenantStats>,
    /// The shared store's session counters (`None` when the service ran
    /// without persistence).
    pub store: Option<StoreStats>,
}

fn placement_code(placements: &[Placement]) -> String {
    placements
        .iter()
        .map(|p| match p {
            Placement::Hardware => 'H',
            Placement::Software => 'S',
        })
        .collect()
}

impl ServeReport {
    /// The multi-app × multi-platform result matrix: best feasible point
    /// per cell. A pure function of job content — repeat sweeps render the
    /// bit-identical table whether the store was cold or warm.
    pub fn matrix(&self) -> Table {
        let mut t = Table::new(
            "DSE sweep: best point per app x platform",
            &["tenant", "app", "platform", "best", "makespan", "lut"],
        );
        for cell in &self.cells {
            match &cell.outcome {
                Ok(r) => t.row_owned(vec![
                    cell.tenant.clone(),
                    cell.app.clone(),
                    cell.platform.clone(),
                    placement_code(&r.best.placements),
                    fmt_cycles(r.best.makespan.0),
                    r.best.resources.lut.to_string(),
                ]),
                Err(e) => t.row_owned(vec![
                    cell.tenant.clone(),
                    cell.app.clone(),
                    cell.platform.clone(),
                    format!("<{e}>"),
                    String::new(),
                    String::new(),
                ]),
            };
        }
        t
    }

    /// Cache-hit economics per cell: where each evaluation was answered.
    /// Run-dependent by design (a warm store shifts work from "simulated"
    /// to "store") — keep it out of bit-identity comparisons.
    pub fn economics(&self) -> Table {
        let mut t = Table::new(
            "DSE sweep: cache economics",
            &[
                "app",
                "platform",
                "evaluated",
                "memo",
                "store",
                "simulated",
                "cached",
            ],
        );
        for cell in &self.cells {
            if let Ok(r) = &cell.outcome {
                let simulated = r.evaluated - r.cache_hits - r.store_hits;
                let cached = r.evaluated - simulated;
                t.row_owned(vec![
                    cell.app.clone(),
                    cell.platform.clone(),
                    r.evaluated.to_string(),
                    r.cache_hits.to_string(),
                    r.store_hits.to_string(),
                    simulated.to_string(),
                    fmt_ratio(cached as f64 / r.evaluated.max(1) as f64),
                ]);
            }
        }
        t
    }

    /// Per-tenant aggregate table.
    pub fn tenant_table(&self) -> Table {
        let mut t = Table::new(
            "Per-tenant stats",
            &[
                "tenant",
                "jobs",
                "cells",
                "evaluated",
                "memo",
                "store",
                "simulated",
            ],
        );
        for s in &self.tenants {
            t.row_owned(vec![
                s.tenant.clone(),
                s.jobs.to_string(),
                s.cells.to_string(),
                s.evaluated.to_string(),
                s.memo_hits.to_string(),
                s.store_hits.to_string(),
                s.simulated.to_string(),
            ]);
        }
        t
    }

    /// Fraction of all candidate evaluations served without a fresh
    /// simulation (memo + store), across every successful cell.
    pub fn cached_fraction(&self) -> f64 {
        let (mut evaluated, mut cached) = (0usize, 0usize);
        for cell in &self.cells {
            if let Ok(r) = &cell.outcome {
                evaluated += r.evaluated;
                cached += r.cache_hits + r.store_hits;
            }
        }
        if evaluated == 0 {
            0.0
        } else {
            cached as f64 / evaluated as f64
        }
    }

    /// Fraction of memo-missed evaluations served from the persistent
    /// store — the warm-hit rate the ≥95 % service-level target is stated
    /// against.
    pub fn store_hit_fraction(&self) -> f64 {
        let (mut probes, mut hits) = (0usize, 0usize);
        for cell in &self.cells {
            if let Ok(r) = &cell.outcome {
                probes += r.store_hits + r.store_misses;
                hits += r.store_hits;
            }
        }
        if probes == 0 {
            0.0
        } else {
            hits as f64 / probes as f64
        }
    }
}

/// The batch sweep service: a job queue plus the worker pool that drains
/// it. Progress streams over the channel handed back by [`new`](Self::new).
#[derive(Debug)]
pub struct SweepService {
    jobs: Vec<SweepJob>,
    store: Option<ResultStore>,
    workers: usize,
    events: mpsc::Sender<ProgressEvent>,
}

impl SweepService {
    /// Creates a service with `workers` pool threads (`0` = auto-sized
    /// from the host cores and the queued jobs' shard counts at drain
    /// time) over an optional caller-opened store handle — one handle,
    /// shared by every worker and every job, so cross-job overlap turns
    /// into cache hits. Returns the service plus the progress-event
    /// receiver; drop the receiver if you don't care about streaming.
    pub fn new(
        workers: usize,
        store: Option<ResultStore>,
    ) -> (SweepService, mpsc::Receiver<ProgressEvent>) {
        let (events, rx) = mpsc::channel();
        (
            SweepService {
                jobs: Vec::new(),
                store,
                workers,
                events,
            },
            rx,
        )
    }

    /// Queue length.
    pub fn queued(&self) -> usize {
        self.jobs.len()
    }

    /// Enqueues a job and emits [`ProgressEvent::Enqueued`].
    pub fn submit(&mut self, job: SweepJob) -> JobId {
        let id = self.jobs.len();
        let _ = self.events.send(ProgressEvent::Enqueued {
            job: id,
            tenant: job.tenant.clone(),
            app: job.app.name.clone(),
            platforms: job.platforms.len(),
        });
        self.jobs.push(job);
        id
    }

    /// Drains the queue: workers claim jobs off a shared index, evaluate
    /// every platform cell via [`explore_with_store`] against the shared
    /// handle, and stream progress. Returns the consolidated report with
    /// cells in deterministic (job, platform) order.
    ///
    /// Parallelism composes multiplicatively with the DSE engine's own
    /// batch workers — keep `SweepJob::dse.threads` at 1 when the service
    /// pool already saturates the host. Jobs running sharded simulations
    /// (`SweepJob::dse.sim.shards > 1`) multiply the same way, so the pool
    /// is budgeted down with [`svmsyn::worker_budget`] against the widest
    /// shard count in the queue.
    pub fn drain(self) -> ServeReport {
        let SweepService {
            jobs,
            store,
            workers,
            events,
        } = self;
        let store_ref = store.as_ref();
        let results: Mutex<Vec<Option<CellResult>>> = Mutex::new(vec![None; total_cells(&jobs)]);
        let cell_base = cell_offsets(&jobs);
        let next_job = AtomicUsize::new(0);
        let widest_shards = jobs
            .iter()
            .map(|j| j.dse.sim.shards as usize)
            .max()
            .unwrap_or(1);
        let pool = svmsyn::worker_budget(workers, widest_shards)
            .min(jobs.len())
            .max(1);

        thread::scope(|scope| {
            for _ in 0..pool {
                let events = events.clone();
                let results = &results;
                let jobs = &jobs;
                let cell_base = &cell_base;
                let next_job = &next_job;
                scope.spawn(move || loop {
                    let id = next_job.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(id) else { break };
                    let _ = events.send(ProgressEvent::Started { job: id });
                    for (pi, platform) in job.platforms.iter().enumerate() {
                        let outcome = explore_with_store(&job.app, platform, &job.dse, store_ref);
                        if let Ok(r) = &outcome {
                            let _ = events.send(ProgressEvent::Evaluated {
                                job: id,
                                platform: pi,
                                evaluated: r.evaluated,
                                cached: r.cache_hits + r.store_hits,
                            });
                        }
                        let cell = CellResult {
                            job: id,
                            tenant: job.tenant.clone(),
                            app: job.app.name.clone(),
                            platform: platform.name.clone(),
                            platform_index: pi,
                            outcome,
                        };
                        results.lock().unwrap()[cell_base[id] + pi] = Some(cell);
                    }
                    let _ = events.send(ProgressEvent::Done { job: id });
                });
            }
        });

        let cells: Vec<CellResult> = results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|c| c.expect("every cell evaluated by the pool"))
            .collect();
        let tenants = aggregate_tenants(&jobs, &cells);
        ServeReport {
            cells,
            tenants,
            store: store.map(|s| s.stats()),
        }
    }
}

fn total_cells(jobs: &[SweepJob]) -> usize {
    jobs.iter().map(|j| j.platforms.len()).sum()
}

/// Flat index of each job's first cell: cells are stored job-major so the
/// report order is deterministic no matter which worker ran what.
fn cell_offsets(jobs: &[SweepJob]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(jobs.len());
    let mut base = 0;
    for j in jobs {
        offsets.push(base);
        base += j.platforms.len();
    }
    offsets
}

fn aggregate_tenants(jobs: &[SweepJob], cells: &[CellResult]) -> Vec<TenantStats> {
    let mut by_tenant: std::collections::BTreeMap<String, TenantStats> =
        std::collections::BTreeMap::new();
    for job in jobs {
        let s = by_tenant
            .entry(job.tenant.clone())
            .or_insert_with(|| TenantStats {
                tenant: job.tenant.clone(),
                ..TenantStats::default()
            });
        s.jobs += 1;
    }
    for cell in cells {
        let s = by_tenant.get_mut(&cell.tenant).expect("tenant from a job");
        s.cells += 1;
        if let Ok(r) = &cell.outcome {
            s.evaluated += r.evaluated;
            s.memo_hits += r.cache_hits;
            s.store_hits += r.store_hits;
            s.simulated += r.evaluated - r.cache_hits - r.store_hits;
        }
    }
    by_tenant.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use svmsyn::dse::DseMethod;
    use svmsyn::sim::SimConfig;

    fn fast_dse() -> DseConfig {
        DseConfig {
            method: DseMethod::Exhaustive,
            sim: SimConfig {
                quantum: 50_000,
                ..SimConfig::default()
            },
            threads: 1,
            ..DseConfig::default()
        }
    }

    fn jobs_fixture() -> Vec<SweepJob> {
        let platforms = vec![Platform::default(), Platform::small()];
        vec![
            SweepJob {
                app: svmsyn_workloads::streaming::vecadd(64, 1).app,
                platforms: platforms.clone(),
                dse: fast_dse(),
                tenant: "acme".into(),
            },
            SweepJob {
                app: svmsyn_workloads::streaming::saxpy(64, 1).app,
                platforms: platforms.clone(),
                dse: fast_dse(),
                tenant: "acme".into(),
            },
            SweepJob {
                app: svmsyn_workloads::streaming::vecadd(64, 1).app,
                platforms,
                dse: fast_dse(),
                tenant: "globex".into(),
            },
        ]
    }

    fn store_root(tag: &str) -> std::path::PathBuf {
        let root =
            std::env::temp_dir().join(format!("svmsyn-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn run(
        jobs: Vec<SweepJob>,
        workers: usize,
        store: Option<ResultStore>,
    ) -> (ServeReport, Vec<ProgressEvent>) {
        let (mut svc, rx) = SweepService::new(workers, store);
        for j in jobs {
            svc.submit(j);
        }
        let report = svc.drain();
        let events: Vec<ProgressEvent> = rx.try_iter().collect();
        (report, events)
    }

    #[test]
    fn events_follow_the_job_lifecycle() {
        let (report, events) = run(jobs_fixture(), 2, None);
        assert_eq!(report.cells.len(), 6);
        for job in 0..3usize {
            let pos = |pred: &dyn Fn(&ProgressEvent) -> bool| {
                events.iter().position(pred).expect("event present")
            };
            let enq = pos(&|e| matches!(e, ProgressEvent::Enqueued { job: j, .. } if *j == job));
            let started = pos(&|e| matches!(e, ProgressEvent::Started { job: j } if *j == job));
            let done = pos(&|e| matches!(e, ProgressEvent::Done { job: j } if *j == job));
            assert!(enq < started && started < done);
            let evaluated = events
                .iter()
                .filter(|e| matches!(e, ProgressEvent::Evaluated { job: j, .. } if *j == job))
                .count();
            assert_eq!(evaluated, 2, "one Evaluated per platform cell");
        }
    }

    #[test]
    fn report_order_is_deterministic_across_worker_counts() {
        let (serial, _) = run(jobs_fixture(), 1, None);
        let (parallel, _) = run(jobs_fixture(), 4, None);
        assert_eq!(serial.matrix().to_string(), parallel.matrix().to_string());
        assert_eq!(serial.tenants, parallel.tenants);
    }

    #[test]
    fn tenants_aggregate_their_own_jobs() {
        let (report, _) = run(jobs_fixture(), 2, None);
        assert_eq!(report.tenants.len(), 2);
        let acme = &report.tenants[0];
        let globex = &report.tenants[1];
        assert_eq!(
            (acme.tenant.as_str(), acme.jobs, acme.cells),
            ("acme", 2, 4)
        );
        assert_eq!(
            (globex.tenant.as_str(), globex.jobs, globex.cells),
            ("globex", 1, 2)
        );
        assert!(acme.evaluated > 0 && globex.evaluated > 0);
        assert_eq!(report.store, None);
    }

    #[test]
    fn shared_store_turns_cross_job_overlap_into_hits() {
        let root = store_root("overlap");
        // Jobs 0 and 2 are the identical app: with one shared handle, the
        // second occurrence must be answered entirely from the store.
        let (report, _) = run(jobs_fixture(), 1, Some(ResultStore::open(&root).unwrap()));
        let stats = report.store.expect("store stats present");
        assert!(stats.hits > 0, "duplicate job must hit the shared store");
        let dup = &report.cells[4..6]; // job 2's cells
        for cell in dup {
            let r = cell.outcome.as_ref().unwrap();
            assert_eq!(r.store_misses, 0, "warm cell re-simulated");
            assert_eq!(r.store_hits, r.evaluated - r.cache_hits);
        }

        // A fresh service over the same root: 100% warm, identical matrix.
        let (cold_matrix, cold_tenants) = (report.matrix().to_string(), report.tenants.clone());
        let (warm, _) = run(jobs_fixture(), 2, Some(ResultStore::open(&root).unwrap()));
        assert!(warm.store_hit_fraction() >= 0.95);
        assert_eq!(warm.matrix().to_string(), cold_matrix);
        // Tenant evaluated/memo counts are search-determined; store hits
        // shift work away from "simulated": compare the deterministic
        // columns, then require zero fresh simulations.
        for (w, c) in warm.tenants.iter().zip(&cold_tenants) {
            assert_eq!(
                (&w.tenant, w.jobs, w.cells, w.evaluated, w.memo_hits),
                (&c.tenant, c.jobs, c.cells, c.evaluated, c.memo_hits)
            );
            assert_eq!(w.simulated, 0, "warm sweep must not simulate");
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn report_tables_render() {
        let (report, _) = run(jobs_fixture(), 2, None);
        let matrix = report.matrix().to_string();
        assert!(matrix.contains("vecadd"));
        assert!(matrix.contains("zynq7020-class"));
        let econ = report.economics().to_string();
        assert!(econ.contains("evaluated"));
        let tenants = report.tenant_table().to_string();
        assert!(tenants.contains("acme") && tenants.contains("globex"));
        assert!(report.cached_fraction() >= 0.0);
    }
}
