//! Fabric-resource and Fmax estimates for the VM infrastructure.
//!
//! These are the per-instance cost formulas behind **Table 1**. They are
//! first-order models in the style HLS reports use — linear in the dominant
//! structural parameter, with constants chosen to sit in the range published
//! for Zynq-7000-class MMU/TLB IP (a fully-associative TLB is a LUT-based CAM
//! whose match logic grows linearly in entries; a set-associative TLB trades
//! comparators for RAM). Absolute numbers are estimates; the *trend* is what
//! Table 1 reports and what the DSE consumes.

use svmsyn_sim::FabricResources;

use crate::mmu::MmuConfig;
use crate::tlb::TlbConfig;
use crate::walker::WalkerConfig;

/// Estimated fabric cost of a TLB with the given geometry.
///
/// # Example
///
/// ```
/// use svmsyn_vm::cost::tlb_cost;
/// use svmsyn_vm::tlb::TlbConfig;
/// let small = tlb_cost(&TlbConfig::fully_associative(8));
/// let large = tlb_cost(&TlbConfig::fully_associative(64));
/// assert!(large.lut > small.lut);
/// ```
pub fn tlb_cost(cfg: &TlbConfig) -> FabricResources {
    let entries = cfg.entries as u64;
    let ways = cfg.ways as u64;
    if cfg.ways == cfg.entries {
        // Fully associative: a register file + per-entry CAM match logic.
        FabricResources {
            lut: 180 + 95 * entries,
            ff: 120 + 68 * entries,
            dsp: 0,
            bram36: 0,
        }
    } else {
        // Set associative: tag/data arrays (RAM-backed above 32 entries)
        // plus per-way comparators and the way mux.
        FabricResources {
            lut: 240 + 14 * entries + 55 * ways,
            ff: 160 + 12 * entries + 20 * ways,
            dsp: 0,
            bram36: if entries >= 64 { 1 } else { 0 },
        }
    }
}

/// Estimated fabric cost of the page-table walker: the two-level FSM with
/// the pipelined issue path, plus the per-level walk caches. Directory
/// entries are narrow (a table PFN); leaf slots carry the full decoded PTE
/// and its physical address, so an L2 entry costs more registers but less
/// match logic (it is probed once, not per level).
pub fn walker_cost(cfg: &WalkerConfig) -> FabricResources {
    let l1 = cfg.l1_entries as u64;
    let l2 = cfg.l2_entries as u64;
    FabricResources {
        lut: 420 + 60 * l1 + 42 * l2,
        ff: 380 + 40 * l1 + 58 * l2,
        dsp: 0,
        bram36: 0,
    }
}

/// Fixed cost of the fault-reporting / context-control unit.
pub fn control_cost() -> FabricResources {
    FabricResources {
        lut: 150,
        ff: 130,
        dsp: 0,
        bram36: 0,
    }
}

/// Total fabric cost of one MMU instance (TLB + walker + control).
pub fn mmu_cost(cfg: &MmuConfig) -> FabricResources {
    tlb_cost(&cfg.tlb) + walker_cost(&cfg.walker) + control_cost()
}

/// Estimated maximum clock frequency of the MMU in MHz.
///
/// The fully-associative match tree lengthens the critical path linearly in
/// entries; a set-associative lookup is dominated by the RAM access and the
/// way mux, so it degrades far more slowly.
pub fn mmu_fmax_mhz(cfg: &MmuConfig) -> f64 {
    let entries = cfg.tlb.entries as f64;
    let ways = cfg.tlb.ways as f64;
    let f = if cfg.tlb.ways == cfg.tlb.entries {
        185.0 - 1.3 * entries
    } else {
        175.0 - 0.25 * entries - 1.0 * ways
    };
    f.max(80.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::Replacement;

    fn set_assoc(entries: usize, ways: usize) -> TlbConfig {
        TlbConfig {
            entries,
            ways,
            replacement: Replacement::Lru,
            hit_cycles: 1,
        }
    }

    #[test]
    fn fully_assoc_cost_grows_linearly() {
        let c8 = tlb_cost(&TlbConfig::fully_associative(8));
        let c16 = tlb_cost(&TlbConfig::fully_associative(16));
        let c32 = tlb_cost(&TlbConfig::fully_associative(32));
        // Linear in entries: equal per-entry increments.
        assert_eq!((c16.lut - c8.lut) / 8, (c32.lut - c16.lut) / 16);
        assert!(c8.lut < c16.lut && c16.lut < c32.lut);
        assert_eq!(c8.bram36, 0);
    }

    #[test]
    fn set_assoc_cheaper_than_cam_at_scale() {
        let cam = tlb_cost(&TlbConfig::fully_associative(64));
        let sa = tlb_cost(&set_assoc(64, 4));
        assert!(sa.lut < cam.lut, "64-entry 4-way must be cheaper than CAM");
        assert_eq!(sa.bram36, 1, "large set-assoc arrays go to BRAM");
    }

    #[test]
    fn walker_cache_adds_cost_per_level() {
        let none = walker_cost(&WalkerConfig::disabled());
        let l1_only = walker_cost(&WalkerConfig::l1_only(4));
        let two_level = walker_cost(&WalkerConfig::two_level(4, 8));
        assert!(l1_only.lut > none.lut);
        assert!(two_level.lut > l1_only.lut);
        assert!(two_level.ff > l1_only.ff);
        assert_eq!(none.lut, 420);
    }

    #[test]
    fn mmu_cost_is_sum_of_parts() {
        let cfg = MmuConfig::default();
        let total = mmu_cost(&cfg);
        let parts = tlb_cost(&cfg.tlb) + walker_cost(&cfg.walker) + control_cost();
        assert_eq!(total, parts);
    }

    #[test]
    fn fmax_decreases_with_cam_size_and_floors() {
        let f8 = mmu_fmax_mhz(&MmuConfig {
            tlb: TlbConfig::fully_associative(8),
            ..MmuConfig::default()
        });
        let f64e = mmu_fmax_mhz(&MmuConfig {
            tlb: TlbConfig::fully_associative(64),
            ..MmuConfig::default()
        });
        assert!(f8 > f64e);
        let f1024 = mmu_fmax_mhz(&MmuConfig {
            tlb: TlbConfig::fully_associative(1024),
            ..MmuConfig::default()
        });
        assert_eq!(f1024, 80.0);
    }

    #[test]
    fn set_assoc_fmax_degrades_slower() {
        let cam_drop = mmu_fmax_mhz(&MmuConfig {
            tlb: TlbConfig::fully_associative(16),
            ..MmuConfig::default()
        }) - mmu_fmax_mhz(&MmuConfig {
            tlb: TlbConfig::fully_associative(64),
            ..MmuConfig::default()
        });
        let sa_drop = mmu_fmax_mhz(&MmuConfig {
            tlb: set_assoc(16, 4),
            ..MmuConfig::default()
        }) - mmu_fmax_mhz(&MmuConfig {
            tlb: set_assoc(64, 4),
            ..MmuConfig::default()
        });
        assert!(sa_drop < cam_drop);
    }
}
