//! The hardware page-table walker.
//!
//! On a TLB miss the walker issues *real* timed reads on the system bus: one
//! for the first-level directory entry, one for the leaf PTE — two dependent
//! DRAM accesses, which is exactly why TLB misses are expensive. A two-level
//! walk cache short-circuits them:
//!
//! * the **L1 walk cache** holds decoded directory entries keyed by
//!   `(asid, l1 index)`. On a hit the walker is *pipelined*: the directory
//!   probe overlaps with issuing the leaf read, so the walk costs a single
//!   bus access instead of two dependent ones;
//! * the **L2 walk cache** holds decoded leaf PTEs, direct-mapped on the
//!   low VPN bits and tagged `(asid, vpn)`. On a hit the walk completes in
//!   one probe cycle with **zero** bus accesses — the level that matters
//!   once the TLB thrashes.
//!
//! [`walk_many`](PageTableWalker::walk_many) is the batched entry point:
//! concurrent misses that land on the same directory line share one
//! directory read (miss coalescing), the behaviour of a walker serving
//! several outstanding requests in the same epoch.
//!
//! Since the split-transaction fabric redesign the walker is a first-class
//! fabric master behind a [`FabricPort`]: every directory and leaf read is
//! an *issued transaction*, not a blocking call. `walk_many` issues all of
//! a batch's directory reads up front — they sit outstanding in the
//! walker's fabric window and their DRAM latencies overlap — and each leaf
//! read issues at its directory's completion. On the degenerate blocking
//! fabric each transaction still holds the single channel end to end in
//! issue order (no overlap), though a multi-miss batch's reads now slot
//! dirs-then-leaves rather than the old interleaved dir/leaf order — read
//! *counts* are unchanged and remain oracle-checked by the conformance
//! suite.

use svmsyn_mem::{FabricPort, MemorySystem, PhysAddr, VirtAddr};
use svmsyn_sim::{Cycle, StatSet};

use crate::pte::{DirEntry, Pte};
use crate::tlb::Asid;

/// Walker configuration: entries per walk-cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WalkerConfig {
    /// Entries in the L1 (directory) walk cache; `0` disables the level.
    pub l1_entries: usize,
    /// Entries in the L2 (leaf-PTE) walk cache; `0` disables the level.
    pub l2_entries: usize,
}

impl Default for WalkerConfig {
    /// The `DESIGN.md` §4 default: a 4-entry directory cache plus an
    /// 8-entry leaf cache.
    fn default() -> Self {
        WalkerConfig {
            l1_entries: 4,
            l2_entries: 8,
        }
    }
}

impl WalkerConfig {
    /// A walker with no walk cache at all (the naive two-read walker).
    pub fn disabled() -> Self {
        WalkerConfig {
            l1_entries: 0,
            l2_entries: 0,
        }
    }

    /// The pre-two-level shape: a directory cache only.
    pub fn l1_only(entries: usize) -> Self {
        WalkerConfig {
            l1_entries: entries,
            l2_entries: 0,
        }
    }

    /// A two-level configuration.
    pub fn two_level(l1_entries: usize, l2_entries: usize) -> Self {
        WalkerConfig {
            l1_entries,
            l2_entries,
        }
    }
}

/// Why a walk failed to produce a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkError {
    /// The first-level entry was invalid: no L2 table exists.
    NoTable {
        /// Faulting virtual address.
        va: VirtAddr,
    },
    /// The leaf PTE was invalid: the page is not present.
    NotPresent {
        /// Faulting virtual address.
        va: VirtAddr,
    },
}

impl std::fmt::Display for WalkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalkError::NoTable { va } => write!(f, "no second-level table for {va}"),
            WalkError::NotPresent { va } => write!(f, "page not present for {va}"),
        }
    }
}

impl std::error::Error for WalkError {}

/// A successful walk: the leaf PTE, where it lives, and when the walk ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkOutcome {
    /// The decoded leaf entry (valid).
    pub pte: Pte,
    /// Physical address of the leaf entry (for status-bit write-back).
    pub pte_addr: PhysAddr,
    /// Completion time of the walk.
    pub done: Cycle,
}

/// Result of a walk: the outcome or the error, plus the time consumed either
/// way (discovering a fault costs real bus cycles too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// Outcome of the walk.
    pub outcome: Result<WalkOutcome, WalkError>,
    /// Completion time of the walk, success or not.
    pub done: Cycle,
}

/// One L1 walk-cache slot: a cached `(asid, l1_index) -> DirEntry` mapping.
/// The entry is stored *decoded* — a hit skips both the L1 bus read and the
/// `DirEntry::decode` of the raw bits.
#[derive(Debug, Clone, Copy)]
struct DirCacheEntry {
    valid: bool,
    asid: Asid,
    l1: u32,
    dir: DirEntry,
}

/// One L2 walk-cache slot: a cached `(asid, vpn) -> (Pte, pte_addr)` leaf.
#[derive(Debug, Clone, Copy)]
struct LeafCacheEntry {
    valid: bool,
    asid: Asid,
    vpn: u64,
    pte: Pte,
    pte_addr: PhysAddr,
}

/// A directory read issued earlier in the same `walk_many` batch; later
/// requests on the same line reuse it instead of re-reading the bus.
#[derive(Debug, Clone, Copy)]
struct PendingDir {
    l1: usize,
    dir: DirEntry,
    ready: Cycle,
}

/// The hardware page-table walker with a two-level walk cache.
///
/// # Example
///
/// ```
/// use svmsyn_mem::{FabricPort, MasterId, MemConfig, MemorySystem, PhysAddr, VirtAddr};
/// use svmsyn_sim::Cycle;
/// use svmsyn_vm::pte::{DirEntry, Pte, PteFlags};
/// use svmsyn_vm::tlb::Asid;
/// use svmsyn_vm::walker::{PageTableWalker, WalkerConfig};
///
/// let mut mem = MemorySystem::new(MemConfig::default());
/// // Build a one-page mapping by hand: root at frame 16, L2 at frame 17,
/// // VA 0 -> PFN 0x42.
/// let root = PhysAddr::from_frame(16);
/// mem.poke_u32(root, DirEntry::table(17).encode());
/// mem.poke_u32(PhysAddr::from_frame(17), Pte::leaf(0x42, PteFlags::default()).encode());
///
/// let mut w = PageTableWalker::new(WalkerConfig::default());
/// let port = FabricPort::new(MasterId(0));
/// let r = w.walk(&mut mem, port, root, Asid(0), VirtAddr(0), Cycle(0));
/// assert_eq!(r.outcome.unwrap().pte.pfn(), 0x42);
/// // A re-walk of the same page hits the leaf cache: no bus read at all.
/// let r2 = w.walk(&mut mem, port, root, Asid(0), VirtAddr(0), r.done);
/// assert_eq!((r2.done - r.done).0, 1);
/// ```
#[derive(Debug, Clone)]
pub struct PageTableWalker {
    cfg: WalkerConfig,
    /// Flat FIFO L1 (directory) cache: a fixed ring scanned linearly (it is
    /// tiny) and replaced at `l1_next`, so no `Vec` shifting on eviction.
    l1_cache: Box<[DirCacheEntry]>,
    l1_next: usize,
    /// Direct-mapped L2 (leaf) cache: indexed by the low VPN bits like a
    /// hardware RAM array, tagged `(asid, vpn)` — a single probe per walk,
    /// never a scan.
    l2_cache: Box<[LeafCacheEntry]>,
    walks: u64,
    l1_reads: u64,
    l2_reads: u64,
    l1_hits: u64,
    l2_hits: u64,
    dir_coalesced: u64,
    no_table_faults: u64,
    not_present_faults: u64,
}

impl PageTableWalker {
    /// Creates a walker with cold walk caches.
    pub fn new(cfg: WalkerConfig) -> Self {
        let dir_empty = DirCacheEntry {
            valid: false,
            asid: Asid(0),
            l1: 0,
            dir: DirEntry::decode(0),
        };
        let leaf_empty = LeafCacheEntry {
            valid: false,
            asid: Asid(0),
            vpn: 0,
            pte: Pte::decode(0),
            pte_addr: PhysAddr(0),
        };
        PageTableWalker {
            cfg,
            l1_cache: vec![dir_empty; cfg.l1_entries].into_boxed_slice(),
            l1_next: 0,
            l2_cache: vec![leaf_empty; cfg.l2_entries].into_boxed_slice(),
            walks: 0,
            l1_reads: 0,
            l2_reads: 0,
            l1_hits: 0,
            l2_hits: 0,
            dir_coalesced: 0,
            no_table_faults: 0,
            not_present_faults: 0,
        }
    }

    /// The configuration this walker was built with.
    pub fn config(&self) -> &WalkerConfig {
        &self.cfg
    }

    fn l1_lookup(&self, asid: Asid, l1: usize) -> Option<DirEntry> {
        self.l1_cache
            .iter()
            .find(|c| c.valid && c.asid == asid && c.l1 == l1 as u32)
            .map(|c| c.dir)
    }

    fn l1_insert(&mut self, asid: Asid, l1: usize, e: DirEntry) {
        if self.l1_cache.is_empty() {
            return;
        }
        if let Some(slot) = self
            .l1_cache
            .iter_mut()
            .find(|c| c.valid && c.asid == asid && c.l1 == l1 as u32)
        {
            slot.dir = e;
            return;
        }
        // FIFO ring replacement: overwrite the oldest slot in place.
        self.l1_cache[self.l1_next] = DirCacheEntry {
            valid: true,
            asid,
            l1: l1 as u32,
            dir: e,
        };
        self.l1_next = (self.l1_next + 1) % self.l1_cache.len();
    }

    /// Direct-mapped slot for `vpn` (index by low VPN bits, as the RAM
    /// array of a hardware leaf cache would).
    #[inline]
    fn l2_slot(&self, vpn: u64) -> usize {
        (vpn as usize) % self.l2_cache.len()
    }

    fn l2_lookup(&self, asid: Asid, vpn: u64) -> Option<(Pte, PhysAddr)> {
        if self.l2_cache.is_empty() {
            return None;
        }
        let e = &self.l2_cache[self.l2_slot(vpn)];
        if e.valid && e.asid == asid && e.vpn == vpn {
            Some((e.pte, e.pte_addr))
        } else {
            None
        }
    }

    fn l2_insert(&mut self, asid: Asid, vpn: u64, pte: Pte, pte_addr: PhysAddr) {
        if self.l2_cache.is_empty() {
            return;
        }
        let slot = self.l2_slot(vpn);
        self.l2_cache[slot] = LeafCacheEntry {
            valid: true,
            asid,
            vpn,
            pte,
            pte_addr,
        };
    }

    /// Drops all cached entries, both levels (context teardown, full
    /// shootdown).
    pub fn invalidate_cache(&mut self) {
        for c in self.l1_cache.iter_mut() {
            c.valid = false;
        }
        for c in self.l2_cache.iter_mut() {
            c.valid = false;
        }
        self.l1_next = 0;
    }

    /// Precise single-page shootdown (after the OS maps, unmaps, or
    /// re-protects one page): clears the page's leaf slot exactly, plus the
    /// directory entry of its line — the same OS operation may have
    /// installed or replaced that line's table. Other pages' leaf entries
    /// stay warm, which is what keeps `l2_walk_hit_rate` honest through
    /// demand-paging phases.
    pub fn invalidate_page(&mut self, asid: Asid, va: VirtAddr) {
        if !self.l2_cache.is_empty() {
            let e = &mut self.l2_cache[self.l2_slot(va.vpn())];
            if e.valid && e.asid == asid && e.vpn == va.vpn() {
                e.valid = false;
            }
        }
        let l1 = va.l1_index() as u32;
        for c in self.l1_cache.iter_mut() {
            if c.valid && c.asid == asid && c.l1 == l1 {
                c.valid = false;
            }
        }
    }

    /// Finishes a walk whose directory entry is already in hand: issues the
    /// dependent leaf read as an outstanding transaction at `t_issue` and
    /// classifies the result at its completion.
    fn finish_with_dir(
        &mut self,
        mem: &mut MemorySystem,
        port: FabricPort,
        asid: Asid,
        va: VirtAddr,
        dir: DirEntry,
        t_issue: Cycle,
    ) -> WalkResult {
        if !dir.is_valid() {
            self.no_table_faults += 1;
            return WalkResult {
                outcome: Err(WalkError::NoTable { va }),
                done: t_issue,
            };
        }
        let pte_addr = PhysAddr::from_frame(dir.table_pfn()).offset(4 * va.l2_index() as u64);
        self.l2_reads += 1;
        let (raw, txn) = mem.read_u32_txn(port.master(), pte_addr, t_issue);
        let t_after_l2 = mem.completion(txn);
        let pte = Pte::decode(raw);
        if !pte.is_valid() {
            self.not_present_faults += 1;
            return WalkResult {
                outcome: Err(WalkError::NotPresent { va }),
                done: t_after_l2,
            };
        }
        self.l2_insert(asid, va.vpn(), pte, pte_addr);
        WalkResult {
            outcome: Ok(WalkOutcome {
                pte,
                pte_addr,
                done: t_after_l2,
            }),
            done: t_after_l2,
        }
    }

    /// Resolves the directory entry for `va` inside a batch: an in-flight
    /// batch read of the same line (coalesced), the L1 walk cache, or a
    /// fresh directory-read transaction issued at `now`.
    #[allow(clippy::too_many_arguments)] // internal batch helper; the tuple of walk context is deliberate
    fn resolve_dir(
        &mut self,
        mem: &mut MemorySystem,
        port: FabricPort,
        root: PhysAddr,
        asid: Asid,
        l1: usize,
        pending: &mut Vec<PendingDir>,
        now: Cycle,
    ) -> (DirEntry, Cycle) {
        // Probe the in-flight batch reads *before* the L1 cache: a line
        // read earlier in this batch is also in the cache by now, but its
        // data is only ready at the read's completion time.
        if let Some(p) = pending.iter().find(|p| p.l1 == l1).copied() {
            self.dir_coalesced += 1;
            return (p.dir, p.ready);
        }
        if let Some(dir) = self.l1_lookup(asid, l1) {
            self.l1_hits += 1;
            return (dir, now);
        }
        self.l1_reads += 1;
        let (raw, txn) = mem.read_u32_txn(port.master(), root.offset(4 * l1 as u64), now);
        let ready = mem.completion(txn);
        let dir = DirEntry::decode(raw);
        if dir.is_valid() {
            self.l1_insert(asid, l1, dir);
        }
        pending.push(PendingDir { l1, dir, ready });
        (dir, ready)
    }

    /// Walks the two-level table rooted at `root` for `va`, issuing read
    /// transactions on `mem` through `port`.
    ///
    /// Cost shape: an L2 hit is one probe cycle and zero bus reads; an L1
    /// (directory) hit issues the leaf read immediately (the probe overlaps
    /// with issue — the pipelined path), one bus read; a full miss pays the
    /// two dependent reads.
    pub fn walk(
        &mut self,
        mem: &mut MemorySystem,
        port: FabricPort,
        root: PhysAddr,
        asid: Asid,
        va: VirtAddr,
        now: Cycle,
    ) -> WalkResult {
        self.walks += 1;

        if let Some((pte, pte_addr)) = self.l2_lookup(asid, va.vpn()) {
            self.l2_hits += 1;
            let done = now + 1;
            return WalkResult {
                outcome: Ok(WalkOutcome {
                    pte,
                    pte_addr,
                    done,
                }),
                done,
            };
        }

        let l1 = va.l1_index();
        match self.l1_lookup(asid, l1) {
            Some(dir) => {
                // Pipelined: the directory probe overlaps with issuing the
                // leaf read, so the walk is one bus access end to end.
                self.l1_hits += 1;
                self.finish_with_dir(mem, port, asid, va, dir, now)
            }
            None => {
                self.l1_reads += 1;
                let (raw, txn) = mem.read_u32_txn(port.master(), root.offset(4 * l1 as u64), now);
                let t_after_l1 = mem.completion(txn);
                let dir = DirEntry::decode(raw);
                if dir.is_valid() {
                    self.l1_insert(asid, l1, dir);
                }
                self.finish_with_dir(mem, port, asid, va, dir, t_after_l1)
            }
        }
    }

    /// Batched walk: all of `vas` issue in the same epoch starting at `now`,
    /// and misses that land on the same directory line share one directory
    /// read (miss coalescing). Results come back in request order.
    ///
    /// Split-transaction issue order: the batch's directory reads all issue
    /// first (outstanding together at `now`, throttled only by the walker's
    /// fabric window), then each miss's dependent leaf read issues at its
    /// directory's completion. On a windowed fabric the directory reads'
    /// DRAM latencies overlap; on the blocking configuration the calendar
    /// serializes them exactly as the old call-return walker did.
    ///
    /// This is the entry point the MMU uses when several accesses miss the
    /// TLB at once (page-crossing bursts, multi-threaded miss epochs).
    pub fn walk_many(
        &mut self,
        mem: &mut MemorySystem,
        port: FabricPort,
        root: PhysAddr,
        asid: Asid,
        vas: &[VirtAddr],
        now: Cycle,
    ) -> Vec<WalkResult> {
        /// Phase-1 classification of one request.
        enum Cls {
            /// Pre-batch L2 walk-cache hit: complete, one probe cycle.
            Hit(Pte, PhysAddr),
            /// Needs a leaf read; the directory entry is in hand (data
            /// ready at the carried cycle).
            Miss(DirEntry, Cycle),
            /// Same VPN as an earlier miss in this batch: resolves in
            /// phase 2 against the leader's leaf read.
            Dup,
        }

        // Directory reads issued in this batch, newest last. Batches are
        // short, so a linear scan beats a map.
        let mut pending: Vec<PendingDir> = Vec::new();
        let mut miss_vpns: Vec<u64> = Vec::new();
        let mut cls: Vec<Cls> = Vec::with_capacity(vas.len());

        // Phase 1: probe the leaf cache and issue every distinct miss's
        // directory read up front, so they sit outstanding together.
        for &va in vas {
            self.walks += 1;
            if let Some((pte, pte_addr)) = self.l2_lookup(asid, va.vpn()) {
                self.l2_hits += 1;
                cls.push(Cls::Hit(pte, pte_addr));
                continue;
            }
            if miss_vpns.contains(&va.vpn()) {
                cls.push(Cls::Dup);
                continue;
            }
            miss_vpns.push(va.vpn());
            let (dir, ready) =
                self.resolve_dir(mem, port, root, asid, va.l1_index(), &mut pending, now);
            cls.push(Cls::Miss(dir, ready));
        }

        // Phase 2: chase the dependent leaf reads in request order. Leaves
        // fetched earlier in the batch (`pending_leaf`) serve duplicates at
        // their read's completion time, not one probe cycle into the epoch.
        let mut pending_leaf: Vec<(u64, Cycle)> = Vec::new();
        let mut out = Vec::with_capacity(vas.len());
        for (&va, c) in vas.iter().zip(cls) {
            let r = match c {
                Cls::Hit(pte, pte_addr) => {
                    let done = now + 1;
                    WalkResult {
                        outcome: Ok(WalkOutcome {
                            pte,
                            pte_addr,
                            done,
                        }),
                        done,
                    }
                }
                Cls::Miss(dir, ready) => self.finish_with_dir(mem, port, asid, va, dir, ready),
                Cls::Dup => match self.l2_lookup(asid, va.vpn()) {
                    // Reuse happens through the leaf cache, exactly like a
                    // serial re-walk would: the leader's insert is only
                    // there if the cache is enabled and the slot survived
                    // the rest of the batch. Data fetched in this batch is
                    // ready at its read's completion, not one probe cycle
                    // into the epoch.
                    Some((pte, pte_addr)) => {
                        self.l2_hits += 1;
                        let done = pending_leaf
                            .iter()
                            .find(|p| p.0 == va.vpn())
                            .map_or(now + 1, |p| p.1);
                        WalkResult {
                            outcome: Ok(WalkOutcome {
                                pte,
                                pte_addr,
                                done,
                            }),
                            done,
                        }
                    }
                    None => {
                        // The leader faulted, the leaf cache is disabled,
                        // or the slot was evicted mid-batch: re-walk,
                        // riding the batch's directory read where one
                        // exists.
                        let (dir, ready) = self.resolve_dir(
                            mem,
                            port,
                            root,
                            asid,
                            va.l1_index(),
                            &mut pending,
                            now,
                        );
                        self.finish_with_dir(mem, port, asid, va, dir, ready)
                    }
                },
            };
            if r.outcome.is_ok() {
                pending_leaf.push((va.vpn(), r.done));
            }
            out.push(r);
        }
        out
    }

    /// Fraction of walks whose directory level was served without a bus read
    /// (L1 walk-cache hits plus batch-coalesced reads), in `[0, 1]`.
    pub fn l1_walk_hit_rate(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            (self.l1_hits + self.dir_coalesced) as f64 / self.walks as f64
        }
    }

    /// Fraction of walks served entirely by the L2 (leaf) walk cache — zero
    /// bus reads — in `[0, 1]`.
    pub fn l2_walk_hit_rate(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.l2_hits as f64 / self.walks as f64
        }
    }

    /// The cost model's prediction of the bus reads this walker issued:
    /// every walk costs two reads, minus two for each leaf-cache hit, one
    /// for each directory hit or coalesced directory read, and one for each
    /// walk that stopped at an invalid directory entry.
    ///
    /// [`stats`](Self::stats) exposes the actual read counters; the
    /// conformance suite asserts this prediction equals both the counters
    /// and the memory system's observed read count.
    pub fn predicted_bus_reads(&self) -> u64 {
        2 * self.walks - 2 * self.l2_hits - self.l1_hits - self.dir_coalesced - self.no_table_faults
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("walks", self.walks as f64);
        s.put("l1_reads", self.l1_reads as f64);
        s.put("l2_reads", self.l2_reads as f64);
        s.put("l1_walk_hits", self.l1_hits as f64);
        s.put("l2_walk_hits", self.l2_hits as f64);
        s.put("dir_coalesced", self.dir_coalesced as f64);
        s.put("l1_walk_hit_rate", self.l1_walk_hit_rate());
        s.put("l2_walk_hit_rate", self.l2_walk_hit_rate());
        s.put(
            "walk_faults",
            (self.no_table_faults + self.not_present_faults) as f64,
        );
        s
    }
}

// ----------------------------------------------------------------------
// Checkpoint serialization.
// ----------------------------------------------------------------------

impl PageTableWalker {
    /// Serializes both walk-cache levels (decoded entries re-encoded through
    /// the PTE codec), the L1 FIFO cursor and the counters. Geometry is
    /// config.
    pub fn save_state(&self, w: &mut svmsyn_snap::SnapWriter) {
        use svmsyn_snap::Snap;
        w.put_usize(self.l1_cache.len());
        for c in self.l1_cache.iter() {
            w.put_bool(c.valid);
            c.asid.save(w);
            w.put_u32(c.l1);
            c.dir.save(w);
        }
        w.put_usize(self.l1_next);
        w.put_usize(self.l2_cache.len());
        for c in self.l2_cache.iter() {
            w.put_bool(c.valid);
            c.asid.save(w);
            w.put_u64(c.vpn);
            c.pte.save(w);
            w.put_u64(c.pte_addr.0);
        }
        w.put_u64(self.walks);
        w.put_u64(self.l1_reads);
        w.put_u64(self.l2_reads);
        w.put_u64(self.l1_hits);
        w.put_u64(self.l2_hits);
        w.put_u64(self.dir_coalesced);
        w.put_u64(self.no_table_faults);
        w.put_u64(self.not_present_faults);
    }

    /// Rebuilds a walker captured by [`save_state`](Self::save_state) under
    /// the design's `cfg`.
    pub fn restore_state(
        cfg: WalkerConfig,
        r: &mut svmsyn_snap::SnapReader<'_>,
    ) -> Result<Self, svmsyn_snap::SnapError> {
        use svmsyn_snap::{Snap, SnapError};
        let mut w = PageTableWalker::new(cfg);
        if r.take_len()? != w.l1_cache.len() {
            return Err(SnapError::Corrupt("walker l1 cache size"));
        }
        for c in w.l1_cache.iter_mut() {
            c.valid = r.take_bool()?;
            c.asid = Asid::load(r)?;
            c.l1 = r.take_u32()?;
            c.dir = DirEntry::load(r)?;
        }
        w.l1_next = r.take_usize()?;
        if w.l1_next >= w.l1_cache.len().max(1) {
            return Err(SnapError::Corrupt("walker l1 cursor"));
        }
        if r.take_len()? != w.l2_cache.len() {
            return Err(SnapError::Corrupt("walker l2 cache size"));
        }
        for c in w.l2_cache.iter_mut() {
            c.valid = r.take_bool()?;
            c.asid = Asid::load(r)?;
            c.vpn = r.take_u64()?;
            c.pte = Pte::load(r)?;
            c.pte_addr = PhysAddr(r.take_u64()?);
        }
        w.walks = r.take_u64()?;
        w.l1_reads = r.take_u64()?;
        w.l2_reads = r.take_u64()?;
        w.l1_hits = r.take_u64()?;
        w.l2_hits = r.take_u64()?;
        w.dir_coalesced = r.take_u64()?;
        w.no_table_faults = r.take_u64()?;
        w.not_present_faults = r.take_u64()?;
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pte::PteFlags;
    use svmsyn_mem::{MasterId, MemConfig};

    fn setup() -> (MemorySystem, PhysAddr) {
        let mut mem = MemorySystem::new(MemConfig::default());
        let root = PhysAddr::from_frame(100);
        // l1[0] -> table at frame 101; l2[0] -> pfn 7, l2[1] -> invalid
        mem.poke_u32(root, DirEntry::table(101).encode());
        mem.poke_u32(
            PhysAddr::from_frame(101),
            Pte::leaf(
                7,
                PteFlags {
                    writable: true,
                    ..PteFlags::default()
                },
            )
            .encode(),
        );
        (mem, root)
    }

    #[test]
    fn successful_walk_reads_two_levels() {
        let (mut mem, root) = setup();
        let mut w = PageTableWalker::new(WalkerConfig::disabled());
        let r = w.walk(
            &mut mem,
            FabricPort::new(MasterId(0)),
            root,
            Asid(0),
            VirtAddr(0),
            Cycle(0),
        );
        let out = r.outcome.unwrap();
        assert_eq!(out.pte.pfn(), 7);
        assert!(out.pte.flags().writable);
        assert_eq!(out.pte_addr, PhysAddr::from_frame(101));
        assert!(r.done > Cycle(0));
        assert_eq!(w.stats().get("l1_reads"), Some(1.0));
        assert_eq!(w.stats().get("l2_reads"), Some(1.0));
        assert_eq!(w.predicted_bus_reads(), 2);
    }

    #[test]
    fn l1_hit_pipelines_the_leaf_read() {
        let (mut mem, root) = setup();
        let mut w = PageTableWalker::new(WalkerConfig::l1_only(4));
        let r1 = w.walk(
            &mut mem,
            FabricPort::new(MasterId(0)),
            root,
            Asid(0),
            VirtAddr(0),
            Cycle(0),
        );
        let t1 = r1.done - Cycle(0);
        let r2 = w.walk(
            &mut mem,
            FabricPort::new(MasterId(0)),
            root,
            Asid(0),
            VirtAddr(0),
            r1.done,
        );
        let t2 = r2.done - r1.done;
        assert!(t2 < t1, "pipelined walk must be faster ({t2} vs {t1})");
        assert_eq!(w.stats().get("l1_walk_hits"), Some(1.0));
        assert_eq!(w.stats().get("l1_reads"), Some(1.0));
        assert_eq!(w.stats().get("l1_walk_hit_rate"), Some(0.5));
        assert_eq!(w.l1_walk_hit_rate(), 0.5);
        assert_eq!(w.predicted_bus_reads(), 3);
    }

    #[test]
    fn l2_hit_costs_no_bus_read() {
        let (mut mem, root) = setup();
        let mut w = PageTableWalker::new(WalkerConfig::default());
        let r1 = w.walk(
            &mut mem,
            FabricPort::new(MasterId(0)),
            root,
            Asid(0),
            VirtAddr(0),
            Cycle(0),
        );
        let reads_after_first = mem.stats().get("reads").unwrap();
        let r2 = w.walk(
            &mut mem,
            FabricPort::new(MasterId(0)),
            root,
            Asid(0),
            VirtAddr(0),
            r1.done,
        );
        assert_eq!((r2.done - r1.done).0, 1, "leaf hit is one probe cycle");
        assert_eq!(mem.stats().get("reads"), Some(reads_after_first));
        assert_eq!(r2.outcome.unwrap().pte.pfn(), 7);
        assert_eq!(w.l2_walk_hit_rate(), 0.5);
        assert_eq!(w.predicted_bus_reads(), 2);
    }

    #[test]
    fn missing_table_faults_after_one_read() {
        let (mut mem, root) = setup();
        let mut w = PageTableWalker::new(WalkerConfig::default());
        // l1 index 1 was never written -> invalid
        let va = VirtAddr(1 << 22);
        let r = w.walk(
            &mut mem,
            FabricPort::new(MasterId(0)),
            root,
            Asid(0),
            va,
            Cycle(0),
        );
        assert_eq!(r.outcome.unwrap_err(), WalkError::NoTable { va });
        assert_eq!(w.stats().get("l2_reads"), Some(0.0));
        assert_eq!(w.stats().get("walk_faults"), Some(1.0));
        assert_eq!(w.predicted_bus_reads(), 1);
    }

    #[test]
    fn missing_page_faults_after_two_reads() {
        let (mut mem, root) = setup();
        let mut w = PageTableWalker::new(WalkerConfig::default());
        let va = VirtAddr(1 << 12); // l2 index 1: invalid leaf
        let r = w.walk(
            &mut mem,
            FabricPort::new(MasterId(0)),
            root,
            Asid(0),
            va,
            Cycle(0),
        );
        assert_eq!(r.outcome.unwrap_err(), WalkError::NotPresent { va });
        assert_eq!(w.stats().get("l2_reads"), Some(1.0));
        assert_eq!(w.predicted_bus_reads(), 2);
        // The invalid leaf must not have been cached.
        let r2 = w.walk(
            &mut mem,
            FabricPort::new(MasterId(0)),
            root,
            Asid(0),
            va,
            r.done,
        );
        assert!(r2.outcome.is_err());
        assert_eq!(w.stats().get("l2_walk_hits"), Some(0.0));
    }

    #[test]
    fn walk_caches_are_bounded() {
        let (mut mem, root) = setup();
        // Map four more directories so distinct l1 indices are valid.
        for i in 1..6u64 {
            mem.poke_u32(root.offset(4 * i), DirEntry::table(101).encode());
        }
        let mut w = PageTableWalker::new(WalkerConfig::two_level(2, 2));
        let mut t = Cycle(0);
        for i in 0..3u64 {
            let r = w.walk(
                &mut mem,
                FabricPort::new(MasterId(0)),
                root,
                Asid(0),
                VirtAddr(i << 22),
                t,
            );
            t = r.done;
        }
        // Entry for l1=0 was evicted by l1=2; a re-walk reads L1 again (and
        // its direct-mapped leaf slot was overwritten by the conflicting
        // vpn of the l1=2 walk).
        w.walk(
            &mut mem,
            FabricPort::new(MasterId(0)),
            root,
            Asid(0),
            VirtAddr(0),
            t,
        );
        assert_eq!(w.stats().get("l1_reads"), Some(4.0));
        assert_eq!(w.stats().get("l1_walk_hits"), Some(0.0));
        assert_eq!(w.stats().get("l2_walk_hits"), Some(0.0));
    }

    #[test]
    fn invalidate_page_is_precise() {
        let (mut mem, root) = setup();
        mem.poke_u32(
            PhysAddr::from_frame(101).offset(4),
            Pte::leaf(8, PteFlags::default()).encode(),
        );
        let mut w = PageTableWalker::new(WalkerConfig::default());
        let t = w
            .walk(
                &mut mem,
                FabricPort::new(MasterId(0)),
                root,
                Asid(0),
                VirtAddr(0),
                Cycle(0),
            )
            .done;
        let t = w
            .walk(
                &mut mem,
                FabricPort::new(MasterId(0)),
                root,
                Asid(0),
                VirtAddr(1 << 12),
                t,
            )
            .done;
        // Shoot down page 0 only: page 1's leaf entry must stay warm.
        w.invalidate_page(Asid(0), VirtAddr(0));
        let t = w
            .walk(
                &mut mem,
                FabricPort::new(MasterId(0)),
                root,
                Asid(0),
                VirtAddr(1 << 12),
                t,
            )
            .done;
        assert_eq!(w.stats().get("l2_walk_hits"), Some(1.0), "page 1 cached");
        w.walk(
            &mut mem,
            FabricPort::new(MasterId(0)),
            root,
            Asid(0),
            VirtAddr(0),
            t,
        );
        assert_eq!(
            w.stats().get("l1_reads"),
            Some(2.0),
            "page 0's directory line was dropped and re-read"
        );
    }

    #[test]
    fn invalidate_cache_forces_reread() {
        let (mut mem, root) = setup();
        let mut w = PageTableWalker::new(WalkerConfig::default());
        let r = w.walk(
            &mut mem,
            FabricPort::new(MasterId(0)),
            root,
            Asid(0),
            VirtAddr(0),
            Cycle(0),
        );
        w.invalidate_cache();
        w.walk(
            &mut mem,
            FabricPort::new(MasterId(0)),
            root,
            Asid(0),
            VirtAddr(0),
            r.done,
        );
        assert_eq!(w.stats().get("l1_reads"), Some(2.0));
        assert_eq!(w.stats().get("l2_walk_hits"), Some(0.0));
    }

    #[test]
    fn walk_many_coalesces_same_directory_line() {
        let (mut mem, root) = setup();
        // Three mapped pages under the same directory line.
        let flags = PteFlags::default();
        for p in 1..3u64 {
            mem.poke_u32(
                PhysAddr::from_frame(101).offset(4 * p),
                Pte::leaf(7 + p, flags).encode(),
            );
        }
        let mut w = PageTableWalker::new(WalkerConfig::disabled());
        let vas = [VirtAddr(0), VirtAddr(1 << 12), VirtAddr(2 << 12)];
        let rs = w.walk_many(
            &mut mem,
            FabricPort::new(MasterId(0)),
            root,
            Asid(0),
            &vas,
            Cycle(0),
        );
        assert_eq!(rs.len(), 3);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(r.outcome.unwrap().pte.pfn(), 7 + i as u64);
        }
        // One directory read serves all three; three leaf reads.
        assert_eq!(w.stats().get("l1_reads"), Some(1.0));
        assert_eq!(w.stats().get("dir_coalesced"), Some(2.0));
        assert_eq!(w.stats().get("l2_reads"), Some(3.0));
        assert_eq!(w.predicted_bus_reads(), 4);
        assert_eq!(mem.stats().get("reads"), Some(4.0));
    }

    #[test]
    fn walk_many_matches_serial_walks_functionally() {
        let (mut mem, root) = setup();
        let flags = PteFlags::default();
        mem.poke_u32(
            PhysAddr::from_frame(101).offset(4),
            Pte::leaf(9, flags).encode(),
        );
        let vas = [VirtAddr(0), VirtAddr(1 << 12), VirtAddr(5 << 22)];
        let mut batched = PageTableWalker::new(WalkerConfig::default());
        let rs = batched.walk_many(
            &mut mem.clone(),
            FabricPort::new(MasterId(0)),
            root,
            Asid(0),
            &vas,
            Cycle(0),
        );
        let mut serial = PageTableWalker::new(WalkerConfig::default());
        for (va, r) in vas.iter().zip(&rs) {
            let s = serial.walk(
                &mut mem,
                FabricPort::new(MasterId(0)),
                root,
                Asid(0),
                *va,
                Cycle(0),
            );
            match (s.outcome, r.outcome) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.pte, b.pte);
                    assert_eq!(a.pte_addr, b.pte_addr);
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("batched/serial diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn walk_many_duplicate_waits_for_the_in_flight_leaf() {
        let (mut mem, root) = setup();
        let mut w = PageTableWalker::new(WalkerConfig::default());
        let vas = [VirtAddr(0), VirtAddr(0)];
        let rs = w.walk_many(
            &mut mem,
            FabricPort::new(MasterId(0)),
            root,
            Asid(0),
            &vas,
            Cycle(0),
        );
        let leader = rs[0].outcome.unwrap();
        let follower = rs[1].outcome.unwrap();
        assert_eq!(follower.pte, leader.pte);
        assert_eq!(
            follower.done, leader.done,
            "batch-internal reuse completes when the leader's read lands, \
             not one probe cycle into the epoch"
        );
        assert_eq!(w.stats().get("l2_walk_hits"), Some(1.0));
        assert_eq!(mem.stats().get("reads"), Some(2.0), "dir + one leaf only");
        // A later, separate walk of the same page is a normal cache probe.
        let r3 = w.walk(
            &mut mem,
            FabricPort::new(MasterId(0)),
            root,
            Asid(0),
            VirtAddr(0),
            leader.done,
        );
        assert_eq!((r3.done - leader.done).0, 1);
    }

    #[test]
    fn walk_many_coalesced_invalid_directory_faults_without_reads() {
        let (mut mem, root) = setup();
        let mut w = PageTableWalker::new(WalkerConfig::disabled());
        let vas = [VirtAddr(7 << 22), VirtAddr((7 << 22) | (3 << 12))];
        let rs = w.walk_many(
            &mut mem,
            FabricPort::new(MasterId(0)),
            root,
            Asid(0),
            &vas,
            Cycle(0),
        );
        for r in &rs {
            assert!(matches!(r.outcome, Err(WalkError::NoTable { .. })));
        }
        // One directory read discovered the invalid line for both requests.
        assert_eq!(w.stats().get("l1_reads"), Some(1.0));
        assert_eq!(w.predicted_bus_reads(), 1);
        assert_eq!(mem.stats().get("reads"), Some(1.0));
    }

    #[test]
    fn errors_display() {
        let e = WalkError::NotPresent {
            va: VirtAddr(0x1000),
        };
        assert!(e.to_string().contains("not present"));
        let e = WalkError::NoTable {
            va: VirtAddr(0x1000),
        };
        assert!(e.to_string().contains("second-level"));
    }
}
