//! The hardware page-table walker.
//!
//! On a TLB miss the walker issues *real* timed reads on the system bus: one
//! for the first-level directory entry, one for the leaf PTE — two dependent
//! DRAM accesses, which is exactly why TLB misses are expensive. An optional
//! walk cache short-circuits the first read for recently used directory
//! entries.

use svmsyn_mem::{MasterId, MemorySystem, PhysAddr, VirtAddr};
use svmsyn_sim::{Cycle, StatSet};

use crate::pte::{DirEntry, Pte};
use crate::tlb::Asid;

/// Walker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WalkerConfig {
    /// Entries in the L1-directory walk cache; `0` disables it.
    pub walk_cache_entries: usize,
}

impl Default for WalkerConfig {
    /// The `DESIGN.md` §4 default: a 4-entry walk cache.
    fn default() -> Self {
        WalkerConfig {
            walk_cache_entries: 4,
        }
    }
}

/// Why a walk failed to produce a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkError {
    /// The first-level entry was invalid: no L2 table exists.
    NoTable {
        /// Faulting virtual address.
        va: VirtAddr,
    },
    /// The leaf PTE was invalid: the page is not present.
    NotPresent {
        /// Faulting virtual address.
        va: VirtAddr,
    },
}

impl std::fmt::Display for WalkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalkError::NoTable { va } => write!(f, "no second-level table for {va}"),
            WalkError::NotPresent { va } => write!(f, "page not present for {va}"),
        }
    }
}

impl std::error::Error for WalkError {}

/// A successful walk: the leaf PTE, where it lives, and when the walk ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkOutcome {
    /// The decoded leaf entry (valid).
    pub pte: Pte,
    /// Physical address of the leaf entry (for status-bit write-back).
    pub pte_addr: PhysAddr,
    /// Completion time of the walk.
    pub done: Cycle,
}

/// Result of a walk: the outcome or the error, plus the time consumed either
/// way (discovering a fault costs real bus cycles too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// Outcome of the walk.
    pub outcome: Result<WalkOutcome, WalkError>,
    /// Completion time of the walk, success or not.
    pub done: Cycle,
}

/// One walk-cache slot: a cached `(asid, l1_index) -> DirEntry` mapping.
/// The entry is stored *decoded* — a hit skips both the L1 bus read and the
/// `DirEntry::decode` of the raw bits.
#[derive(Debug, Clone, Copy)]
struct WalkCacheEntry {
    valid: bool,
    asid: Asid,
    l1: u32,
    dir: DirEntry,
}

/// The hardware page-table walker with optional walk cache.
///
/// # Example
///
/// ```
/// use svmsyn_mem::{MasterId, MemConfig, MemorySystem, PhysAddr, VirtAddr};
/// use svmsyn_sim::Cycle;
/// use svmsyn_vm::pte::{DirEntry, Pte, PteFlags};
/// use svmsyn_vm::tlb::Asid;
/// use svmsyn_vm::walker::{PageTableWalker, WalkerConfig};
///
/// let mut mem = MemorySystem::new(MemConfig::default());
/// // Build a one-page mapping by hand: root at frame 16, L2 at frame 17,
/// // VA 0 -> PFN 0x42.
/// let root = PhysAddr::from_frame(16);
/// mem.poke_u32(root, DirEntry::table(17).encode());
/// mem.poke_u32(PhysAddr::from_frame(17), Pte::leaf(0x42, PteFlags::default()).encode());
///
/// let mut w = PageTableWalker::new(WalkerConfig::default());
/// let r = w.walk(&mut mem, MasterId(0), root, Asid(0), VirtAddr(0), Cycle(0));
/// assert_eq!(r.outcome.unwrap().pte.pfn(), 0x42);
/// ```
#[derive(Debug, Clone)]
pub struct PageTableWalker {
    cfg: WalkerConfig,
    /// Flat FIFO walk cache: a fixed ring scanned linearly (it is tiny) and
    /// replaced at `cache_next`, so no `Vec` shifting on eviction.
    cache: Box<[WalkCacheEntry]>,
    cache_next: usize,
    walks: u64,
    l1_reads: u64,
    l2_reads: u64,
    cache_hits: u64,
    faults: u64,
}

impl PageTableWalker {
    /// Creates a walker with a cold walk cache.
    pub fn new(cfg: WalkerConfig) -> Self {
        let empty = WalkCacheEntry {
            valid: false,
            asid: Asid(0),
            l1: 0,
            dir: DirEntry::decode(0),
        };
        PageTableWalker {
            cfg,
            cache: vec![empty; cfg.walk_cache_entries].into_boxed_slice(),
            cache_next: 0,
            walks: 0,
            l1_reads: 0,
            l2_reads: 0,
            cache_hits: 0,
            faults: 0,
        }
    }

    /// The configuration this walker was built with.
    pub fn config(&self) -> &WalkerConfig {
        &self.cfg
    }

    fn cache_lookup(&mut self, asid: Asid, l1: usize) -> Option<DirEntry> {
        self.cache
            .iter()
            .find(|c| c.valid && c.asid == asid && c.l1 == l1 as u32)
            .map(|c| c.dir)
    }

    fn cache_insert(&mut self, asid: Asid, l1: usize, e: DirEntry) {
        if self.cache.is_empty() {
            return;
        }
        if let Some(slot) = self
            .cache
            .iter_mut()
            .find(|c| c.valid && c.asid == asid && c.l1 == l1 as u32)
        {
            slot.dir = e;
            return;
        }
        // FIFO ring replacement: overwrite the oldest slot in place.
        self.cache[self.cache_next] = WalkCacheEntry {
            valid: true,
            asid,
            l1: l1 as u32,
            dir: e,
        };
        self.cache_next = (self.cache_next + 1) % self.cache.len();
    }

    /// Drops all cached directory entries (on unmap / context teardown).
    pub fn invalidate_cache(&mut self) {
        for c in self.cache.iter_mut() {
            c.valid = false;
        }
        self.cache_next = 0;
    }

    /// Walks the two-level table rooted at `root` for `va`, issuing timed
    /// reads on `mem` as bus master `master`.
    pub fn walk(
        &mut self,
        mem: &mut MemorySystem,
        master: MasterId,
        root: PhysAddr,
        asid: Asid,
        va: VirtAddr,
        now: Cycle,
    ) -> WalkResult {
        self.walks += 1;
        let l1 = va.l1_index();

        let (dir, t_after_l1) = match self.cache_lookup(asid, l1) {
            Some(e) => {
                self.cache_hits += 1;
                (e, now + 1)
            }
            None => {
                self.l1_reads += 1;
                let (raw, t) = mem.read_u32(master, root.offset(4 * l1 as u64), now);
                let e = DirEntry::decode(raw);
                if e.is_valid() {
                    self.cache_insert(asid, l1, e);
                }
                (e, t)
            }
        };

        if !dir.is_valid() {
            self.faults += 1;
            return WalkResult {
                outcome: Err(WalkError::NoTable { va }),
                done: t_after_l1,
            };
        }

        let pte_addr = PhysAddr::from_frame(dir.table_pfn()).offset(4 * va.l2_index() as u64);
        self.l2_reads += 1;
        let (raw, t_after_l2) = mem.read_u32(master, pte_addr, t_after_l1);
        let pte = Pte::decode(raw);
        if !pte.is_valid() {
            self.faults += 1;
            return WalkResult {
                outcome: Err(WalkError::NotPresent { va }),
                done: t_after_l2,
            };
        }
        WalkResult {
            outcome: Ok(WalkOutcome {
                pte,
                pte_addr,
                done: t_after_l2,
            }),
            done: t_after_l2,
        }
    }

    /// Fraction of walks whose first level was served by the walk cache,
    /// in `[0, 1]`. The ROADMAP's L2-walk-cache follow-up sizes itself on
    /// this number.
    pub fn walk_cache_hit_rate(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.walks as f64
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("walks", self.walks as f64);
        s.put("l1_reads", self.l1_reads as f64);
        s.put("l2_reads", self.l2_reads as f64);
        s.put("walk_cache_hits", self.cache_hits as f64);
        s.put("walk_cache_hit_rate", self.walk_cache_hit_rate());
        s.put("walk_faults", self.faults as f64);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pte::PteFlags;
    use svmsyn_mem::MemConfig;

    fn setup() -> (MemorySystem, PhysAddr) {
        let mut mem = MemorySystem::new(MemConfig::default());
        let root = PhysAddr::from_frame(100);
        // l1[0] -> table at frame 101; l2[0] -> pfn 7, l2[1] -> invalid
        mem.poke_u32(root, DirEntry::table(101).encode());
        mem.poke_u32(
            PhysAddr::from_frame(101),
            Pte::leaf(
                7,
                PteFlags {
                    writable: true,
                    ..PteFlags::default()
                },
            )
            .encode(),
        );
        (mem, root)
    }

    #[test]
    fn successful_walk_reads_two_levels() {
        let (mut mem, root) = setup();
        let mut w = PageTableWalker::new(WalkerConfig {
            walk_cache_entries: 0,
        });
        let r = w.walk(&mut mem, MasterId(0), root, Asid(0), VirtAddr(0), Cycle(0));
        let out = r.outcome.unwrap();
        assert_eq!(out.pte.pfn(), 7);
        assert!(out.pte.flags().writable);
        assert_eq!(out.pte_addr, PhysAddr::from_frame(101));
        assert!(r.done > Cycle(0));
        assert_eq!(w.stats().get("l1_reads"), Some(1.0));
        assert_eq!(w.stats().get("l2_reads"), Some(1.0));
    }

    #[test]
    fn walk_cache_skips_l1_read() {
        let (mut mem, root) = setup();
        let mut w = PageTableWalker::new(WalkerConfig {
            walk_cache_entries: 4,
        });
        let r1 = w.walk(&mut mem, MasterId(0), root, Asid(0), VirtAddr(0), Cycle(0));
        let t1 = r1.done - Cycle(0);
        let r2 = w.walk(&mut mem, MasterId(0), root, Asid(0), VirtAddr(0), r1.done);
        let t2 = r2.done - r1.done;
        assert!(t2 < t1, "cached walk must be faster ({t2} vs {t1})");
        assert_eq!(w.stats().get("walk_cache_hits"), Some(1.0));
        assert_eq!(w.stats().get("l1_reads"), Some(1.0));
        assert_eq!(w.stats().get("walk_cache_hit_rate"), Some(0.5));
        assert_eq!(w.walk_cache_hit_rate(), 0.5);
    }

    #[test]
    fn missing_table_faults_after_one_read() {
        let (mut mem, root) = setup();
        let mut w = PageTableWalker::new(WalkerConfig::default());
        // l1 index 1 was never written -> invalid
        let va = VirtAddr(1 << 22);
        let r = w.walk(&mut mem, MasterId(0), root, Asid(0), va, Cycle(0));
        assert_eq!(r.outcome.unwrap_err(), WalkError::NoTable { va });
        assert_eq!(w.stats().get("l2_reads"), Some(0.0));
        assert_eq!(w.stats().get("walk_faults"), Some(1.0));
    }

    #[test]
    fn missing_page_faults_after_two_reads() {
        let (mut mem, root) = setup();
        let mut w = PageTableWalker::new(WalkerConfig::default());
        let va = VirtAddr(1 << 12); // l2 index 1: invalid leaf
        let r = w.walk(&mut mem, MasterId(0), root, Asid(0), va, Cycle(0));
        assert_eq!(r.outcome.unwrap_err(), WalkError::NotPresent { va });
        assert_eq!(w.stats().get("l2_reads"), Some(1.0));
    }

    #[test]
    fn walk_cache_is_bounded_fifo() {
        let (mut mem, root) = setup();
        // Map four more directories so distinct l1 indices are valid.
        for i in 1..6u64 {
            mem.poke_u32(root.offset(4 * i), DirEntry::table(101).encode());
        }
        let mut w = PageTableWalker::new(WalkerConfig {
            walk_cache_entries: 2,
        });
        let mut t = Cycle(0);
        for i in 0..3u64 {
            let r = w.walk(&mut mem, MasterId(0), root, Asid(0), VirtAddr(i << 22), t);
            t = r.done;
        }
        // Entry for l1=0 was evicted by l1=2; a re-walk reads L1 again.
        w.walk(&mut mem, MasterId(0), root, Asid(0), VirtAddr(0), t);
        assert_eq!(w.stats().get("l1_reads"), Some(4.0));
        assert_eq!(w.stats().get("walk_cache_hits"), Some(0.0));
    }

    #[test]
    fn invalidate_cache_forces_reread() {
        let (mut mem, root) = setup();
        let mut w = PageTableWalker::new(WalkerConfig::default());
        let r = w.walk(&mut mem, MasterId(0), root, Asid(0), VirtAddr(0), Cycle(0));
        w.invalidate_cache();
        w.walk(&mut mem, MasterId(0), root, Asid(0), VirtAddr(0), r.done);
        assert_eq!(w.stats().get("l1_reads"), Some(2.0));
    }

    #[test]
    fn errors_display() {
        let e = WalkError::NotPresent {
            va: VirtAddr(0x1000),
        };
        assert!(e.to_string().contains("not present"));
        let e = WalkError::NoTable {
            va: VirtAddr(0x1000),
        };
        assert!(e.to_string().contains("second-level"));
    }
}
