//! The per-hardware-thread memory management unit.
//!
//! An [`Mmu`] combines the [`Tlb`](crate::tlb::Tlb) and the
//! [`PageTableWalker`](crate::walker::PageTableWalker) behind a single
//! [`translate`](Mmu::translate) entry point. Faults are *reported*, not
//! handled: the MEMIF raises them to the delegate thread, the OS services
//! them, and the access is retried — the paper's SVM execution model.

use svmsyn_mem::{FabricPort, MasterId, MemorySystem, PhysAddr, VirtAddr};
use svmsyn_sim::{Cycle, StatSet};

use crate::tlb::{Asid, Tlb, TlbConfig};
use crate::walker::{PageTableWalker, WalkError, WalkerConfig};

/// The kind of memory access being translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl std::fmt::Display for Access {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Access::Read => write!(f, "read"),
            Access::Write => write!(f, "write"),
        }
    }
}

/// A translation fault that must be serviced by the OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmFault {
    /// No valid mapping for the page (demand-paging fault).
    NotMapped {
        /// Faulting virtual address.
        va: VirtAddr,
        /// The access that faulted.
        access: Access,
    },
    /// The mapping exists but forbids the access (e.g. write to read-only).
    Protection {
        /// Faulting virtual address.
        va: VirtAddr,
        /// The access that faulted.
        access: Access,
    },
}

impl VmFault {
    /// The faulting virtual address.
    pub fn va(&self) -> VirtAddr {
        match self {
            VmFault::NotMapped { va, .. } | VmFault::Protection { va, .. } => *va,
        }
    }

    /// The access kind that faulted.
    pub fn access(&self) -> Access {
        match self {
            VmFault::NotMapped { access, .. } | VmFault::Protection { access, .. } => *access,
        }
    }
}

impl std::fmt::Display for VmFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmFault::NotMapped { va, access } => write!(f, "page not mapped: {access} at {va}"),
            VmFault::Protection { va, access } => {
                write!(f, "protection violation: {access} at {va}")
            }
        }
    }
}

impl std::error::Error for VmFault {}

/// MMU configuration: TLB geometry plus walker options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct MmuConfig {
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// Walker options.
    pub walker: WalkerConfig,
}

/// A successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translated {
    /// The physical address.
    pub paddr: PhysAddr,
    /// When the translation completed.
    pub done: Cycle,
    /// Whether it was served from the TLB.
    pub tlb_hit: bool,
}

/// A failed translation, with the time spent discovering the fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultedTranslation {
    /// The fault to raise to the OS.
    pub fault: VmFault,
    /// When fault detection completed.
    pub done: Cycle,
}

/// The per-thread MMU.
///
/// # Example
///
/// ```
/// use svmsyn_mem::{MasterId, MemConfig, MemorySystem, PhysAddr, VirtAddr};
/// use svmsyn_sim::Cycle;
/// use svmsyn_vm::mmu::{Access, Mmu, MmuConfig};
/// use svmsyn_vm::pte::{DirEntry, Pte, PteFlags};
/// use svmsyn_vm::tlb::Asid;
///
/// let mut mem = MemorySystem::new(MemConfig::default());
/// let root = PhysAddr::from_frame(10);
/// mem.poke_u32(root, DirEntry::table(11).encode());
/// let flags = PteFlags { writable: true, user: true, ..PteFlags::default() };
/// mem.poke_u32(PhysAddr::from_frame(11), Pte::leaf(0x55, flags).encode());
///
/// let mut mmu = Mmu::new(MmuConfig::default(), MasterId(1));
/// mmu.set_context(Asid(3), root);
/// let t = mmu.translate(&mut mem, VirtAddr(0x10), Access::Read, Cycle(0)).unwrap();
/// assert_eq!(t.paddr, PhysAddr::from_frame(0x55).offset(0x10));
/// assert!(!t.tlb_hit);
/// let t2 = mmu.translate(&mut mem, VirtAddr(0x20), Access::Read, t.done).unwrap();
/// assert!(t2.tlb_hit);
/// ```
#[derive(Debug, Clone)]
pub struct Mmu {
    cfg: MmuConfig,
    tlb: Tlb,
    walker: PageTableWalker,
    port: FabricPort,
    context: Option<(Asid, PhysAddr)>,
    translations: u64,
    faults: u64,
}

impl Mmu {
    /// Creates an MMU with a cold TLB, acting as bus master `master` for its
    /// page-table walks.
    pub fn new(cfg: MmuConfig, master: MasterId) -> Self {
        Mmu {
            cfg,
            tlb: Tlb::new(cfg.tlb),
            walker: PageTableWalker::new(cfg.walker),
            port: FabricPort::new(master),
            context: None,
            translations: 0,
            faults: 0,
        }
    }

    /// The configuration this MMU was built with.
    pub fn config(&self) -> &MmuConfig {
        &self.cfg
    }

    /// The bus master id used for walks.
    pub fn master(&self) -> MasterId {
        self.port.master()
    }

    /// The fabric port the walker issues its read transactions through.
    pub fn port(&self) -> FabricPort {
        self.port
    }

    /// Binds the MMU to an address space: the ASID and the physical address
    /// of the first-level table.
    pub fn set_context(&mut self, asid: Asid, root: PhysAddr) {
        self.context = Some((asid, root));
    }

    /// The currently bound `(asid, root)`, if any.
    pub fn context(&self) -> Option<(Asid, PhysAddr)> {
        self.context
    }

    /// Direct TLB access (for shootdowns and tests).
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// Read-only TLB view.
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// Read-only walker view (conformance checking reads its predicted bus
    /// counts and per-level hit counters).
    pub fn walker(&self) -> &PageTableWalker {
        &self.walker
    }

    /// Invalidates one page translation (after the OS unmaps or remaps it).
    /// Precise on both the TLB and the walk caches: other pages' cached
    /// state stays warm.
    pub fn invalidate_page(&mut self, asid: Asid, va: VirtAddr) {
        self.tlb.invalidate_page(asid, va.vpn());
        self.walker.invalidate_page(asid, va);
    }

    /// Full shootdown (context destruction).
    pub fn invalidate_all(&mut self) {
        self.tlb.invalidate_all();
        self.walker.invalidate_cache();
    }

    /// Translates `va` for `access` starting at `now`.
    ///
    /// On success the accessed (and, for writes, dirty) bits of the leaf PTE
    /// are updated in memory functionally — the cost is folded into the walk
    /// itself, matching hardware that sets status bits during the walk.
    ///
    /// # Errors
    ///
    /// Returns [`FaultedTranslation`] when the page is unmapped, the walk
    /// finds no table, or permissions forbid the access. The caller (MEMIF)
    /// raises the fault to the OS and retries after service.
    ///
    /// # Panics
    ///
    /// Panics if no context has been bound via [`set_context`](Self::set_context).
    pub fn translate(
        &mut self,
        mem: &mut MemorySystem,
        va: VirtAddr,
        access: Access,
        now: Cycle,
    ) -> Result<Translated, FaultedTranslation> {
        let (asid, root) = self.context.expect("MMU used without a bound context");
        self.translations += 1;
        let hit_cost = self.cfg.tlb.hit_cycles;

        if let Some(hit) = self.tlb.lookup(asid, va.vpn()) {
            let done = now + hit_cost;
            if access == Access::Write && !hit.flags.writable {
                self.faults += 1;
                return Err(FaultedTranslation {
                    fault: VmFault::Protection { va, access },
                    done,
                });
            }
            return Ok(Translated {
                paddr: PhysAddr::from_frame(hit.pfn).offset(va.page_offset()),
                done,
                tlb_hit: true,
            });
        }

        // TLB miss: walk after the (failed) lookup cost.
        let walk = self
            .walker
            .walk(mem, self.port, root, asid, va, now + hit_cost);
        match walk.outcome {
            Ok(out) => self.admit_walk(mem, asid, va, access, out),
            Err(WalkError::NoTable { .. }) | Err(WalkError::NotPresent { .. }) => {
                self.faults += 1;
                Err(FaultedTranslation {
                    fault: VmFault::NotMapped { va, access },
                    done: walk.done,
                })
            }
        }
    }

    /// Checks permissions for a successful walk/TLB hit and finishes the
    /// translation bookkeeping (status-bit write-back, TLB fill).
    fn admit_walk(
        &mut self,
        mem: &mut MemorySystem,
        asid: Asid,
        va: VirtAddr,
        access: Access,
        out: crate::walker::WalkOutcome,
    ) -> Result<Translated, FaultedTranslation> {
        let flags = out.pte.flags();
        if !flags.user || (access == Access::Write && !flags.writable) {
            self.faults += 1;
            return Err(FaultedTranslation {
                fault: VmFault::Protection { va, access },
                done: out.done,
            });
        }
        // Status-bit write-back, folded into the walk cost.
        let mut updated = out.pte.with_accessed();
        if access == Access::Write {
            updated = updated.with_dirty();
        }
        if updated != out.pte {
            mem.poke_u32(out.pte_addr, updated.encode());
        }
        self.tlb.insert(asid, va.vpn(), out.pte.pfn(), flags);
        Ok(Translated {
            paddr: PhysAddr::from_frame(out.pte.pfn()).offset(va.page_offset()),
            done: out.done,
            tlb_hit: false,
        })
    }

    /// Translates a batch of accesses that are all outstanding at `now` (a
    /// page-crossing access, or several hardware threads' misses gathered in
    /// one epoch). TLB hits resolve per entry; the misses go to the walker's
    /// batched [`walk_many`](crate::walker::PageTableWalker::walk_many)
    /// entry point, which coalesces reads to the same directory line.
    ///
    /// Results come back in request order; each is exactly what
    /// [`translate`](Self::translate) would return for that request, modulo
    /// the shared walk timing. Requests resolve *independently*: a batch
    /// with several faulting requests counts (and reports) each fault —
    /// unlike a serial chunk loop, which would stop at the first one. This
    /// is the hardware semantics of concurrent outstanding misses; callers
    /// that model one logical access (MEMIF's page-crossing path) surface
    /// only the earliest fault and retry the whole access.
    ///
    /// # Panics
    ///
    /// Panics if no context has been bound via [`set_context`](Self::set_context).
    pub fn translate_many(
        &mut self,
        mem: &mut MemorySystem,
        accesses: &[(VirtAddr, Access)],
        now: Cycle,
    ) -> Vec<Result<Translated, FaultedTranslation>> {
        let (asid, root) = self.context.expect("MMU used without a bound context");
        let hit_cost = self.cfg.tlb.hit_cycles;
        self.translations += accesses.len() as u64;

        // TLB probes happen in parallel across the batch; collect the misses.
        let mut results: Vec<Option<Result<Translated, FaultedTranslation>>> =
            Vec::with_capacity(accesses.len());
        let mut miss_idx: Vec<usize> = Vec::new();
        let mut miss_vas: Vec<VirtAddr> = Vec::new();
        for (i, &(va, access)) in accesses.iter().enumerate() {
            match self.tlb.lookup(asid, va.vpn()) {
                Some(hit) => {
                    let done = now + hit_cost;
                    if access == Access::Write && !hit.flags.writable {
                        self.faults += 1;
                        results.push(Some(Err(FaultedTranslation {
                            fault: VmFault::Protection { va, access },
                            done,
                        })));
                    } else {
                        results.push(Some(Ok(Translated {
                            paddr: PhysAddr::from_frame(hit.pfn).offset(va.page_offset()),
                            done,
                            tlb_hit: true,
                        })));
                    }
                }
                None => {
                    results.push(None);
                    miss_idx.push(i);
                    miss_vas.push(va);
                }
            }
        }

        if !miss_vas.is_empty() {
            let walks =
                self.walker
                    .walk_many(mem, self.port, root, asid, &miss_vas, now + hit_cost);
            for (&i, walk) in miss_idx.iter().zip(walks) {
                let (va, access) = accesses[i];
                let r = match walk.outcome {
                    Ok(out) => self.admit_walk(mem, asid, va, access, out),
                    Err(WalkError::NoTable { .. }) | Err(WalkError::NotPresent { .. }) => {
                        self.faults += 1;
                        Err(FaultedTranslation {
                            fault: VmFault::NotMapped { va, access },
                            done: walk.done,
                        })
                    }
                };
                results[i] = Some(r);
            }
        }

        results
            .into_iter()
            .map(|r| r.expect("every request resolved"))
            .collect()
    }

    /// Counter snapshot, absorbing TLB and walker sub-stats.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.put("translations", self.translations as f64);
        s.put("faults", self.faults as f64);
        s.absorb("tlb", self.tlb.stats());
        s.absorb("walker", self.walker.stats());
        s
    }
}

// ----------------------------------------------------------------------
// Checkpoint serialization.
// ----------------------------------------------------------------------

impl Mmu {
    /// Serializes the TLB, the walker, the bound context and the counters.
    /// The config and the fabric master id are design-side and re-supplied
    /// at restore.
    pub fn save_state(&self, w: &mut svmsyn_snap::SnapWriter) {
        use svmsyn_snap::Snap;
        self.tlb.save_state(w);
        self.walker.save_state(w);
        match self.context {
            None => w.put_bool(false),
            Some((asid, root)) => {
                w.put_bool(true);
                asid.save(w);
                w.put_u64(root.0);
            }
        }
        w.put_u64(self.translations);
        w.put_u64(self.faults);
    }

    /// Rebuilds an MMU captured by [`save_state`](Self::save_state) under
    /// the design's `cfg`, acting as bus master `master`.
    pub fn restore_state(
        cfg: MmuConfig,
        master: MasterId,
        r: &mut svmsyn_snap::SnapReader<'_>,
    ) -> Result<Self, svmsyn_snap::SnapError> {
        use svmsyn_snap::Snap;
        let mut m = Mmu::new(cfg, master);
        m.tlb = Tlb::restore_state(cfg.tlb, r)?;
        m.walker = PageTableWalker::restore_state(cfg.walker, r)?;
        m.context = if r.take_bool()? {
            Some((Asid::load(r)?, PhysAddr(r.take_u64()?)))
        } else {
            None
        };
        m.translations = r.take_u64()?;
        m.faults = r.take_u64()?;
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pte::{DirEntry, Pte, PteFlags};
    use svmsyn_mem::MemConfig;

    fn user_rw() -> PteFlags {
        PteFlags {
            writable: true,
            user: true,
            ..PteFlags::default()
        }
    }

    fn setup(flags: PteFlags) -> (MemorySystem, Mmu) {
        let mut mem = MemorySystem::new(MemConfig::default());
        let root = PhysAddr::from_frame(10);
        mem.poke_u32(root, DirEntry::table(11).encode());
        mem.poke_u32(PhysAddr::from_frame(11), Pte::leaf(0x77, flags).encode());
        let mut mmu = Mmu::new(MmuConfig::default(), MasterId(1));
        mmu.set_context(Asid(1), root);
        (mem, mmu)
    }

    #[test]
    fn miss_walks_then_hit_is_fast() {
        let (mut mem, mut mmu) = setup(user_rw());
        let t1 = mmu
            .translate(&mut mem, VirtAddr(0x8), Access::Read, Cycle(0))
            .unwrap();
        assert!(!t1.tlb_hit);
        let t2 = mmu
            .translate(&mut mem, VirtAddr(0x10), Access::Read, t1.done)
            .unwrap();
        assert!(t2.tlb_hit);
        assert_eq!((t2.done - t1.done).0, mmu.config().tlb.hit_cycles);
        assert!((t1.done - Cycle(0)).0 > mmu.config().tlb.hit_cycles);
    }

    #[test]
    fn unmapped_page_reports_not_mapped() {
        let (mut mem, mut mmu) = setup(user_rw());
        let va = VirtAddr(5 << 22);
        let err = mmu
            .translate(&mut mem, va, Access::Write, Cycle(0))
            .unwrap_err();
        assert_eq!(
            err.fault,
            VmFault::NotMapped {
                va,
                access: Access::Write
            }
        );
        assert!(err.done > Cycle(0), "fault discovery takes time");
        assert_eq!(err.fault.va(), va);
        assert_eq!(err.fault.access(), Access::Write);
    }

    #[test]
    fn write_to_readonly_is_protection_fault() {
        let flags = PteFlags {
            user: true,
            ..PteFlags::default()
        };
        let (mut mem, mut mmu) = setup(flags);
        // Read is fine.
        mmu.translate(&mut mem, VirtAddr(0), Access::Read, Cycle(0))
            .unwrap();
        // Write faults even on the now-cached entry.
        let err = mmu
            .translate(&mut mem, VirtAddr(0), Access::Write, Cycle(100))
            .unwrap_err();
        assert!(matches!(err.fault, VmFault::Protection { .. }));
    }

    #[test]
    fn kernel_page_is_protected_from_user_access() {
        let flags = PteFlags {
            writable: true,
            ..PteFlags::default() // user = false
        };
        let (mut mem, mut mmu) = setup(flags);
        let err = mmu
            .translate(&mut mem, VirtAddr(0), Access::Read, Cycle(0))
            .unwrap_err();
        assert!(matches!(err.fault, VmFault::Protection { .. }));
    }

    #[test]
    fn status_bits_written_back() {
        let (mut mem, mut mmu) = setup(user_rw());
        mmu.translate(&mut mem, VirtAddr(0), Access::Write, Cycle(0))
            .unwrap();
        let pte = Pte::decode(mem.peek_u32(PhysAddr::from_frame(11)));
        assert!(pte.flags().accessed);
        assert!(pte.flags().dirty);
    }

    #[test]
    fn read_sets_accessed_not_dirty() {
        let (mut mem, mut mmu) = setup(user_rw());
        mmu.translate(&mut mem, VirtAddr(0), Access::Read, Cycle(0))
            .unwrap();
        let pte = Pte::decode(mem.peek_u32(PhysAddr::from_frame(11)));
        assert!(pte.flags().accessed);
        assert!(!pte.flags().dirty);
    }

    #[test]
    fn invalidate_page_forces_rewalk() {
        let (mut mem, mut mmu) = setup(user_rw());
        let t = mmu
            .translate(&mut mem, VirtAddr(0), Access::Read, Cycle(0))
            .unwrap();
        mmu.invalidate_page(Asid(1), VirtAddr(0));
        let t2 = mmu
            .translate(&mut mem, VirtAddr(0), Access::Read, t.done)
            .unwrap();
        assert!(!t2.tlb_hit);
    }

    #[test]
    #[should_panic(expected = "without a bound context")]
    fn translate_without_context_panics() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let mut mmu = Mmu::new(MmuConfig::default(), MasterId(0));
        let _ = mmu.translate(&mut mem, VirtAddr(0), Access::Read, Cycle(0));
    }

    #[test]
    fn stats_absorbed() {
        let (mut mem, mut mmu) = setup(user_rw());
        mmu.translate(&mut mem, VirtAddr(0), Access::Read, Cycle(0))
            .unwrap();
        let s = mmu.stats();
        assert_eq!(s.get("translations"), Some(1.0));
        assert_eq!(s.get("tlb.misses"), Some(1.0));
        assert_eq!(s.get("walker.walks"), Some(1.0));
    }

    #[test]
    fn translate_many_matches_translate() {
        let (mut mem, mut mmu) = setup(user_rw());
        // Second page mapped too, third unmapped.
        mem.poke_u32(
            PhysAddr::from_frame(11).offset(4),
            Pte::leaf(0x78, user_rw()).encode(),
        );
        let accesses = [
            (VirtAddr(0x8), Access::Read),
            (VirtAddr(0x1004), Access::Write),
            (VirtAddr(5 << 22), Access::Read),
        ];
        let batch = mmu.translate_many(&mut mem, &accesses, Cycle(0));
        assert_eq!(batch.len(), 3);
        assert_eq!(
            batch[0].as_ref().unwrap().paddr,
            PhysAddr::from_frame(0x77).offset(0x8)
        );
        assert_eq!(
            batch[1].as_ref().unwrap().paddr,
            PhysAddr::from_frame(0x78).offset(0x4)
        );
        assert!(matches!(
            batch[2].as_ref().unwrap_err().fault,
            VmFault::NotMapped { .. }
        ));
        // A reference MMU translating serially agrees on every outcome.
        let (mut mem2, mut ref_mmu) = setup(user_rw());
        mem2.poke_u32(
            PhysAddr::from_frame(11).offset(4),
            Pte::leaf(0x78, user_rw()).encode(),
        );
        for (&(va, access), got) in accesses.iter().zip(&batch) {
            match (ref_mmu.translate(&mut mem2, va, access, Cycle(0)), got) {
                (Ok(a), Ok(b)) => assert_eq!(a.paddr, b.paddr),
                (Err(a), Err(b)) => assert_eq!(a.fault, b.fault),
                (a, b) => panic!("batched/serial diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn translate_many_uses_tlb_for_hot_entries() {
        let (mut mem, mut mmu) = setup(user_rw());
        let t = mmu
            .translate(&mut mem, VirtAddr(0), Access::Read, Cycle(0))
            .unwrap();
        let batch = mmu.translate_many(&mut mem, &[(VirtAddr(0x10), Access::Read)], t.done);
        assert!(batch[0].as_ref().unwrap().tlb_hit);
    }

    #[test]
    fn fault_display() {
        let f = VmFault::NotMapped {
            va: VirtAddr(0x1000),
            access: Access::Write,
        };
        assert!(f.to_string().contains("not mapped"));
        let p = VmFault::Protection {
            va: VirtAddr(0x1000),
            access: Access::Read,
        };
        assert!(p.to_string().contains("protection"));
    }
}
