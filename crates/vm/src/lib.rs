//! # svmsyn-vm — the virtual-memory substrate
//!
//! Everything a *virtual-memory-enabled hardware thread* needs to share the
//! host process's address space:
//!
//! * [`pte`] — the two-level 32-bit page-table entry codec shared by the OS
//!   (which writes tables into simulated DRAM) and the hardware walker
//!   (which reads them back over the bus).
//! * [`tlb`] — the parametric, ASID-tagged TLB whose geometry is the central
//!   sizing knob of the VM infrastructure.
//! * [`walker`] — the hardware page-table walker: two dependent timed bus
//!   reads per miss, short-circuited by a two-level walk cache (directory
//!   entries and leaf PTEs), with a pipelined issue path and batched
//!   miss-coalescing walks.
//! * [`mmu`] — the per-thread MMU combining the two and reporting faults for
//!   OS service.
//! * [`cost`] — fabric-resource and Fmax estimates (Table 1's formulas).
//!
//! # Example
//!
//! ```
//! use svmsyn_mem::{MasterId, MemConfig, MemorySystem, PhysAddr, VirtAddr};
//! use svmsyn_sim::Cycle;
//! use svmsyn_vm::mmu::{Access, Mmu, MmuConfig};
//! use svmsyn_vm::pte::{DirEntry, Pte, PteFlags};
//! use svmsyn_vm::tlb::Asid;
//!
//! // Hand-build a single mapping, then translate through it.
//! let mut mem = MemorySystem::new(MemConfig::default());
//! let root = PhysAddr::from_frame(8);
//! mem.poke_u32(root, DirEntry::table(9).encode());
//! let flags = PteFlags { writable: true, user: true, ..PteFlags::default() };
//! mem.poke_u32(PhysAddr::from_frame(9), Pte::leaf(0x123, flags).encode());
//!
//! let mut mmu = Mmu::new(MmuConfig::default(), MasterId(2));
//! mmu.set_context(Asid(1), root);
//! let t = mmu.translate(&mut mem, VirtAddr(0x44), Access::Read, Cycle(0)).unwrap();
//! assert_eq!(t.paddr, PhysAddr::from_frame(0x123).offset(0x44));
//! ```

pub mod cost;
pub mod mmu;
pub mod pte;
pub mod tlb;
pub mod walker;

pub use mmu::{Access, FaultedTranslation, Mmu, MmuConfig, Translated, VmFault};
pub use pte::{DirEntry, Pte, PteFlags};
pub use tlb::{Asid, Replacement, Tlb, TlbConfig, TlbHit};
pub use walker::{PageTableWalker, WalkError, WalkOutcome, WalkResult, WalkerConfig};
